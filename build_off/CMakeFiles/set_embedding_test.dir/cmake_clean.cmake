file(REMOVE_RECURSE
  "CMakeFiles/set_embedding_test.dir/tests/vector/set_embedding_test.cc.o"
  "CMakeFiles/set_embedding_test.dir/tests/vector/set_embedding_test.cc.o.d"
  "set_embedding_test"
  "set_embedding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_embedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
