# Empty dependencies file for set_embedding_test.
# This may be replaced when dependencies are built.
