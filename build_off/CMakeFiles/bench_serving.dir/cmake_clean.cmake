file(REMOVE_RECURSE
  "CMakeFiles/bench_serving.dir/bench/bench_serving.cc.o"
  "CMakeFiles/bench_serving.dir/bench/bench_serving.cc.o.d"
  "bench_serving"
  "bench_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
