# Empty dependencies file for bench_general_join.
# This may be replaced when dependencies are built.
