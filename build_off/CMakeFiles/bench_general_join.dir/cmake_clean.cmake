file(REMOVE_RECURSE
  "CMakeFiles/bench_general_join.dir/bench/bench_general_join.cc.o"
  "CMakeFiles/bench_general_join.dir/bench/bench_general_join.cc.o.d"
  "bench_general_join"
  "bench_general_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_general_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
