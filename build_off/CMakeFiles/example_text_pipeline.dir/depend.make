# Empty dependencies file for example_text_pipeline.
# This may be replaced when dependencies are built.
