file(REMOVE_RECURSE
  "CMakeFiles/example_text_pipeline.dir/examples/text_pipeline.cpp.o"
  "CMakeFiles/example_text_pipeline.dir/examples/text_pipeline.cpp.o.d"
  "example_text_pipeline"
  "example_text_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_text_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
