file(REMOVE_RECURSE
  "CMakeFiles/vector_dataset_test.dir/tests/vector/vector_dataset_test.cc.o"
  "CMakeFiles/vector_dataset_test.dir/tests/vector/vector_dataset_test.cc.o.d"
  "vector_dataset_test"
  "vector_dataset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
