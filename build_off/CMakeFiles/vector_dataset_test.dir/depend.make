# Empty dependencies file for vector_dataset_test.
# This may be replaced when dependencies are built.
