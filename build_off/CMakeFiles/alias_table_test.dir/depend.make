# Empty dependencies file for alias_table_test.
# This may be replaced when dependencies are built.
