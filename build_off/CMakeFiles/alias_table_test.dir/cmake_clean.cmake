file(REMOVE_RECURSE
  "CMakeFiles/alias_table_test.dir/tests/util/alias_table_test.cc.o"
  "CMakeFiles/alias_table_test.dir/tests/util/alias_table_test.cc.o.d"
  "alias_table_test"
  "alias_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alias_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
