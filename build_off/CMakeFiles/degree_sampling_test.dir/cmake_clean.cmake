file(REMOVE_RECURSE
  "CMakeFiles/degree_sampling_test.dir/tests/core/degree_sampling_test.cc.o"
  "CMakeFiles/degree_sampling_test.dir/tests/core/degree_sampling_test.cc.o.d"
  "degree_sampling_test"
  "degree_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degree_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
