# Empty dependencies file for degree_sampling_test.
# This may be replaced when dependencies are built.
