file(REMOVE_RECURSE
  "CMakeFiles/corpus_generator_test.dir/tests/gen/corpus_generator_test.cc.o"
  "CMakeFiles/corpus_generator_test.dir/tests/gen/corpus_generator_test.cc.o.d"
  "corpus_generator_test"
  "corpus_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
