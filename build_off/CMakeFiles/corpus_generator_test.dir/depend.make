# Empty dependencies file for corpus_generator_test.
# This may be replaced when dependencies are built.
