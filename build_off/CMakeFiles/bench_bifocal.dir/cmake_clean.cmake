file(REMOVE_RECURSE
  "CMakeFiles/bench_bifocal.dir/bench/bench_bifocal.cc.o"
  "CMakeFiles/bench_bifocal.dir/bench/bench_bifocal.cc.o.d"
  "bench_bifocal"
  "bench_bifocal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bifocal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
