# Empty dependencies file for bench_bifocal.
# This may be replaced when dependencies are built.
