# Empty dependencies file for bench_join_size_table.
# This may be replaced when dependencies are built.
