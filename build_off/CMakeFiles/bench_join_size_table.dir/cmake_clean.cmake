file(REMOVE_RECURSE
  "CMakeFiles/bench_join_size_table.dir/bench/bench_join_size_table.cc.o"
  "CMakeFiles/bench_join_size_table.dir/bench/bench_join_size_table.cc.o.d"
  "bench_join_size_table"
  "bench_join_size_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_size_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
