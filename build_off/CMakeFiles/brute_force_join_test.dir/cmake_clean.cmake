file(REMOVE_RECURSE
  "CMakeFiles/brute_force_join_test.dir/tests/join/brute_force_join_test.cc.o"
  "CMakeFiles/brute_force_join_test.dir/tests/join/brute_force_join_test.cc.o.d"
  "brute_force_join_test"
  "brute_force_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brute_force_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
