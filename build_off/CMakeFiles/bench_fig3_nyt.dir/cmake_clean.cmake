file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_nyt.dir/bench/bench_fig3_nyt.cc.o"
  "CMakeFiles/bench_fig3_nyt.dir/bench/bench_fig3_nyt.cc.o.d"
  "bench_fig3_nyt"
  "bench_fig3_nyt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_nyt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
