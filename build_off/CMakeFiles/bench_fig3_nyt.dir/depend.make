# Empty dependencies file for bench_fig3_nyt.
# This may be replaced when dependencies are built.
