# Empty dependencies file for bench_streaming_churn.
# This may be replaced when dependencies are built.
