file(REMOVE_RECURSE
  "CMakeFiles/bench_streaming_churn.dir/bench/bench_streaming_churn.cc.o"
  "CMakeFiles/bench_streaming_churn.dir/bench/bench_streaming_churn.cc.o.d"
  "bench_streaming_churn"
  "bench_streaming_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_streaming_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
