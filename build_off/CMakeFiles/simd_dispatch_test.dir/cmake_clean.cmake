file(REMOVE_RECURSE
  "CMakeFiles/simd_dispatch_test.dir/tests/lsh/simd_dispatch_test.cc.o"
  "CMakeFiles/simd_dispatch_test.dir/tests/lsh/simd_dispatch_test.cc.o.d"
  "simd_dispatch_test"
  "simd_dispatch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_dispatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
