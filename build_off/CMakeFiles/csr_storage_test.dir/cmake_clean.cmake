file(REMOVE_RECURSE
  "CMakeFiles/csr_storage_test.dir/tests/vector/csr_storage_test.cc.o"
  "CMakeFiles/csr_storage_test.dir/tests/vector/csr_storage_test.cc.o.d"
  "csr_storage_test"
  "csr_storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
