# Empty dependencies file for csr_storage_test.
# This may be replaced when dependencies are built.
