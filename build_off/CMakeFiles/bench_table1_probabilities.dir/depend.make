# Empty dependencies file for bench_table1_probabilities.
# This may be replaced when dependencies are built.
