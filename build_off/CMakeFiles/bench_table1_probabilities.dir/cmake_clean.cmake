file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_probabilities.dir/bench/bench_table1_probabilities.cc.o"
  "CMakeFiles/bench_table1_probabilities.dir/bench/bench_table1_probabilities.cc.o.d"
  "bench_table1_probabilities"
  "bench_table1_probabilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_probabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
