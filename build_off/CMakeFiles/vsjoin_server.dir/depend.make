# Empty dependencies file for vsjoin_server.
# This may be replaced when dependencies are built.
