file(REMOVE_RECURSE
  "CMakeFiles/vsjoin_server.dir/tools/vsjoin_server.cc.o"
  "CMakeFiles/vsjoin_server.dir/tools/vsjoin_server.cc.o.d"
  "vsjoin_server"
  "vsjoin_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsjoin_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
