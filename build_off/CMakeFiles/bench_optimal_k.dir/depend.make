# Empty dependencies file for bench_optimal_k.
# This may be replaced when dependencies are built.
