file(REMOVE_RECURSE
  "CMakeFiles/bench_optimal_k.dir/bench/bench_optimal_k.cc.o"
  "CMakeFiles/bench_optimal_k.dir/bench/bench_optimal_k.cc.o.d"
  "bench_optimal_k"
  "bench_optimal_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimal_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
