# Empty dependencies file for lsh_index_test.
# This may be replaced when dependencies are built.
