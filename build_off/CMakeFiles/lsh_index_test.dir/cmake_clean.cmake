file(REMOVE_RECURSE
  "CMakeFiles/lsh_index_test.dir/tests/lsh/lsh_index_test.cc.o"
  "CMakeFiles/lsh_index_test.dir/tests/lsh/lsh_index_test.cc.o.d"
  "lsh_index_test"
  "lsh_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsh_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
