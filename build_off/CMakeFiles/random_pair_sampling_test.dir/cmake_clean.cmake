file(REMOVE_RECURSE
  "CMakeFiles/random_pair_sampling_test.dir/tests/core/random_pair_sampling_test.cc.o"
  "CMakeFiles/random_pair_sampling_test.dir/tests/core/random_pair_sampling_test.cc.o.d"
  "random_pair_sampling_test"
  "random_pair_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_pair_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
