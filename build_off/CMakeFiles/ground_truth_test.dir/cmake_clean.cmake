file(REMOVE_RECURSE
  "CMakeFiles/ground_truth_test.dir/tests/eval/ground_truth_test.cc.o"
  "CMakeFiles/ground_truth_test.dir/tests/eval/ground_truth_test.cc.o.d"
  "ground_truth_test"
  "ground_truth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ground_truth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
