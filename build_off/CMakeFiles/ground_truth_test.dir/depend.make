# Empty dependencies file for ground_truth_test.
# This may be replaced when dependencies are built.
