file(REMOVE_RECURSE
  "CMakeFiles/dataset_view_equivalence_test.dir/tests/vector/dataset_view_equivalence_test.cc.o"
  "CMakeFiles/dataset_view_equivalence_test.dir/tests/vector/dataset_view_equivalence_test.cc.o.d"
  "dataset_view_equivalence_test"
  "dataset_view_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_view_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
