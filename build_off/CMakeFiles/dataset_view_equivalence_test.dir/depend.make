# Empty dependencies file for dataset_view_equivalence_test.
# This may be replaced when dependencies are built.
