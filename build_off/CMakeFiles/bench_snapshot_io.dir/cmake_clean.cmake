file(REMOVE_RECURSE
  "CMakeFiles/bench_snapshot_io.dir/bench/bench_snapshot_io.cc.o"
  "CMakeFiles/bench_snapshot_io.dir/bench/bench_snapshot_io.cc.o.d"
  "bench_snapshot_io"
  "bench_snapshot_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snapshot_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
