# Empty dependencies file for vectorizer_test.
# This may be replaced when dependencies are built.
