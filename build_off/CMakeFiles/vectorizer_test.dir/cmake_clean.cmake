file(REMOVE_RECURSE
  "CMakeFiles/vectorizer_test.dir/tests/text/vectorizer_test.cc.o"
  "CMakeFiles/vectorizer_test.dir/tests/text/vectorizer_test.cc.o.d"
  "vectorizer_test"
  "vectorizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vectorizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
