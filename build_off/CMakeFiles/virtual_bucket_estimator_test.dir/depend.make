# Empty dependencies file for virtual_bucket_estimator_test.
# This may be replaced when dependencies are built.
