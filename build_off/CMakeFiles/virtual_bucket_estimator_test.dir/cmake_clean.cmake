file(REMOVE_RECURSE
  "CMakeFiles/virtual_bucket_estimator_test.dir/tests/core/virtual_bucket_estimator_test.cc.o"
  "CMakeFiles/virtual_bucket_estimator_test.dir/tests/core/virtual_bucket_estimator_test.cc.o.d"
  "virtual_bucket_estimator_test"
  "virtual_bucket_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_bucket_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
