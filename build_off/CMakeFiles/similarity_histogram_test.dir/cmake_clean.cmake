file(REMOVE_RECURSE
  "CMakeFiles/similarity_histogram_test.dir/tests/join/similarity_histogram_test.cc.o"
  "CMakeFiles/similarity_histogram_test.dir/tests/join/similarity_histogram_test.cc.o.d"
  "similarity_histogram_test"
  "similarity_histogram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
