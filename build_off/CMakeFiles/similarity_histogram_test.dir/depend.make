# Empty dependencies file for similarity_histogram_test.
# This may be replaced when dependencies are built.
