# Empty dependencies file for vsjoin_estimate.
# This may be replaced when dependencies are built.
