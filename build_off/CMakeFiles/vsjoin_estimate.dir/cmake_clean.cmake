file(REMOVE_RECURSE
  "CMakeFiles/vsjoin_estimate.dir/tools/vsjoin_estimate.cc.o"
  "CMakeFiles/vsjoin_estimate.dir/tools/vsjoin_estimate.cc.o.d"
  "vsjoin_estimate"
  "vsjoin_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsjoin_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
