# Empty dependencies file for service_snapshot_test.
# This may be replaced when dependencies are built.
