file(REMOVE_RECURSE
  "CMakeFiles/service_snapshot_test.dir/tests/service/service_snapshot_test.cc.o"
  "CMakeFiles/service_snapshot_test.dir/tests/service/service_snapshot_test.cc.o.d"
  "service_snapshot_test"
  "service_snapshot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
