file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_impact_k.dir/bench/bench_fig4_impact_k.cc.o"
  "CMakeFiles/bench_fig4_impact_k.dir/bench/bench_fig4_impact_k.cc.o.d"
  "bench_fig4_impact_k"
  "bench_fig4_impact_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_impact_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
