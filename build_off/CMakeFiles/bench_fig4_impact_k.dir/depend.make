# Empty dependencies file for bench_fig4_impact_k.
# This may be replaced when dependencies are built.
