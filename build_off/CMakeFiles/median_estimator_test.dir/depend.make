# Empty dependencies file for median_estimator_test.
# This may be replaced when dependencies are built.
