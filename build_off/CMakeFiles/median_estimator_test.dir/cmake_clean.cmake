file(REMOVE_RECURSE
  "CMakeFiles/median_estimator_test.dir/tests/core/median_estimator_test.cc.o"
  "CMakeFiles/median_estimator_test.dir/tests/core/median_estimator_test.cc.o.d"
  "median_estimator_test"
  "median_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/median_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
