file(REMOVE_RECURSE
  "CMakeFiles/streaming_estimation_service_test.dir/tests/service/streaming_estimation_service_test.cc.o"
  "CMakeFiles/streaming_estimation_service_test.dir/tests/service/streaming_estimation_service_test.cc.o.d"
  "streaming_estimation_service_test"
  "streaming_estimation_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_estimation_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
