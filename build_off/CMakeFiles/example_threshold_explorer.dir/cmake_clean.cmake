file(REMOVE_RECURSE
  "CMakeFiles/example_threshold_explorer.dir/examples/threshold_explorer.cpp.o"
  "CMakeFiles/example_threshold_explorer.dir/examples/threshold_explorer.cpp.o.d"
  "example_threshold_explorer"
  "example_threshold_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_threshold_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
