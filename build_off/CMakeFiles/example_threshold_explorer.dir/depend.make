# Empty dependencies file for example_threshold_explorer.
# This may be replaced when dependencies are built.
