# Empty dependencies file for lsh_ss_estimator_test.
# This may be replaced when dependencies are built.
