# Empty dependencies file for example_near_duplicate_detection.
# This may be replaced when dependencies are built.
