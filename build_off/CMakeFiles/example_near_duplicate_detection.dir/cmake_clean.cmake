file(REMOVE_RECURSE
  "CMakeFiles/example_near_duplicate_detection.dir/examples/near_duplicate_detection.cpp.o"
  "CMakeFiles/example_near_duplicate_detection.dir/examples/near_duplicate_detection.cpp.o.d"
  "example_near_duplicate_detection"
  "example_near_duplicate_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_near_duplicate_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
