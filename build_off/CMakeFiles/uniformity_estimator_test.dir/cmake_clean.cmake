file(REMOVE_RECURSE
  "CMakeFiles/uniformity_estimator_test.dir/tests/core/uniformity_estimator_test.cc.o"
  "CMakeFiles/uniformity_estimator_test.dir/tests/core/uniformity_estimator_test.cc.o.d"
  "uniformity_estimator_test"
  "uniformity_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniformity_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
