# Empty dependencies file for uniformity_estimator_test.
# This may be replaced when dependencies are built.
