# Empty dependencies file for vsj_bench_common.
# This may be replaced when dependencies are built.
