file(REMOVE_RECURSE
  "CMakeFiles/vsj_bench_common.dir/bench/bench_common.cc.o"
  "CMakeFiles/vsj_bench_common.dir/bench/bench_common.cc.o.d"
  "libvsj_bench_common.a"
  "libvsj_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsj_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
