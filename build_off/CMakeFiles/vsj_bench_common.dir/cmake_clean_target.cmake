file(REMOVE_RECURSE
  "libvsj_bench_common.a"
)
