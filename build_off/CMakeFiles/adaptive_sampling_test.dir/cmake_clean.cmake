file(REMOVE_RECURSE
  "CMakeFiles/adaptive_sampling_test.dir/tests/core/adaptive_sampling_test.cc.o"
  "CMakeFiles/adaptive_sampling_test.dir/tests/core/adaptive_sampling_test.cc.o.d"
  "adaptive_sampling_test"
  "adaptive_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
