# Empty dependencies file for adaptive_sampling_test.
# This may be replaced when dependencies are built.
