file(REMOVE_RECURSE
  "CMakeFiles/torn_snapshot_test.dir/tests/fault/torn_snapshot_test.cc.o"
  "CMakeFiles/torn_snapshot_test.dir/tests/fault/torn_snapshot_test.cc.o.d"
  "torn_snapshot_test"
  "torn_snapshot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torn_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
