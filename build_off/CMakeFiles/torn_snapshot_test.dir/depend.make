# Empty dependencies file for torn_snapshot_test.
# This may be replaced when dependencies are built.
