# Empty dependencies file for simhash_test.
# This may be replaced when dependencies are built.
