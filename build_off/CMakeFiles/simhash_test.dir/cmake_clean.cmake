file(REMOVE_RECURSE
  "CMakeFiles/simhash_test.dir/tests/lsh/simhash_test.cc.o"
  "CMakeFiles/simhash_test.dir/tests/lsh/simhash_test.cc.o.d"
  "simhash_test"
  "simhash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simhash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
