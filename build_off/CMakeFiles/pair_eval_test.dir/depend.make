# Empty dependencies file for pair_eval_test.
# This may be replaced when dependencies are built.
