file(REMOVE_RECURSE
  "CMakeFiles/pair_eval_test.dir/tests/vector/pair_eval_test.cc.o"
  "CMakeFiles/pair_eval_test.dir/tests/vector/pair_eval_test.cc.o.d"
  "pair_eval_test"
  "pair_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
