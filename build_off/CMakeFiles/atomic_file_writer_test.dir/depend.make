# Empty dependencies file for atomic_file_writer_test.
# This may be replaced when dependencies are built.
