file(REMOVE_RECURSE
  "CMakeFiles/atomic_file_writer_test.dir/tests/fault/atomic_file_writer_test.cc.o"
  "CMakeFiles/atomic_file_writer_test.dir/tests/fault/atomic_file_writer_test.cc.o.d"
  "atomic_file_writer_test"
  "atomic_file_writer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_file_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
