# Empty dependencies file for metrics_equivalence_test.
# This may be replaced when dependencies are built.
