file(REMOVE_RECURSE
  "CMakeFiles/metrics_equivalence_test.dir/tests/obs/metrics_equivalence_test.cc.o"
  "CMakeFiles/metrics_equivalence_test.dir/tests/obs/metrics_equivalence_test.cc.o.d"
  "metrics_equivalence_test"
  "metrics_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
