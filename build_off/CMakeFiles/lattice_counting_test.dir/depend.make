# Empty dependencies file for lattice_counting_test.
# This may be replaced when dependencies are built.
