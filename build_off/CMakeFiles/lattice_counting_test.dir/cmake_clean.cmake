file(REMOVE_RECURSE
  "CMakeFiles/lattice_counting_test.dir/tests/core/lattice_counting_test.cc.o"
  "CMakeFiles/lattice_counting_test.dir/tests/core/lattice_counting_test.cc.o.d"
  "lattice_counting_test"
  "lattice_counting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_counting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
