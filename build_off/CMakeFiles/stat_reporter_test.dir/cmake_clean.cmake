file(REMOVE_RECURSE
  "CMakeFiles/stat_reporter_test.dir/tests/obs/stat_reporter_test.cc.o"
  "CMakeFiles/stat_reporter_test.dir/tests/obs/stat_reporter_test.cc.o.d"
  "stat_reporter_test"
  "stat_reporter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_reporter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
