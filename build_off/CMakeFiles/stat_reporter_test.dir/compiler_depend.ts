# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for stat_reporter_test.
