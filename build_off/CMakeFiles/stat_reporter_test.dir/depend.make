# Empty dependencies file for stat_reporter_test.
# This may be replaced when dependencies are built.
