# Empty dependencies file for dynamic_lsh_index_test.
# This may be replaced when dependencies are built.
