file(REMOVE_RECURSE
  "CMakeFiles/lsh_s_estimator_test.dir/tests/core/lsh_s_estimator_test.cc.o"
  "CMakeFiles/lsh_s_estimator_test.dir/tests/core/lsh_s_estimator_test.cc.o.d"
  "lsh_s_estimator_test"
  "lsh_s_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsh_s_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
