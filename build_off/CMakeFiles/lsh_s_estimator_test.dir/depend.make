# Empty dependencies file for lsh_s_estimator_test.
# This may be replaced when dependencies are built.
