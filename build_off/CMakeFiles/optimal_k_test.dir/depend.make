# Empty dependencies file for optimal_k_test.
# This may be replaced when dependencies are built.
