file(REMOVE_RECURSE
  "CMakeFiles/optimal_k_test.dir/tests/core/optimal_k_test.cc.o"
  "CMakeFiles/optimal_k_test.dir/tests/core/optimal_k_test.cc.o.d"
  "optimal_k_test"
  "optimal_k_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_k_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
