file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_pubmed.dir/bench/bench_fig9_pubmed.cc.o"
  "CMakeFiles/bench_fig9_pubmed.dir/bench/bench_fig9_pubmed.cc.o.d"
  "bench_fig9_pubmed"
  "bench_fig9_pubmed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_pubmed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
