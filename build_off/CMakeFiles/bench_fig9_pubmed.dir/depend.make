# Empty dependencies file for bench_fig9_pubmed.
# This may be replaced when dependencies are built.
