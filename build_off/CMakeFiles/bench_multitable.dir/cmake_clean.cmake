file(REMOVE_RECURSE
  "CMakeFiles/bench_multitable.dir/bench/bench_multitable.cc.o"
  "CMakeFiles/bench_multitable.dir/bench/bench_multitable.cc.o.d"
  "bench_multitable"
  "bench_multitable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multitable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
