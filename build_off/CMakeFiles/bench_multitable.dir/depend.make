# Empty dependencies file for bench_multitable.
# This may be replaced when dependencies are built.
