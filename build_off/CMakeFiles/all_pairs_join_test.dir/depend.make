# Empty dependencies file for all_pairs_join_test.
# This may be replaced when dependencies are built.
