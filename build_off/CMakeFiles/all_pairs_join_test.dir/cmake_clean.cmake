file(REMOVE_RECURSE
  "CMakeFiles/all_pairs_join_test.dir/tests/join/all_pairs_join_test.cc.o"
  "CMakeFiles/all_pairs_join_test.dir/tests/join/all_pairs_join_test.cc.o.d"
  "all_pairs_join_test"
  "all_pairs_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/all_pairs_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
