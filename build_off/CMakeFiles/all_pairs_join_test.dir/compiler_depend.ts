# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for all_pairs_join_test.
