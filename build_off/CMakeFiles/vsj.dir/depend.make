# Empty dependencies file for vsj.
# This may be replaced when dependencies are built.
