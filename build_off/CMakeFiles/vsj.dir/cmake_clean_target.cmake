file(REMOVE_RECURSE
  "libvsj.a"
)
