file(REMOVE_RECURSE
  "CMakeFiles/fenwick_tree_test.dir/tests/util/fenwick_tree_test.cc.o"
  "CMakeFiles/fenwick_tree_test.dir/tests/util/fenwick_tree_test.cc.o.d"
  "fenwick_tree_test"
  "fenwick_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenwick_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
