# Empty dependencies file for fenwick_tree_test.
# This may be replaced when dependencies are built.
