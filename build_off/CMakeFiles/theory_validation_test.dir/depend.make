# Empty dependencies file for theory_validation_test.
# This may be replaced when dependencies are built.
