file(REMOVE_RECURSE
  "CMakeFiles/theory_validation_test.dir/tests/integration/theory_validation_test.cc.o"
  "CMakeFiles/theory_validation_test.dir/tests/integration/theory_validation_test.cc.o.d"
  "theory_validation_test"
  "theory_validation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
