# Empty dependencies file for bench_lsh_build.
# This may be replaced when dependencies are built.
