file(REMOVE_RECURSE
  "CMakeFiles/bench_lsh_build.dir/bench/bench_lsh_build.cc.o"
  "CMakeFiles/bench_lsh_build.dir/bench/bench_lsh_build.cc.o.d"
  "bench_lsh_build"
  "bench_lsh_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lsh_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
