# Empty dependencies file for bench_fig7_8_sample_size.
# This may be replaced when dependencies are built.
