# Empty dependencies file for streaming_estimation_test.
# This may be replaced when dependencies are built.
