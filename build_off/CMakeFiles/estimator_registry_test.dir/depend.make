# Empty dependencies file for estimator_registry_test.
# This may be replaced when dependencies are built.
