file(REMOVE_RECURSE
  "CMakeFiles/estimator_registry_test.dir/tests/core/estimator_registry_test.cc.o"
  "CMakeFiles/estimator_registry_test.dir/tests/core/estimator_registry_test.cc.o.d"
  "estimator_registry_test"
  "estimator_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
