# Empty dependencies file for estimate_cache_test.
# This may be replaced when dependencies are built.
