file(REMOVE_RECURSE
  "CMakeFiles/estimate_cache_test.dir/tests/service/estimate_cache_test.cc.o"
  "CMakeFiles/estimate_cache_test.dir/tests/service/estimate_cache_test.cc.o.d"
  "estimate_cache_test"
  "estimate_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimate_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
