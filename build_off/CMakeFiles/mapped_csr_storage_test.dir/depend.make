# Empty dependencies file for mapped_csr_storage_test.
# This may be replaced when dependencies are built.
