file(REMOVE_RECURSE
  "CMakeFiles/mapped_csr_storage_test.dir/tests/vector/mapped_csr_storage_test.cc.o"
  "CMakeFiles/mapped_csr_storage_test.dir/tests/vector/mapped_csr_storage_test.cc.o.d"
  "mapped_csr_storage_test"
  "mapped_csr_storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapped_csr_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
