# Empty dependencies file for bench_fig5_6_delta.
# This may be replaced when dependencies are built.
