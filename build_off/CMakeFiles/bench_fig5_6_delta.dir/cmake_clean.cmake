file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_6_delta.dir/bench/bench_fig5_6_delta.cc.o"
  "CMakeFiles/bench_fig5_6_delta.dir/bench/bench_fig5_6_delta.cc.o.d"
  "bench_fig5_6_delta"
  "bench_fig5_6_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_6_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
