file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_alpha_beta.dir/bench/bench_table2_alpha_beta.cc.o"
  "CMakeFiles/bench_table2_alpha_beta.dir/bench/bench_table2_alpha_beta.cc.o.d"
  "bench_table2_alpha_beta"
  "bench_table2_alpha_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_alpha_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
