# Empty dependencies file for bench_table2_alpha_beta.
# This may be replaced when dependencies are built.
