file(REMOVE_RECURSE
  "CMakeFiles/bench_dot_kernel.dir/bench/bench_dot_kernel.cc.o"
  "CMakeFiles/bench_dot_kernel.dir/bench/bench_dot_kernel.cc.o.d"
  "bench_dot_kernel"
  "bench_dot_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dot_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
