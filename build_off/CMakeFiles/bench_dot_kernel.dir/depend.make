# Empty dependencies file for bench_dot_kernel.
# This may be replaced when dependencies are built.
