# Empty dependencies file for lsh_table_test.
# This may be replaced when dependencies are built.
