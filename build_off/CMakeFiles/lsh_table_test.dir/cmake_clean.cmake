file(REMOVE_RECURSE
  "CMakeFiles/lsh_table_test.dir/tests/lsh/lsh_table_test.cc.o"
  "CMakeFiles/lsh_table_test.dir/tests/lsh/lsh_table_test.cc.o.d"
  "lsh_table_test"
  "lsh_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsh_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
