file(REMOVE_RECURSE
  "CMakeFiles/vector_ref_test.dir/tests/vector/vector_ref_test.cc.o"
  "CMakeFiles/vector_ref_test.dir/tests/vector/vector_ref_test.cc.o.d"
  "vector_ref_test"
  "vector_ref_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_ref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
