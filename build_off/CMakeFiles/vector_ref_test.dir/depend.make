# Empty dependencies file for vector_ref_test.
# This may be replaced when dependencies are built.
