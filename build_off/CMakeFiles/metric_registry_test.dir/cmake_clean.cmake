file(REMOVE_RECURSE
  "CMakeFiles/metric_registry_test.dir/tests/obs/metric_registry_test.cc.o"
  "CMakeFiles/metric_registry_test.dir/tests/obs/metric_registry_test.cc.o.d"
  "metric_registry_test"
  "metric_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metric_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
