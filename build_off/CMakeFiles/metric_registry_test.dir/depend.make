# Empty dependencies file for metric_registry_test.
# This may be replaced when dependencies are built.
