# Empty dependencies file for estimate_request_test.
# This may be replaced when dependencies are built.
