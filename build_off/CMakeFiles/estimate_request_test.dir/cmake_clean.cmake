file(REMOVE_RECURSE
  "CMakeFiles/estimate_request_test.dir/tests/service/estimate_request_test.cc.o"
  "CMakeFiles/estimate_request_test.dir/tests/service/estimate_request_test.cc.o.d"
  "estimate_request_test"
  "estimate_request_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimate_request_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
