file(REMOVE_RECURSE
  "CMakeFiles/stratified_sampling_test.dir/tests/core/stratified_sampling_test.cc.o"
  "CMakeFiles/stratified_sampling_test.dir/tests/core/stratified_sampling_test.cc.o.d"
  "stratified_sampling_test"
  "stratified_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stratified_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
