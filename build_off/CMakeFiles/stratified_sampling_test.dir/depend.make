# Empty dependencies file for stratified_sampling_test.
# This may be replaced when dependencies are built.
