# Empty dependencies file for estimation_service_test.
# This may be replaced when dependencies are built.
