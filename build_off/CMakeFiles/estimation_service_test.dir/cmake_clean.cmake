file(REMOVE_RECURSE
  "CMakeFiles/estimation_service_test.dir/tests/service/estimation_service_test.cc.o"
  "CMakeFiles/estimation_service_test.dir/tests/service/estimation_service_test.cc.o.d"
  "estimation_service_test"
  "estimation_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimation_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
