file(REMOVE_RECURSE
  "CMakeFiles/probability_profile_test.dir/tests/eval/probability_profile_test.cc.o"
  "CMakeFiles/probability_profile_test.dir/tests/eval/probability_profile_test.cc.o.d"
  "probability_profile_test"
  "probability_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probability_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
