# Empty dependencies file for probability_profile_test.
# This may be replaced when dependencies are built.
