# Empty dependencies file for bit_sampling_test.
# This may be replaced when dependencies are built.
