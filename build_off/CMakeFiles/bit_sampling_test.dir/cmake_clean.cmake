file(REMOVE_RECURSE
  "CMakeFiles/bit_sampling_test.dir/tests/lsh/bit_sampling_test.cc.o"
  "CMakeFiles/bit_sampling_test.dir/tests/lsh/bit_sampling_test.cc.o.d"
  "bit_sampling_test"
  "bit_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bit_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
