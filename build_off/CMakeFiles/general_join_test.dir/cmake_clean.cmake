file(REMOVE_RECURSE
  "CMakeFiles/general_join_test.dir/tests/core/general_join_test.cc.o"
  "CMakeFiles/general_join_test.dir/tests/core/general_join_test.cc.o.d"
  "general_join_test"
  "general_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
