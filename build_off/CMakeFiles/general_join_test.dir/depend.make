# Empty dependencies file for general_join_test.
# This may be replaced when dependencies are built.
