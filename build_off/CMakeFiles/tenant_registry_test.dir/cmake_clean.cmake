file(REMOVE_RECURSE
  "CMakeFiles/tenant_registry_test.dir/tests/service/tenant_registry_test.cc.o"
  "CMakeFiles/tenant_registry_test.dir/tests/service/tenant_registry_test.cc.o.d"
  "tenant_registry_test"
  "tenant_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenant_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
