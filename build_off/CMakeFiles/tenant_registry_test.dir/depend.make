# Empty dependencies file for tenant_registry_test.
# This may be replaced when dependencies are built.
