# Empty dependencies file for collision_model_test.
# This may be replaced when dependencies are built.
