file(REMOVE_RECURSE
  "CMakeFiles/collision_model_test.dir/tests/core/collision_model_test.cc.o"
  "CMakeFiles/collision_model_test.dir/tests/core/collision_model_test.cc.o.d"
  "collision_model_test"
  "collision_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collision_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
