# Empty dependencies file for bench_fig2_dblp.
# This may be replaced when dependencies are built.
