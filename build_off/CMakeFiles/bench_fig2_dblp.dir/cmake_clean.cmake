file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_dblp.dir/bench/bench_fig2_dblp.cc.o"
  "CMakeFiles/bench_fig2_dblp.dir/bench/bench_fig2_dblp.cc.o.d"
  "bench_fig2_dblp"
  "bench_fig2_dblp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
