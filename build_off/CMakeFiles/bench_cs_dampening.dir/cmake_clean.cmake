file(REMOVE_RECURSE
  "CMakeFiles/bench_cs_dampening.dir/bench/bench_cs_dampening.cc.o"
  "CMakeFiles/bench_cs_dampening.dir/bench/bench_cs_dampening.cc.o.d"
  "bench_cs_dampening"
  "bench_cs_dampening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cs_dampening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
