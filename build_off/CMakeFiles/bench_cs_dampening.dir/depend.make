# Empty dependencies file for bench_cs_dampening.
# This may be replaced when dependencies are built.
