file(REMOVE_RECURSE
  "CMakeFiles/cross_sampling_test.dir/tests/core/cross_sampling_test.cc.o"
  "CMakeFiles/cross_sampling_test.dir/tests/core/cross_sampling_test.cc.o.d"
  "cross_sampling_test"
  "cross_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
