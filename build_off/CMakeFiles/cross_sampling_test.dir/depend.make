# Empty dependencies file for cross_sampling_test.
# This may be replaced when dependencies are built.
