file(REMOVE_RECURSE
  "CMakeFiles/example_query_optimizer.dir/examples/query_optimizer.cpp.o"
  "CMakeFiles/example_query_optimizer.dir/examples/query_optimizer.cpp.o.d"
  "example_query_optimizer"
  "example_query_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_query_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
