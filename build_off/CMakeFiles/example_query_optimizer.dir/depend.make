# Empty dependencies file for example_query_optimizer.
# This may be replaced when dependencies are built.
