# Empty dependencies file for dynamic_lsh_table_test.
# This may be replaced when dependencies are built.
