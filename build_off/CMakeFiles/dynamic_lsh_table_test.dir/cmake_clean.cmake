file(REMOVE_RECURSE
  "CMakeFiles/dynamic_lsh_table_test.dir/tests/lsh/dynamic_lsh_table_test.cc.o"
  "CMakeFiles/dynamic_lsh_table_test.dir/tests/lsh/dynamic_lsh_table_test.cc.o.d"
  "dynamic_lsh_table_test"
  "dynamic_lsh_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_lsh_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
