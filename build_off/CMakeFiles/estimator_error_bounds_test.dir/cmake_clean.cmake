file(REMOVE_RECURSE
  "CMakeFiles/estimator_error_bounds_test.dir/tests/acceptance/estimator_error_bounds_test.cc.o"
  "CMakeFiles/estimator_error_bounds_test.dir/tests/acceptance/estimator_error_bounds_test.cc.o.d"
  "estimator_error_bounds_test"
  "estimator_error_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_error_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
