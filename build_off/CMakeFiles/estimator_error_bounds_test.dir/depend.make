# Empty dependencies file for estimator_error_bounds_test.
# This may be replaced when dependencies are built.
