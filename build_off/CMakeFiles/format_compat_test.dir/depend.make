# Empty dependencies file for format_compat_test.
# This may be replaced when dependencies are built.
