file(REMOVE_RECURSE
  "CMakeFiles/format_compat_test.dir/tests/io/format_compat_test.cc.o"
  "CMakeFiles/format_compat_test.dir/tests/io/format_compat_test.cc.o.d"
  "format_compat_test"
  "format_compat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_compat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
