# Empty dependencies file for vsjoin_client.
# This may be replaced when dependencies are built.
