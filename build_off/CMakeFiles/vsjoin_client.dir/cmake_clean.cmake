file(REMOVE_RECURSE
  "CMakeFiles/vsjoin_client.dir/tools/vsjoin_client.cc.o"
  "CMakeFiles/vsjoin_client.dir/tools/vsjoin_client.cc.o.d"
  "vsjoin_client"
  "vsjoin_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsjoin_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
