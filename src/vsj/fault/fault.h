// Deterministic fault injection: the failure-drill entry points.
//
// A *fault point* is a named site on a fragile path (io section writes,
// checkpoint commit, socket flushes, accept) where a test, a drill
// script, or an operator can arm a failure. Activation is deterministic
// and seedable — fail on the Nth hit, fail on every hit from the Nth on,
// or fail with a seeded Bernoulli draw — and each armed point selects
// the *kind* of failure it injects (an IoError class, a short write, a
// connection reset, a stall, a torn commit, or an outright SIGKILL for
// crash-recovery drills).
//
// Two gates stack exactly like the observability layer (obs/obs.h):
//
//   * compile time — the VSJ_FAULT CMake option (ON by default). With
//     -DVSJ_FAULT=OFF the build defines VSJ_FAULT_OFF and the macros
//     below expand to constants, so every injection branch folds away
//     and the production paths carry no fault code. The fault/ functions
//     themselves still compile, so tools and tests link unchanged.
//   * runtime — Enabled(), false until a point is armed. Arming happens
//     programmatically (Arm / ArmFromString, used by tests) or through
//     the VSJ_FAULTS environment variable, parsed on the first check:
//
//       VSJ_FAULTS='io.atomic.rename:nth=1:kind=crash,net.write:p=0.01:
//                   seed=7:kind=short_write:arg=3'
//
//     A compiled-in but unarmed macro costs one once-flag check plus a
//     relaxed atomic load.
//
// Naming scheme: <layer>.<site> with dots, lowercase — "io.atomic.fsync",
// "service.checkpoint", "registry.writeback", "net.frame". The full list
// lives in DESIGN.md "Fault injection & crash safety".
//
// Fault points never touch estimation: they draw from their own per-spec
// RNG, never the request streams, so arming a point that does not fire
// cannot perturb estimates (the bit-identity contract holds).

#ifndef VSJ_FAULT_FAULT_H_
#define VSJ_FAULT_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "vsj/io/io_status.h"

#if defined(VSJ_FAULT_OFF)
#define VSJ_FAULT_COMPILED 0
#else
#define VSJ_FAULT_COMPILED 1
#endif

namespace vsj::fault {

/// What an armed point injects when it fires.
enum class FaultKind {
  kNone = 0,
  // IoStatus kinds — InjectedIoStatus maps them onto IoError, so io-layer
  // points can simulate every error class their callers must handle.
  kIoError,
  kNotFound,
  kBadMagic,
  kUnsupportedVersion,
  kCorrupt,
  kChecksumMismatch,
  // Transport kinds, interpreted by the net layer.
  kShortWrite,  ///< Cap one write() to `arg` bytes (default 1).
  kReset,       ///< Drop the connection without a response.
  // Commit kind, interpreted by AtomicFileWriter.
  kTorn,  ///< Truncate the payload to `arg` bytes, skip fsync, rename
          ///< anyway — simulates the power-loss torn write an unsafe
          ///< (no-fsync) writer would leave behind.
  // Self-handled kinds — CheckHit performs them and reports kNone.
  kStall,  ///< Sleep `arg` ms (default 50), then let the op proceed.
  kCrash,  ///< raise(SIGKILL): the crash-drill kill switch. The process
           ///< dies at the point with no destructors and no flushing,
           ///< exactly like an operator's kill -9 or a power cut.
};

/// Spec name of a kind ("io_error", "short_write", "crash", ...).
const char* FaultKindName(FaultKind kind);

/// One armed fault point.
struct FaultSpec {
  std::string point;
  FaultKind kind = FaultKind::kIoError;
  /// Fire on the nth hit (1-based). Ignored when probability > 0.
  uint64_t nth = 1;
  /// Keep firing on every hit >= nth (default: fire exactly once).
  bool repeat = false;
  /// When > 0: fire per-hit with this probability, drawn from a
  /// dedicated Rng seeded with `seed` (deterministic given hit order).
  double probability = 0.0;
  uint64_t seed = 1;
  /// Kind-specific parameter: bytes for kShortWrite/kTorn, ms for kStall.
  uint64_t arg = 0;
};

/// Outcome of checking a fault point: which kind fired (kNone almost
/// always) and the armed spec's `arg` for the site to interpret.
struct FaultHit {
  FaultKind kind = FaultKind::kNone;
  uint64_t arg = 0;
  bool fired() const { return kind != FaultKind::kNone; }
};

/// Fast gate the macros check before anything else. The first call parses
/// VSJ_FAULTS (if set); afterwards it is a relaxed atomic load that is
/// true iff at least one point is armed.
bool Enabled();

/// Arms (or re-arms, resetting hit counts) one fault point.
void Arm(const FaultSpec& spec);

/// Parses one "point[:key=value...]" spec. Keys: kind, nth, repeat, p,
/// seed, arg. Returns false with a diagnostic in *error on a bad spec.
bool ParseFaultSpec(const std::string& text, FaultSpec* spec,
                    std::string* error);

/// Arms a comma-separated list of specs (the VSJ_FAULTS format). Stops at
/// the first bad spec; points before it stay armed.
bool ArmFromString(const std::string& specs, std::string* error);

/// Disarms one point; true if it was armed.
bool Disarm(const std::string& point);

/// Disarms everything (test teardown).
void ClearAll();

/// Checks an armed point has the expected name spelling; hits observed /
/// activations so far (0 for unarmed points — unarmed hits aren't
/// tracked).
uint64_t HitCount(const std::string& point);
uint64_t FiredCount(const std::string& point);

/// Names of the currently armed points (startup banner, diagnostics).
std::vector<std::string> ArmedPoints();

/// Macro internals: records a hit on `point` and decides activation.
/// kStall sleeps and kCrash kills the process right here; every other
/// kind is returned for the site to act on.
FaultHit CheckHit(const char* point);

/// The IoStatus an io-layer site returns when its point fires: the kind
/// mapped onto IoError, reason "injected fault at <point>".
IoStatus InjectedIoStatus(const char* point, FaultKind kind,
                          const std::string& path);

}  // namespace vsj::fault

#if VSJ_FAULT_COMPILED

/// Evaluates to the FaultHit for `point` (a string literal); almost
/// always {kNone} — one once-flag check plus a relaxed load when nothing
/// is armed.
#define VSJ_FAULT_HIT(point)                                             \
  (::vsj::fault::Enabled() ? ::vsj::fault::CheckHit(point)               \
                           : ::vsj::fault::FaultHit{})

/// Io-layer fault point: when `point` fires, returns the injected
/// IoStatus (annotated with `path`) from the enclosing function.
#define VSJ_FAULT_IO(point, path)                                        \
  do {                                                                   \
    const ::vsj::fault::FaultHit vsj_fault_hit_ = VSJ_FAULT_HIT(point);  \
    if (vsj_fault_hit_.fired()) {                                        \
      return ::vsj::fault::InjectedIoStatus(point, vsj_fault_hit_.kind,  \
                                            path);                       \
    }                                                                    \
  } while (0)

#else  // !VSJ_FAULT_COMPILED — every site folds to a constant.

#define VSJ_FAULT_HIT(point) (::vsj::fault::FaultHit{})
#define VSJ_FAULT_IO(point, path) \
  do {                            \
    (void)sizeof(point);          \
  } while (0)

#endif  // VSJ_FAULT_COMPILED

#endif  // VSJ_FAULT_FAULT_H_
