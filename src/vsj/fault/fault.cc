#include "vsj/fault/fault.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "vsj/util/rng.h"

namespace vsj::fault {
namespace {

struct ArmedPoint {
  FaultSpec spec;
  uint64_t hits = 0;
  uint64_t fired = 0;
  Rng rng;

  explicit ArmedPoint(const FaultSpec& s) : spec(s), rng(s.seed) {}
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, ArmedPoint> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

// True iff at least one point is armed; the macros' fast gate.
std::atomic<bool> g_enabled{false};

std::once_flag g_env_once;

void InitFromEnvLocked() {
  const char* env = std::getenv("VSJ_FAULTS");
  if (env == nullptr || env[0] == '\0') return;
  std::string error;
  if (!ArmFromString(env, &error)) {
    // A malformed VSJ_FAULTS must not be silently ignored — a drill that
    // thinks it armed a crash point but didn't would "pass" vacuously.
    std::fprintf(stderr, "vsj: bad VSJ_FAULTS spec: %s\n", error.c_str());
    std::abort();
  }
}

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kNone, "none"},
    {FaultKind::kIoError, "io_error"},
    {FaultKind::kNotFound, "not_found"},
    {FaultKind::kBadMagic, "bad_magic"},
    {FaultKind::kUnsupportedVersion, "unsupported_version"},
    {FaultKind::kCorrupt, "corrupt"},
    {FaultKind::kChecksumMismatch, "checksum"},
    {FaultKind::kShortWrite, "short_write"},
    {FaultKind::kReset, "reset"},
    {FaultKind::kTorn, "torn"},
    {FaultKind::kStall, "stall"},
    {FaultKind::kCrash, "crash"},
};

bool KindFromName(const std::string& name, FaultKind* kind) {
  for (const KindName& entry : kKindNames) {
    if (name == entry.name) {
      *kind = entry.kind;
      return true;
    }
  }
  return false;
}

bool ParseUint(const std::string& text, uint64_t* value) {
  if (text.empty()) return false;
  uint64_t parsed = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = parsed;
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

bool Enabled() {
  std::call_once(g_env_once, [] { InitFromEnvLocked(); });
  return g_enabled.load(std::memory_order_relaxed);
}

void Arm(const FaultSpec& spec) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.points.erase(spec.point);
  registry.points.emplace(spec.point, ArmedPoint(spec));
  g_enabled.store(true, std::memory_order_relaxed);
}

bool ParseFaultSpec(const std::string& text, FaultSpec* spec,
                    std::string* error) {
  FaultSpec parsed;
  size_t pos = 0;
  size_t field = 0;
  while (pos <= text.size()) {
    size_t colon = text.find(':', pos);
    if (colon == std::string::npos) colon = text.size();
    const std::string part = text.substr(pos, colon - pos);
    if (field == 0) {
      if (part.empty()) {
        if (error != nullptr) *error = "empty fault point name";
        return false;
      }
      parsed.point = part;
    } else if (part == "repeat") {
      parsed.repeat = true;
    } else {
      const size_t eq = part.find('=');
      if (eq == std::string::npos) {
        if (error != nullptr) {
          *error = "expected key=value in fault spec, got '" + part + "'";
        }
        return false;
      }
      const std::string key = part.substr(0, eq);
      const std::string value = part.substr(eq + 1);
      bool ok = true;
      if (key == "kind") {
        ok = KindFromName(value, &parsed.kind);
      } else if (key == "nth") {
        ok = ParseUint(value, &parsed.nth) && parsed.nth >= 1;
      } else if (key == "seed") {
        ok = ParseUint(value, &parsed.seed);
      } else if (key == "arg") {
        ok = ParseUint(value, &parsed.arg);
      } else if (key == "p") {
        char* end = nullptr;
        parsed.probability = std::strtod(value.c_str(), &end);
        ok = end != nullptr && *end == '\0' && parsed.probability >= 0.0 &&
             parsed.probability <= 1.0;
      } else {
        ok = false;
      }
      if (!ok) {
        if (error != nullptr) {
          *error = "bad fault spec field '" + part + "' for point '" +
                   parsed.point + "'";
        }
        return false;
      }
    }
    ++field;
    if (colon == text.size()) break;
    pos = colon + 1;
  }
  *spec = std::move(parsed);
  return true;
}

bool ArmFromString(const std::string& specs, std::string* error) {
  size_t pos = 0;
  while (pos <= specs.size()) {
    size_t comma = specs.find(',', pos);
    if (comma == std::string::npos) comma = specs.size();
    const std::string item = specs.substr(pos, comma - pos);
    if (!item.empty()) {
      FaultSpec spec;
      if (!ParseFaultSpec(item, &spec, error)) return false;
      Arm(spec);
    }
    if (comma == specs.size()) break;
    pos = comma + 1;
  }
  return true;
}

bool Disarm(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const bool erased = registry.points.erase(point) > 0;
  if (registry.points.empty()) {
    g_enabled.store(false, std::memory_order_relaxed);
  }
  return erased;
}

void ClearAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.points.clear();
  g_enabled.store(false, std::memory_order_relaxed);
}

uint64_t HitCount(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.points.find(point);
  return it == registry.points.end() ? 0 : it->second.hits;
}

uint64_t FiredCount(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.points.find(point);
  return it == registry.points.end() ? 0 : it->second.fired;
}

std::vector<std::string> ArmedPoints() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> names;
  names.reserve(registry.points.size());
  for (const auto& [name, point] : registry.points) names.push_back(name);
  return names;
}

FaultHit CheckHit(const char* point) {
  FaultHit hit;
  uint64_t stall_ms = 0;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.points.find(point);
    if (it == registry.points.end()) return hit;
    ArmedPoint& armed = it->second;
    ++armed.hits;
    bool fires;
    if (armed.spec.probability > 0.0) {
      fires = armed.rng.NextDouble() < armed.spec.probability;
    } else if (armed.spec.repeat) {
      fires = armed.hits >= armed.spec.nth;
    } else {
      fires = armed.hits == armed.spec.nth;
    }
    if (!fires) return hit;
    ++armed.fired;
    hit.kind = armed.spec.kind;
    hit.arg = armed.spec.arg;
  }
  if (hit.kind == FaultKind::kCrash) {
    // Die exactly like kill -9: no exit handlers, no stream flushing, no
    // destructors. _Exit(137) is the (unreachable) fallback in case the
    // signal is somehow blocked.
    ::raise(SIGKILL);
    std::_Exit(137);
  }
  if (hit.kind == FaultKind::kStall) {
    stall_ms = hit.arg > 0 ? hit.arg : 50;
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
    hit.kind = FaultKind::kNone;  // the op proceeds after the stall
    hit.arg = 0;
  }
  return hit;
}

IoStatus InjectedIoStatus(const char* point, FaultKind kind,
                          const std::string& path) {
  IoError code;
  switch (kind) {
    case FaultKind::kNotFound:
      code = IoError::kNotFound;
      break;
    case FaultKind::kBadMagic:
      code = IoError::kBadMagic;
      break;
    case FaultKind::kUnsupportedVersion:
      code = IoError::kUnsupportedVersion;
      break;
    case FaultKind::kCorrupt:
      code = IoError::kCorrupt;
      break;
    case FaultKind::kChecksumMismatch:
      code = IoError::kChecksumMismatch;
      break;
    default:
      code = IoError::kIoError;
      break;
  }
  return IoStatus::Fail(code, std::string("injected fault at ") + point, 0,
                        path);
}

}  // namespace vsj::fault
