// LeanStore-style periodic live profiling table + JSON-lines snapshots.
//
// A StatReporter owns a background thread that snapshots the global
// MetricRegistry every `interval_ms`, renders a profiling table (counters
// with totals and per-second rates computed from the previous tick,
// histograms with count/p50/p90/p99/p999, *_ns values shown as
// milliseconds) to a stream — stderr for the CLI's --stats-interval so
// golden stdout fixtures stay byte-identical — and appends one JSON line
// per tick to an optional file for offline analysis. Stop() (and the
// destructor) emit a final tick so short runs always produce at least one
// report.
//
// The table renderer and the JSON serializer are exposed standalone:
// vsjoin_estimate --metrics prints one end-of-run table through
// PrintMetricsTable, --metrics-json writes one document through
// WriteMetricsJson, and BenchJson embeds AppendMetricsJson output in
// BENCH_*.json.

#ifndef VSJ_OBS_STAT_REPORTER_H_
#define VSJ_OBS_STAT_REPORTER_H_

#include <condition_variable>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

#include "vsj/obs/metrics.h"

namespace vsj::obs {

/// Renders `snapshot` as an aligned profiling table. When `previous` is
/// non-null, counter/histogram rows gain a per-second rate column over
/// the wall-time delta between the two snapshots. Metrics with no
/// recorded value are skipped; a cache.hits/cache.misses pair is
/// summarized as a hit-rate line under the table.
void PrintMetricsTable(const RegistrySnapshot& snapshot,
                       const RegistrySnapshot* previous, std::ostream& os,
                       const std::string& title = "metrics");

/// Appends `snapshot` as one JSON object (no trailing newline):
/// {"t_ms":..., "counters":{...}, "gauges":{...},
///  "histograms":{name:{count,sum,max,mean,p50,p90,p99,p999}}}.
void AppendMetricsJson(const RegistrySnapshot& snapshot, std::ostream& os);

/// Writes AppendMetricsJson output (plus newline) to `path`; returns
/// false with `*error` filled on failure.
bool WriteMetricsJson(const RegistrySnapshot& snapshot,
                      const std::string& path, std::string* error);

struct StatReporterOptions {
  /// Tick period. The final Stop() tick fires regardless.
  int interval_ms = 1000;
  /// Stream receiving the live table; nullptr disables table output.
  std::ostream* out = nullptr;
  /// Append one JSON line per tick here; empty disables.
  std::string jsonl_path;
};

/// Background periodic reporter over the global registry.
class StatReporter {
 public:
  explicit StatReporter(StatReporterOptions options);
  ~StatReporter();

  StatReporter(const StatReporter&) = delete;
  StatReporter& operator=(const StatReporter&) = delete;

  /// Joins the reporter thread after one final tick. Idempotent.
  void Stop();

  /// Number of ticks emitted so far (including the final one).
  uint64_t ticks() const;

 private:
  void Loop();
  void Tick();

  StatReporterOptions options_;
  RegistrySnapshot previous_;
  bool have_previous_ = false;
  uint64_t ticks_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace vsj::obs

#endif  // VSJ_OBS_STAT_REPORTER_H_
