#include "vsj/obs/trace.h"

#include <fstream>
#include <iomanip>
#include <ostream>

#include "vsj/obs/metrics.h"

namespace vsj::obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};

/// Small dense per-thread id for trace events (thread::id is opaque and
/// unstable across runs; a first-use counter keeps lanes readable).
uint32_t ThreadTraceId() {
  static std::atomic<uint32_t> next_thread{1};
  thread_local const uint32_t id =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void EnableTracing(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

TraceCollector& TraceCollector::Global() {
  static TraceCollector collector;
  return collector;
}

void TraceCollector::Append(const char* name, uint64_t start_ns,
                            uint64_t dur_ns) {
  const uint32_t tid = ThreadTraceId();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{name, start_ns, dur_ns, tid});
}

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

uint64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

void TraceCollector::WriteChromeTrace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (i != 0) os << ",";
    // Chrome's ts/dur are microseconds; keep ns resolution as zero-padded
    // fractional digits.
    os << "\n{\"name\":\"" << e.name
       << "\",\"cat\":\"vsj\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":" << e.start_ns / 1000 << "." << std::setfill('0')
       << std::setw(3) << e.start_ns % 1000 << ",\"dur\":" << e.dur_ns / 1000
       << "." << std::setw(3) << e.dur_ns % 1000 << std::setfill(' ') << "}";
  }
  os << "\n]}\n";
}

bool TraceCollector::WriteChromeTraceFile(const std::string& path,
                                          std::string* error) const {
  std::ofstream os(path);
  if (!os) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  WriteChromeTrace(os);
  os.flush();
  if (!os) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

TraceSpan::TraceSpan(const char* name) {
  if (!MetricsEnabled() && !TracingEnabled()) return;
  name_ = name;
  start_ns_ = MonotonicNowNs();
  armed_ = true;
}

void TraceSpan::End() {
  if (!armed_) return;
  armed_ = false;
  const uint64_t dur_ns = MonotonicNowNs() - start_ns_;
  if (MetricsEnabled()) {
    MetricRegistry::Global().GetHistogram(name_).Record(dur_ns);
  }
  if (TracingEnabled()) {
    TraceCollector::Global().Append(name_, start_ns_, dur_ns);
  }
}

}  // namespace vsj::obs
