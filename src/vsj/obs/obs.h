// Instrumentation entry points: the macros every layer records through.
//
// Two gates stack on top of each other:
//
//   * compile time — the VSJ_METRICS CMake option (ON by default). With
//     -DVSJ_METRICS=OFF the build defines VSJ_METRICS_OFF and every macro
//     below expands to nothing: the hot paths carry literally no
//     observability code. The obs/ classes themselves still compile, so
//     tools and tests build unchanged (they just see an empty registry).
//   * runtime — obs::MetricsEnabled(), off by default, flipped by
//     EnableMetrics() (CLI --metrics, benches) or the VSJ_METRICS
//     environment variable. A compiled-in but disabled macro costs one
//     relaxed atomic load and a predicted branch.
//
// The macros cache the registry lookup in a function-local static, so a
// hot site pays the name lookup once, then a shard-local fetch_add per
// event. Names must be string literals (sites with runtime-composed names
// — per-estimator latency histograms — call the registry directly at
// request granularity instead; see service/trial_runner.cc).
//
// The bit-identity contract: instrumentation records counts and clock
// readings only. Nothing here may draw from an Rng, reorder float
// accumulation, or otherwise feed back into estimation — which is how
// VSJ_METRICS on/off builds stay estimate-for-estimate identical
// (tests/obs/metrics_equivalence_test.cc pins it).

#ifndef VSJ_OBS_OBS_H_
#define VSJ_OBS_OBS_H_

#include "vsj/obs/metrics.h"
#include "vsj/obs/trace.h"

#if defined(VSJ_METRICS_OFF)
#define VSJ_METRICS_COMPILED 0
#else
#define VSJ_METRICS_COMPILED 1
#endif

#if VSJ_METRICS_COMPILED

/// Adds `n` to the registry counter `name` (a string literal).
#define VSJ_COUNTER_ADD(name, n)                                         \
  do {                                                                   \
    if (::vsj::obs::MetricsEnabled()) {                                  \
      static ::vsj::obs::Counter& vsj_obs_counter_ =                     \
          ::vsj::obs::MetricRegistry::Global().GetCounter(name);         \
      vsj_obs_counter_.Add(static_cast<uint64_t>(n));                    \
    }                                                                    \
  } while (0)

/// Adds the signed delta `n` to the registry gauge `name`.
#define VSJ_GAUGE_ADD(name, n)                                           \
  do {                                                                   \
    if (::vsj::obs::MetricsEnabled()) {                                  \
      static ::vsj::obs::Gauge& vsj_obs_gauge_ =                         \
          ::vsj::obs::MetricRegistry::Global().GetGauge(name);           \
      vsj_obs_gauge_.Add(static_cast<int64_t>(n));                       \
    }                                                                    \
  } while (0)

/// Sets the registry gauge `name` to `v`.
#define VSJ_GAUGE_SET(name, v)                                           \
  do {                                                                   \
    if (::vsj::obs::MetricsEnabled()) {                                  \
      static ::vsj::obs::Gauge& vsj_obs_gauge_ =                         \
          ::vsj::obs::MetricRegistry::Global().GetGauge(name);           \
      vsj_obs_gauge_.Set(static_cast<int64_t>(v));                       \
    }                                                                    \
  } while (0)

/// Records `v` into the registry histogram `name`.
#define VSJ_HIST_RECORD(name, v)                                         \
  do {                                                                   \
    if (::vsj::obs::MetricsEnabled()) {                                  \
      static ::vsj::obs::Histogram& vsj_obs_hist_ =                      \
          ::vsj::obs::MetricRegistry::Global().GetHistogram(name);       \
      vsj_obs_hist_.Record(static_cast<uint64_t>(v));                    \
    }                                                                    \
  } while (0)

/// Declares a scoped timer `var` recording into histogram `name` (ns) and
/// the trace collector. Suffix histogram names carrying times with `_ns`
/// so reporters format them as durations.
#define VSJ_TRACE_SPAN(var, name) ::vsj::obs::TraceSpan var(name)

#else  // !VSJ_METRICS_COMPILED — every site compiles to nothing.

#define VSJ_COUNTER_ADD(name, n) \
  do {                           \
    (void)sizeof(n);             \
  } while (0)
#define VSJ_GAUGE_ADD(name, n) \
  do {                         \
    (void)sizeof(n);           \
  } while (0)
#define VSJ_GAUGE_SET(name, v) \
  do {                         \
    (void)sizeof(v);           \
  } while (0)
#define VSJ_HIST_RECORD(name, v) \
  do {                           \
    (void)sizeof(v);             \
  } while (0)
#define VSJ_TRACE_SPAN(var, name) \
  [[maybe_unused]] ::vsj::obs::NullSpan var

#endif  // VSJ_METRICS_COMPILED

#endif  // VSJ_OBS_OBS_H_
