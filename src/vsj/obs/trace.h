// Scoped trace spans and the Chrome trace_event collector.
//
// TraceSpan is the one-line instrumentation primitive for "how long did
// this region take": constructed with a metric name, it reads the steady
// clock on entry and on scope exit records the duration into the
// registry histogram of that name (when metrics are enabled) and appends
// a complete event to the TraceCollector (when tracing is enabled). With
// both facilities off the constructor is a pair of relaxed loads and the
// destructor a branch — cheap enough for per-request and per-table-build
// granularity (per-pair hot loops use post-loop bulk counters instead;
// see core/stratified_sampling.h).
//
// The collector buffers completed spans ({name, start, duration, small
// thread id}) behind one mutex — spans are coarse, so contention is not a
// concern — up to a fixed cap, counting anything beyond it as dropped,
// and serializes them as Chrome trace_event JSON ("ph":"X" complete
// events, microsecond timestamps) loadable in chrome://tracing or Perfetto
// for flame-graph profiling of a request. Span names must be string
// literals (the collector stores the pointer).

#ifndef VSJ_OBS_TRACE_H_
#define VSJ_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace vsj::obs {

/// True when span events are being collected (independent of
/// MetricsEnabled — a trace can run with metrics off and vice versa).
bool TracingEnabled();

/// Turns span collection on or off.
void EnableTracing(bool enabled);

/// Bounded buffer of completed spans, serializable as Chrome trace JSON.
class TraceCollector {
 public:
  /// Event cap; spans beyond it are counted in dropped() and discarded.
  static constexpr size_t kMaxEvents = 1u << 20;

  struct Event {
    const char* name;   // string literal supplied by the span
    uint64_t start_ns;  // MonotonicNowNs() at span entry
    uint64_t dur_ns;
    uint32_t tid;  // small per-thread id, stable within the process
  };

  static TraceCollector& Global();

  void Append(const char* name, uint64_t start_ns, uint64_t dur_ns);

  size_t size() const;
  uint64_t dropped() const;
  void Clear();

  /// Serializes the buffered events as a Chrome trace_event JSON document.
  void WriteChromeTrace(std::ostream& os) const;

  /// File wrapper; returns false (with `*error` filled) when the file
  /// cannot be written.
  bool WriteChromeTraceFile(const std::string& path,
                            std::string* error) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  uint64_t dropped_ = 0;
};

/// No-op stand-in declared by VSJ_TRACE_SPAN in VSJ_METRICS_OFF builds so
/// call sites using span.End() compile either way.
struct NullSpan {
  void End() {}
};

/// RAII scoped timer: records scope duration (ns) into the registry
/// histogram `name` and/or the trace collector. `name` must outlive the
/// process (use a string literal).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early (idempotent).
  void End();

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  bool armed_ = false;
};

}  // namespace vsj::obs

#endif  // VSJ_OBS_TRACE_H_
