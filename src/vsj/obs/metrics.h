// Metric primitives and the process-wide MetricRegistry.
//
// The observability layer (DESIGN.md "Observability") is built from three
// primitives, all safe for concurrent recording:
//
//   * Counter — monotone event count, sharded across cache-line-padded
//     atomic slots so concurrent writers from the thread pool never
//     contend on one line. Value() sums the shards.
//   * Gauge — a single signed level (queue depth, epoch). One relaxed
//     atomic; Set/Add.
//   * Histogram — HdrHistogram-style log-linear bucketing of uint64
//     values (latencies in nanoseconds, sizes in bytes). Buckets are
//     exact below 2^kSubBucketBits and within a relative width of
//     1/2^kSubBucketBits above it, so p50/p90/p99/p999 carry a bounded
//     relative error (~3.1% at the default 5 bits) at a fixed 1920-slot
//     footprint covering the full uint64 range — no overflow bucket is
//     ever needed, and negative inputs clamp to slot 0 with a separate
//     underflow count. Recording is one relaxed fetch_add; snapshots are
//     plain structs that merge associatively across thread-local or
//     per-run shards.
//
// The registry maps stable names ("cache.hits", "estimate.trial_ns") to
// primitives, created on first use and never destroyed (deque storage, so
// references stay valid for the process lifetime — instrumentation sites
// cache them in function-local statics, see obs.h). Snapshot() returns a
// name-sorted value copy suitable for tables, JSON and deltas.
//
// None of this machinery touches estimator state: metrics record *into*
// the registry and never feed back, which is why the bit-identity
// contract (tests/obs/metrics_equivalence_test.cc) survives
// instrumentation by construction.

#ifndef VSJ_OBS_METRICS_H_
#define VSJ_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vsj::obs {

/// True when metric recording is on. Off by default; flipped by
/// EnableMetrics() or the VSJ_METRICS environment variable (any value but
/// "0" / empty). One relaxed atomic load — the instrumentation macros
/// check it before touching any metric, so a disabled build's hot-path
/// cost is a predictable branch.
bool MetricsEnabled();

/// Turns metric recording on or off at runtime.
void EnableMetrics(bool enabled);

/// Nanoseconds since the first call (process-relative steady clock).
uint64_t MonotonicNowNs();

/// The shard a recording thread writes to; threads are assigned
/// round-robin on first use.
size_t CounterShardIndex();

/// Sharded monotone event counter.
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Add(uint64_t n) {
    shards_[CounterShardIndex()].value.fetch_add(n,
                                                 std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// A signed level (queue depth, live count, epoch).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Value-type copy of a histogram's state. Mergeable: Merge() is an
/// elementwise sum, hence associative and commutative across shards.
struct HistogramSnapshot {
  uint64_t count = 0;      // Σ slots (recomputed, so it matches them)
  uint64_t sum = 0;        // Σ recorded values
  uint64_t max = 0;        // largest recorded value
  uint64_t underflow = 0;  // negative RecordSigned inputs (clamped to 0)
  std::vector<uint64_t> slots;

  void Merge(const HistogramSnapshot& other);

  /// The upper bound of the bucket holding the p-th percentile recorded
  /// value (p in [0, 100]); 0 when empty. Never smaller than the true
  /// percentile, and at most one bucket width (relative 1/2^kSubBucketBits)
  /// above it.
  uint64_t ValueAtPercentile(double p) const;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Log-linear bucketed histogram over the full uint64 range.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr uint64_t kSubBucketCount = 1ull << kSubBucketBits;
  /// Slots 0..kSubBucketCount-1 are exact; each further octave adds
  /// kSubBucketCount slots of relative width 1/kSubBucketCount.
  static constexpr size_t kNumSlots =
      static_cast<size_t>(64 - kSubBucketBits + 1) * kSubBucketCount;

  /// The slot of `v`; exact below kSubBucketCount, log-linear above.
  static size_t SlotFor(uint64_t v) {
    if (v < kSubBucketCount) return static_cast<size_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBucketBits;
    return static_cast<size_t>(kSubBucketCount) +
           static_cast<size_t>(shift) * kSubBucketCount +
           static_cast<size_t>((v >> shift) - kSubBucketCount);
  }

  /// Smallest / largest value mapping to `slot`.
  static uint64_t SlotLowerBound(size_t slot);
  static uint64_t SlotUpperBound(size_t slot);

  void Record(uint64_t v) {
    slots_[SlotFor(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev && !max_.compare_exchange_weak(
                           prev, v, std::memory_order_relaxed)) {
    }
  }

  /// Negative values clamp to 0 and bump the underflow count.
  void RecordSigned(int64_t v) {
    if (v < 0) {
      underflow_.fetch_add(1, std::memory_order_relaxed);
      Record(0);
      return;
    }
    Record(static_cast<uint64_t>(v));
  }

  /// Consistent-enough copy under concurrent recording: slot loads are
  /// relaxed, and count is recomputed from the copied slots so percentile
  /// ranks always refer to the snapshot itself.
  HistogramSnapshot Snapshot() const;

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumSlots> slots_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> underflow_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One named metric's value in a RegistrySnapshot.
struct MetricSample {
  std::string name;
  MetricType type = MetricType::kCounter;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  HistogramSnapshot histogram;
};

/// Name-sorted value copy of every registered metric.
struct RegistrySnapshot {
  uint64_t taken_at_ns = 0;  // MonotonicNowNs() at snapshot time
  std::vector<MetricSample> samples;

  /// The sample registered under `name`, or nullptr.
  const MetricSample* Find(const std::string& name) const;
};

/// Process-wide name → metric table. Metrics are created on first use,
/// live forever (stable addresses) and may be recorded from any thread.
/// Asking for an existing name with a different type aborts — names are
/// a global contract.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  RegistrySnapshot Snapshot() const;

  /// Zeroes every metric's value, keeping registrations (tests, benches).
  void ResetValues();

  size_t size() const;

 private:
  struct Entry {
    MetricType type;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  mutable std::mutex mutex_;
  // Deques never relocate elements: handed-out references stay valid.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Entry> entries_;  // ordered → sorted snapshots
};

}  // namespace vsj::obs

#endif  // VSJ_OBS_METRICS_H_
