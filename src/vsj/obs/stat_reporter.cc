#include "vsj/obs/stat_reporter.h"

#include <chrono>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "vsj/util/table_printer.h"

namespace vsj::obs {

namespace {

/// True for histogram metrics holding nanosecond durations (the `_ns`
/// naming convention; see obs.h).
bool IsDurationMetric(const std::string& name) {
  return name.find("_ns") != std::string::npos;
}

std::string FormatDuration(uint64_t ns) {
  if (ns < 1000) return std::to_string(ns) + "ns";
  if (ns < 1000ull * 1000) {
    return TablePrinter::Fmt(static_cast<double>(ns) / 1e3, 1) + "us";
  }
  if (ns < 1000ull * 1000 * 1000) {
    return TablePrinter::Fmt(static_cast<double>(ns) / 1e6, 2) + "ms";
  }
  return TablePrinter::Fmt(static_cast<double>(ns) / 1e9, 2) + "s";
}

std::string FormatValue(const std::string& name, uint64_t v) {
  return IsDurationMetric(name) ? FormatDuration(v) : TablePrinter::Count(
                                                          static_cast<double>(v));
}

/// Events per second between two totals, "" when no baseline exists.
std::string FormatRate(uint64_t now_total, const MetricSample* prev_sample,
                       uint64_t prev_total, double dt_seconds) {
  if (dt_seconds <= 0.0) return "";
  const uint64_t before = prev_sample != nullptr ? prev_total : 0;
  if (now_total < before) return "";  // registry was reset between ticks
  const double rate = static_cast<double>(now_total - before) / dt_seconds;
  return TablePrinter::Count(rate) + "/s";
}

}  // namespace

void PrintMetricsTable(const RegistrySnapshot& snapshot,
                       const RegistrySnapshot* previous, std::ostream& os,
                       const std::string& title) {
  const double dt_seconds =
      previous != nullptr && snapshot.taken_at_ns > previous->taken_at_ns
          ? static_cast<double>(snapshot.taken_at_ns -
                                previous->taken_at_ns) /
                1e9
          : 0.0;

  TablePrinter table(title);
  table.SetHeader(
      {"metric", "value", "rate", "p50", "p90", "p99", "p999", "max"});
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  for (const MetricSample& sample : snapshot.samples) {
    const MetricSample* prev =
        previous != nullptr ? previous->Find(sample.name) : nullptr;
    switch (sample.type) {
      case MetricType::kCounter: {
        if (sample.counter_value == 0) continue;
        if (sample.name == "cache.hits") cache_hits = sample.counter_value;
        if (sample.name == "cache.misses") {
          cache_misses = sample.counter_value;
        }
        table.AddRow({sample.name,
                      TablePrinter::Count(
                          static_cast<double>(sample.counter_value)),
                      FormatRate(sample.counter_value, prev,
                                 prev != nullptr ? prev->counter_value : 0,
                                 dt_seconds)});
        break;
      }
      case MetricType::kGauge: {
        if (sample.gauge_value == 0) continue;
        table.AddRow({sample.name, std::to_string(sample.gauge_value)});
        break;
      }
      case MetricType::kHistogram: {
        const HistogramSnapshot& h = sample.histogram;
        if (h.count == 0) continue;
        table.AddRow(
            {sample.name,
             TablePrinter::Count(static_cast<double>(h.count)),
             FormatRate(h.count, prev,
                        prev != nullptr ? prev->histogram.count : 0,
                        dt_seconds),
             FormatValue(sample.name, h.ValueAtPercentile(50.0)),
             FormatValue(sample.name, h.ValueAtPercentile(90.0)),
             FormatValue(sample.name, h.ValueAtPercentile(99.0)),
             FormatValue(sample.name, h.ValueAtPercentile(99.9)),
             FormatValue(sample.name, h.max)});
        break;
      }
    }
  }
  table.Print(os);
  if (cache_hits + cache_misses > 0) {
    os << "cache hit rate: "
       << TablePrinter::Pct(static_cast<double>(cache_hits) /
                            static_cast<double>(cache_hits + cache_misses))
       << "\n";
  }
  os.flush();
}

void AppendMetricsJson(const RegistrySnapshot& snapshot, std::ostream& os) {
  std::ostringstream counters;
  std::ostringstream gauges;
  std::ostringstream histograms;
  bool first_counter = true;
  bool first_gauge = true;
  bool first_histogram = true;
  for (const MetricSample& sample : snapshot.samples) {
    switch (sample.type) {
      case MetricType::kCounter:
        counters << (first_counter ? "" : ",") << "\"" << sample.name
                 << "\":" << sample.counter_value;
        first_counter = false;
        break;
      case MetricType::kGauge:
        gauges << (first_gauge ? "" : ",") << "\"" << sample.name
               << "\":" << sample.gauge_value;
        first_gauge = false;
        break;
      case MetricType::kHistogram: {
        const HistogramSnapshot& h = sample.histogram;
        histograms << (first_histogram ? "" : ",") << "\"" << sample.name
                   << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
                   << ",\"max\":" << h.max << ",\"mean\":" << h.Mean()
                   << ",\"p50\":" << h.ValueAtPercentile(50.0)
                   << ",\"p90\":" << h.ValueAtPercentile(90.0)
                   << ",\"p99\":" << h.ValueAtPercentile(99.0)
                   << ",\"p999\":" << h.ValueAtPercentile(99.9) << "}";
        first_histogram = false;
        break;
      }
    }
  }
  os << "{\"t_ms\":" << snapshot.taken_at_ns / 1000000 << ",\"counters\":{"
     << counters.str() << "},\"gauges\":{" << gauges.str()
     << "},\"histograms\":{" << histograms.str() << "}}";
}

bool WriteMetricsJson(const RegistrySnapshot& snapshot,
                      const std::string& path, std::string* error) {
  std::ofstream os(path);
  if (!os) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  AppendMetricsJson(snapshot, os);
  os << "\n";
  os.flush();
  if (!os) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

StatReporter::StatReporter(StatReporterOptions options)
    : options_(std::move(options)) {
  if (options_.interval_ms < 1) options_.interval_ms = 1;
  thread_ = std::thread([this] { Loop(); });
}

StatReporter::~StatReporter() { Stop(); }

void StatReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
}

uint64_t StatReporter::ticks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ticks_;
}

void StatReporter::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    wake_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                   [&] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    Tick();
    lock.lock();
  }
  lock.unlock();
  Tick();  // final tick so short runs still report once
}

void StatReporter::Tick() {
  RegistrySnapshot snapshot = MetricRegistry::Global().Snapshot();
  if (options_.out != nullptr) {
    PrintMetricsTable(snapshot, have_previous_ ? &previous_ : nullptr,
                      *options_.out, "live metrics");
    *options_.out << "\n";
  }
  if (!options_.jsonl_path.empty()) {
    std::ofstream os(options_.jsonl_path, std::ios::app);
    if (os) {
      AppendMetricsJson(snapshot, os);
      os << "\n";
    }
  }
  previous_ = std::move(snapshot);
  have_previous_ = true;
  std::lock_guard<std::mutex> lock(mutex_);
  ++ticks_;
}

}  // namespace vsj::obs
