#include "vsj/obs/metrics.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "vsj/util/check.h"

namespace vsj::obs {

namespace {

bool MetricsEnabledFromEnv() {
  const char* env = std::getenv("VSJ_METRICS");
  return env != nullptr && *env != '\0' && std::string_view(env) != "0";
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{MetricsEnabledFromEnv()};
  return enabled;
}

}  // namespace

bool MetricsEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void EnableMetrics(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

uint64_t MonotonicNowNs() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

size_t CounterShardIndex() {
  static std::atomic<uint32_t> next_thread{0};
  thread_local const uint32_t shard =
      next_thread.fetch_add(1, std::memory_order_relaxed) %
      Counter::kShards;
  return shard;
}

uint64_t Histogram::SlotLowerBound(size_t slot) {
  if (slot < kSubBucketCount) return slot;
  const size_t shift = slot / kSubBucketCount - 1;
  const uint64_t sub = slot % kSubBucketCount;
  return (kSubBucketCount + sub) << shift;
}

uint64_t Histogram::SlotUpperBound(size_t slot) {
  if (slot < kSubBucketCount) return slot;
  const size_t shift = slot / kSubBucketCount - 1;
  return SlotLowerBound(slot) + ((1ull << shift) - 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.slots.resize(kNumSlots);
  for (size_t s = 0; s < kNumSlots; ++s) {
    const uint64_t c = slots_[s].load(std::memory_order_relaxed);
    snapshot.slots[s] = c;
    snapshot.count += c;
  }
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  snapshot.underflow = underflow_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (auto& slot : slots_) slot.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  underflow_.store(0, std::memory_order_relaxed);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (slots.empty()) slots.resize(Histogram::kNumSlots);
  VSJ_CHECK(other.slots.empty() || other.slots.size() == slots.size());
  for (size_t s = 0; s < other.slots.size(); ++s) slots[s] += other.slots[s];
  count += other.count;
  sum += other.sum;
  underflow += other.underflow;
  if (other.max > max) max = other.max;
}

uint64_t HistogramSnapshot::ValueAtPercentile(double p) const {
  if (count == 0) return 0;
  const double clamped = p < 0.0 ? 0.0 : (p > 100.0 ? 100.0 : p);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (size_t s = 0; s < slots.size(); ++s) {
    cumulative += slots[s];
    if (cumulative >= rank) return Histogram::SlotUpperBound(s);
  }
  return Histogram::SlotUpperBound(slots.size() - 1);
}

const MetricSample* RegistrySnapshot::Find(const std::string& name) const {
  for (const MetricSample& sample : samples) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry registry;
  return registry;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    counters_.emplace_back();
    Entry entry;
    entry.type = MetricType::kCounter;
    entry.counter = &counters_.back();
    it = entries_.emplace(name, entry).first;
  }
  VSJ_CHECK_MSG(it->second.type == MetricType::kCounter,
                "metric '%s' is not a counter", name.c_str());
  return *it->second.counter;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    gauges_.emplace_back();
    Entry entry;
    entry.type = MetricType::kGauge;
    entry.gauge = &gauges_.back();
    it = entries_.emplace(name, entry).first;
  }
  VSJ_CHECK_MSG(it->second.type == MetricType::kGauge,
                "metric '%s' is not a gauge", name.c_str());
  return *it->second.gauge;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    histograms_.emplace_back();
    Entry entry;
    entry.type = MetricType::kHistogram;
    entry.histogram = &histograms_.back();
    it = entries_.emplace(name, entry).first;
  }
  VSJ_CHECK_MSG(it->second.type == MetricType::kHistogram,
                "metric '%s' is not a histogram", name.c_str());
  return *it->second.histogram;
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot snapshot;
  snapshot.taken_at_ns = MonotonicNowNs();
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.samples.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSample sample;
    sample.name = name;
    sample.type = entry.type;
    switch (entry.type) {
      case MetricType::kCounter:
        sample.counter_value = entry.counter->Value();
        break;
      case MetricType::kGauge:
        sample.gauge_value = entry.gauge->Value();
        break;
      case MetricType::kHistogram:
        sample.histogram = entry.histogram->Snapshot();
        break;
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Counter& c : counters_) c.Reset();
  for (Gauge& g : gauges_) g.Reset();
  for (Histogram& h : histograms_) h.Reset();
}

size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace vsj::obs
