// Exact cosine similarity self-join with candidate pruning, in the style of
// Bayardo, Ma & Srikant's All-Pairs (WWW 2007) — the join-processing
// algorithm whose query-optimization needs motivate the paper.
//
// The algorithm streams vectors through a dynamically grown inverted index.
// For the probe vector x it scans features in decreasing-document-frequency
// order while maintaining `remscore`, an upper bound on the similarity
// contribution of the not-yet-scanned features; new candidates stop being
// admitted once remscore < τ (they could never reach the threshold through
// the remaining features alone). Admitted candidates are verified with an
// exact dot product. The result is exact.

#ifndef VSJ_JOIN_ALL_PAIRS_JOIN_H_
#define VSJ_JOIN_ALL_PAIRS_JOIN_H_

#include <cstdint>
#include <vector>

#include "vsj/join/brute_force_join.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Statistics of one All-Pairs run (for cost reporting and tests).
struct AllPairsStats {
  uint64_t candidates_admitted = 0;
  uint64_t verifications = 0;
  uint64_t result_pairs = 0;
};

/// Exact cosine self-join: all unordered pairs with cos(u, v) ≥ tau.
/// `tau` must be positive (prefix pruning is meaningless at τ ≤ 0).
/// Pairs are emitted with first < second; order is unspecified.
std::vector<JoinPair> AllPairsJoin(DatasetView dataset, double tau,
                                   AllPairsStats* stats = nullptr);

/// Size-only variant.
uint64_t AllPairsJoinSize(DatasetView dataset, double tau,
                          AllPairsStats* stats = nullptr);

}  // namespace vsj

#endif  // VSJ_JOIN_ALL_PAIRS_JOIN_H_
