// Inverted index: postings list per dimension.
//
// Shared substrate of the exact-join algorithms: the All-Pairs join and the
// exact pair-similarity histogram both enumerate candidate pairs through
// postings of shared dimensions.

#ifndef VSJ_JOIN_INVERTED_INDEX_H_
#define VSJ_JOIN_INVERTED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vsj/vector/dataset_view.h"

namespace vsj {

/// One posting: a vector containing the dimension, with its weight.
struct Posting {
  VectorId id;
  float weight;
};

/// Immutable inverted index over a dataset.
class InvertedIndex {
 public:
  explicit InvertedIndex(DatasetView dataset);

  size_t num_dimensions() const { return postings_.size(); }

  /// Postings of dimension `dim` in increasing vector-id order; empty for
  /// out-of-range dimensions.
  const std::vector<Posting>& postings(DimId dim) const {
    static const std::vector<Posting> kEmpty;
    return dim < postings_.size() ? postings_[dim] : kEmpty;
  }

  /// Document frequency of `dim`.
  size_t DocFrequency(DimId dim) const { return postings(dim).size(); }

  /// Σ_d C(df_d, 2): the number of accumulate operations an index-based
  /// exact join performs; useful for cost estimation and tests.
  uint64_t NumCandidateOperations() const;

 private:
  std::vector<std::vector<Posting>> postings_;
};

}  // namespace vsj

#endif  // VSJ_JOIN_INVERTED_INDEX_H_
