// Exact pair-similarity histogram: the ground-truth oracle.
//
// One pass over an inverted index computes, for *every* unordered pair with
// at least one shared dimension, its exact similarity, and folds it into
//   * a fixed-bin histogram of the similarity distribution, and
//   * exact counters |{pairs : sim ≥ τ}| for a caller-supplied threshold set.
// Pairs sharing no dimension have similarity 0 under both cosine and Jaccard
// and are accounted for implicitly. This yields the true join size J(τ) for
// every experiment threshold in a single O(Σ_d C(df_d, 2)) computation,
// parallelized over probe vectors.

#ifndef VSJ_JOIN_SIMILARITY_HISTOGRAM_H_
#define VSJ_JOIN_SIMILARITY_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vsj/vector/similarity.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Exact distribution of pairwise similarities of a dataset.
class SimilarityHistogram {
 public:
  /// Computes the histogram. `exact_thresholds` are the τ values for which
  /// exact "≥ τ" counts are kept (values must lie in (0, 1]); `num_threads`
  /// 0 means hardware concurrency.
  SimilarityHistogram(DatasetView dataset, SimilarityMeasure measure,
                      std::vector<double> exact_thresholds,
                      size_t num_bins = 1000, unsigned num_threads = 0);

  /// Exact join size J(τ) for τ in the exact threshold set; τ ≤ 0 returns M.
  /// Aborts if τ > 0 was not registered (use BinnedCountAtLeast instead).
  uint64_t CountAtLeast(double tau) const;

  /// Bin-resolution approximation of J(τ) for arbitrary τ: counts all pairs
  /// in bins whose *lower edge* is ≥ τ (bin width 1/num_bins).
  uint64_t BinnedCountAtLeast(double tau) const;

  /// Number of unordered pairs with at least one shared dimension.
  uint64_t NumPositivePairs() const { return num_positive_pairs_; }

  /// Total number of unordered pairs M = C(n, 2).
  uint64_t NumTotalPairs() const { return num_total_pairs_; }

  /// Histogram bin counts; bin b covers [b/num_bins, (b+1)/num_bins), with
  /// similarity 1.0 folded into the last bin. Zero-similarity pairs that
  /// share a dimension land in bin 0; pairs sharing none are not included.
  const std::vector<uint64_t>& bins() const { return bins_; }

  const std::vector<double>& exact_thresholds() const {
    return exact_thresholds_;
  }

 private:
  std::vector<double> exact_thresholds_;          // sorted ascending
  std::vector<uint64_t> exact_counts_;            // count >= threshold[i]
  std::vector<uint64_t> bins_;
  uint64_t num_positive_pairs_ = 0;
  uint64_t num_total_pairs_ = 0;
};

}  // namespace vsj

#endif  // VSJ_JOIN_SIMILARITY_HISTOGRAM_H_
