#include "vsj/join/similarity_histogram.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "vsj/join/inverted_index.h"
#include "vsj/util/check.h"

namespace vsj {

namespace {

/// Per-thread accumulation state.
struct Worker {
  std::vector<double> acc;          // shared-weight accumulator per partner
  std::vector<VectorId> touched;    // partners with non-zero accumulator
  std::vector<uint64_t> bins;
  std::vector<uint64_t> exact_counts;
  uint64_t positive_pairs = 0;
};

}  // namespace

SimilarityHistogram::SimilarityHistogram(DatasetView dataset,
                                         SimilarityMeasure measure,
                                         std::vector<double> exact_thresholds,
                                         size_t num_bins,
                                         unsigned num_threads)
    : exact_thresholds_(std::move(exact_thresholds)) {
  VSJ_CHECK(num_bins > 0);
  std::sort(exact_thresholds_.begin(), exact_thresholds_.end());
  for (double tau : exact_thresholds_) {
    VSJ_CHECK_MSG(tau > 0.0 && tau <= 1.0,
                  "exact thresholds must lie in (0, 1], got %f", tau);
  }
  exact_counts_.assign(exact_thresholds_.size(), 0);
  bins_.assign(num_bins, 0);
  const uint64_t n = dataset.size();
  num_total_pairs_ = n * (n - 1) / 2;
  if (n < 2) return;

  const InvertedIndex index(dataset);
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min<unsigned>(num_threads, static_cast<unsigned>(n));

  std::vector<Worker> workers(num_threads);
  std::atomic<VectorId> next_probe{1};  // probe 0 has no smaller partners

  auto run = [&](Worker& w) {
    w.acc.assign(n, 0.0);
    w.bins.assign(bins_.size(), 0);
    w.exact_counts.assign(exact_thresholds_.size(), 0);
    const double bin_scale = static_cast<double>(bins_.size());

    while (true) {
      const VectorId i = next_probe.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      const VectorRef u = dataset[i];

      // Accumulate, for every partner j < i sharing a dimension with u,
      // the cosine numerator (dot product) or the Jaccard numerator
      // (Σ min weights) in one pass over u's postings.
      for (const Feature f : u) {
        const auto& postings = index.postings(f.dim);
        for (const Posting& p : postings) {
          if (p.id >= i) break;  // postings are in increasing id order
          double contribution;
          if (measure == SimilarityMeasure::kCosine) {
            contribution = static_cast<double>(f.weight) * p.weight;
          } else {
            contribution = std::min<double>(f.weight, p.weight);
          }
          if (contribution <= 0.0) continue;  // avoid re-pushing on underflow
          if (w.acc[p.id] == 0.0) w.touched.push_back(p.id);
          w.acc[p.id] += contribution;
        }
      }

      for (VectorId j : w.touched) {
        const VectorRef v = dataset[j];
        double sim;
        if (measure == SimilarityMeasure::kCosine) {
          const double denom = u.norm() * v.norm();
          sim = denom > 0.0 ? std::min(w.acc[j] / denom, 1.0) : 0.0;
        } else {
          const double min_sum = w.acc[j];
          const double union_sum = u.l1_norm() + v.l1_norm() - min_sum;
          sim = union_sum > 0.0 ? std::min(min_sum / union_sum, 1.0) : 0.0;
        }
        sim = SnapUnitSimilarity(sim);
        w.acc[j] = 0.0;
        ++w.positive_pairs;
        auto bin = static_cast<size_t>(sim * bin_scale);
        if (bin >= w.bins.size()) bin = w.bins.size() - 1;
        ++w.bins[bin];
        // exact_thresholds_ is sorted: count how many thresholds sim meets.
        auto it = std::upper_bound(exact_thresholds_.begin(),
                                   exact_thresholds_.end(), sim);
        for (size_t t = 0; t < static_cast<size_t>(
                                   it - exact_thresholds_.begin());
             ++t) {
          ++w.exact_counts[t];
        }
      }
      w.touched.clear();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (Worker& w : workers) threads.emplace_back(run, std::ref(w));
  for (std::thread& t : threads) t.join();

  for (const Worker& w : workers) {
    num_positive_pairs_ += w.positive_pairs;
    for (size_t b = 0; b < bins_.size(); ++b) bins_[b] += w.bins[b];
    for (size_t t = 0; t < exact_counts_.size(); ++t) {
      exact_counts_[t] += w.exact_counts[t];
    }
  }
}

uint64_t SimilarityHistogram::CountAtLeast(double tau) const {
  if (tau <= 0.0) return num_total_pairs_;
  auto it = std::lower_bound(exact_thresholds_.begin(),
                             exact_thresholds_.end(), tau);
  VSJ_CHECK_MSG(it != exact_thresholds_.end() && *it == tau,
                "threshold %f was not registered for exact counting", tau);
  return exact_counts_[it - exact_thresholds_.begin()];
}

uint64_t SimilarityHistogram::BinnedCountAtLeast(double tau) const {
  if (tau <= 0.0) return num_total_pairs_;
  const auto first_bin = static_cast<size_t>(
      std::ceil(tau * static_cast<double>(bins_.size())));
  uint64_t count = 0;
  for (size_t b = first_bin; b < bins_.size(); ++b) count += bins_[b];
  return count;
}

}  // namespace vsj
