#include "vsj/join/brute_force_join.h"

#include "vsj/vector/pair_eval.h"

namespace vsj {

uint64_t BruteForceJoinSize(DatasetView dataset,
                            SimilarityMeasure measure, double tau) {
  // The O(n²) triangle runs through the batched pair evaluator: same
  // per-pair arithmetic as the scalar Similarity loop (the acceptance suite
  // compares estimators against this count, so it must stay exact), but
  // with the refs materialized once per batch and the intersection kernel
  // SIMD-dispatched.
  uint64_t count = 0;
  const size_t n = dataset.size();
  VectorId firsts[kPairEvalBatch];
  VectorId seconds[kPairEvalBatch];
  size_t fill = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      firsts[fill] = static_cast<VectorId>(i);
      seconds[fill] = static_cast<VectorId>(j);
      if (++fill == kPairEvalBatch) {
        count += EvaluatePairBatch(measure, dataset, firsts, seconds, fill,
                                   tau, kPairPrefetchDistance, nullptr);
        fill = 0;
      }
    }
  }
  count += EvaluatePairBatch(measure, dataset, firsts, seconds, fill, tau,
                             kPairPrefetchDistance, nullptr);
  return count;
}

std::vector<JoinPair> BruteForceJoinPairs(DatasetView dataset,
                                          SimilarityMeasure measure,
                                          double tau) {
  // Needs the similarity *values*, not just the count, so this stays a
  // per-pair loop — the Dot underneath is the same dispatched kernel.
  std::vector<JoinPair> pairs;
  const size_t n = dataset.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double sim = Similarity(measure, dataset[i], dataset[j]);
      if (sim >= tau) {
        pairs.push_back(JoinPair{static_cast<VectorId>(i),
                                 static_cast<VectorId>(j), sim});
      }
    }
  }
  return pairs;
}

uint64_t BruteForceGeneralJoinSize(DatasetView left,
                                   DatasetView right,
                                   SimilarityMeasure measure, double tau) {
  // Two distinct views, so the single-dataset batch entry point does not
  // apply; the per-pair Similarity still runs the dispatched kernel.
  uint64_t count = 0;
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      if (Similarity(measure, left[i], right[j]) >= tau) ++count;
    }
  }
  return count;
}

}  // namespace vsj
