#include "vsj/join/brute_force_join.h"

namespace vsj {

uint64_t BruteForceJoinSize(DatasetView dataset,
                            SimilarityMeasure measure, double tau) {
  uint64_t count = 0;
  const size_t n = dataset.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (Similarity(measure, dataset[i], dataset[j]) >= tau) ++count;
    }
  }
  return count;
}

std::vector<JoinPair> BruteForceJoinPairs(DatasetView dataset,
                                          SimilarityMeasure measure,
                                          double tau) {
  std::vector<JoinPair> pairs;
  const size_t n = dataset.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double sim = Similarity(measure, dataset[i], dataset[j]);
      if (sim >= tau) {
        pairs.push_back(JoinPair{static_cast<VectorId>(i),
                                 static_cast<VectorId>(j), sim});
      }
    }
  }
  return pairs;
}

uint64_t BruteForceGeneralJoinSize(DatasetView left,
                                   DatasetView right,
                                   SimilarityMeasure measure, double tau) {
  uint64_t count = 0;
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      if (Similarity(measure, left[i], right[j]) >= tau) ++count;
    }
  }
  return count;
}

}  // namespace vsj
