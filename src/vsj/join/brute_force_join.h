// O(n²) reference join. The correctness anchor for every other component:
// exact joins, histograms and estimators are all tested against it.

#ifndef VSJ_JOIN_BRUTE_FORCE_JOIN_H_
#define VSJ_JOIN_BRUTE_FORCE_JOIN_H_

#include <cstdint>
#include <vector>

#include "vsj/vector/similarity.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// A joined pair with its similarity.
struct JoinPair {
  VectorId first;
  VectorId second;
  double similarity;
};

/// Self-join size |{(u,v) : sim(u,v) ≥ τ, u ≠ v}| over unordered pairs.
uint64_t BruteForceJoinSize(DatasetView dataset,
                            SimilarityMeasure measure, double tau);

/// Self-join result pairs (first < second), in lexicographic order.
std::vector<JoinPair> BruteForceJoinPairs(DatasetView dataset,
                                          SimilarityMeasure measure,
                                          double tau);

/// General join size between two collections (Definition 5, Appendix B.2.2).
uint64_t BruteForceGeneralJoinSize(DatasetView left,
                                   DatasetView right,
                                   SimilarityMeasure measure, double tau);

}  // namespace vsj

#endif  // VSJ_JOIN_BRUTE_FORCE_JOIN_H_
