#include "vsj/join/all_pairs_join.h"

#include <algorithm>
#include <cmath>

#include "vsj/join/inverted_index.h"
#include "vsj/util/check.h"
#include "vsj/vector/similarity.h"

namespace vsj {

namespace {

/// A vector normalized to unit length with features reordered by decreasing
/// global document frequency (most frequent first), as in All-Pairs.
struct NormalizedVector {
  std::vector<Feature> features;  // weights divided by the L2 norm
};

struct Candidate {
  VectorId id;
  double partial;  // accumulated dot product from indexed features
};

}  // namespace

std::vector<JoinPair> AllPairsJoin(DatasetView dataset, double tau,
                                   AllPairsStats* stats) {
  VSJ_CHECK_MSG(tau > 0.0, "All-Pairs requires a positive threshold");
  const size_t n = dataset.size();
  std::vector<JoinPair> result;
  if (n < 2) return result;

  // Global document frequencies -> feature order (decreasing df).
  size_t num_dims = 0;
  for (VectorRef v : dataset) {
    num_dims = std::max<size_t>(num_dims, v.dim_bound());
  }
  std::vector<uint32_t> df(num_dims, 0);
  for (VectorRef v : dataset) {
    for (const Feature f : v) ++df[f.dim];
  }

  std::vector<NormalizedVector> docs(n);
  for (VectorId id = 0; id < n; ++id) {
    const VectorRef v = dataset[id];
    NormalizedVector& doc = docs[id];
    doc.features.reserve(v.size());
    const double norm = v.norm();
    if (norm == 0.0) continue;
    for (const Feature f : v) {
      doc.features.push_back(
          Feature{f.dim, static_cast<float>(f.weight / norm)});
    }
    std::sort(doc.features.begin(), doc.features.end(),
              [&](const Feature& a, const Feature& b) {
                if (df[a.dim] != df[b.dim]) return df[a.dim] > df[b.dim];
                return a.dim < b.dim;
              });
  }

  // Dynamic inverted index over already-processed vectors.
  std::vector<std::vector<Posting>> index(num_dims);
  // Dense accumulator + touched list for candidate scores.
  std::vector<double> score(n, 0.0);
  std::vector<char> admitted(n, 0);
  std::vector<VectorId> touched;

  AllPairsStats local_stats;
  for (VectorId x = 0; x < n; ++x) {
    const auto& xf = docs[x].features;
    if (xf.empty()) continue;

    // remscore: upper bound on the dot-product mass of unscanned features.
    // cos(x, y) = Σ x_i y_i with both unit vectors, so each term is at most
    // x_i (since y_i ≤ 1). Scanning rare features first makes remscore drop
    // fastest for the features where new candidates are cheapest to admit.
    double remscore = 0.0;
    for (const Feature& f : xf) remscore += f.weight;

    // Normalized weights are single-precision; keep a rounding margin so
    // pruning and acceptance decisions at the exact threshold match the
    // canonical double-precision CosineSimilarity.
    constexpr double kFloatMargin = 1e-5;
    touched.clear();
    // Scan in reverse order: least-frequent features first.
    for (auto it = xf.rbegin(); it != xf.rend(); ++it) {
      const bool admit_new = remscore >= tau - kFloatMargin;
      for (const Posting& p : index[it->dim]) {
        if (!admitted[p.id]) {
          if (!admit_new) continue;
          admitted[p.id] = 1;
          touched.push_back(p.id);
          ++local_stats.candidates_admitted;
        }
        score[p.id] += static_cast<double>(it->weight) * p.weight;
      }
      remscore -= it->weight;
    }

    for (VectorId y : touched) {
      ++local_stats.verifications;
      // score[y] is the cosine up to float rounding of the normalized
      // postings: every feature of x was scanned and the index holds all
      // features of y. Candidates inside the rounding band of τ are
      // re-verified with the canonical double-precision similarity.
      double sim = SnapUnitSimilarity(std::min(score[y], 1.0));
      if (std::fabs(sim - tau) < kFloatMargin) {
        sim = CosineSimilarity(dataset[x], dataset[y]);
      }
      if (sim >= tau) {
        result.push_back(JoinPair{std::min(x, y), std::max(x, y), sim});
        ++local_stats.result_pairs;
      }
      score[y] = 0.0;
      admitted[y] = 0;
    }

    for (const Feature& f : xf) {
      index[f.dim].push_back(Posting{x, f.weight});
    }
  }

  if (stats != nullptr) *stats = local_stats;
  return result;
}

uint64_t AllPairsJoinSize(DatasetView dataset, double tau,
                          AllPairsStats* stats) {
  return AllPairsJoin(dataset, tau, stats).size();
}

}  // namespace vsj
