#include "vsj/join/inverted_index.h"

namespace vsj {

InvertedIndex::InvertedIndex(DatasetView dataset) {
  size_t num_dims = 0;
  for (VectorRef v : dataset) {
    num_dims = std::max<size_t>(num_dims, v.dim_bound());
  }
  postings_.resize(num_dims);
  for (VectorId id = 0; id < dataset.size(); ++id) {
    for (const Feature f : dataset[id]) {
      postings_[f.dim].push_back(Posting{id, f.weight});
    }
  }
}

uint64_t InvertedIndex::NumCandidateOperations() const {
  uint64_t total = 0;
  for (const auto& list : postings_) {
    const uint64_t df = list.size();
    total += df * (df - 1) / 2;
  }
  return total;
}

}  // namespace vsj
