// Workload presets mirroring the paper's three corpora (Appendix C.1),
// parameterized by scale n.
//
//   DBLP:   794,016 binary vectors, ~56k dims, avg 14 features (3..219)
//   NYT:    149,649 TF-IDF vectors, ~100k dims, avg 232 features
//   PUBMED: 400,151 TF-IDF vectors, ~140k dims
//
// Vocabulary size follows a Heaps-law scaling V(n) = V_paper · (n/n_paper)^0.7
// so that down-scaled corpora keep a comparable token/type balance.

#ifndef VSJ_GEN_WORKLOADS_H_
#define VSJ_GEN_WORKLOADS_H_

#include <cstddef>

#include "vsj/gen/corpus_generator.h"

namespace vsj {

/// DBLP-like: binary bag-of-words over titles+authors.
CorpusConfig DblpLikeConfig(size_t num_vectors, uint64_t seed = 1);

/// NYT-like: TF-IDF news articles (long documents).
CorpusConfig NytLikeConfig(size_t num_vectors, uint64_t seed = 2);

/// PUBMED-like: TF-IDF abstracts; the paper runs this workload with k = 5.
CorpusConfig PubmedLikeConfig(size_t num_vectors, uint64_t seed = 3);

}  // namespace vsj

#endif  // VSJ_GEN_WORKLOADS_H_
