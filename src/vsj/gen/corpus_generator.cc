#include "vsj/gen/corpus_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "vsj/gen/zipf.h"
#include "vsj/util/check.h"
#include "vsj/util/rng.h"

namespace vsj {

namespace {

/// Draws a document length from the configured lognormal.
size_t DrawLength(const CorpusConfig& config, Rng& rng) {
  const double sigma = config.length_sigma;
  const double mu = std::log(config.mean_length) - sigma * sigma / 2.0;
  const double raw = std::exp(mu + sigma * rng.NextGaussian());
  auto len = static_cast<size_t>(std::lround(raw));
  return std::clamp(len, config.min_length, config.max_length);
}

/// Samples `count` distinct word ids from the Zipf background.
std::vector<DimId> DrawDistinctWords(const ZipfSampler& words, size_t count,
                                     Rng& rng) {
  std::unordered_set<DimId> seen;
  std::vector<DimId> out;
  out.reserve(count);
  // Rejection: with vocab >> doc length the expected number of retries per
  // word is tiny except for the few most popular words.
  size_t attempts = 0;
  const size_t max_attempts = count * 64 + 256;
  while (out.size() < count && attempts < max_attempts) {
    ++attempts;
    DimId word = words.Sample(rng);
    if (seen.insert(word).second) out.push_back(word);
  }
  // Pathological configs (count close to vocab size): fill sequentially.
  DimId next = 0;
  while (out.size() < count) {
    if (seen.insert(next).second) out.push_back(next);
    ++next;
  }
  return out;
}

/// tf·idf-style weight for a word, with multiplicative lognormal jitter.
float TfIdfWeight(const ZipfSampler& words, DimId word, Rng& rng) {
  // idf from the generating distribution itself: rare words weigh more.
  const double idf = std::log(1.0 + 1.0 / words.Probability(word));
  const double tf = 1.0 + rng.Below(3);  // term frequency 1..3
  const double jitter = std::exp(0.2 * rng.NextGaussian());
  return static_cast<float>(tf * idf * jitter);
}

/// Builds the feature list for a fresh (base) document.
std::vector<Feature> MakeBaseDoc(const CorpusConfig& config,
                                 const ZipfSampler& words, Rng& rng) {
  const size_t len = DrawLength(config, rng);
  std::vector<DimId> dims = DrawDistinctWords(words, len, rng);
  std::vector<Feature> features;
  features.reserve(dims.size());
  for (DimId d : dims) {
    const float w = config.weights == WeightScheme::kBinary
                        ? 1.0f
                        : TfIdfWeight(words, d, rng);
    features.push_back(Feature{d, w});
  }
  return features;
}

/// Perturbs a base document into a near-duplicate copy.
std::vector<Feature> Mutate(const CorpusConfig& config,
                            const ZipfSampler& words,
                            const std::vector<Feature>& base, Rng& rng) {
  if (rng.NextBool(config.exact_copy_fraction)) return base;
  const double rate =
      config.min_mutation +
      rng.NextDouble() * (config.max_mutation - config.min_mutation);
  std::vector<Feature> features;
  features.reserve(base.size() + 4);
  std::unordered_set<DimId> present;
  for (const Feature& f : base) {
    if (rng.NextBool(rate)) continue;  // drop
    Feature copy = f;
    if (config.weights == WeightScheme::kTfIdf && rng.NextBool(rate)) {
      copy.weight *= static_cast<float>(std::exp(0.15 * rng.NextGaussian()));
    }
    features.push_back(copy);
    present.insert(copy.dim);
  }
  // Add ~rate·len fresh words.
  const auto additions = static_cast<size_t>(
      std::lround(rate * static_cast<double>(base.size())));
  for (size_t a = 0; a < additions; ++a) {
    DimId word = words.Sample(rng);
    if (!present.insert(word).second) continue;
    const float w = config.weights == WeightScheme::kBinary
                        ? 1.0f
                        : TfIdfWeight(words, word, rng);
    features.push_back(Feature{word, w});
  }
  if (features.empty()) features = base;  // never emit an empty document
  return features;
}

}  // namespace

VectorDataset GenerateCorpus(const CorpusConfig& config) {
  VSJ_CHECK(config.num_vectors > 0);
  VSJ_CHECK(config.vocab_size >= config.max_length);
  VSJ_CHECK(config.min_length > 0 && config.min_length <= config.max_length);
  VSJ_CHECK(config.min_mutation >= 0.0 &&
            config.min_mutation <= config.max_mutation);
  VSJ_CHECK(config.cluster_fraction >= 0.0 && config.cluster_fraction <= 1.0);
  VSJ_CHECK(config.exact_copy_fraction >= 0.0 &&
            config.exact_copy_fraction <= 1.0);
  VSJ_CHECK(config.mean_cluster_size >= 2.0);

  Rng rng(config.seed);
  ZipfSampler words(config.vocab_size, config.zipf_exponent);
  VectorDataset dataset(config.name);

  // A cluster of size c contributes c documents, of which c-1 are copies;
  // to make the *document* fraction in clusters ≈ cluster_fraction, start a
  // cluster with probability cluster_fraction / mean_cluster_size per
  // emitted base document.
  const double cluster_start_prob =
      config.cluster_fraction / config.mean_cluster_size;
  // Geometric offset: size = 2 + Geom(p) has mean 2 + (1-p)/p.
  const double extra = std::max(0.0, config.mean_cluster_size - 2.0);
  const double geom_p = 1.0 / (1.0 + extra);

  while (dataset.size() < config.num_vectors) {
    std::vector<Feature> base = MakeBaseDoc(config, words, rng);
    dataset.Add(SparseVector(base));
    if (dataset.size() >= config.num_vectors) break;
    if (!rng.NextBool(cluster_start_prob)) continue;

    size_t cluster_size = 2;
    while (!rng.NextBool(geom_p)) ++cluster_size;
    for (size_t c = 1; c < cluster_size; ++c) {
      if (dataset.size() >= config.num_vectors) break;
      dataset.Add(SparseVector(Mutate(config, words, base, rng)));
    }
  }
  return dataset;
}

}  // namespace vsj
