// Bounded Zipfian sampler over word ids {0, ..., V-1}.
//
// Word frequencies in real corpora (DBLP titles, NYT articles, PubMed
// abstracts) are Zipf-distributed; the corpus generators use this sampler as
// the background word source. O(V) construction, O(1) sampling via the alias
// method.

#ifndef VSJ_GEN_ZIPF_H_
#define VSJ_GEN_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vsj/util/alias_table.h"
#include "vsj/util/rng.h"

namespace vsj {

/// P(word = i) ∝ 1 / (i + 1)^exponent for i in [0, num_items).
class ZipfSampler {
 public:
  ZipfSampler(size_t num_items, double exponent);

  size_t num_items() const { return table_.size(); }
  double exponent() const { return exponent_; }

  /// Draws one word id.
  uint32_t Sample(Rng& rng) const {
    return static_cast<uint32_t>(table_.Sample(rng));
  }

  /// Normalized probability of word `i`.
  double Probability(size_t i) const { return table_.Probability(i); }

 private:
  double exponent_;
  AliasTable table_;
};

}  // namespace vsj

#endif  // VSJ_GEN_ZIPF_H_
