// Synthetic document-corpus generator with planted near-duplicate clusters.
//
// Stands in for the paper's DBLP / NYTimes / PubMed corpora (DESIGN.md §3.1).
// Two ingredients shape the pair-similarity distribution, which is all the
// estimation problem sees:
//
//  1. A Zipfian background: every document draws its words from a bounded
//     Zipf distribution, so random pairs share popular words and populate the
//     low-similarity mass (selectivity ~30% at τ = 0.1 in DBLP).
//  2. Planted near-duplicate clusters: a configurable fraction of documents
//     are perturbed copies of a cluster base (features dropped / added /
//     reweighted at a per-copy mutation rate drawn from a range), producing
//     the small-but-nonzero high-similarity tail (J = 42K at τ = 0.9 out of
//     3.2e11 DBLP pairs) that makes high-threshold estimation hard.

#ifndef VSJ_GEN_CORPUS_GENERATOR_H_
#define VSJ_GEN_CORPUS_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "vsj/vector/vector_dataset.h"

namespace vsj {

/// Weighting scheme of generated vectors.
enum class WeightScheme {
  kBinary,  // word-presence vectors (DBLP-like)
  kTfIdf,   // tf·idf weights with lognormal jitter (NYT/PUBMED-like)
};

/// Knobs of the generator. Defaults produce a small DBLP-flavoured corpus.
struct CorpusConfig {
  std::string name = "synthetic";
  size_t num_vectors = 10000;
  size_t vocab_size = 5000;
  /// Zipf exponent of word popularity (≈1 for natural language).
  double zipf_exponent = 0.9;
  /// Mean number of distinct words per document (lognormal lengths).
  double mean_length = 14.0;
  /// Sigma of the lognormal length distribution.
  double length_sigma = 0.45;
  size_t min_length = 3;
  size_t max_length = 250;
  WeightScheme weights = WeightScheme::kBinary;
  /// Fraction of documents that belong to a near-duplicate cluster.
  double cluster_fraction = 0.02;
  /// Mean size of a near-duplicate cluster (geometric, ≥ 2).
  double mean_cluster_size = 2.5;
  /// Per-copy mutation rate is drawn uniformly from this range; at rate r a
  /// copy drops each base feature w.p. r and adds ~r·len fresh words.
  double min_mutation = 0.02;
  double max_mutation = 0.35;
  /// Fraction of cluster copies that are *exact* duplicates of the base
  /// (similarity 1). Real corpora of titles/articles contain many exact
  /// duplicates; they dominate P(H|T) at τ near 1 since identical vectors
  /// always share an LSH bucket.
  double exact_copy_fraction = 0.3;
  uint64_t seed = 1;
};

/// Generates a corpus according to `config`. Deterministic in config.seed.
VectorDataset GenerateCorpus(const CorpusConfig& config);

}  // namespace vsj

#endif  // VSJ_GEN_CORPUS_GENERATOR_H_
