#include "vsj/gen/workloads.h"

#include <algorithm>
#include <cmath>

namespace vsj {

namespace {

size_t HeapsVocab(size_t n, double paper_vocab, double paper_n,
                  size_t min_vocab) {
  const double scaled =
      paper_vocab * std::pow(static_cast<double>(n) / paper_n, 0.7);
  return std::max(min_vocab, static_cast<size_t>(std::lround(scaled)));
}

}  // namespace

CorpusConfig DblpLikeConfig(size_t num_vectors, uint64_t seed) {
  CorpusConfig config;
  config.name = "dblp-like";
  config.num_vectors = num_vectors;
  config.vocab_size = HeapsVocab(num_vectors, 56000.0, 794016.0, 3000);
  config.zipf_exponent = 0.9;
  config.mean_length = 14.0;
  config.length_sigma = 0.45;
  config.min_length = 3;
  config.max_length = std::min<size_t>(220, config.vocab_size);
  config.weights = WeightScheme::kBinary;
  config.cluster_fraction = 0.03;
  config.mean_cluster_size = 2.5;
  config.min_mutation = 0.02;
  config.max_mutation = 0.6;
  config.seed = seed;
  return config;
}

CorpusConfig NytLikeConfig(size_t num_vectors, uint64_t seed) {
  CorpusConfig config;
  config.name = "nyt-like";
  config.num_vectors = num_vectors;
  config.vocab_size = HeapsVocab(num_vectors, 100000.0, 149649.0, 8000);
  config.zipf_exponent = 0.85;
  config.mean_length = 232.0;
  config.length_sigma = 0.35;
  config.min_length = 40;
  config.max_length = std::min<size_t>(900, config.vocab_size);
  config.weights = WeightScheme::kTfIdf;
  config.cluster_fraction = 0.05;
  config.mean_cluster_size = 2.5;
  config.min_mutation = 0.02;
  config.max_mutation = 0.85;
  config.seed = seed;
  return config;
}

CorpusConfig PubmedLikeConfig(size_t num_vectors, uint64_t seed) {
  CorpusConfig config;
  config.name = "pubmed-like";
  config.num_vectors = num_vectors;
  config.vocab_size = HeapsVocab(num_vectors, 140000.0, 400151.0, 8000);
  config.zipf_exponent = 0.85;
  config.mean_length = 120.0;
  config.length_sigma = 0.4;
  config.min_length = 20;
  config.max_length = std::min<size_t>(600, config.vocab_size);
  config.weights = WeightScheme::kTfIdf;
  // The paper notes PUBMED is "largely dissimilar"; fewer, looser clusters.
  config.cluster_fraction = 0.03;
  config.mean_cluster_size = 2.2;
  config.min_mutation = 0.05;
  config.max_mutation = 0.85;
  config.seed = seed;
  return config;
}

}  // namespace vsj
