#include "vsj/gen/zipf.h"

#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

namespace {

std::vector<double> ZipfWeights(size_t num_items, double exponent) {
  VSJ_CHECK(num_items > 0);
  VSJ_CHECK(exponent >= 0.0);
  std::vector<double> weights(num_items);
  for (size_t i = 0; i < num_items; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  return weights;
}

}  // namespace

ZipfSampler::ZipfSampler(size_t num_items, double exponent)
    : exponent_(exponent), table_(ZipfWeights(num_items, exponent)) {}

}  // namespace vsj
