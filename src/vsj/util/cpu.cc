#include "vsj/util/cpu.h"

#include <cstdlib>
#include <cstring>

namespace vsj {

namespace {

#if defined(__x86_64__) || defined(__i386__)
#define VSJ_CPU_X86 1
#else
#define VSJ_CPU_X86 0
#endif

SimdLevel Detect() {
#if VSJ_CPU_X86
  // __builtin_cpu_supports is available on both GCC and Clang and performs
  // its own cpuid caching.
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel ParseLevel(const char* name, SimdLevel fallback) {
  if (std::strcmp(name, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(name, "sse2") == 0) return SimdLevel::kSse2;
  if (std::strcmp(name, "avx2") == 0) return SimdLevel::kAvx2;
  return fallback;
}

/// Detection capped by the environment, resolved once. The kernels read
/// the result through ActiveSimdLevel() on every call, so the test
/// override below takes effect immediately.
SimdLevel ResolveEnvLevel() {
  SimdLevel level = Detect();
  const char* force_scalar = std::getenv("VSJ_FORCE_SCALAR");
  if (force_scalar != nullptr && force_scalar[0] == '1') {
    return SimdLevel::kScalar;
  }
  const char* cap = std::getenv("VSJ_SIMD");
  if (cap != nullptr && cap[0] != '\0') {
    const SimdLevel requested = ParseLevel(cap, level);
    if (requested < level) level = requested;
  }
  return level;
}

// Written only before kernels run (static init or the single-threaded test
// setter); read-only on the hot path, so a plain global is race-free.
SimdLevel g_active_level = ResolveEnvLevel();

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel DetectSimdLevel() { return Detect(); }

SimdLevel ActiveSimdLevel() { return g_active_level; }

SimdLevel SetSimdLevel(SimdLevel level) {
  const SimdLevel detected = Detect();
  g_active_level = level < detected ? level : detected;
  return g_active_level;
}

void ResetSimdLevel() { g_active_level = ResolveEnvLevel(); }

}  // namespace vsj
