// Walker/Vose alias method for O(1) weighted sampling.
//
// Used on two hot paths: sampling LSH buckets proportionally to the number of
// pairs they contain (SampleH of Algorithm 1) and drawing Zipfian words in
// the corpus generators. Construction is O(n), each draw costs one uniform
// 64-bit draw plus one comparison.

#ifndef VSJ_UTIL_ALIAS_TABLE_H_
#define VSJ_UTIL_ALIAS_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vsj/util/rng.h"

namespace vsj {

/// Immutable discrete distribution over {0, ..., n-1} with given weights.
class AliasTable {
 public:
  /// Builds the table from non-negative weights; at least one weight must be
  /// positive. Weights need not be normalized.
  explicit AliasTable(const std::vector<double>& weights);

  /// Number of outcomes.
  size_t size() const { return prob_.size(); }

  /// Draws an index with probability proportional to its weight.
  size_t Sample(Rng& rng) const;

  /// Normalized probability of outcome `i` (for testing / introspection).
  double Probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;    // acceptance probability per slot
  std::vector<uint32_t> alias_; // alias outcome per slot
  std::vector<double> normalized_;
};

}  // namespace vsj

#endif  // VSJ_UTIL_ALIAS_TABLE_H_
