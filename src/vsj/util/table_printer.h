// Aligned console tables and CSV output for the benchmark harness.
//
// Every bench binary reproduces a table or figure from the paper; this
// printer renders the same rows/series as readable fixed-width text and can
// additionally emit CSV for plotting.

#ifndef VSJ_UTIL_TABLE_PRINTER_H_
#define VSJ_UTIL_TABLE_PRINTER_H_

#include <cstddef>

#include <ostream>
#include <string>
#include <vector>

namespace vsj {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// `title` is printed above the table; may be empty.
  explicit TablePrinter(std::string title = "");

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; ragged rows are allowed and padded on print.
  void AddRow(std::vector<std::string> row);

  /// Renders with a separator line under the header.
  void Print(std::ostream& os) const;

  /// Emits header + rows as CSV (minimal quoting for commas/quotes).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

  // Cell formatting helpers used throughout the benches.
  static std::string Fmt(double value, int precision = 3);
  /// Scientific notation, e.g. 9.1e-08.
  static std::string Sci(double value, int precision = 2);
  /// Human-readable count, e.g. 105B / 267M / 11M / 103K.
  static std::string Count(double value);
  /// Percentage with sign, e.g. "-95.2%".
  static std::string Pct(double fraction, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vsj

#endif  // VSJ_UTIL_TABLE_PRINTER_H_
