// A small fixed-size thread pool for data-parallel library work.
//
// Deliberately minimal — a mutex-guarded FIFO of std::function tasks, no
// work stealing — because the library's parallel sections (LSH table
// construction, batched estimation) partition their work up front into a
// handful of coarse chunks; a deque per worker would buy nothing. The
// blocking `ParallelFor` helper is the main entry point: it splits an index
// range into roughly equal chunks, runs them across the pool (the calling
// thread executes one share itself), and returns when every chunk finished.
//
// Determinism contract: the pool schedules *execution*, never *semantics*.
// Callers that need scheduling-independent results must give each work item
// its own RNG stream (see Rng::Fork) and write to pre-assigned output slots,
// which is exactly what EstimationService and the parallel LshIndex build do.

#ifndef VSJ_UTIL_THREAD_POOL_H_
#define VSJ_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vsj {

/// Fixed-size worker pool. `num_threads == 0` or `1` degrades to inline
/// execution on the calling thread (no workers are spawned), so a pool can
/// be threaded through APIs unconditionally.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 when the pool runs inline).
  size_t num_threads() const { return workers_.size(); }

  /// Total concurrency including the caller participating in ParallelFor.
  size_t concurrency() const { return workers_.size() + 1; }

  /// Enqueues `task` for asynchronous execution. With no workers the task
  /// runs immediately on the calling thread.
  void Submit(std::function<void()> task);

  /// Runs `body(i)` for every i in [0, n), partitioned into contiguous
  /// chunks across the workers and the calling thread; blocks until all
  /// iterations completed. Safe to call concurrently from several threads
  /// and reentrantly from inside a task: chunks are claimed from a shared
  /// counter, so the calling thread can always finish its own call's work
  /// even when every worker is busy (no deadlock). Note a nested call still
  /// shares the one task queue — nested parallelism adds no concurrency and
  /// serializes behind outstanding work, so prefer flattening loops.
  ///
  /// Exception safety: if `body` throws, the first exception is rethrown on
  /// the calling thread after all in-flight chunks drain; not-yet-started
  /// chunks are skipped. The pool itself stays usable. (Tasks passed to
  /// Submit, by contrast, must not throw — there is no thread to catch on.)
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// A sensible default thread count: hardware concurrency, at least 1.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  bool stopping_ = false;
};

}  // namespace vsj

#endif  // VSJ_UTIL_THREAD_POOL_H_
