#include "vsj/util/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vsj {

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < cols; ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      os << cell << std::string(width[i] - cell.size(), ' ');
      if (i + 1 < cols) os << "  ";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  if (!header_.empty()) {
    print_row(header_);
    size_t total = 0;
    for (size_t i = 0; i < cols; ++i) total += width[i] + (i + 1 < cols ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << CsvEscape(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

std::string TablePrinter::Count(double value) {
  char buf[64];
  double v = std::fabs(value);
  const char* suffix = "";
  double div = 1.0;
  if (v >= 1e9) {
    suffix = "B";
    div = 1e9;
  } else if (v >= 1e6) {
    suffix = "M";
    div = 1e6;
  } else if (v >= 1e3) {
    suffix = "K";
    div = 1e3;
  }
  double scaled = value / div;
  if (div == 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", scaled);
  } else if (std::fabs(scaled) >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", scaled, suffix);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", scaled, suffix);
  }
  return buf;
}

std::string TablePrinter::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace vsj
