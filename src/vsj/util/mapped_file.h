// Read-only memory-mapped file, RAII style.
//
// The persistence layer's zero-copy path: a VSJB v2 file is mapped once
// and the columnar sections are consumed in place, so "loading" a dataset
// costs one mmap instead of a per-feature parse (LeanStore-style page
// persistence, scaled down to one immutable arena). On POSIX this is
// mmap(PROT_READ, MAP_PRIVATE); elsewhere it degrades to reading the file
// into a heap buffer — same interface, no zero-copy.

#ifndef VSJ_UTIL_MAPPED_FILE_H_
#define VSJ_UTIL_MAPPED_FILE_H_

#include <cstddef>
#include <string>
#include <utility>

namespace vsj {

/// Move-only mapping of a whole file, read-only.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Reset(); }

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path`. On failure returns false and fills `*error` (errno text);
  /// distinguishing "missing" from "unmappable" is the caller's job via
  /// not_found().
  bool Open(const std::string& path, std::string* error);

  /// True iff the last failed Open() could not find/open the file (as
  /// opposed to failing to map it).
  bool not_found() const { return not_found_; }

  bool mapped() const { return data_ != nullptr || heap_fallback_; }
  const void* data() const { return data_; }
  size_t size() const { return size_; }

  /// Unmaps/frees; the object returns to the default state.
  void Reset();

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
  bool heap_fallback_ = false;  // data_ is new[]'d, not mmapped
  bool not_found_ = false;
};

}  // namespace vsj

#endif  // VSJ_UTIL_MAPPED_FILE_H_
