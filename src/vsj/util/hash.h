// 64-bit hashing primitives shared by the LSH substrate.
//
// LSH functions need cheap, high-quality, *stateless* hashing: a SimHash
// hyperplane component for dimension d of function f must be a deterministic
// function of (d, f's seed) so that no projection matrices have to be stored
// for vocabularies with 10^5+ dimensions. Everything here is built on the
// finalizer of MurmurHash3/SplitMix64, which passes the usual avalanche tests.

#ifndef VSJ_UTIL_HASH_H_
#define VSJ_UTIL_HASH_H_

#include <cstdint>

namespace vsj {

/// Mixes the bits of `x` (SplitMix64/Murmur3 finalizer); bijective.
uint64_t Mix64(uint64_t x);

/// The multiplier HashCombine applies to its second operand (the 64-bit
/// golden ratio). Exposed so hot loops can precompute b·γ + 1 once and
/// fold HashCombine(a, b) as Mix64(Mix64(a) + term) — see MinHash.
inline constexpr uint64_t kHashCombineGamma = 0x9e3779b97f4a7c15ULL;

/// Hashes the pair (a, b) into 64 bits:
/// Mix64(Mix64(a) + b·kHashCombineGamma + 1).
uint64_t HashCombine(uint64_t a, uint64_t b);

/// Deterministic standard-normal value derived from `key` and `seed`.
///
/// Two Mix64 outputs feed a Box-Muller transform. Used for SimHash
/// hyperplanes: the value plays the role of the Gaussian entry
/// r_f[dimension] without materializing r_f.
double GaussianFromHash(uint64_t key, uint64_t seed);

/// Deterministic uniform double in [0,1) derived from `key` and `seed`.
double UniformFromHash(uint64_t key, uint64_t seed);

}  // namespace vsj

#endif  // VSJ_UTIL_HASH_H_
