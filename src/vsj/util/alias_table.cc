#include "vsj/util/alias_table.h"

#include <numeric>

#include "vsj/util/check.h"

namespace vsj {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  VSJ_CHECK(n > 0);
  double total = 0.0;
  for (double w : weights) {
    VSJ_CHECK_MSG(w >= 0.0, "alias table weights must be non-negative");
    total += w;
  }
  VSJ_CHECK_MSG(total > 0.0, "alias table needs at least one positive weight");

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's stable construction with two worklists.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = normalized_[i] * n;
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers all have probability 1.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t slot = rng.Below(prob_.size());
  return rng.NextDouble() < prob_[slot] ? slot : alias_[slot];
}

}  // namespace vsj
