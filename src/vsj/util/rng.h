// Deterministic pseudo-random number generation.
//
// All randomized components of the library (samplers, LSH function seeds,
// corpus generators) draw from `vsj::Rng`, a xoshiro256** generator seeded
// through SplitMix64. Compared to std::mt19937_64 it is faster, has a tiny
// state, and — more importantly for reproducible experiments — its behaviour
// is fully specified here rather than delegated to the standard library
// (std::uniform_int_distribution is not bit-reproducible across toolchains).

#ifndef VSJ_UTIL_RNG_H_
#define VSJ_UTIL_RNG_H_

#include <cstdint>

#include "vsj/util/check.h"

namespace vsj {

/// xoshiro256** 1.0 (Blackman & Vigna) seeded via SplitMix64.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can also be
/// plugged into <random> distributions when exact reproducibility across
/// toolchains is not required.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 uniformly random bits. Inline (as are Below/NextDouble): the
  /// samplers draw millions of times per estimate request, and the
  /// out-of-line call was measurable in the draw-path profile. The bodies
  /// are unchanged — the output streams are bit-identical to the previous
  /// out-of-line definitions.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless unbiased bounded generation.
  uint64_t Below(uint64_t bound) {
    VSJ_DCHECK(bound > 0);
    // Lemire (2019): multiply-shift with rejection to remove modulo bias.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal variate (Box-Muller; caches the spare value).
  double NextGaussian();

  /// Bernoulli draw with success probability `p`.
  bool NextBool(double p);

  /// Derives an independent generator; useful for giving each LSH function
  /// or trial its own stream. Advances this generator.
  Rng Split();

  /// Derives the `stream_id`-th independent stream of this generator
  /// *without* advancing it: Fork(i) is a pure function of (state, i), so a
  /// parent can hand out any number of streams in any order — or from
  /// several threads — and stream i is always the same generator. This is
  /// the facility behind deterministic parallel batch estimation: request i
  /// of a batch draws from Fork(i) regardless of which thread runs it.
  Rng Fork(uint64_t stream_id) const;

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

/// SplitMix64 step: advances `state` and returns the next output. Exposed
/// because hash-derived values elsewhere (e.g. SimHash hyperplanes) reuse it.
uint64_t SplitMix64(uint64_t& state);

}  // namespace vsj

#endif  // VSJ_UTIL_RNG_H_
