// Fenwick (binary indexed) tree over non-negative double weights, with
// weighted sampling by prefix-sum descent.
//
// Backs the dynamic LSH table: bucket pair-weights C(b_j, 2) change on
// every insert/remove, and SampleH needs to draw a bucket proportionally to
// its current weight — O(log n) for both update and draw, versus the O(n)
// alias-table rebuild of the static table.

#ifndef VSJ_UTIL_FENWICK_TREE_H_
#define VSJ_UTIL_FENWICK_TREE_H_

#include <cstddef>
#include <vector>

#include "vsj/util/rng.h"

namespace vsj {

/// Dynamic prefix sums over a growable array of non-negative weights.
class FenwickTree {
 public:
  // tree_ is 1-based; element 0 is a dummy root present even when empty.
  FenwickTree() : tree_(1, 0.0) {}
  explicit FenwickTree(size_t size)
      : tree_(size + 1, 0.0), values_(size, 0.0) {
    RefreshTotals();
  }

  size_t size() const { return values_.size(); }

  /// Appends a zero-weight slot and returns its index.
  size_t Append();

  /// Sets the weight of slot `i` (must be ≥ 0).
  void Set(size_t i, double weight);

  /// Current weight of slot `i`.
  double Get(size_t i) const { return values_[i]; }

  /// Sum of weights of slots [0, i).
  double PrefixSum(size_t i) const;

  /// Total weight. Served from a cache refreshed on every mutation by the
  /// same PrefixSum walk this used to run per call — the draw path samples
  /// millions of times between mutations, and recomputing the total
  /// dominated Sample()'s cost. The cached value is the PrefixSum result
  /// itself (not an incremental running sum), so it is bit-identical to
  /// what recomputation would return.
  double Total() const { return total_; }

  /// Draws a slot with probability proportional to its weight. Requires
  /// Total() > 0.
  size_t Sample(Rng& rng) const;

 private:
  void Add(size_t i, double delta);
  void RefreshTotals();

  std::vector<double> tree_;    // 1-based implicit binary indexed tree
  std::vector<double> values_;  // current weights (for Set deltas)
  double total_ = 0.0;          // PrefixSum(size()), refreshed on mutation
  size_t top_mask_ = 0;         // highest power of two < tree_.size()
};

}  // namespace vsj

#endif  // VSJ_UTIL_FENWICK_TREE_H_
