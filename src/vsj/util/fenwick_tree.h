// Fenwick (binary indexed) tree over non-negative double weights, with
// weighted sampling by prefix-sum descent.
//
// Backs the dynamic LSH table: bucket pair-weights C(b_j, 2) change on
// every insert/remove, and SampleH needs to draw a bucket proportionally to
// its current weight — O(log n) for both update and draw, versus the O(n)
// alias-table rebuild of the static table.

#ifndef VSJ_UTIL_FENWICK_TREE_H_
#define VSJ_UTIL_FENWICK_TREE_H_

#include <cstddef>
#include <vector>

#include "vsj/util/rng.h"

namespace vsj {

/// Dynamic prefix sums over a growable array of non-negative weights.
class FenwickTree {
 public:
  // tree_ is 1-based; element 0 is a dummy root present even when empty.
  FenwickTree() : tree_(1, 0.0) {}
  explicit FenwickTree(size_t size) : tree_(size + 1, 0.0), values_(size, 0.0) {}

  size_t size() const { return values_.size(); }

  /// Appends a zero-weight slot and returns its index.
  size_t Append();

  /// Sets the weight of slot `i` (must be ≥ 0).
  void Set(size_t i, double weight);

  /// Current weight of slot `i`.
  double Get(size_t i) const { return values_[i]; }

  /// Sum of weights of slots [0, i).
  double PrefixSum(size_t i) const;

  /// Total weight.
  double Total() const { return PrefixSum(values_.size()); }

  /// Draws a slot with probability proportional to its weight. Requires
  /// Total() > 0.
  size_t Sample(Rng& rng) const;

 private:
  void Add(size_t i, double delta);

  std::vector<double> tree_;    // 1-based implicit binary indexed tree
  std::vector<double> values_;  // current weights (for Set deltas)
};

}  // namespace vsj

#endif  // VSJ_UTIL_FENWICK_TREE_H_
