#include "vsj/util/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "vsj/obs/obs.h"
#include "vsj/util/check.h"

namespace vsj {

namespace {

/// Shared bookkeeping of one ParallelFor call. Chunks are claimed from
/// `next_chunk` by whoever is free — workers and the calling thread alike —
/// so the call cannot deadlock even when every worker is busy elsewhere:
/// the caller alone can finish all chunks.
struct ParallelForState {
  size_t n = 0;
  size_t num_chunks = 0;
  size_t chunk_size = 0;
  const std::function<void(size_t)>* body = nullptr;

  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> chunks_done{0};
  std::atomic<bool> aborted{false};
  std::mutex mutex;
  std::condition_variable all_done;
  std::exception_ptr exception;  // first body exception; guarded by mutex

  /// Claims and runs chunks until none remain. A body exception must not
  /// escape onto a worker thread (that would std::terminate), so the first
  /// one is captured for the calling thread to rethrow; remaining chunks
  /// are still claimed and counted, but their bodies are skipped.
  void Drain() {
    while (true) {
      const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      if (!aborted.load(std::memory_order_relaxed)) {
        const size_t begin = chunk * chunk_size;
        const size_t end = std::min(n, begin + chunk_size);
        try {
          for (size_t i = begin; i < end; ++i) (*body)(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            if (!exception) exception = std::current_exception();
          }
          aborted.store(true, std::memory_order_relaxed);
        }
      }
      if (chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        std::lock_guard<std::mutex> lock(mutex);
        all_done.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode: no workers
  workers_.reserve(num_threads - 1);
  for (size_t t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  VSJ_DCHECK(task != nullptr);
  if (workers_.empty()) {
    task();
    return;
  }
  VSJ_COUNTER_ADD("pool.tasks", 1);
  if (VSJ_METRICS_COMPILED && obs::MetricsEnabled()) {
    // Wrap to measure time spent queued. Metrics-on only, so the extra
    // std::function allocation never appears on the default path.
    const uint64_t enqueue_ns = obs::MonotonicNowNs();
    task = [inner = std::move(task), enqueue_ns] {
      VSJ_HIST_RECORD("pool.task_wait_ns",
                      obs::MonotonicNowNs() - enqueue_ns);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    VSJ_CHECK_MSG(!stopping_, "Submit on a stopping ThreadPool");
    tasks_.push_back(std::move(task));
    VSJ_GAUGE_SET("pool.queue_depth", tasks_.size());
  }
  task_available_.notify_one();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  // A few chunks per participant smooths imbalance between chunks without
  // the overhead of one task per index.
  const size_t target_chunks = std::min(n, concurrency() * 4);
  state->chunk_size = (n + target_chunks - 1) / target_chunks;
  state->num_chunks = (n + state->chunk_size - 1) / state->chunk_size;
  state->body = &body;

  // One helper per worker; each drains chunks until none remain, so helpers
  // that are scheduled late simply find nothing to do.
  const size_t helpers = std::min(workers_.size(), state->num_chunks - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] {
    return state->chunks_done.load(std::memory_order_acquire) ==
           state->num_chunks;
  });
  if (state->exception) std::rethrow_exception(state->exception);
}

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [&] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      VSJ_GAUGE_SET("pool.queue_depth", tasks_.size());
    }
    task();
  }
}

}  // namespace vsj
