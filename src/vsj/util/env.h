// Environment-variable overrides for experiment scale.
//
// The benches default to laptop-scale parameters (DESIGN.md §3.2). To run at
// paper scale:  VSJ_N=800000 VSJ_TRIALS=100 ./bench_fig2_dblp

#ifndef VSJ_UTIL_ENV_H_
#define VSJ_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace vsj {

/// Returns the integer value of env var `name`, or `fallback` if unset/bad.
int64_t EnvInt64(const std::string& name, int64_t fallback);

/// Returns the double value of env var `name`, or `fallback` if unset/bad.
double EnvDouble(const std::string& name, double fallback);

}  // namespace vsj

#endif  // VSJ_UTIL_ENV_H_
