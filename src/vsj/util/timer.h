// Monotonic wall-clock stopwatch used by the evaluation harness.

#ifndef VSJ_UTIL_TIMER_H_
#define VSJ_UTIL_TIMER_H_

#include <chrono>

namespace vsj {

/// Starts on construction; `ElapsedSeconds`/`ElapsedMillis` read the clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vsj

#endif  // VSJ_UTIL_TIMER_H_
