#include "vsj/util/hash.h"

#include <cmath>

namespace vsj {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  // Mix the first operand before combining so that small (a, b) pairs do
  // not alias in the pre-mix value (the classic boost combine collides for
  // small integers).
  return Mix64(Mix64(a) + b * kHashCombineGamma + 1);
}

double UniformFromHash(uint64_t key, uint64_t seed) {
  return static_cast<double>(HashCombine(key, seed) >> 11) * 0x1.0p-53;
}

double GaussianFromHash(uint64_t key, uint64_t seed) {
  // Two independent uniforms from distinct stream constants.
  uint64_t h1 = HashCombine(key, seed);
  uint64_t h2 = HashCombine(key, seed ^ 0xa0761d6478bd642fULL);
  double u1 = 1.0 - static_cast<double>(h1 >> 11) * 0x1.0p-53;  // (0, 1]
  double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;        // [0, 1)
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace vsj
