// Lightweight runtime assertion macros.
//
// The library follows the convention of database engines such as RocksDB and
// Arrow: programming errors (violated preconditions, broken invariants) abort
// with a diagnostic instead of throwing. Estimation APIs themselves never
// throw; statistical failure modes are reported through result structs.

#ifndef VSJ_UTIL_CHECK_H_
#define VSJ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a diagnostic if `condition` is false. Always enabled.
#define VSJ_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "VSJ_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

/// Like VSJ_CHECK but with a custom printf-style message appended.
#define VSJ_CHECK_MSG(condition, ...)                                     \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "VSJ_CHECK failed at %s:%d: %s: ", __FILE__,   \
                   __LINE__, #condition);                                 \
      std::fprintf(stderr, __VA_ARGS__);                                  \
      std::fprintf(stderr, "\n");                                         \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

/// Debug-only check; compiled out in NDEBUG builds. Use on hot paths.
#ifdef NDEBUG
#define VSJ_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define VSJ_DCHECK(condition) VSJ_CHECK(condition)
#endif

#endif  // VSJ_UTIL_CHECK_H_
