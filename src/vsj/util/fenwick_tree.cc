#include "vsj/util/fenwick_tree.h"

#include "vsj/util/check.h"

namespace vsj {

size_t FenwickTree::Append() {
  values_.push_back(0.0);
  // Rebuild-free append: extend the tree array; the new node's range sum
  // is assembled from existing prefix sums.
  const size_t i = values_.size();  // 1-based index of the new slot
  double range_sum = 0.0;
  // Node i covers (i - lowbit(i), i]; all previous entries in that range
  // are already in the tree, and the new value is 0.
  const size_t low = i - (i & (~i + 1));
  range_sum = PrefixSum(i - 1) - PrefixSum(low);
  tree_.push_back(range_sum);
  RefreshTotals();
  return values_.size() - 1;
}

void FenwickTree::Set(size_t i, double weight) {
  VSJ_DCHECK(i < values_.size());
  VSJ_DCHECK(weight >= 0.0);
  const double delta = weight - values_[i];
  values_[i] = weight;
  Add(i, delta);
  RefreshTotals();
}

void FenwickTree::Add(size_t i, double delta) {
  for (size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
    tree_[j] += delta;
  }
}

void FenwickTree::RefreshTotals() {
  // One O(log n) walk per *mutation* instead of one per *draw*: Sample()
  // used to start with Total() — a full PrefixSum descent — on a tree that
  // is mutated thousands of times less often than it is sampled.
  total_ = PrefixSum(values_.size());
  size_t mask = 1;
  while (mask * 2 < tree_.size()) mask *= 2;
  top_mask_ = tree_.size() > 1 ? mask : 0;
}

double FenwickTree::PrefixSum(size_t i) const {
  double sum = 0.0;
  for (size_t j = i; j > 0; j -= j & (~j + 1)) sum += tree_[j];
  return sum;
}

size_t FenwickTree::Sample(Rng& rng) const {
  const double total = Total();
  VSJ_CHECK_MSG(total > 0.0, "cannot sample from an all-zero tree");
  double target = rng.NextDouble() * total;
  // Descend the implicit tree: classic Fenwick lower_bound. Written so the
  // take/skip decision compiles to conditional moves — the decision at each
  // level is close to a coin flip, and the mispredict per level dominated
  // the descent. The comparisons are unchanged, so the chosen slot is
  // identical to the branchy form.
  size_t pos = 0;
  const size_t n = tree_.size();
  for (size_t mask = top_mask_; mask > 0; mask >>= 1) {
    const size_t next = pos + mask;
    if (next < n) {
      const double w = tree_[next];
      const bool take = w < target;
      pos = take ? next : pos;
      target -= take ? w : 0.0;
    }
  }
  // pos is the largest index with prefix sum < target → slot index pos.
  if (pos >= values_.size()) pos = values_.size() - 1;
  // Skip any zero-weight slot that floating-point rounding landed on.
  size_t forward = pos;
  while (forward < values_.size() && values_[forward] == 0.0) ++forward;
  if (forward < values_.size()) return forward;
  while (pos > 0 && values_[pos] == 0.0) --pos;
  return pos;
}

}  // namespace vsj
