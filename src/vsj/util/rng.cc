#include "vsj/util/rng.h"

#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  VSJ_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Below(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box-Muller on (0,1] uniforms; 1 - NextDouble() avoids log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  has_spare_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Split() { return Rng(Next() ^ 0xd2b74407b1ce6e93ULL); }

Rng Rng::Fork(uint64_t stream_id) const {
  // Fold the four state words and the stream id through SplitMix64 so that
  // nearby stream ids (0, 1, 2, ...) land on unrelated seeds. The parent's
  // state is read, never advanced.
  uint64_t sm = stream_id ^ 0xa0761d6478bd642fULL;
  uint64_t seed = SplitMix64(sm);
  for (uint64_t word : s_) {
    sm = word ^ seed;
    seed = SplitMix64(sm);
  }
  return Rng(seed);
}

}  // namespace vsj
