#include "vsj/util/mapped_file.h"

#include <cerrno>
#include <cstring>

#include "vsj/fault/fault.h"
#include "vsj/obs/obs.h"

#if defined(_WIN32)
#include <cstdio>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace vsj {

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    heap_fallback_ = other.heap_fallback_;
    not_found_ = other.not_found_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.heap_fallback_ = false;
  }
  return *this;
}

void MappedFile::Reset() {
  if (data_ != nullptr) {
#if defined(_WIN32)
    delete[] static_cast<char*>(data_);
#else
    if (heap_fallback_) {
      delete[] static_cast<char*>(data_);
    } else {
      ::munmap(data_, size_);
    }
#endif
  }
  data_ = nullptr;
  size_ = 0;
  heap_fallback_ = false;
  not_found_ = false;
}

#if defined(_WIN32)

bool MappedFile::Open(const std::string& path, std::string* error) {
  Reset();
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    not_found_ = true;
    *error = std::strerror(errno);
    return false;
  }
  std::fseek(file, 0, SEEK_END);
  const long length = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  char* buffer = new char[length > 0 ? static_cast<size_t>(length) : 1];
  if (length > 0 &&
      std::fread(buffer, 1, static_cast<size_t>(length), file) !=
          static_cast<size_t>(length)) {
    delete[] buffer;
    std::fclose(file);
    *error = "short read";
    return false;
  }
  std::fclose(file);
  data_ = buffer;
  size_ = static_cast<size_t>(length);
  heap_fallback_ = true;
  VSJ_COUNTER_ADD("io.mmap_opens", 1);
  VSJ_COUNTER_ADD("io.mmap_bytes", size_);
  return true;
}

#else

bool MappedFile::Open(const std::string& path, std::string* error) {
  Reset();
  {
    const fault::FaultHit hit = VSJ_FAULT_HIT("io.mmap.open");
    if (hit.fired()) {
      if (hit.kind == fault::FaultKind::kNotFound) not_found_ = true;
      *error = "injected fault at io.mmap.open";
      return false;
    }
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    not_found_ = true;
    *error = std::strerror(errno);
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  size_ = static_cast<size_t>(st.st_size);
  if (size_ == 0) {
    // mmap of length 0 is unspecified; an empty file is simply "no bytes".
    ::close(fd);
    heap_fallback_ = true;  // mapped() is true, data() stays null
    return true;
  }
  void* mapping = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapping == MAP_FAILED) {
    *error = std::strerror(errno);
    size_ = 0;
    return false;
  }
  data_ = mapping;
  VSJ_COUNTER_ADD("io.mmap_opens", 1);
  VSJ_COUNTER_ADD("io.mmap_bytes", size_);
  return true;
}

#endif

}  // namespace vsj
