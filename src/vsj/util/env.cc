#include "vsj/util/env.h"

#include <cstdlib>

namespace vsj {

int64_t EnvInt64(const std::string& name, int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int64_t>(value);
}

double EnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

}  // namespace vsj
