// Runtime SIMD dispatch for the hot-path kernels.
//
// The hot-path kernels (lsh/simhash_kernel.h hashing, vector/pair_eval.h
// sparse intersection) are compiled in up to three widths — scalar, SSE2 and
// AVX2 — and selected once at runtime from CPU feature detection. All widths
// are bit-identical by construction (DESIGN.md "Hot-path kernels", "Batch
// pair evaluation"), so the level is a pure throughput knob; the dispatch
// bit-identity suites pin the contract.
//
// Overrides, strongest first:
//   VSJ_FORCE_SCALAR=1        force the scalar kernels (the CI cross-check)
//   VSJ_SIMD=scalar|sse2|avx2 cap the level (clamped to what the CPU has)
//   SetSimdLevel()            in-process override (--simd flag, benches,
//                             the dispatch suites)

#ifndef VSJ_UTIL_CPU_H_
#define VSJ_UTIL_CPU_H_

namespace vsj {

/// Kernel widths, ordered: a CPU supporting level L supports all levels
/// below it.
enum class SimdLevel {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Short lowercase name ("scalar", "sse2", "avx2").
const char* SimdLevelName(SimdLevel level);

/// The widest level the CPU supports, ignoring every override. Non-x86
/// builds always report kScalar (only the scalar kernels are compiled).
SimdLevel DetectSimdLevel();

/// The level the kernels actually dispatch to: detection, capped by the
/// VSJ_FORCE_SCALAR / VSJ_SIMD environment overrides (read once) and by
/// SetSimdLevel.
SimdLevel ActiveSimdLevel();

/// In-process override of ActiveSimdLevel(), clamped to DetectSimdLevel().
/// Returns the level actually installed. Backs the CLI `--simd` flag, the
/// per-level bench rows, and the dispatch test suites. Not thread-safe:
/// call only while no kernel runs concurrently (all current callers are
/// single-threaded setup code).
SimdLevel SetSimdLevel(SimdLevel level);

/// Drops the in-process override, restoring detection + environment.
void ResetSimdLevel();

/// Historical names for SetSimdLevel / ResetSimdLevel, kept so the dispatch
/// suites read as intended (tests are the dominant caller).
inline SimdLevel SetSimdLevelForTest(SimdLevel level) {
  return SetSimdLevel(level);
}
inline void ResetSimdLevelForTest() { ResetSimdLevel(); }

}  // namespace vsj

#endif  // VSJ_UTIL_CPU_H_
