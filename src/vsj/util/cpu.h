// Runtime SIMD dispatch for the hashing kernels.
//
// The hot-path kernels (lsh/simhash_kernel.h) are compiled in up to three
// widths — scalar, SSE2 (2 lanes) and AVX2 (4 lanes) — and selected once at
// runtime from CPU feature detection. All widths are bit-identical by
// construction (DESIGN.md "Hot-path kernels"), so the level is a pure
// throughput knob; the dispatch bit-identity suite pins the contract.
//
// Overrides, strongest first:
//   VSJ_FORCE_SCALAR=1        force the scalar kernels (the CI cross-check)
//   VSJ_SIMD=scalar|sse2|avx2 cap the level (clamped to what the CPU has)
//   SetSimdLevelForTest()     in-process override for the dispatch suite

#ifndef VSJ_UTIL_CPU_H_
#define VSJ_UTIL_CPU_H_

namespace vsj {

/// Kernel widths, ordered: a CPU supporting level L supports all levels
/// below it.
enum class SimdLevel {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Short lowercase name ("scalar", "sse2", "avx2").
const char* SimdLevelName(SimdLevel level);

/// The widest level the CPU supports, ignoring every override. Non-x86
/// builds always report kScalar (only the scalar kernels are compiled).
SimdLevel DetectSimdLevel();

/// The level the kernels actually dispatch to: detection, capped by the
/// VSJ_FORCE_SCALAR / VSJ_SIMD environment overrides (read once) and by
/// SetSimdLevelForTest.
SimdLevel ActiveSimdLevel();

/// Test-only override of ActiveSimdLevel(), clamped to DetectSimdLevel().
/// Returns the level actually installed. Not thread-safe: call only while
/// no kernel runs concurrently (the dispatch suite is single-threaded).
SimdLevel SetSimdLevelForTest(SimdLevel level);

/// Drops the test override, restoring detection + environment.
void ResetSimdLevelForTest();

}  // namespace vsj

#endif  // VSJ_UTIL_CPU_H_
