// Text vectorizer: raw documents → the sparse vectors of the VSJ problem.
//
// The paper's corpora are bag-of-words projections of text (DBLP titles,
// NYT articles, PubMed abstracts): "a document can be modeled with a vector
// of words with TF-IDF weights" (§1). This module supplies that projection
// so the library can be pointed at real documents:
//   * tokenizer: lowercase, split on non-alphanumerics, length filter;
//   * vocabulary: token → dimension id, built on fit;
//   * weighting: binary presence or TF-IDF with smoothed idf
//     log((1 + N)/(1 + df)) + 1.

#ifndef VSJ_TEXT_VECTORIZER_H_
#define VSJ_TEXT_VECTORIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "vsj/vector/vector_dataset.h"

namespace vsj {

/// Lowercased alphanumeric tokens of `text`, shorter tokens dropped.
std::vector<std::string> Tokenize(std::string_view text,
                                  size_t min_token_length = 2);

/// Vectorizer options.
struct VectorizerOptions {
  bool tfidf = true;  // false → binary presence vectors
  size_t min_token_length = 2;
  /// Tokens appearing in fewer than this many documents are dropped.
  size_t min_document_frequency = 1;
};

/// Fit-once vocabulary + weighting; transforms documents to vectors.
class TextVectorizer {
 public:
  explicit TextVectorizer(VectorizerOptions options = {});

  /// Builds the vocabulary and document frequencies from `documents` and
  /// returns their vectorization.
  VectorDataset FitTransform(const std::vector<std::string>& documents,
                             std::string dataset_name = "text");

  /// Vectorizes one document with the fitted vocabulary; out-of-vocabulary
  /// tokens are ignored. Must be called after FitTransform.
  SparseVector Transform(std::string_view document) const;

  size_t vocabulary_size() const { return vocabulary_.size(); }

  /// Dimension of `token`, or -1 when out of vocabulary.
  int64_t DimOf(const std::string& token) const;

 private:
  SparseVector VectorizeTokens(const std::vector<std::string>& tokens) const;

  VectorizerOptions options_;
  std::unordered_map<std::string, DimId> vocabulary_;
  std::vector<double> idf_;  // by dimension id (1.0 when binary)
  size_t num_fitted_documents_ = 0;
};

}  // namespace vsj

#endif  // VSJ_TEXT_VECTORIZER_H_
