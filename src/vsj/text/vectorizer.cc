#include "vsj/text/vectorizer.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>

#include "vsj/util/check.h"

namespace vsj {

std::vector<std::string> Tokenize(std::string_view text,
                                  size_t min_token_length) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      if (current.size() >= min_token_length) tokens.push_back(current);
      current.clear();
    }
  }
  if (current.size() >= min_token_length) tokens.push_back(current);
  return tokens;
}

TextVectorizer::TextVectorizer(VectorizerOptions options)
    : options_(options) {}

VectorDataset TextVectorizer::FitTransform(
    const std::vector<std::string>& documents, std::string dataset_name) {
  // Pass 1: document frequencies (ordered map → deterministic dim ids).
  std::map<std::string, size_t> doc_frequency;
  std::vector<std::vector<std::string>> tokenized;
  tokenized.reserve(documents.size());
  for (const std::string& doc : documents) {
    tokenized.push_back(Tokenize(doc, options_.min_token_length));
    std::vector<std::string> unique = tokenized.back();
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    for (const std::string& token : unique) ++doc_frequency[token];
  }

  vocabulary_.clear();
  idf_.clear();
  num_fitted_documents_ = documents.size();
  const double n = static_cast<double>(documents.size());
  for (const auto& [token, df] : doc_frequency) {
    if (df < options_.min_document_frequency) continue;
    const auto dim = static_cast<DimId>(vocabulary_.size());
    vocabulary_.emplace(token, dim);
    idf_.push_back(options_.tfidf
                       ? std::log((1.0 + n) / (1.0 + static_cast<double>(df)))
                             + 1.0
                       : 1.0);
  }

  VectorDataset dataset(std::move(dataset_name));
  for (const auto& tokens : tokenized) {
    dataset.Add(VectorizeTokens(tokens));
  }
  return dataset;
}

SparseVector TextVectorizer::Transform(std::string_view document) const {
  VSJ_CHECK_MSG(num_fitted_documents_ > 0,
                "Transform requires a fitted vocabulary");
  return VectorizeTokens(Tokenize(document, options_.min_token_length));
}

int64_t TextVectorizer::DimOf(const std::string& token) const {
  auto it = vocabulary_.find(token);
  return it == vocabulary_.end() ? -1 : static_cast<int64_t>(it->second);
}

SparseVector TextVectorizer::VectorizeTokens(
    const std::vector<std::string>& tokens) const {
  std::unordered_map<DimId, uint32_t> term_frequency;
  for (const std::string& token : tokens) {
    auto it = vocabulary_.find(token);
    if (it != vocabulary_.end()) ++term_frequency[it->second];
  }
  std::vector<Feature> features;
  features.reserve(term_frequency.size());
  for (const auto& [dim, tf] : term_frequency) {
    const double weight = options_.tfidf
                              ? static_cast<double>(tf) * idf_[dim]
                              : 1.0;
    features.push_back(Feature{dim, static_cast<float>(weight)});
  }
  return SparseVector(std::move(features));
}

}  // namespace vsj
