// Crash-consistent file replacement: tmp + fsync + rename + dir fsync.
//
// Every durable artifact in the tree (datasets via SaveDatasetToFile,
// service checkpoints, tenant write-backs) is produced through this
// writer, which guarantees that after Commit() returns Ok the new bytes
// are on stable storage under the final name, and that at *every*
// intermediate point — including power loss mid-write or mid-rename —
// the final path holds either the complete previous contents or the
// complete new contents, never a torn mixture. The recipe is the
// classic one:
//
//   1. write everything to <path>.tmp
//   2. fsync the tmp file (bytes reach the platter before the name does)
//   3. rename(<path>.tmp, <path>)        — atomic on POSIX
//   4. fsync the parent directory        — the rename itself is durable
//
// A crash before step 3 leaves the old file untouched plus an orphaned
// .tmp (swept by TenantRegistry at startup); a crash after step 3 leaves
// the new file. Skipping step 2 is the subtle bug this class exists to
// fix: rename is atomic in the *namespace* but says nothing about the
// tmp file's data blocks, so tmp+rename alone can surface a zero-length
// or torn file after power loss.
//
// Usage:
//
//   AtomicFileWriter writer(path);
//   IoStatus status = writer.Open();
//   if (!status.ok()) return status;
//   ... write to writer.stream() ...
//   return writer.Commit();
//
// Destruction without Commit() aborts: the tmp file is unlinked and the
// final path is untouched, so error paths need no cleanup code.
//
// Fault points (see fault/fault.h): io.atomic.open, io.atomic.commit
// (which also interprets kind=torn as "truncate the payload, skip fsync,
// rename anyway" — the torn-write generator the restore fuzz tests use),
// io.atomic.fsync, io.atomic.rename, io.atomic.dirsync.

#ifndef VSJ_IO_ATOMIC_FILE_WRITER_H_
#define VSJ_IO_ATOMIC_FILE_WRITER_H_

#include <fstream>
#include <string>

#include "vsj/io/io_status.h"

namespace vsj {

class AtomicFileWriter {
 public:
  /// Prepares to replace `path`; writes nothing until Open().
  explicit AtomicFileWriter(std::string path);

  /// Aborts (removes the tmp file) if Commit() was never reached.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Opens <path>.tmp for binary writing, truncating any stale orphan.
  IoStatus Open();

  /// The stream to write the new contents to. Valid after Open() succeeds
  /// and until Commit()/Abort().
  std::ostream& stream() { return stream_; }

  /// Flush + fsync + rename + parent-dir fsync. On any failure the tmp
  /// file is removed and `path` keeps its previous contents. After
  /// Commit() (ok or not) the writer is inert.
  IoStatus Commit();

  /// Drops the tmp file without touching `path`. Idempotent.
  void Abort();

  const std::string& path() const { return path_; }
  const std::string& tmp_path() const { return tmp_path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream stream_;
  bool open_ = false;
  bool done_ = false;
};

}  // namespace vsj

#endif  // VSJ_IO_ATOMIC_FILE_WRITER_H_
