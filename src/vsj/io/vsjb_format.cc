#include "vsj/io/vsjb_format.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "vsj/fault/fault.h"
#include "vsj/obs/obs.h"

namespace vsj {

namespace {

// Guards against allocating absurd sizes from corrupt headers.
constexpr uint64_t kMaxReasonableCount = 1ULL << 40;
constexpr uint32_t kMaxReasonableSections = 64;

void WritePadding(std::ostream& os, uint64_t current, uint64_t target) {
  static const char zeros[kVsjbAlignment] = {};
  while (current < target) {
    const auto chunk =
        static_cast<std::streamsize>(std::min<uint64_t>(target - current,
                                                        kVsjbAlignment));
    os.write(zeros, chunk);
    current += static_cast<uint64_t>(chunk);
  }
}

}  // namespace

uint64_t VsjbChecksum(const void* data, size_t size) {
  // FNV-1a 64.
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

VsjbFileWriter::VsjbFileWriter(const char (&magic)[4], uint32_t version,
                               uint64_t num_vectors, uint64_t num_features,
                               std::string name)
    : header_{}, name_(std::move(name)) {
  std::memcpy(header_.magic, magic, sizeof(header_.magic));
  header_.version = version;
  header_.num_vectors = num_vectors;
  header_.num_features = num_features;
  header_.name_length = name_.size();
}

void VsjbFileWriter::AddSection(uint32_t id, const void* data,
                                uint64_t length) {
  sections_.push_back(PendingSection{id, data, length});
}

IoStatus VsjbFileWriter::WriteTo(std::ostream& os) const {
  VsjbHeader header = header_;
  header.section_count = static_cast<uint32_t>(sections_.size());

  // Lay the file out up front so the section table can be written in the
  // same forward pass as the sections themselves.
  const uint64_t table_offset = VsjbAlignUp(sizeof(VsjbHeader) + name_.size());
  std::vector<VsjbSectionEntry> entries(sections_.size());
  uint64_t cursor = VsjbAlignUp(table_offset +
                                sections_.size() * sizeof(VsjbSectionEntry));
  for (size_t i = 0; i < sections_.size(); ++i) {
    entries[i].id = sections_[i].id;
    entries[i].reserved = 0;
    entries[i].offset = cursor;
    entries[i].length = sections_[i].length;
    entries[i].checksum =
        VsjbChecksum(sections_[i].data, sections_[i].length);
    cursor = VsjbAlignUp(cursor + sections_[i].length);
  }

  os.write(reinterpret_cast<const char*>(&header), sizeof(header));
  os.write(name_.data(), static_cast<std::streamsize>(name_.size()));
  WritePadding(os, sizeof(header) + name_.size(), table_offset);
  os.write(reinterpret_cast<const char*>(entries.data()),
           static_cast<std::streamsize>(entries.size() *
                                        sizeof(VsjbSectionEntry)));
  uint64_t position =
      table_offset + entries.size() * sizeof(VsjbSectionEntry);
  for (size_t i = 0; i < sections_.size(); ++i) {
    // nth selects the 1-based section index — the drill kills a
    // checkpoint mid-file at every section boundary through this point.
    VSJ_FAULT_IO("io.vsjb.write_section", "");
    WritePadding(os, position, entries[i].offset);
    if (sections_[i].length > 0) {
      os.write(static_cast<const char*>(sections_[i].data),
               static_cast<std::streamsize>(sections_[i].length));
    }
    position = entries[i].offset + entries[i].length;
  }
  if (!os) {
    return IoStatus::Fail(IoError::kIoError, "stream write failed", position);
  }
  return IoStatus::Ok();
}

int FindVsjbSection(const std::vector<VsjbSectionEntry>& entries,
                    uint32_t id) {
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

IoStatus CheckVsjbSectionShape(const std::vector<VsjbSectionEntry>& entries,
                               int index, uint64_t expected_bytes,
                               const char* what) {
  if (index < 0) {
    return IoStatus::Fail(IoError::kCorrupt,
                          std::string("missing section: ") + what, 0);
  }
  const VsjbSectionEntry& entry = entries[index];
  if (entry.length != expected_bytes) {
    return IoStatus::Fail(IoError::kCorrupt,
                          std::string(what) + " section holds " +
                              std::to_string(entry.length) +
                              " bytes, expected " +
                              std::to_string(expected_bytes),
                          entry.offset);
  }
  return IoStatus::Ok();
}

namespace {

/// Shared structural validation of a header that already passed the magic
/// check. `four` is the expected magic for the error message.
IoStatus CheckHeader(const VsjbHeader& header, uint32_t version) {
  if (header.version != version) {
    return IoStatus::Fail(
        IoError::kUnsupportedVersion,
        "file version " + std::to_string(header.version) +
            ", this build reads version " + std::to_string(version),
        offsetof(VsjbHeader, version));
  }
  if (header.num_vectors > kMaxReasonableCount ||
      header.num_features > kMaxReasonableCount ||
      header.name_length > kMaxReasonableCount) {
    return IoStatus::Fail(IoError::kCorrupt,
                          "implausible counts in header",
                          offsetof(VsjbHeader, num_vectors));
  }
  if (header.section_count > kMaxReasonableSections) {
    return IoStatus::Fail(IoError::kCorrupt,
                          "implausible section count " +
                              std::to_string(header.section_count),
                          offsetof(VsjbHeader, section_count));
  }
  return IoStatus::Ok();
}

std::string SectionIdName(uint32_t id) {
  std::string name(4, '?');
  for (int b = 0; b < 4; ++b) {
    const char c = static_cast<char>((id >> (8 * b)) & 0xff);
    name[b] = (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  return name;
}

}  // namespace

IoStatus ReadVsjbFile(std::istream& is, const char (&magic)[4],
                      uint32_t version, VsjbFileContents* contents,
                      bool magic_consumed) {
  VsjbHeader& header = contents->header;
  if (magic_consumed) {
    std::memcpy(header.magic, magic, sizeof(header.magic));
    is.read(reinterpret_cast<char*>(&header) + sizeof(header.magic),
            sizeof(header) - sizeof(header.magic));
  } else {
    is.read(reinterpret_cast<char*>(&header), sizeof(header));
  }
  if (!is) {
    return IoStatus::Fail(IoError::kCorrupt, "truncated header", 0);
  }
  if (std::memcmp(header.magic, magic, sizeof(header.magic)) != 0) {
    return IoStatus::Fail(IoError::kBadMagic,
                          "magic bytes are not \"" +
                              std::string(magic, 4) + "\"",
                          0);
  }
  if (IoStatus status = CheckHeader(header, version); !status) return status;

  contents->name.assign(header.name_length, '\0');
  is.read(contents->name.data(),
          static_cast<std::streamsize>(header.name_length));
  if (!is) {
    return IoStatus::Fail(IoError::kCorrupt, "truncated name",
                          sizeof(VsjbHeader));
  }
  uint64_t position = sizeof(VsjbHeader) + header.name_length;

  // Skip padding up to the section table.
  const uint64_t table_offset = VsjbAlignUp(position);
  is.ignore(static_cast<std::streamsize>(table_offset - position));
  contents->entries.resize(header.section_count);
  is.read(reinterpret_cast<char*>(contents->entries.data()),
          static_cast<std::streamsize>(header.section_count *
                                       sizeof(VsjbSectionEntry)));
  if (!is) {
    return IoStatus::Fail(IoError::kCorrupt, "truncated section table",
                          table_offset);
  }
  position = table_offset + header.section_count * sizeof(VsjbSectionEntry);

  contents->payloads.resize(header.section_count);
  for (uint32_t i = 0; i < header.section_count; ++i) {
    const VsjbSectionEntry& entry = contents->entries[i];
    if (entry.offset % kVsjbAlignment != 0 || entry.offset < position ||
        entry.length > kMaxReasonableCount * 8) {
      return IoStatus::Fail(IoError::kCorrupt,
                            "section " + SectionIdName(entry.id) +
                                " has a malformed table entry",
                            entry.offset);
    }
    is.ignore(static_cast<std::streamsize>(entry.offset - position));
    std::vector<char>& payload = contents->payloads[i];
    payload.resize(entry.length);
    if (entry.length > 0) {
      is.read(payload.data(), static_cast<std::streamsize>(entry.length));
    }
    if (!is) {
      return IoStatus::Fail(IoError::kCorrupt,
                            "section " + SectionIdName(entry.id) +
                                " is truncated",
                            entry.offset);
    }
    VSJ_TRACE_SPAN(checksum_span, "io.checksum_verify_ns");
    if (VSJ_FAULT_HIT("io.checksum").fired() ||
        VsjbChecksum(payload.data(), payload.size()) != entry.checksum) {
      return IoStatus::Fail(IoError::kChecksumMismatch,
                            "section " + SectionIdName(entry.id),
                            entry.offset);
    }
    checksum_span.End();
    position = entry.offset + entry.length;
  }
  return IoStatus::Ok();
}

IoStatus ValidateVsjbImage(const void* base, size_t size,
                           const char (&magic)[4], uint32_t version,
                           bool verify_checksums, VsjbHeader* header,
                           std::string* name,
                           std::vector<VsjbSectionEntry>* entries) {
  const auto* bytes = static_cast<const char*>(base);
  if (size < sizeof(VsjbHeader)) {
    return IoStatus::Fail(IoError::kCorrupt, "file smaller than the header",
                          size);
  }
  std::memcpy(header, bytes, sizeof(VsjbHeader));
  if (std::memcmp(header->magic, magic, sizeof(header->magic)) != 0) {
    return IoStatus::Fail(IoError::kBadMagic,
                          "magic bytes are not \"" +
                              std::string(magic, 4) + "\"",
                          0);
  }
  if (IoStatus status = CheckHeader(*header, version); !status) return status;
  if (sizeof(VsjbHeader) + header->name_length > size) {
    return IoStatus::Fail(IoError::kCorrupt, "name extends past end of file",
                          sizeof(VsjbHeader));
  }
  name->assign(bytes + sizeof(VsjbHeader), header->name_length);

  const uint64_t table_offset =
      VsjbAlignUp(sizeof(VsjbHeader) + header->name_length);
  const uint64_t table_bytes =
      uint64_t{header->section_count} * sizeof(VsjbSectionEntry);
  if (table_offset + table_bytes > size) {
    return IoStatus::Fail(IoError::kCorrupt,
                          "section table extends past end of file",
                          table_offset);
  }
  entries->resize(header->section_count);
  std::memcpy(entries->data(), bytes + table_offset, table_bytes);
  for (const VsjbSectionEntry& entry : *entries) {
    if (entry.offset % kVsjbAlignment != 0 || entry.offset > size ||
        entry.length > size - entry.offset) {
      return IoStatus::Fail(IoError::kCorrupt,
                            "section " + SectionIdName(entry.id) +
                                " extends past end of file",
                            entry.offset);
    }
    if (verify_checksums) {
      VSJ_TRACE_SPAN(checksum_span, "io.checksum_verify_ns");
      if (VSJ_FAULT_HIT("io.checksum").fired() ||
          VsjbChecksum(bytes + entry.offset, entry.length) !=
              entry.checksum) {
        return IoStatus::Fail(IoError::kChecksumMismatch,
                              "section " + SectionIdName(entry.id),
                              entry.offset);
      }
    }
  }
  return IoStatus::Ok();
}

}  // namespace vsj
