// Binary persistence for vector datasets.
//
// A pre-built LSH index is assumed by the paper ("we assume a pre-built LSH
// index with parameters optimized for its similarity search", §6.3); in a
// deployment the vectors live on disk and the index is rebuilt or memory-
// mapped at startup. This module supplies the dataset half: a compact,
// versioned little-endian format
//
//   magic "VSJD" | u32 version | u64 name length | name bytes |
//   u64 num vectors | per vector: u32 num features | (u32 dim, f32 weight)*
//
// LSH tables are cheap to rebuild deterministically from (family seed, k),
// so only the vectors are persisted.

#ifndef VSJ_IO_DATASET_IO_H_
#define VSJ_IO_DATASET_IO_H_

#include <iosfwd>
#include <string>

#include "vsj/vector/dataset_view.h"
#include "vsj/vector/vector_dataset.h"

namespace vsj {

/// Serializes `dataset` to `os`. Returns false on stream failure.
bool WriteDataset(DatasetView dataset, std::ostream& os);

/// Deserializes a dataset from `is`. Returns false on malformed input or
/// stream failure; `*dataset` is unspecified on failure.
bool ReadDataset(std::istream& is, VectorDataset* dataset);

/// File wrappers.
bool SaveDatasetToFile(DatasetView dataset,
                       const std::string& path);
bool LoadDatasetFromFile(const std::string& path, VectorDataset* dataset);

}  // namespace vsj

#endif  // VSJ_IO_DATASET_IO_H_
