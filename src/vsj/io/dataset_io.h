// Binary persistence for vector datasets.
//
// A pre-built LSH index is assumed by the paper ("we assume a pre-built LSH
// index with parameters optimized for its similarity search", §6.3); in a
// deployment the vectors live on disk and the index is rebuilt or memory-
// mapped at startup. This module supplies the dataset half. Two formats:
//
//   * VSJB v2 (current, written by WriteDataset): the columnar format of
//     vsjb_format.h — header + section table + 64-byte-aligned
//     offsets/dims/weights/norms columns with per-section checksums. It
//     mirrors CsrStorage, so loads are bulk column reads and the same file
//     can be memory-mapped (vector/mapped_csr_storage.h).
//   * VSJD v1 (legacy, still readable): the row-oriented stream
//       magic "VSJD" | u32 version | u64 name length | name bytes |
//       u64 num vectors | per vector: u32 count | (u32 dim, f32 weight)*
//     WriteDatasetV1 remains available for compat fixtures and the
//     format-migration bench.
//
// ReadDataset / LoadDatasetFromFile auto-detect the format by magic. All
// entry points report failures through IoStatus (error class, byte offset,
// reason); LoadDatasetFromFile distinguishes a missing file (kNotFound)
// from a corrupt one (kBadMagic / kCorrupt / kChecksumMismatch / ...).
//
// LSH tables are cheap to rebuild deterministically from (family seed, k),
// so only the vectors are persisted; the streaming service's full-state
// snapshots build on this module (service/ layer).

#ifndef VSJ_IO_DATASET_IO_H_
#define VSJ_IO_DATASET_IO_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "vsj/io/io_status.h"
#include "vsj/vector/dataset_view.h"
#include "vsj/vector/vector_dataset.h"

namespace vsj {

/// The five columns of a dataset view in VSJB v2 section shape — exactly
/// the bytes the OFFS/DIMS/WGTS/NRMS/L1NM sections hold. Shared by the
/// dataset writer and the streaming-service snapshot writer, so a column
/// added to the format is wired in one place.
struct VsjbColumns {
  std::vector<uint64_t> offsets{0};
  std::vector<DimId> dims;
  std::vector<float> weights;
  std::vector<double> norms;
  std::vector<double> l1_norms;
};

/// Extracts the columns of `dataset` (norms copied verbatim).
VsjbColumns MaterializeVsjbColumns(DatasetView dataset);

/// Serializes `dataset` to `os` in the current (VSJB v2) format.
IoStatus WriteDataset(DatasetView dataset, std::ostream& os);

/// Serializes `dataset` in the legacy VSJD v1 stream format. Kept for
/// compat fixtures and the v1-vs-v2 load bench; new files should be v2.
IoStatus WriteDatasetV1(DatasetView dataset, std::ostream& os);

/// Deserializes a dataset from `is`, auto-detecting VSJB v2 / VSJD v1 by
/// magic. `*dataset` is unspecified on failure. If `format_version` is
/// non-null it receives the version of the file that was read.
IoStatus ReadDataset(std::istream& is, VectorDataset* dataset,
                     uint32_t* format_version = nullptr);

/// File wrappers; statuses are annotated with `path`.
IoStatus SaveDatasetToFile(DatasetView dataset, const std::string& path);
IoStatus LoadDatasetFromFile(const std::string& path, VectorDataset* dataset,
                             uint32_t* format_version = nullptr);

}  // namespace vsj

#endif  // VSJ_IO_DATASET_IO_H_
