#include "vsj/io/io_status.h"

namespace vsj {

const char* IoErrorName(IoError code) {
  switch (code) {
    case IoError::kOk:
      return "ok";
    case IoError::kNotFound:
      return "not found";
    case IoError::kIoError:
      return "io error";
    case IoError::kBadMagic:
      return "bad magic";
    case IoError::kUnsupportedVersion:
      return "unsupported version";
    case IoError::kCorrupt:
      return "corrupt";
    case IoError::kChecksumMismatch:
      return "checksum mismatch";
  }
  return "unknown";
}

std::string IoStatus::ToString() const {
  if (ok()) return "ok";
  std::string text;
  if (!path.empty()) {
    text += path;
    text += ": ";
  }
  text += IoErrorName(code);
  text += " at byte ";
  text += std::to_string(byte_offset);
  if (!reason.empty()) {
    text += ": ";
    text += reason;
  }
  return text;
}

}  // namespace vsj
