// Status-style error reporting for the persistence stack.
//
// The io layer used to report failures as a bare `false`, which made
// "file not found", "truncated header" and "bit rot in section 3"
// indistinguishable to callers (and to users of vsjoin_estimate). Every
// io entry point now returns an IoStatus carrying the error class, the
// path (when one exists), the byte offset the failure was detected at,
// and a human-readable reason. Estimation APIs themselves still never
// fail this way — IoStatus is strictly for bytes entering and leaving
// the process.

#ifndef VSJ_IO_IO_STATUS_H_
#define VSJ_IO_IO_STATUS_H_

#include <cstdint>
#include <string>

namespace vsj {

/// Failure class of an io operation.
enum class IoError {
  kOk = 0,
  kNotFound,            // the file does not exist / cannot be opened
  kIoError,             // read/write/map syscall or stream failure
  kBadMagic,            // not a VSJ file at all
  kUnsupportedVersion,  // a VSJ file from a future (or unknown) version
  kCorrupt,             // structurally malformed (truncation, bad counts)
  kChecksumMismatch,    // a section checksum failed — bit rot or tampering
};

/// Result of an io operation: where it failed and why, or Ok().
struct IoStatus {
  IoError code = IoError::kOk;
  std::string path;         // empty for pure stream operations
  uint64_t byte_offset = 0;  // position the failure was detected at
  std::string reason;

  bool ok() const { return code == IoError::kOk; }
  explicit operator bool() const { return ok(); }

  static IoStatus Ok() { return IoStatus{}; }
  static IoStatus Fail(IoError code, std::string reason,
                       uint64_t byte_offset = 0, std::string path = "") {
    return IoStatus{code, std::move(path), byte_offset, std::move(reason)};
  }

  /// Returns a copy with `path` filled in (file wrappers annotate stream
  /// errors with the file they came from).
  IoStatus WithPath(const std::string& p) const {
    IoStatus annotated = *this;
    annotated.path = p;
    return annotated;
  }

  /// "dataset.vsjb: checksum mismatch at byte 4096: weights section".
  std::string ToString() const;
};

/// Short name of an error class ("not found", "checksum mismatch", ...).
const char* IoErrorName(IoError code);

}  // namespace vsj

#endif  // VSJ_IO_IO_STATUS_H_
