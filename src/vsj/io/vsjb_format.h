// VSJB v2: the columnar little-endian on-disk format of the storage core.
//
// VSJD v1 was a row-oriented stream — per vector, a count followed by
// interleaved (dim, weight) pairs — so loading rebuilt the CSR arena one
// vector at a time and nothing could be memory-mapped. VSJB v2 mirrors
// CsrStorage exactly: after a fixed header and a section table, the file
// holds the arena's columns verbatim, each starting at a 64-byte-aligned
// offset and covered by its own checksum:
//
//   [ 64-byte header ]            magic "VSJB", version, counts, name size
//   [ name bytes, padded ]
//   [ section table, padded ]     (id, offset, length, checksum) per section
//   [ OFFS  u64 × (n+1) ]         vector boundaries
//   [ DIMS  u32 × F     ]         dimension ids
//   [ WGTS  f32 × F     ]         weights
//   [ NRMS  f64 × n     ]         cached L2 norms (verbatim, never recomputed)
//   [ L1NM  f64 × n     ]         cached L1 norms
//
// A loader can therefore either read the sections into a heap CsrStorage,
// or mmap the file and point a DatasetView straight at the pages
// (vector/mapped_csr_storage.h). All integers are little-endian; the
// library targets little-endian hosts (asserted below) and writes native.
//
// The same header + section-table machinery is reused by the streaming
// service's snapshot container (magic "VSJS"; service/ layer).

#ifndef VSJ_IO_VSJB_FORMAT_H_
#define VSJ_IO_VSJB_FORMAT_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <vector>

#include "vsj/io/io_status.h"

namespace vsj {

static_assert(std::endian::native == std::endian::little,
              "VSJB v2 is little-endian on disk and read/written natively");

/// Magic of the columnar dataset format ("VSJB") and of the legacy
/// row-oriented stream format ("VSJD").
inline constexpr char kVsjbMagic[4] = {'V', 'S', 'J', 'B'};
inline constexpr char kVsjdMagic[4] = {'V', 'S', 'J', 'D'};
/// Magic of the streaming-service snapshot container ("VSJS").
inline constexpr char kVsjsMagic[4] = {'V', 'S', 'J', 'S'};

inline constexpr uint32_t kVsjbVersion = 2;
inline constexpr uint32_t kVsjdVersion = 1;
inline constexpr uint32_t kVsjsVersion = 1;

/// Every section (and the section table itself) starts on a 64-byte
/// boundary: cache-line-friendly, and ≥ the alignment of every column type,
/// so mmapped section pointers are directly usable.
inline constexpr size_t kVsjbAlignment = 64;

/// Section ids (four-character codes, read as little-endian u32).
inline constexpr uint32_t VsjbSectionId(const char (&fourcc)[5]) {
  return static_cast<uint32_t>(static_cast<unsigned char>(fourcc[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(fourcc[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(fourcc[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(fourcc[3])) << 24;
}

inline constexpr uint32_t kSecOffsets = VsjbSectionId("OFFS");
inline constexpr uint32_t kSecDims = VsjbSectionId("DIMS");
inline constexpr uint32_t kSecWeights = VsjbSectionId("WGTS");
inline constexpr uint32_t kSecNorms = VsjbSectionId("NRMS");
inline constexpr uint32_t kSecL1Norms = VsjbSectionId("L1NM");
// Snapshot-container sections (service/ layer).
inline constexpr uint32_t kSecSnapshotMeta = VsjbSectionId("META");
inline constexpr uint32_t kSecStoreLiveBitmap = VsjbSectionId("SLOT");
inline constexpr uint32_t kSecIndexLiveOrder = VsjbSectionId("LIVE");
inline constexpr uint32_t kSecTableReplay = VsjbSectionId("TBLS");

/// The fixed 64-byte file header (bytes [0, 64)).
struct VsjbHeader {
  char magic[4];
  uint32_t version;
  uint64_t num_vectors;
  uint64_t num_features;
  uint64_t name_length;
  uint32_t section_count;
  uint32_t reserved0;
  uint64_t reserved1;
  uint64_t reserved2;
  uint64_t reserved3;
};
static_assert(sizeof(VsjbHeader) == kVsjbAlignment);

/// One entry of the section table.
struct VsjbSectionEntry {
  uint32_t id;  // four-character code
  uint32_t reserved;
  uint64_t offset;    // absolute file offset; kVsjbAlignment-aligned
  uint64_t length;    // payload bytes (excluding padding)
  uint64_t checksum;  // VsjbChecksum over the payload bytes
};
static_assert(sizeof(VsjbSectionEntry) == 32);

/// Rounds `offset` up to the next kVsjbAlignment boundary.
inline uint64_t VsjbAlignUp(uint64_t offset) {
  return (offset + kVsjbAlignment - 1) & ~(uint64_t{kVsjbAlignment} - 1);
}

/// Per-section checksum: FNV-1a 64 over the payload bytes. Deterministic
/// across platforms, cheap enough to verify on every load.
uint64_t VsjbChecksum(const void* data, size_t size);

/// Single-pass writer of the header + name + section table + aligned
/// sections layout. Usage: add every section (pointers must stay valid),
/// then WriteTo. Works on any ostream — offsets are computed up front, so
/// no seeking is needed.
class VsjbFileWriter {
 public:
  /// `magic` selects the container ("VSJB" dataset / "VSJS" snapshot).
  VsjbFileWriter(const char (&magic)[4], uint32_t version,
                 uint64_t num_vectors, uint64_t num_features,
                 std::string name);

  /// Registers a section; data must outlive WriteTo.
  void AddSection(uint32_t id, const void* data, uint64_t length);

  template <typename T>
  void AddVectorSection(uint32_t id, const std::vector<T>& values) {
    AddSection(id, values.data(), values.size() * sizeof(T));
  }

  /// Writes the whole file. Returns kIoError on stream failure.
  IoStatus WriteTo(std::ostream& os) const;

 private:
  struct PendingSection {
    uint32_t id;
    const void* data;
    uint64_t length;
  };

  VsjbHeader header_;
  std::string name_;
  std::vector<PendingSection> sections_;
};

/// Index of section `id` in `entries` (first match), or -1. Every loader
/// resolves duplicates the same way — first entry wins — so a hand-crafted
/// file with repeated ids cannot make the stream and mmap paths disagree.
int FindVsjbSection(const std::vector<VsjbSectionEntry>& entries,
                    uint32_t id);

/// Validates that FindVsjbSection's result `index` exists and that its
/// entry holds exactly `expected_bytes` — the shared shape check of the
/// dataset loader, the mmap opener and the snapshot reader. `what` names
/// the section in the error.
IoStatus CheckVsjbSectionShape(const std::vector<VsjbSectionEntry>& entries,
                               int index, uint64_t expected_bytes,
                               const char* what);

/// Parsed view of a VSJB-style container read from a stream: the header
/// plus every section's payload bytes, checksum-verified.
struct VsjbFileContents {
  VsjbHeader header;
  std::string name;
  std::vector<VsjbSectionEntry> entries;
  std::vector<std::vector<char>> payloads;  // parallel to `entries`

  /// Index of section `id` in `entries`, or -1.
  int FindSection(uint32_t id) const { return FindVsjbSection(entries, id); }
};

/// Reads a container with the given magic/version from `is`. Verifies
/// structure and per-section checksums. With `magic_consumed`, the caller
/// already read (and matched) the 4 magic bytes — format auto-detection
/// dispatches here after peeking the magic.
IoStatus ReadVsjbFile(std::istream& is, const char (&magic)[4],
                      uint32_t version, VsjbFileContents* contents,
                      bool magic_consumed = false);

/// Validates an in-memory (e.g. mmapped) image of a container and returns
/// the section table. Section payload pointers are `base + entry.offset`.
/// `verify_checksums` touches every payload byte; without it the open cost
/// stays O(header + table).
IoStatus ValidateVsjbImage(const void* base, size_t size,
                           const char (&magic)[4], uint32_t version,
                           bool verify_checksums, VsjbHeader* header,
                           std::string* name,
                           std::vector<VsjbSectionEntry>* entries);

}  // namespace vsj

#endif  // VSJ_IO_VSJB_FORMAT_H_
