#include "vsj/io/dataset_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <vector>

#include "vsj/io/atomic_file_writer.h"
#include "vsj/io/vsjb_format.h"
#include "vsj/obs/obs.h"

namespace vsj {

namespace {

// Guards against allocating absurd sizes from corrupt v1 headers.
constexpr uint64_t kMaxReasonableCount = 1ULL << 40;

template <typename T>
void WritePod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(is);
}

IoStatus ReadDatasetV2(std::istream& is, VectorDataset* dataset) {
  VsjbFileContents contents;
  if (IoStatus status = ReadVsjbFile(is, kVsjbMagic, kVsjbVersion, &contents,
                                     /*magic_consumed=*/true);
      !status) {
    return status;
  }
  const uint64_t n = contents.header.num_vectors;
  const uint64_t features = contents.header.num_features;
  const int offs = contents.FindSection(kSecOffsets);
  const int dims = contents.FindSection(kSecDims);
  const int weights = contents.FindSection(kSecWeights);
  const int norms = contents.FindSection(kSecNorms);
  const int l1_norms = contents.FindSection(kSecL1Norms);
  for (IoStatus status : {
           CheckVsjbSectionShape(contents.entries, offs,
                                 (n + 1) * sizeof(uint64_t), "offsets"),
           CheckVsjbSectionShape(contents.entries, dims,
                                 features * sizeof(DimId), "dims"),
           CheckVsjbSectionShape(contents.entries, weights,
                                 features * sizeof(float), "weights"),
           CheckVsjbSectionShape(contents.entries, norms,
                                 n * sizeof(double), "norms"),
           CheckVsjbSectionShape(contents.entries, l1_norms,
                                 n * sizeof(double), "l1 norms"),
       }) {
    if (!status) return status;
  }

  const auto* offsets_data =
      reinterpret_cast<const uint64_t*>(contents.payloads[offs].data());
  const auto* dims_data =
      reinterpret_cast<const DimId*>(contents.payloads[dims].data());
  const auto* weights_data =
      reinterpret_cast<const float*>(contents.payloads[weights].data());
  const auto* norms_data =
      reinterpret_cast<const double*>(contents.payloads[norms].data());
  const auto* l1_data =
      reinterpret_cast<const double*>(contents.payloads[l1_norms].data());

  if (offsets_data[0] != 0 || offsets_data[n] != features) {
    return IoStatus::Fail(IoError::kCorrupt,
                          "offsets do not span the feature payload",
                          contents.entries[offs].offset);
  }
  *dataset = VectorDataset(std::move(contents.name));
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t begin = offsets_data[i];
    const uint64_t end = offsets_data[i + 1];
    if (begin > end || end > features) {
      return IoStatus::Fail(IoError::kCorrupt,
                            "offsets are not monotone at vector " +
                                std::to_string(i),
                            contents.entries[offs].offset);
    }
    // Norms are adopted verbatim from the file — never recomputed — so a
    // loaded dataset is bit-identical to the one that was saved.
    dataset->Add(VectorRef(dims_data + begin, weights_data + begin,
                           static_cast<uint32_t>(end - begin), norms_data[i],
                           l1_data[i]));
  }
  return IoStatus::Ok();
}

IoStatus ReadDatasetV1(std::istream& is, VectorDataset* dataset) {
  // The 4 magic bytes were already consumed by format detection.
  uint64_t position = sizeof(kVsjdMagic);
  uint32_t version = 0;
  if (!ReadPod(is, &version)) {
    return IoStatus::Fail(IoError::kCorrupt, "truncated version field",
                          position);
  }
  if (version != kVsjdVersion) {
    return IoStatus::Fail(IoError::kUnsupportedVersion,
                          "VSJD file version " + std::to_string(version) +
                              ", this build reads version 1",
                          position);
  }
  position += sizeof(version);
  uint64_t name_length = 0;
  if (!ReadPod(is, &name_length) || name_length > kMaxReasonableCount) {
    return IoStatus::Fail(IoError::kCorrupt, "bad name length", position);
  }
  position += sizeof(name_length);
  std::string name(name_length, '\0');
  is.read(name.data(), static_cast<std::streamsize>(name_length));
  if (!is) {
    return IoStatus::Fail(IoError::kCorrupt, "truncated name", position);
  }
  position += name_length;

  uint64_t num_vectors = 0;
  if (!ReadPod(is, &num_vectors) || num_vectors > kMaxReasonableCount) {
    return IoStatus::Fail(IoError::kCorrupt, "bad vector count", position);
  }
  position += sizeof(num_vectors);
  *dataset = VectorDataset(std::move(name));
  for (uint64_t i = 0; i < num_vectors; ++i) {
    uint32_t num_features = 0;
    if (!ReadPod(is, &num_features)) {
      return IoStatus::Fail(IoError::kCorrupt,
                            "truncated at vector " + std::to_string(i),
                            position);
    }
    position += sizeof(num_features);
    std::vector<Feature> features;
    features.reserve(num_features);
    for (uint32_t f = 0; f < num_features; ++f) {
      Feature feature;
      if (!ReadPod(is, &feature.dim) || !ReadPod(is, &feature.weight)) {
        return IoStatus::Fail(IoError::kCorrupt,
                              "truncated in vector " + std::to_string(i),
                              position);
      }
      position += sizeof(feature.dim) + sizeof(feature.weight);
      features.push_back(feature);
    }
    dataset->Add(SparseVector(std::move(features)));
  }
  return IoStatus::Ok();
}

}  // namespace

VsjbColumns MaterializeVsjbColumns(DatasetView dataset) {
  VsjbColumns columns;
  size_t total_features = 0;
  for (VectorRef v : dataset) total_features += v.size();
  columns.offsets.reserve(dataset.size() + 1);
  columns.dims.reserve(total_features);
  columns.weights.reserve(total_features);
  columns.norms.reserve(dataset.size());
  columns.l1_norms.reserve(dataset.size());
  for (VectorRef v : dataset) {
    columns.dims.insert(columns.dims.end(), v.dims(), v.dims() + v.size());
    columns.weights.insert(columns.weights.end(), v.weights(),
                           v.weights() + v.size());
    columns.offsets.push_back(columns.dims.size());
    columns.norms.push_back(v.norm());
    columns.l1_norms.push_back(v.l1_norm());
  }
  return columns;
}

IoStatus WriteDataset(DatasetView dataset, std::ostream& os) {
  const VsjbColumns columns = MaterializeVsjbColumns(dataset);
  VsjbFileWriter writer(kVsjbMagic, kVsjbVersion, dataset.size(),
                        columns.dims.size(), dataset.name());
  writer.AddVectorSection(kSecOffsets, columns.offsets);
  writer.AddVectorSection(kSecDims, columns.dims);
  writer.AddVectorSection(kSecWeights, columns.weights);
  writer.AddVectorSection(kSecNorms, columns.norms);
  writer.AddVectorSection(kSecL1Norms, columns.l1_norms);
  return writer.WriteTo(os);
}

IoStatus WriteDatasetV1(DatasetView dataset, std::ostream& os) {
  os.write(kVsjdMagic, sizeof(kVsjdMagic));
  WritePod(os, kVsjdVersion);
  const std::string& name = dataset.name();
  WritePod(os, static_cast<uint64_t>(name.size()));
  os.write(name.data(), static_cast<std::streamsize>(name.size()));
  WritePod(os, static_cast<uint64_t>(dataset.size()));
  for (VectorRef v : dataset) {
    WritePod(os, static_cast<uint32_t>(v.size()));
    for (const Feature f : v) {
      WritePod(os, f.dim);
      WritePod(os, f.weight);
    }
  }
  if (!os) return IoStatus::Fail(IoError::kIoError, "stream write failed");
  return IoStatus::Ok();
}

IoStatus ReadDataset(std::istream& is, VectorDataset* dataset,
                     uint32_t* format_version) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is) {
    return IoStatus::Fail(IoError::kCorrupt,
                          "file shorter than the 4 magic bytes", 0);
  }
  if (std::memcmp(magic, kVsjbMagic, sizeof(magic)) == 0) {
    if (format_version != nullptr) *format_version = kVsjbVersion;
    return ReadDatasetV2(is, dataset);
  }
  if (std::memcmp(magic, kVsjdMagic, sizeof(magic)) == 0) {
    if (format_version != nullptr) *format_version = kVsjdVersion;
    return ReadDatasetV1(is, dataset);
  }
  return IoStatus::Fail(IoError::kBadMagic,
                        "magic bytes are neither \"VSJB\" nor \"VSJD\"", 0);
}

IoStatus SaveDatasetToFile(DatasetView dataset, const std::string& path) {
  VSJ_TRACE_SPAN(save_span, "io.save_ns");
  AtomicFileWriter writer(path);
  IoStatus status = writer.Open();
  if (!status.ok()) return status;
  status = WriteDataset(dataset, writer.stream()).WithPath(path);
  if (!status.ok()) return status;  // writer dtor drops the tmp file
  const std::streampos bytes = writer.stream().tellp();
  status = writer.Commit();
  if (status.ok() && bytes > 0) VSJ_COUNTER_ADD("io.bytes_written", bytes);
  return status;
}

IoStatus LoadDatasetFromFile(const std::string& path, VectorDataset* dataset,
                             uint32_t* format_version) {
  VSJ_TRACE_SPAN(load_span, "io.load_ns");
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return IoStatus::Fail(IoError::kNotFound,
                          std::string("cannot open: ") + std::strerror(errno),
                          0, path);
  }
  IoStatus status = ReadDataset(is, dataset, format_version).WithPath(path);
  if (status) {
    is.clear();  // tellg is -1 on an eof-flagged stream
    const std::streampos bytes = is.tellg();
    if (bytes > 0) VSJ_COUNTER_ADD("io.bytes_read", bytes);
  }
  return status;
}

}  // namespace vsj
