#include "vsj/io/dataset_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

namespace vsj {

namespace {

constexpr char kMagic[4] = {'V', 'S', 'J', 'D'};
constexpr uint32_t kVersion = 1;
// Guards against allocating absurd sizes from corrupt headers.
constexpr uint64_t kMaxReasonableCount = 1ULL << 40;

template <typename T>
void WritePod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(is);
}

}  // namespace

bool WriteDataset(DatasetView dataset, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  WritePod(os, kVersion);
  const std::string& name = dataset.name();
  WritePod(os, static_cast<uint64_t>(name.size()));
  os.write(name.data(), static_cast<std::streamsize>(name.size()));
  WritePod(os, static_cast<uint64_t>(dataset.size()));
  for (VectorRef v : dataset) {
    WritePod(os, static_cast<uint32_t>(v.size()));
    for (const Feature f : v) {
      WritePod(os, f.dim);
      WritePod(os, f.weight);
    }
  }
  return static_cast<bool>(os);
}

bool ReadDataset(std::istream& is, VectorDataset* dataset) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  uint32_t version = 0;
  if (!ReadPod(is, &version) || version != kVersion) return false;
  uint64_t name_length = 0;
  if (!ReadPod(is, &name_length) || name_length > kMaxReasonableCount) {
    return false;
  }
  std::string name(name_length, '\0');
  is.read(name.data(), static_cast<std::streamsize>(name_length));
  if (!is) return false;

  uint64_t num_vectors = 0;
  if (!ReadPod(is, &num_vectors) || num_vectors > kMaxReasonableCount) {
    return false;
  }
  *dataset = VectorDataset(std::move(name));
  for (uint64_t i = 0; i < num_vectors; ++i) {
    uint32_t num_features = 0;
    if (!ReadPod(is, &num_features)) return false;
    std::vector<Feature> features;
    features.reserve(num_features);
    for (uint32_t f = 0; f < num_features; ++f) {
      Feature feature;
      if (!ReadPod(is, &feature.dim) || !ReadPod(is, &feature.weight)) {
        return false;
      }
      features.push_back(feature);
    }
    dataset->Add(SparseVector(std::move(features)));
  }
  return true;
}

bool SaveDatasetToFile(DatasetView dataset,
                       const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  return WriteDataset(dataset, os);
}

bool LoadDatasetFromFile(const std::string& path, VectorDataset* dataset) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  return ReadDataset(is, dataset);
}

}  // namespace vsj
