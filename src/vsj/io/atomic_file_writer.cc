#include "vsj/io/atomic_file_writer.h"

#include <cstdio>
#include <utility>

#include "vsj/fault/fault.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace vsj {
namespace {

#if !defined(_WIN32)

// fsyncs `path` through a freshly opened descriptor. The payload stream
// is a std::ofstream (no portable fd access), so durability comes from
// re-opening after close — the data is in the page cache by then and
// fsync on any descriptor for the inode flushes it.
IoStatus FsyncPath(const std::string& path, bool directory) {
  int flags = O_RDONLY;
#if defined(O_DIRECTORY)
  if (directory) flags |= O_DIRECTORY;
#endif
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    if (directory) return IoStatus::Ok();  // e.g. relative path, odd fs
    return IoStatus::Fail(IoError::kIoError,
                          "cannot reopen for fsync: " + path, 0, path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return IoStatus::Fail(IoError::kIoError, "fsync failed: " + path, 0,
                          path);
  }
  return IoStatus::Ok();
}

#endif  // !_WIN32

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {}

AtomicFileWriter::~AtomicFileWriter() { Abort(); }

IoStatus AtomicFileWriter::Open() {
  VSJ_FAULT_IO("io.atomic.open", path_);
  stream_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!stream_) {
    return IoStatus::Fail(IoError::kIoError,
                          "cannot open temp file for writing: " + tmp_path_,
                          0, path_);
  }
  open_ = true;
  return IoStatus::Ok();
}

IoStatus AtomicFileWriter::Commit() {
  if (done_ || !open_) {
    return IoStatus::Fail(IoError::kIoError,
                          "Commit() without a successful Open()", 0, path_);
  }

  // kTorn is handled here rather than returned: it means "complete the
  // rename but with a truncated, never-fsynced payload" — the torn-write
  // generator behind the restore fuzz tests and the drill's torn legs.
  bool torn = false;
  uint64_t torn_bytes = 0;
  const fault::FaultHit commit_hit = VSJ_FAULT_HIT("io.atomic.commit");
  if (commit_hit.kind == fault::FaultKind::kTorn) {
    torn = true;
    torn_bytes = commit_hit.arg;
  } else if (commit_hit.fired()) {
    Abort();
    return fault::InjectedIoStatus("io.atomic.commit", commit_hit.kind,
                                   path_);
  }

  stream_.flush();
  if (!stream_) {
    Abort();
    return IoStatus::Fail(IoError::kIoError,
                          "write to temp file failed: " + tmp_path_, 0,
                          path_);
  }
  stream_.close();
  open_ = false;
  if (stream_.fail()) {
    Abort();
    return IoStatus::Fail(IoError::kIoError,
                          "closing temp file failed: " + tmp_path_, 0, path_);
  }
  done_ = true;

#if !defined(_WIN32)
  if (torn) {
    // Simulated power loss mid-write: chop the payload and promote the
    // torn bytes without any fsync — exactly what tmp+rename-without-
    // fsync could leave behind. Restore must later reject this file with
    // a named IoStatus.
    if (::truncate(tmp_path_.c_str(), static_cast<off_t>(torn_bytes)) != 0) {
      std::remove(tmp_path_.c_str());
      return IoStatus::Fail(IoError::kIoError,
                            "injected torn-write truncate failed", 0, path_);
    }
  } else {
    const fault::FaultHit fsync_hit = VSJ_FAULT_HIT("io.atomic.fsync");
    if (fsync_hit.fired()) {
      std::remove(tmp_path_.c_str());
      return fault::InjectedIoStatus("io.atomic.fsync", fsync_hit.kind,
                                     path_);
    }
    const IoStatus fsync_status = FsyncPath(tmp_path_, /*directory=*/false);
    if (!fsync_status.ok()) {
      std::remove(tmp_path_.c_str());
      return fsync_status.WithPath(path_);
    }
  }
#else
  (void)torn;
  (void)torn_bytes;
#endif

  {
    const fault::FaultHit rename_hit = VSJ_FAULT_HIT("io.atomic.rename");
    if (rename_hit.fired()) {
      std::remove(tmp_path_.c_str());
      return fault::InjectedIoStatus("io.atomic.rename", rename_hit.kind,
                                     path_);
    }
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return IoStatus::Fail(IoError::kIoError,
                          "rename failed: " + tmp_path_ + " -> " + path_, 0,
                          path_);
  }

#if !defined(_WIN32)
  if (!torn) {
    const fault::FaultHit dirsync_hit = VSJ_FAULT_HIT("io.atomic.dirsync");
    if (dirsync_hit.fired()) {
      // The rename already happened: the new file is in place but its
      // directory entry may not be durable. Surface the failure —
      // callers treat the checkpoint as unpersisted and retry.
      return fault::InjectedIoStatus("io.atomic.dirsync", dirsync_hit.kind,
                                     path_);
    }
    const IoStatus dir_status = FsyncPath(ParentDir(path_),
                                          /*directory=*/true);
    if (!dir_status.ok()) return dir_status.WithPath(path_);
  }
#endif

  return IoStatus::Ok();
}

void AtomicFileWriter::Abort() {
  if (done_) return;
  if (open_) {
    stream_.close();
    open_ = false;
  }
  std::remove(tmp_path_.c_str());
  done_ = true;
}

}  // namespace vsj
