// Minimal JSON document model for the network protocol.
//
// The serving layer frames JSON payloads (net/wire.h), so it needs a
// parser that is strict about untrusted bytes — the protocol-robustness
// contract is that garbage from a socket becomes a typed error, never UB
// or an abort. This is a deliberately small strict-JSON implementation:
//
//   * Parsing is recursive descent with an explicit depth limit (a frame
//     of 100k '[' characters must fail cleanly, not overflow the stack),
//     rejects trailing bytes, bad escapes, bare NaN/Infinity tokens and
//     malformed numbers, and reports a byte offset with every error.
//   * Numbers are doubles. Overflowing literals like 1e999 parse to ±inf
//     rather than failing — non-finite values are representable on purpose
//     so the *request validation* layer (ValidateEstimateRequest) can
//     reject them with a named diagnostic instead of a generic parse
//     error (see the estimate_request_test regression suite).
//   * Serialization escapes control characters, emits integers exactly
//     (no ".0" suffix, no precision loss below 2^53) and doubles with
//     %.17g so a round-trip through the wire preserves the exact bits —
//     the server's bit-identity golden test depends on this.
//
// Objects preserve insertion order and allow duplicate keys on parse
// (last one wins on Find), matching how lenient peers behave.

#ifndef VSJ_NET_JSON_H_
#define VSJ_NET_JSON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vsj::net {

/// One JSON value (null, bool, number, string, array or object).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; the caller must have checked the type (the value is
  /// default-initialized otherwise, never UB).
  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  /// Element count of an array or object (0 for scalars).
  size_t size() const;

  /// Array element access; `i` must be < size().
  const JsonValue& operator[](size_t i) const { return array_[i]; }

  /// Object member lookup; nullptr when absent (or not an object). With
  /// duplicate keys the last occurrence wins.
  const JsonValue* Find(std::string_view key) const;

  /// The members of an object / elements of an array, for iteration.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }
  const std::vector<JsonValue>& elements() const { return array_; }

  /// Builders (arrays append, objects set; both return *this for
  /// chaining). Calling them coerces the value to the container type.
  JsonValue& Append(JsonValue element);
  JsonValue& Set(std::string key, JsonValue value);

  /// Serializes to compact JSON. Non-finite numbers become null (they
  /// never appear in well-formed responses; the encoder must still not
  /// emit invalid JSON if one slips through).
  void SerializeTo(std::string* out) const;
  std::string Serialize() const;

  /// Appends `v` to `out` the way the serializer would: integers within
  /// the exact double range print exactly, other finite values as %.17g
  /// (round-trip exact), non-finite as "null".
  static void AppendNumber(std::string* out, double v);

  /// Appends the quoted, escaped form of `s`.
  static void AppendQuoted(std::string* out, std::string_view s);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Strict parse of exactly one JSON document (plus surrounding
/// whitespace). On failure returns false and fills `*error` with a
/// message that includes the byte offset. `*value` is unspecified on
/// failure. Nesting beyond `max_depth` is rejected.
bool ParseJson(std::string_view text, JsonValue* value, std::string* error,
               size_t max_depth = 64);

}  // namespace vsj::net

#endif  // VSJ_NET_JSON_H_
