#include "vsj/net/protocol.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace vsj::net {

const char* RpcErrorName(RpcError error) {
  switch (error) {
    case RpcError::kNone:
      return "none";
    case RpcError::kBadFrame:
      return "bad_frame";
    case RpcError::kBadJson:
      return "bad_json";
    case RpcError::kBadRequest:
      return "bad_request";
    case RpcError::kUnknownOp:
      return "unknown_op";
    case RpcError::kUnknownTenant:
      return "unknown_tenant";
    case RpcError::kTenantUnavailable:
      return "tenant_unavailable";
    case RpcError::kUnsupported:
      return "unsupported";
    case RpcError::kOverloaded:
      return "overloaded";
    case RpcError::kTimeout:
      return "timeout";
    case RpcError::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

bool RpcErrorRetryable(RpcError error) {
  switch (error) {
    case RpcError::kOverloaded:
    case RpcError::kTimeout:
    case RpcError::kShuttingDown:
      return true;
    default:
      return false;
  }
}

const char* RpcOpName(RpcOp op) {
  switch (op) {
    case RpcOp::kEstimate:
      return "estimate";
    case RpcOp::kInsert:
      return "insert";
    case RpcOp::kRemove:
      return "remove";
    case RpcOp::kErase:
      return "erase";
    case RpcOp::kAddVector:
      return "add_vector";
    case RpcOp::kPing:
      return "ping";
    case RpcOp::kStats:
      return "stats";
    case RpcOp::kSleep:
      return "sleep";
  }
  return "unknown";
}

namespace {

/// Field extraction helpers. Each returns false and fills `*error` with a
/// "<field> <problem>" diagnostic on a type/range violation; an absent
/// field leaves the output untouched and returns true (defaults apply).

bool TakeString(const JsonValue& doc, const char* key, std::string* out,
                std::string* error, bool* present = nullptr) {
  const JsonValue* v = doc.Find(key);
  if (v == nullptr) return true;
  if (!v->is_string()) {
    *error = std::string(key) + " must be a string";
    return false;
  }
  *out = v->AsString();
  if (present != nullptr) *present = true;
  return true;
}

bool TakeDouble(const JsonValue& doc, const char* key, double* out,
                std::string* error, bool* present = nullptr) {
  const JsonValue* v = doc.Find(key);
  if (v == nullptr) return true;
  if (!v->is_number()) {
    *error = std::string(key) + " must be a number";
    return false;
  }
  *out = v->AsNumber();
  if (present != nullptr) *present = true;
  return true;
}

/// Integer fields arrive as JSON doubles; reject non-integral values and
/// anything outside [0, max] instead of truncating. 2^53 bounds what a
/// double can represent exactly, which comfortably covers every id, count
/// and millisecond field of the protocol.
bool TakeUint(const JsonValue& doc, const char* key, uint64_t max,
              uint64_t* out, std::string* error, bool* present = nullptr) {
  const JsonValue* v = doc.Find(key);
  if (v == nullptr) return true;
  if (!v->is_number()) {
    *error = std::string(key) + " must be a number";
    return false;
  }
  const double d = v->AsNumber();
  constexpr double kExactLimit = 9007199254740992.0;  // 2^53
  if (!std::isfinite(d) || d < 0.0 || d != std::floor(d) ||
      d >= kExactLimit) {
    *error = std::string(key) + " must be a non-negative integer";
    return false;
  }
  const uint64_t u = static_cast<uint64_t>(d);
  if (u > max) {
    *error = std::string(key) + " is out of range";
    return false;
  }
  *out = u;
  if (present != nullptr) *present = true;
  return true;
}

bool ParseFeatures(const JsonValue& doc, std::vector<Feature>* out,
                   std::string* error) {
  const JsonValue* v = doc.Find("features");
  if (v == nullptr || !v->is_array()) {
    *error = "features must be an array of [dim, weight] pairs";
    return false;
  }
  out->clear();
  out->reserve(v->size());
  uint64_t last_dim = 0;
  for (size_t i = 0; i < v->size(); ++i) {
    const JsonValue& pair = (*v)[i];
    if (!pair.is_array() || pair.size() != 2 || !pair[0].is_number() ||
        !pair[1].is_number()) {
      *error = "features must be an array of [dim, weight] pairs";
      return false;
    }
    const double dim = pair[0].AsNumber();
    const double weight = pair[1].AsNumber();
    if (!std::isfinite(dim) || dim < 0.0 || dim != std::floor(dim) ||
        dim > std::numeric_limits<DimId>::max()) {
      *error = "feature dim must be an integer vector dimension";
      return false;
    }
    // SparseVector requires strictly increasing dims and positive finite
    // weights; checking here turns a would-be VSJ_CHECK abort into a
    // bad_request response.
    if (i > 0 && static_cast<uint64_t>(dim) <= last_dim) {
      *error = "feature dims must be strictly increasing";
      return false;
    }
    if (!std::isfinite(weight) || weight <= 0.0) {
      *error = "feature weights must be finite and positive";
      return false;
    }
    last_dim = static_cast<uint64_t>(dim);
    out->push_back(Feature{static_cast<DimId>(dim),
                           static_cast<float>(weight)});
  }
  if (out->empty()) {
    *error = "features must not be empty";
    return false;
  }
  return true;
}

}  // namespace

RpcError ParseRpcRequest(const JsonValue& doc, RpcRequest* request,
                         std::string* error) {
  *request = RpcRequest{};
  if (!doc.is_object()) {
    *error = "request must be a JSON object";
    return RpcError::kBadJson;
  }
  // The correlation id parses first so even a failed parse can be
  // correlated by the client.
  if (!TakeUint(doc, "id", std::numeric_limits<uint64_t>::max(), &request->id,
                error)) {
    return RpcError::kBadRequest;
  }

  const JsonValue* op = doc.Find("op");
  if (op == nullptr || !op->is_string()) {
    *error = "op must be a string";
    return RpcError::kBadRequest;
  }
  const std::string& op_name = op->AsString();
  if (op_name == "estimate") {
    request->op = RpcOp::kEstimate;
  } else if (op_name == "insert") {
    request->op = RpcOp::kInsert;
  } else if (op_name == "remove") {
    request->op = RpcOp::kRemove;
  } else if (op_name == "erase") {
    request->op = RpcOp::kErase;
  } else if (op_name == "add_vector") {
    request->op = RpcOp::kAddVector;
  } else if (op_name == "ping") {
    request->op = RpcOp::kPing;
  } else if (op_name == "stats") {
    request->op = RpcOp::kStats;
  } else if (op_name == "sleep") {
    request->op = RpcOp::kSleep;
  } else {
    *error = "unknown op '" + op_name + "'";
    return RpcError::kUnknownOp;
  }

  if (!TakeString(doc, "tenant", &request->tenant, error)) {
    return RpcError::kBadRequest;
  }
  if (!TakeUint(doc, "timeout_ms", 86400000ull, &request->timeout_ms,
                error)) {
    return RpcError::kBadRequest;
  }

  const bool needs_tenant =
      request->op != RpcOp::kPing && request->op != RpcOp::kSleep;
  if (needs_tenant && request->tenant.empty()) {
    *error = "tenant is required";
    return RpcError::kBadRequest;
  }

  switch (request->op) {
    case RpcOp::kEstimate: {
      EstimateRequest& e = request->estimate;
      if (!TakeString(doc, "estimator", &e.estimator_name, error)) {
        return RpcError::kBadRequest;
      }
      bool has_tau = false;
      // tau passes through unchecked (NaN/inf included): the validation
      // layer owns the range rules and names the violated one.
      if (!TakeDouble(doc, "tau", &e.tau, error, &has_tau)) {
        return RpcError::kBadRequest;
      }
      if (!has_tau) {
        *error = "tau is required";
        return RpcError::kBadRequest;
      }
      uint64_t trials = 1;
      if (!TakeUint(doc, "trials", 1u << 20, &trials, error)) {
        return RpcError::kBadRequest;
      }
      e.trials = static_cast<size_t>(trials);
      if (!TakeUint(doc, "seed", std::numeric_limits<uint64_t>::max(),
                    &e.seed, error)) {
        return RpcError::kBadRequest;
      }
      if (!TakeDouble(doc, "max_rel_error", &e.max_rel_error, error)) {
        return RpcError::kBadRequest;
      }
      uint64_t value = 0;
      bool present = false;
      if (!TakeUint(doc, "sample_size_h", std::numeric_limits<uint64_t>::max(),
                    &value, error, &present)) {
        return RpcError::kBadRequest;
      }
      if (present) e.sample_size_h = value;
      present = false;
      if (!TakeUint(doc, "sample_size_l", std::numeric_limits<uint64_t>::max(),
                    &value, error, &present)) {
        return RpcError::kBadRequest;
      }
      if (present) e.sample_size_l = value;
      present = false;
      if (!TakeUint(doc, "delta", std::numeric_limits<uint64_t>::max(), &value,
                    error, &present)) {
        return RpcError::kBadRequest;
      }
      if (present) e.delta = value;
      break;
    }
    case RpcOp::kInsert:
    case RpcOp::kRemove:
    case RpcOp::kErase: {
      uint64_t id = 0;
      bool present = false;
      if (!TakeUint(doc, "vector_id", std::numeric_limits<VectorId>::max(),
                    &id, error, &present)) {
        return RpcError::kBadRequest;
      }
      if (!present) {
        *error = "vector_id is required";
        return RpcError::kBadRequest;
      }
      request->vector_id = static_cast<VectorId>(id);
      break;
    }
    case RpcOp::kAddVector:
      if (!ParseFeatures(doc, &request->features, error)) {
        return RpcError::kBadRequest;
      }
      break;
    case RpcOp::kSleep:
      // Capped at 10 s: sleep exists for tests, not for wedging workers.
      if (!TakeUint(doc, "sleep_ms", 10000ull, &request->sleep_ms, error)) {
        return RpcError::kBadRequest;
      }
      break;
    case RpcOp::kPing:
    case RpcOp::kStats:
      break;
  }
  return RpcError::kNone;
}

std::string MakeErrorPayload(uint64_t id, RpcError error,
                             const std::string& message) {
  std::string out = "{\"id\":";
  JsonValue::AppendNumber(&out, static_cast<double>(id));
  out += ",\"ok\":false,\"error\":\"";
  out += RpcErrorName(error);
  out += "\",\"retryable\":";
  out += RpcErrorRetryable(error) ? "true" : "false";
  out += ",\"message\":";
  JsonValue::AppendQuoted(&out, message);
  out += "}";
  return out;
}

std::string MakeEstimatePayload(uint64_t id,
                                const EstimateResponse& response) {
  // Layout mirrors vsjoin_estimate's AppendResponseJson, with the RPC
  // envelope (id, ok) in front: the CI smoke test strips the envelope and
  // diffs the rest against the CLI's golden output byte-for-byte.
  const auto g17 = [](std::string* out, double v) {
    if (!std::isfinite(v)) {
      out->append("null");
      return;
    }
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    out->append(buffer);
  };
  std::string out = "{\"id\":";
  JsonValue::AppendNumber(&out, static_cast<double>(id));
  out += ",\"ok\":true,\"estimator\":";
  JsonValue::AppendQuoted(&out, response.estimator_name);
  out += ",\"tau\":";
  g17(&out, response.tau);
  out += ",\"trials\":" + std::to_string(response.trials);
  out += ",\"estimate\":";
  g17(&out, response.mean_estimate);
  if (response.trials >= 2) {
    out += ",\"std_dev\":";
    g17(&out, response.std_dev);
    out += ",\"std_error\":";
    g17(&out, response.std_error);
  }
  out += ",\"pairs_evaluated\":" + std::to_string(response.pairs_evaluated);
  out += ",\"num_unguaranteed\":" + std::to_string(response.num_unguaranteed);
  out += ",\"from_cache\":";
  out += response.from_cache ? "true" : "false";
  out += "}";
  return out;
}

JsonValue MakeOkResponse(uint64_t id) {
  JsonValue v = JsonValue::Object();
  v.Set("id", JsonValue::Number(static_cast<double>(id)));
  v.Set("ok", JsonValue::Bool(true));
  return v;
}

}  // namespace vsj::net
