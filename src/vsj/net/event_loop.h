// Thin epoll wrapper for the serving layer's single loop thread.
//
// One EventLoop owns one epoll instance plus an eventfd for cross-thread
// wakeups. Registered fds dispatch to per-fd callbacks from Poll(), which
// the owner drives from exactly one thread; only Wake() may be called
// from other threads. Registration is edge-triggered by convention — the
// server's read/write handlers always run their fd to EAGAIN.
//
// Deferred close: a callback that tears down another registered fd during
// the same dispatch batch must go through DeferClose(), which removes the
// registration immediately (so a stale event later in the batch is
// skipped) but delays the ::close() to the end of the batch — otherwise
// the kernel could recycle the fd number mid-batch and a stale event
// would fire on the wrong connection.

#ifndef VSJ_NET_EVENT_LOOP_H_
#define VSJ_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace vsj::net {

class EventLoop {
 public:
  /// Receives the epoll event mask (EPOLLIN | EPOLLOUT | EPOLLHUP | ...).
  using Callback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when epoll/eventfd creation failed at construction.
  bool ok() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  /// Registers `fd` for `events` (caller includes EPOLLET as desired).
  bool Add(int fd, uint32_t events, Callback callback);

  /// Changes the event mask of a registered fd.
  bool Modify(int fd, uint32_t events);

  /// Unregisters `fd` without closing it.
  void Remove(int fd);

  /// Unregisters `fd` and closes it after the current dispatch batch
  /// (immediately when called outside Poll()).
  void DeferClose(int fd);

  /// Waits up to `timeout_ms` (-1 = forever) and dispatches every ready
  /// event. Returns the number of events dispatched, 0 on timeout, -1 on
  /// a poll error. Wakeups from Wake() count as dispatched events.
  int Poll(int timeout_ms);

  /// Thread-safe: makes a concurrent / subsequent Poll() return promptly.
  void Wake();

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::unordered_map<int, Callback> callbacks_;
  std::vector<int> deferred_closes_;
  bool dispatching_ = false;
};

}  // namespace vsj::net

#endif  // VSJ_NET_EVENT_LOOP_H_
