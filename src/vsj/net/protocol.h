// RPC protocol of the serving layer: request parsing and response
// building over net/json framing.
//
// Every frame carries one JSON object. Requests name an op, a tenant and
// op-specific fields; responses echo the client correlation id and either
// the op's result ("ok":true) or a typed error ("ok":false, "error":
// "<code>", "message":"<diagnostic>"). The error codes are the protocol's
// stable vocabulary — tests and clients match on them, never on message
// text.
//
// Request schema (estimate shown; other ops use a subset):
//
//   {"id": 7, "op": "estimate", "tenant": "wiki",
//    "estimator": "LSH-SS", "tau": 0.8, "trials": 4, "seed": 1,
//    "max_rel_error": 0.0, "sample_size_h": 100, "sample_size_l": 100,
//    "delta": 10, "timeout_ms": 250}
//
// Parsing is strict about types and ranges but lenient about unknown
// keys (forward compatibility). Numeric fields arrive as doubles (JSON);
// integer fields reject non-integral or out-of-range values rather than
// silently truncating. Non-finite tau/max_rel_error survive parsing on
// purpose — ValidateEstimateRequest rejects them with a named diagnostic
// (the "1e999" regression), which the server maps to kBadRequest.
//
// Estimate responses reuse the vsjoin_estimate --json field conventions
// (%.17g doubles, std_dev/std_error omitted below two trials) so the
// loopback smoke test can diff server output against the CLI's golden.

#ifndef VSJ_NET_PROTOCOL_H_
#define VSJ_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "vsj/net/json.h"
#include "vsj/service/estimate_request.h"
#include "vsj/vector/sparse_vector.h"

namespace vsj::net {

/// Operations a frame can request.
enum class RpcOp {
  kEstimate,    ///< Run one estimate on the tenant's engine.
  kInsert,      ///< Make backing-store vector `vector_id` live.
  kRemove,      ///< Expire live vector `vector_id`.
  kErase,       ///< Expire and tombstone `vector_id`.
  kAddVector,   ///< Append a new vector; response carries its id.
  kPing,        ///< Liveness probe; no tenant required.
  kStats,       ///< Tenant engine stats (epoch, live count, cache).
  kSleep,       ///< Debug: hold a worker for sleep_ms. Used by the
                ///< admission-control and timeout tests to occupy the
                ///< server deterministically; disabled unless the server
                ///< runs with enable_debug_ops.
};

/// Stable protocol error vocabulary.
enum class RpcError {
  kNone = 0,           ///< Not an error (parse succeeded).
  kBadFrame,           ///< Framing violation (oversized length prefix).
  kBadJson,            ///< Payload is not a well-formed JSON object.
  kBadRequest,         ///< Schema/type/range violation, or the request
                       ///< failed ValidateEstimateRequest.
  kUnknownOp,          ///< "op" names no known operation.
  kUnknownTenant,      ///< No snapshot by that name under the root.
  kTenantUnavailable,  ///< The snapshot exists but failed to open/restore.
  kUnsupported,        ///< Op not supported by this tenant flavor (e.g.
                       ///< mutations on a static mmap tenant).
  kOverloaded,         ///< Admission control: too many requests in flight.
  kTimeout,            ///< The per-request deadline expired in queue.
  kShuttingDown,       ///< Server is draining; request not accepted.
};

/// Wire name of an error code ("bad_request", "timeout", ...).
const char* RpcErrorName(RpcError error);

/// True when a client may retry the identical request and reasonably
/// expect success: transient server conditions (kOverloaded, kTimeout,
/// kShuttingDown — another replica, or the same one post-restart, can
/// serve it). False for request defects (bad_json, bad_request,
/// unknown_*, unsupported) where a retry would fail identically, and for
/// kTenantUnavailable, which needs operator intervention. Error payloads
/// carry this as "retryable" so clients don't hard-code the taxonomy.
bool RpcErrorRetryable(RpcError error);

/// Wire name of an op ("estimate", "add_vector", ...).
const char* RpcOpName(RpcOp op);

/// One parsed request frame.
struct RpcRequest {
  /// Client correlation id, echoed verbatim in the response (0 when the
  /// client omits it).
  uint64_t id = 0;
  RpcOp op = RpcOp::kPing;
  std::string tenant;

  /// kEstimate payload.
  EstimateRequest estimate;

  /// kInsert / kRemove / kErase target.
  VectorId vector_id = 0;

  /// kAddVector payload: strictly increasing dims, positive weights
  /// (checked by the parser so SparseVector construction cannot abort).
  std::vector<Feature> features;

  /// Per-request deadline override; 0 = server default.
  uint64_t timeout_ms = 0;

  /// kSleep hold duration.
  uint64_t sleep_ms = 0;
};

/// Parses one frame payload (already JSON-decoded) into `*request`.
/// Returns kNone on success; otherwise the error to respond with, with a
/// human diagnostic in `*error`. On failure `request->id` is still filled
/// in when the frame carried a valid id, so the error response can be
/// correlated.
RpcError ParseRpcRequest(const JsonValue& doc, RpcRequest* request,
                         std::string* error);

/// Builds an "ok":false response payload.
std::string MakeErrorPayload(uint64_t id, RpcError error,
                             const std::string& message);

/// Builds the "ok":true payload for an estimate response. Field layout
/// matches vsjoin_estimate --json: std_dev/std_error appear only when the
/// response aggregated at least two trials; doubles print as %.17g.
std::string MakeEstimatePayload(uint64_t id, const EstimateResponse& response);

/// Starts an "ok":true response object with the correlation id set; the
/// caller chains .Set(...) for op-specific fields and serializes.
JsonValue MakeOkResponse(uint64_t id);

}  // namespace vsj::net

#endif  // VSJ_NET_PROTOCOL_H_
