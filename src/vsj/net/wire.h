// Length-prefixed binary framing for the network serving layer.
//
// A frame on the wire is a 4-byte little-endian unsigned payload length
// followed by that many payload bytes (JSON for this protocol, but the
// framing layer is payload-agnostic). The decoder is incremental — feed
// it whatever the socket produced and poll for complete frames — and it
// enforces the robustness contract the server tests pin down:
//
//   * The length prefix is inspected *before* any payload accumulation.
//     An oversized prefix (a hostile peer claiming a 4 GiB frame) is
//     rejected with kTooLarge without allocating payload space; the
//     connection is then torn down by the caller.
//   * Truncated input is simply kNeedMore — a peer that disconnects
//     mid-frame leaves no partial frame visible to the protocol layer.
//
// The decoder owns one contiguous buffer and compacts lazily (consumed
// bytes are dropped only when the unread remainder is small relative to
// the buffer), so steady-state pipelined traffic does not memmove per
// frame.

#ifndef VSJ_NET_WIRE_H_
#define VSJ_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace vsj::net {

/// Hard ceiling a decoder will accept as a frame length (16 MiB). Servers
/// typically configure something far smaller; this bound exists so even a
/// misconfigured limit cannot make the decoder allocate absurd buffers.
inline constexpr uint32_t kAbsoluteMaxFrameBytes = 16u << 20;

/// Appends one frame (length prefix + payload) to `out`. The payload must
/// be at most kAbsoluteMaxFrameBytes.
void AppendFrame(std::string* out, std::string_view payload);

/// Incremental frame decoder over a byte stream.
class FrameDecoder {
 public:
  enum class Status {
    kFrame,     ///< A complete frame is available in *payload.
    kNeedMore,  ///< No complete frame buffered yet; feed more bytes.
    kTooLarge,  ///< The length prefix exceeds the limit. Terminal: the
                ///< stream is unsynchronized and must be closed.
  };

  /// `max_frame_bytes` caps the payload length this decoder will accept;
  /// it is clamped to kAbsoluteMaxFrameBytes.
  explicit FrameDecoder(uint32_t max_frame_bytes = kAbsoluteMaxFrameBytes);

  /// Appends raw bytes from the stream to the internal buffer.
  void Feed(std::string_view bytes);

  /// Extracts the next complete frame. On kFrame, *payload views the
  /// payload bytes; the view stays valid until the next Feed/Next call.
  /// Once kTooLarge is returned every further call returns kTooLarge.
  Status Next(std::string_view* payload);

  /// Bytes buffered but not yet returned as frames.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  uint32_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  uint32_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
};

}  // namespace vsj::net

#endif  // VSJ_NET_WIRE_H_
