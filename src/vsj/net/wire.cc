#include "vsj/net/wire.h"

#include <algorithm>

#include "vsj/util/check.h"

namespace vsj::net {

void AppendFrame(std::string* out, std::string_view payload) {
  VSJ_CHECK_MSG(payload.size() <= kAbsoluteMaxFrameBytes,
                "frame payload of %zu bytes exceeds the wire limit",
                payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  char prefix[4] = {
      static_cast<char>(length & 0xFF),
      static_cast<char>((length >> 8) & 0xFF),
      static_cast<char>((length >> 16) & 0xFF),
      static_cast<char>((length >> 24) & 0xFF),
  };
  out->append(prefix, sizeof(prefix));
  out->append(payload.data(), payload.size());
}

FrameDecoder::FrameDecoder(uint32_t max_frame_bytes)
    : max_frame_bytes_(std::min(max_frame_bytes, kAbsoluteMaxFrameBytes)) {}

void FrameDecoder::Feed(std::string_view bytes) {
  if (poisoned_) return;  // stream is dead; don't accumulate
  // Compact before growing when the live remainder is small — O(1)
  // amortized, and pipelined streams mostly append to an empty buffer.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

FrameDecoder::Status FrameDecoder::Next(std::string_view* payload) {
  if (poisoned_) return Status::kTooLarge;
  const size_t available = buffer_.size() - consumed_;
  if (available < 4) return Status::kNeedMore;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const uint32_t length = static_cast<uint32_t>(p[0]) |
                          (static_cast<uint32_t>(p[1]) << 8) |
                          (static_cast<uint32_t>(p[2]) << 16) |
                          (static_cast<uint32_t>(p[3]) << 24);
  // The limit check happens on the prefix alone: a hostile length never
  // causes payload-sized accumulation, because the caller stops feeding a
  // poisoned decoder and closes the connection.
  if (length > max_frame_bytes_) {
    poisoned_ = true;
    return Status::kTooLarge;
  }
  if (available < 4 + static_cast<size_t>(length)) return Status::kNeedMore;
  *payload = std::string_view(buffer_.data() + consumed_ + 4, length);
  consumed_ += 4 + static_cast<size_t>(length);
  return Status::kFrame;
}

}  // namespace vsj::net
