// The network serving layer: a non-blocking epoll server multiplexing
// many client connections onto the estimation engines of a
// TenantRegistry, with cross-connection request batching.
//
// Threading model
// ---------------
// One *loop thread* owns every socket: it accepts, reads, parses frames
// (net/wire + net/json + net/protocol), writes responses, and never
// touches an estimation engine. Parsed requests go into per-tenant FIFO
// queues; N *worker threads* drain them. A worker takes one tenant's
// pending run (up to max_batch requests, order preserved), resolves the
// tenant through the registry (lazily opening snapshots), groups the
// consecutive estimate requests of the run into ONE
// EstimateBatchShared() call — this is the cross-connection batching:
// requests that arrived on different sockets within the same drain
// amortize the sequential cache pre-pass and the miss-grouping of the
// trial runner — executes mutations in arrival order (each mutation
// flushes the estimate run collected so far, preserving
// mutation/estimate ordering per tenant), and pushes finished responses
// onto a completion queue. An eventfd wake hands them back to the loop
// thread, which frames and writes them.
//
// Because the batch call is the *shared-stream* flavor, every response
// is bit-identical to an in-process Estimate() call with the same
// parameters — how the server happened to pack concurrent connections
// into batches is unobservable in the results.
//
// Admission control: at most max_inflight requests may be queued or
// executing; beyond that requests are refused immediately with
// "overloaded". Each request carries a deadline (its timeout_ms, or the
// server default); a request whose deadline expires while still queued
// gets a clean "timeout" error instead of occupying an engine.
//
// Graceful drain: BeginDrain() stops accepting connections and refuses
// new requests with "shutting_down", but everything already admitted
// runs to completion and every response is flushed before the loop
// exits. The vsjoin_server tool wires SIGTERM to BeginDrain and flushes
// dirty tenants after WaitUntilStopped().
//
// Robustness contract (pinned by tests/net/server_test.cc): truncated
// frames, oversized length prefixes, garbage JSON, unknown tenants and
// mid-request disconnects each produce a typed error (or a silently
// dropped response, for disconnects) and never stop the server from
// serving other connections.

#ifndef VSJ_NET_SERVER_H_
#define VSJ_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "vsj/io/io_status.h"
#include "vsj/net/event_loop.h"
#include "vsj/net/protocol.h"
#include "vsj/net/wire.h"
#include "vsj/service/tenant_registry.h"

namespace vsj::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; Server::port() reports the bound one.
  uint16_t port = 0;

  /// Worker threads draining tenant queues.
  size_t num_workers = 1;

  /// Admission cap: requests queued or executing. Beyond it new requests
  /// are refused with "overloaded".
  size_t max_inflight = 1024;

  /// Frame payload cap; larger length prefixes poison the connection
  /// (typed "bad_frame" response, then close) without allocating.
  uint32_t max_frame_bytes = 1u << 20;

  /// Default per-request deadline (0 = none). A request's own timeout_ms
  /// overrides it.
  uint64_t default_timeout_ms = 0;

  /// Most requests one worker drain takes from a tenant queue — the
  /// upper bound on cross-connection batch size.
  size_t max_batch = 64;

  /// Enables the "sleep" debug op (tests use it to occupy workers
  /// deterministically); off for production servers.
  bool enable_debug_ops = false;

  /// Borrowed; must outlive the server. Required.
  TenantRegistry* registry = nullptr;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the loop + worker threads. On failure the
  /// IoStatus says why (address in use, bad bind address, ...).
  IoStatus Start();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Graceful drain; see file comment. Safe from any thread / a signal
  /// handler's forwarding thread.
  void BeginDrain();

  /// Hard stop: abandons queued requests (their responses are dropped)
  /// and tears connections down. Safe from any thread.
  void Stop();

  /// Joins every server thread. Returns immediately if never started.
  void WaitUntilStopped();

  /// True once the loop thread has exited.
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    FrameDecoder decoder;
    std::string out;            ///< Bytes framed but not yet written.
    size_t out_offset = 0;      ///< Prefix of `out` already written.
    bool close_after_flush = false;
    bool want_write = false;    ///< EPOLLOUT currently armed.

    explicit Connection(uint32_t max_frame_bytes)
        : decoder(max_frame_bytes) {}
  };

  struct Pending {
    uint64_t conn_id = 0;
    RpcRequest request;
    Clock::time_point enqueued;
    Clock::time_point deadline;  ///< Clock::time_point::max() = none.
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string payload;
  };

  struct TenantQueue {
    std::deque<Pending> queue;
    bool busy = false;       ///< A worker is draining this tenant.
    bool scheduled = false;  ///< Present in ready_.
  };

  // --- loop thread ---
  void LoopThread();
  void OnAcceptable();
  void OnConnectionEvent(uint64_t conn_id, uint32_t events);
  void HandleFrame(Connection& conn, std::string_view payload);
  void Respond(Connection& conn, std::string payload);
  void FlushWrites(Connection& conn);
  void CloseConnection(uint64_t conn_id);
  void DrainCompletions();
  bool DrainComplete();

  // --- worker threads ---
  void WorkerThread();
  void ProcessRun(const std::string& tenant_name, std::vector<Pending> run);
  void Complete(std::vector<Completion>* out, const Pending& pending,
                std::string payload);

  /// Enqueues an admitted request; called on the loop thread.
  void Enqueue(Connection& conn, RpcRequest request);

  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  EventLoop loop_;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stop_workers_{false};
  std::atomic<bool> stopped_{false};
  std::mutex join_mutex_;

  // Loop-thread-owned.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;

  // Shared queue state.
  std::mutex queue_mutex_;
  std::condition_variable work_cv_;
  std::unordered_map<std::string, TenantQueue> tenant_queues_;
  std::deque<std::string> ready_;
  std::atomic<size_t> inflight_{0};

  std::mutex completion_mutex_;
  std::vector<Completion> completions_;
};

}  // namespace vsj::net

#endif  // VSJ_NET_SERVER_H_
