#include "vsj/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "vsj/fault/fault.h"
#include "vsj/net/wire.h"
#include "vsj/obs/obs.h"

namespace vsj::net {

namespace {

/// Per-tenant metrics use dynamic names, so they go through the registry
/// directly instead of the literal-name macros; same compile/runtime
/// gating.
void RecordTenantRequest(const std::string& tenant, uint64_t latency_ns) {
#if VSJ_METRICS_COMPILED
  if (!obs::MetricsEnabled() || tenant.empty()) return;
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("server.tenant." + tenant + ".requests").Add(1);
  registry.GetHistogram("server.tenant." + tenant + ".latency_ns")
      .Record(latency_ns);
#else
  (void)tenant;
  (void)latency_ns;
#endif
}

void RecordTenantBatch(const std::string& tenant, size_t batch_size) {
#if VSJ_METRICS_COMPILED
  if (!obs::MetricsEnabled() || tenant.empty()) return;
  obs::MetricRegistry::Global()
      .GetHistogram("server.tenant." + tenant + ".batch_size")
      .Record(batch_size);
#else
  (void)tenant;
  (void)batch_size;
#endif
}

void AddTenantQueueDepth(const std::string& tenant, int64_t delta) {
#if VSJ_METRICS_COMPILED
  if (!obs::MetricsEnabled() || tenant.empty()) return;
  obs::MetricRegistry::Global()
      .GetGauge("server.tenant." + tenant + ".queue_depth")
      .Add(delta);
#else
  (void)tenant;
  (void)delta;
#endif
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
}

Server::~Server() {
  Stop();
  WaitUntilStopped();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

IoStatus Server::Start() {
  if (options_.registry == nullptr) {
    return IoStatus::Fail(IoError::kIoError, "server requires a registry");
  }
  if (!loop_.ok()) {
    return IoStatus::Fail(IoError::kIoError, "epoll setup failed");
  }
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return IoStatus::Fail(IoError::kIoError, "socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return IoStatus::Fail(IoError::kIoError,
                          "bad bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return IoStatus::Fail(
        IoError::kIoError,
        "bind to " + options_.bind_address + " failed: " +
            std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return IoStatus::Fail(IoError::kIoError, "listen() failed");
  }
  struct sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                &bound_len);
  port_ = ntohs(bound.sin_port);

  if (!loop_.Add(listen_fd_, EPOLLIN | EPOLLET,
                 [this](uint32_t) { OnAcceptable(); })) {
    return IoStatus::Fail(IoError::kIoError, "epoll registration failed");
  }
  loop_thread_ = std::thread([this] { LoopThread(); });
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerThread(); });
  }
  started_.store(true, std::memory_order_release);
  return IoStatus::Ok();
}

void Server::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  loop_.Wake();
}

void Server::Stop() {
  draining_.store(true, std::memory_order_release);
  stop_requested_.store(true, std::memory_order_release);
  stop_workers_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  loop_.Wake();
}

void Server::WaitUntilStopped() {
  std::lock_guard<std::mutex> lock(join_mutex_);
  if (loop_thread_.joinable()) loop_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

// ---------------------------------------------------------------- loop

void Server::LoopThread() {
  bool accepting = true;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (draining_.load(std::memory_order_acquire) && accepting) {
      // Drain step 1: no new connections. Closing the listening socket
      // (not just deregistering it) makes the kernel refuse connects
      // immediately — otherwise the backlog would keep accepting peers
      // that can never be served.
      loop_.Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
      accepting = false;
    }
    // While draining, poll with a timeout so drain-completion is checked
    // even if no event arrives.
    const int timeout_ms =
        draining_.load(std::memory_order_acquire) ? 50 : -1;
    loop_.Poll(timeout_ms);
    DrainCompletions();
    if (draining_.load(std::memory_order_acquire) && DrainComplete()) break;
  }
  // Workers stop once the loop is down (on graceful drain their queues
  // are already empty; on hard stop leftover queue entries are dropped).
  stop_workers_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  for (const auto& [id, conn] : connections_) loop_.DeferClose(conn->fd);
  connections_.clear();
  if (accepting) {
    loop_.Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  stopped_.store(true, std::memory_order_release);
}

void Server::OnAcceptable() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;  // EAGAIN, or a transient accept error
    if (VSJ_FAULT_HIT("net.accept").fired()) {
      // Injected accept failure: the client sees an immediate hangup, as
      // with an accept() that ran out of descriptors.
      VSJ_COUNTER_ADD("server.injected_accept_failures", 1);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
    conn->id = id;
    conn->fd = fd;
    if (!loop_.Add(fd, EPOLLIN | EPOLLRDHUP | EPOLLET,
                   [this, id](uint32_t events) {
                     OnConnectionEvent(id, events);
                   })) {
      ::close(fd);
      continue;
    }
    connections_.emplace(id, std::move(conn));
    VSJ_COUNTER_ADD("server.accepts", 1);
    VSJ_GAUGE_ADD("server.connections", 1);
  }
}

void Server::OnConnectionEvent(uint64_t conn_id, uint32_t events) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;

  bool peer_closed = false;
  if (events & EPOLLIN) {
    char buffer[65536];
    while (true) {
      const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
      if (n > 0) {
        conn.decoder.Feed(std::string_view(buffer, static_cast<size_t>(n)));
        continue;
      }
      if (n == 0) {
        peer_closed = true;
      } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
        peer_closed = true;
      }
      break;
    }
    std::string_view payload;
    while (!conn.close_after_flush) {
      const FrameDecoder::Status status = conn.decoder.Next(&payload);
      if (status == FrameDecoder::Status::kFrame) {
        HandleFrame(conn, payload);
        continue;
      }
      if (status == FrameDecoder::Status::kTooLarge) {
        // The prefix was rejected before any payload buffering; the
        // stream cannot be resynchronized, so answer and hang up.
        VSJ_COUNTER_ADD("server.bad_frames", 1);
        Respond(conn,
                MakeErrorPayload(
                    0, RpcError::kBadFrame,
                    "frame length exceeds the " +
                        std::to_string(options_.max_frame_bytes) +
                        " byte limit"));
        conn.close_after_flush = true;
      }
      break;
    }
  }
  if (events & EPOLLOUT) FlushWrites(conn);
  if (peer_closed || (events & (EPOLLHUP | EPOLLERR))) {
    // Peer is gone: responses still in flight for this connection are
    // dropped when the completion finds no connection to deliver to.
    CloseConnection(conn_id);
    return;
  }
  if (events & EPOLLRDHUP) conn.close_after_flush = true;
  if (conn.close_after_flush && conn.out_offset == conn.out.size()) {
    CloseConnection(conn_id);
  }
}

void Server::HandleFrame(Connection& conn, std::string_view payload) {
  if (VSJ_FAULT_HIT("net.frame").fired()) {
    // Injected connection reset mid-request: the frame is dropped with no
    // response and the connection closes, exercising the client's
    // reconnect/retry path. Must not CloseConnection here — the decode
    // loop in OnConnectionEvent still holds `conn`.
    VSJ_COUNTER_ADD("server.injected_resets", 1);
    conn.out.clear();
    conn.out_offset = 0;
    conn.close_after_flush = true;
    return;
  }
  VSJ_COUNTER_ADD("server.requests", 1);
  JsonValue doc;
  std::string error;
  if (!ParseJson(payload, &doc, &error)) {
    Respond(conn, MakeErrorPayload(0, RpcError::kBadJson, error));
    return;
  }
  RpcRequest request;
  const RpcError code = ParseRpcRequest(doc, &request, &error);
  if (code != RpcError::kNone) {
    Respond(conn, MakeErrorPayload(request.id, code, error));
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    Respond(conn, MakeErrorPayload(request.id, RpcError::kShuttingDown,
                                   "server is draining"));
    return;
  }
  if (request.op == RpcOp::kPing) {
    Respond(conn, MakeOkResponse(request.id)
                      .Set("pong", JsonValue::Bool(true))
                      .Serialize());
    return;
  }
  if (inflight_.load(std::memory_order_acquire) >= options_.max_inflight) {
    VSJ_COUNTER_ADD("server.overloaded", 1);
    Respond(conn, MakeErrorPayload(
                      request.id, RpcError::kOverloaded,
                      "server is at its in-flight request limit (" +
                          std::to_string(options_.max_inflight) + ")"));
    return;
  }
  Enqueue(conn, std::move(request));
}

void Server::Enqueue(Connection& conn, RpcRequest request) {
  const uint64_t timeout_ms = request.timeout_ms != 0
                                  ? request.timeout_ms
                                  : options_.default_timeout_ms;
  Pending pending;
  pending.conn_id = conn.id;
  pending.enqueued = Clock::now();
  pending.deadline = timeout_ms == 0
                         ? Clock::time_point::max()
                         : pending.enqueued +
                               std::chrono::milliseconds(timeout_ms);
  pending.request = std::move(request);
  // Tenantless debug ops (sleep) queue under "" — their own serial queue.
  const std::string key = pending.request.tenant;
  AddTenantQueueDepth(key, 1);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    TenantQueue& tq = tenant_queues_[key];
    tq.queue.push_back(std::move(pending));
    if (!tq.busy && !tq.scheduled) {
      tq.scheduled = true;
      ready_.push_back(key);
    }
  }
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  VSJ_GAUGE_SET("server.inflight",
                static_cast<int64_t>(inflight_.load(std::memory_order_relaxed)));
  work_cv_.notify_one();
}

void Server::Respond(Connection& conn, std::string payload) {
  AppendFrame(&conn.out, payload);
  VSJ_COUNTER_ADD("server.responses", 1);
  FlushWrites(conn);
}

void Server::FlushWrites(Connection& conn) {
  bool injected_short_write = false;
  while (conn.out_offset < conn.out.size()) {
    size_t chunk = conn.out.size() - conn.out_offset;
    bool short_write = false;
    const fault::FaultHit hit = VSJ_FAULT_HIT("net.write");
    if (hit.fired()) {
      if (hit.kind == fault::FaultKind::kShortWrite) {
        // Deliver at most `arg` bytes this round, then yield as if the
        // socket buffer filled — the rest flushes on EPOLLOUT. Responses
        // must still arrive intact (framing survives partial writes).
        chunk = std::min<size_t>(chunk, hit.arg > 0 ? hit.arg : 1);
        short_write = true;
      } else {
        // Anything else injected here behaves like EPIPE below.
        VSJ_COUNTER_ADD("server.injected_resets", 1);
        conn.out.clear();
        conn.out_offset = 0;
        conn.close_after_flush = true;
        break;
      }
    }
    const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_offset,
                              chunk);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      if (short_write) {  // pretend the buffer filled
        injected_short_write = true;
        break;
      }
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    // Undeliverable (EPIPE & co): drop the buffer and let the top-level
    // close check reap the connection.
    conn.out.clear();
    conn.out_offset = 0;
    conn.close_after_flush = true;
    break;
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
    if (conn.want_write) {
      loop_.Modify(conn.fd, EPOLLIN | EPOLLRDHUP | EPOLLET);
      conn.want_write = false;
    }
  } else if (!conn.want_write || injected_short_write) {
    // On an injected short write the socket never actually blocked, so no
    // EPOLLOUT edge is coming; EPOLL_CTL_MOD re-arms the edge-triggered
    // state and redelivers the still-writable condition.
    loop_.Modify(conn.fd, EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET);
    conn.want_write = true;
  }
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  loop_.DeferClose(it->second->fd);
  connections_.erase(it);
  VSJ_GAUGE_ADD("server.connections", -1);
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // disconnected mid-request
    Connection& conn = *it->second;
    if (conn.close_after_flush) continue;
    Respond(conn, std::move(completion.payload));
    if (conn.close_after_flush && conn.out_offset == conn.out.size()) {
      CloseConnection(completion.conn_id);
    }
  }
}

bool Server::DrainComplete() {
  if (inflight_.load(std::memory_order_acquire) != 0) return false;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    if (!completions_.empty()) return false;
  }
  for (const auto& [id, conn] : connections_) {
    if (conn->out_offset != conn->out.size()) return false;
  }
  return true;
}

// -------------------------------------------------------------- workers

void Server::WorkerThread() {
  while (true) {
    std::string name;
    std::vector<Pending> run;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      work_cv_.wait(lock, [&] {
        return stop_workers_.load(std::memory_order_acquire) ||
               !ready_.empty();
      });
      if (stop_requested_.load(std::memory_order_acquire)) return;
      if (ready_.empty()) return;  // graceful stop, queues empty
      name = std::move(ready_.front());
      ready_.pop_front();
      TenantQueue& tq = tenant_queues_[name];
      tq.scheduled = false;
      tq.busy = true;
      const size_t take = std::min(options_.max_batch, tq.queue.size());
      run.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        run.push_back(std::move(tq.queue.front()));
        tq.queue.pop_front();
      }
    }
    AddTenantQueueDepth(name, -static_cast<int64_t>(run.size()));
    ProcessRun(name, std::move(run));
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      TenantQueue& tq = tenant_queues_[name];
      tq.busy = false;
      if (!tq.queue.empty()) {
        if (!tq.scheduled) {
          tq.scheduled = true;
          ready_.push_back(name);
        }
        work_cv_.notify_one();
      } else if (!tq.scheduled) {
        tenant_queues_.erase(name);
      }
    }
  }
}

void Server::Complete(std::vector<Completion>* out, const Pending& pending,
                      std::string payload) {
  const uint64_t latency_ns =
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                Clock::now() - pending.enqueued)
                                .count());
  VSJ_HIST_RECORD("server.latency_ns", latency_ns);
  RecordTenantRequest(pending.request.tenant, latency_ns);
  out->push_back(Completion{pending.conn_id, std::move(payload)});
}

void Server::ProcessRun(const std::string& tenant_name,
                        std::vector<Pending> run) {
  std::vector<Completion> out;
  out.reserve(run.size());
  const Clock::time_point now = Clock::now();

  // Deadline sweep: a request that expired while queued gets its clean
  // timeout without ever occupying an engine.
  std::vector<Pending> live;
  live.reserve(run.size());
  for (Pending& pending : run) {
    if (pending.deadline < now) {
      VSJ_COUNTER_ADD("server.timeouts", 1);
      Complete(&out, pending,
               MakeErrorPayload(pending.request.id, RpcError::kTimeout,
                                "deadline expired while queued"));
    } else {
      VSJ_HIST_RECORD(
          "server.queue_wait_ns",
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - pending.enqueued)
              .count());
      live.push_back(std::move(pending));
    }
  }

  std::shared_ptr<Tenant> tenant;
  if (!tenant_name.empty() && !live.empty()) {
    const IoStatus status = options_.registry->Acquire(tenant_name, &tenant);
    if (!status.ok()) {
      const RpcError code = status.code == IoError::kNotFound
                                ? RpcError::kUnknownTenant
                                : RpcError::kTenantUnavailable;
      VSJ_COUNTER_ADD("server.tenant_failures", 1);
      for (const Pending& pending : live) {
        Complete(&out, pending,
                 MakeErrorPayload(pending.request.id, code,
                                  status.ToString()));
      }
      live.clear();
    }
  }

  // Cross-connection batching: consecutive estimate requests of the run
  // become one shared-stream batch — one cache pre-pass, one round of
  // miss-grouping — while mutations flush the pending batch so per-tenant
  // mutation/estimate order is preserved.
  std::vector<EstimateRequest> batch;
  std::vector<const Pending*> owners;
  const auto flush = [&] {
    if (batch.empty()) return;
    VSJ_COUNTER_ADD("server.batches", 1);
    VSJ_HIST_RECORD("server.batch_size", batch.size());
    RecordTenantBatch(tenant_name, batch.size());
    const std::vector<EstimateResponse> responses =
        tenant->EstimateBatchShared(batch);
    for (size_t i = 0; i < responses.size(); ++i) {
      Complete(&out, *owners[i],
               MakeEstimatePayload(owners[i]->request.id, responses[i]));
    }
    batch.clear();
    owners.clear();
  };

  for (const Pending& pending : live) {
    const RpcRequest& request = pending.request;
    switch (request.op) {
      case RpcOp::kEstimate: {
        const TenantOpResult check = tenant->ValidateEstimate(request.estimate);
        if (!check.ok()) {
          Complete(&out, pending,
                   MakeErrorPayload(request.id, RpcError::kBadRequest,
                                    check.message));
          break;
        }
        batch.push_back(request.estimate);
        owners.push_back(&pending);
        break;
      }
      case RpcOp::kInsert:
      case RpcOp::kRemove:
      case RpcOp::kErase:
      case RpcOp::kAddVector: {
        flush();
        TenantOpResult result;
        if (request.op == RpcOp::kInsert) {
          result = tenant->Insert(request.vector_id);
        } else if (request.op == RpcOp::kRemove) {
          result = tenant->Remove(request.vector_id);
        } else if (request.op == RpcOp::kErase) {
          result = tenant->Erase(request.vector_id);
        } else {
          result = tenant->AddVector(request.features);
        }
        if (result.ok()) {
          JsonValue ok = MakeOkResponse(request.id);
          if (request.op == RpcOp::kAddVector) {
            ok.Set("vector_id",
                   JsonValue::Number(static_cast<double>(result.value)));
          } else {
            ok.Set("epoch",
                   JsonValue::Number(static_cast<double>(result.value)));
          }
          Complete(&out, pending, ok.Serialize());
        } else {
          const RpcError code =
              result.code == TenantOpResult::Code::kUnsupported
                  ? RpcError::kUnsupported
                  : RpcError::kBadRequest;
          Complete(&out, pending,
                   MakeErrorPayload(request.id, code, result.message));
        }
        break;
      }
      case RpcOp::kStats: {
        flush();
        const TenantStats stats = tenant->Stats();
        JsonValue ok = MakeOkResponse(request.id);
        ok.Set("tenant", JsonValue::Str(tenant_name));
        ok.Set("streaming", JsonValue::Bool(stats.streaming));
        ok.Set("epoch",
               JsonValue::Number(static_cast<double>(stats.epoch)));
        ok.Set("num_vectors",
               JsonValue::Number(static_cast<double>(stats.num_vectors)));
        ok.Set("num_live",
               JsonValue::Number(static_cast<double>(stats.num_live)));
        ok.Set("cache_hits",
               JsonValue::Number(static_cast<double>(stats.cache_hits)));
        ok.Set("cache_misses",
               JsonValue::Number(static_cast<double>(stats.cache_misses)));
        ok.Set("dirty", JsonValue::Bool(stats.dirty));
        ok.Set("checkpoint_failures",
               JsonValue::Number(
                   static_cast<double>(stats.checkpoint_failures)));
        Complete(&out, pending, ok.Serialize());
        break;
      }
      case RpcOp::kSleep: {
        flush();
        if (!options_.enable_debug_ops) {
          Complete(&out, pending,
                   MakeErrorPayload(request.id, RpcError::kBadRequest,
                                    "sleep is a debug op; start the server "
                                    "with debug ops enabled"));
          break;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(request.sleep_ms));
        Complete(&out, pending,
                 MakeOkResponse(request.id)
                     .Set("slept_ms",
                          JsonValue::Number(
                              static_cast<double>(request.sleep_ms)))
                     .Serialize());
        break;
      }
      case RpcOp::kPing:
        // Pings are answered on the loop thread; tolerate one here anyway.
        Complete(&out, pending,
                 MakeOkResponse(request.id)
                     .Set("pong", JsonValue::Bool(true))
                     .Serialize());
        break;
    }
  }
  flush();

  const size_t processed = run.size();
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    for (Completion& completion : out) {
      completions_.push_back(std::move(completion));
    }
  }
  // Order matters for drain detection: completions are visible before the
  // in-flight count drops, so inflight_ == 0 implies every response has
  // been published.
  inflight_.fetch_sub(processed, std::memory_order_acq_rel);
  loop_.Wake();
}

}  // namespace vsj::net
