#include "vsj/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>

namespace vsj::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    // The wake fd is a registered callback like any other: reading the
    // counter resets it, and the dispatched event is the wakeup itself.
    Add(wake_fd_, EPOLLIN | EPOLLET, [this](uint32_t) {
      uint64_t count = 0;
      while (::read(wake_fd_, &count, sizeof(count)) > 0) {
      }
    });
  }
}

EventLoop::~EventLoop() {
  for (const auto& [fd, callback] : callbacks_) {
    if (fd != wake_fd_) ::close(fd);
  }
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::Add(int fd, uint32_t events, Callback callback) {
  struct epoll_event event = {};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) return false;
  callbacks_[fd] = std::move(callback);
  return true;
}

bool EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event event = {};
  event.events = events;
  event.data.fd = fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) == 0;
}

void EventLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::DeferClose(int fd) {
  Remove(fd);
  if (dispatching_) {
    deferred_closes_.push_back(fd);
  } else {
    ::close(fd);
  }
}

int EventLoop::Poll(int timeout_ms) {
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return n;
  dispatching_ = true;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    // A callback earlier in the batch may have removed this fd; its
    // registration is gone, so the stale event is skipped.
    auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;
    // Invoke a copy: the callback may unregister its own fd (destroying
    // the stored std::function) or add fds (rehashing the map).
    const Callback callback = it->second;
    callback(events[i].events);
  }
  dispatching_ = false;
  for (const int fd : deferred_closes_) ::close(fd);
  deferred_closes_.clear();
  return n;
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace vsj::net
