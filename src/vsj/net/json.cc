#include "vsj/net/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vsj::net {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

size_t JsonValue::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) found = &value;  // last duplicate wins
  }
  return found;
}

JsonValue& JsonValue::Append(JsonValue element) {
  type_ = Type::kArray;
  array_.push_back(std::move(element));
  return *this;
}

JsonValue& JsonValue::Set(std::string key, JsonValue value) {
  type_ = Type::kObject;
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

void JsonValue::AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  // Integers below 2^53 have an exact double representation; print them
  // without an exponent or fraction so ids and counts read back as the
  // same integer they were (and the payloads stay human-readable).
  constexpr double kExactLimit = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && std::abs(v) < kExactLimit) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(v));
    out->append(buffer);
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out->append(buffer);
}

void JsonValue::AppendQuoted(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonValue::SerializeTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      AppendNumber(out, number_);
      return;
    case Type::kString:
      AppendQuoted(out, string_);
      return;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& element : array_) {
        if (!first) out->push_back(',');
        first = false;
        element.SerializeTo(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        AppendQuoted(out, key);
        out->push_back(':');
        value.SerializeTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

namespace {

/// Recursive-descent parser over a bounded view. Never throws; every
/// failure path records an offset + message once (the first error wins).
class Parser {
 public:
  Parser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  bool Parse(JsonValue* value, std::string* error) {
    SkipWhitespace();
    if (!ParseValue(value, 0)) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), " at byte %zu", error_offset_);
      *error = error_message_ + buffer;
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), " at byte %zu", pos_);
      *error = std::string("trailing bytes after document") + buffer;
      return false;
    }
    return true;
  }

 private:
  bool Fail(const char* message) {
    if (error_message_.empty()) {
      error_message_ = message;
      error_offset_ = pos_;
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(char expected, const char* message) {
    if (AtEnd() || text_[pos_] != expected) return Fail(message);
    ++pos_;
    return true;
  }

  bool ConsumeKeyword(std::string_view keyword, const char* message) {
    if (text_.substr(pos_, keyword.size()) != keyword) return Fail(message);
    pos_ += keyword.size();
    return true;
  }

  bool ParseValue(JsonValue* value, size_t depth) {
    if (depth > max_depth_) return Fail("nesting too deep");
    if (AtEnd()) return Fail("unexpected end of document");
    switch (Peek()) {
      case 'n':
        if (!ConsumeKeyword("null", "bad literal")) return false;
        *value = JsonValue::Null();
        return true;
      case 't':
        if (!ConsumeKeyword("true", "bad literal")) return false;
        *value = JsonValue::Bool(true);
        return true;
      case 'f':
        if (!ConsumeKeyword("false", "bad literal")) return false;
        *value = JsonValue::Bool(false);
        return true;
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *value = JsonValue::Str(std::move(s));
        return true;
      }
      case '[':
        return ParseArray(value, depth);
      case '{':
        return ParseObject(value, depth);
      default:
        return ParseNumber(value);
    }
  }

  bool ParseArray(JsonValue* value, size_t depth) {
    ++pos_;  // '['
    *value = JsonValue::Array();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      SkipWhitespace();
      if (!ParseValue(&element, depth + 1)) return false;
      value->Append(std::move(element));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue* value, size_t depth) {
    ++pos_;  // '{'
    *value = JsonValue::Object();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':', "expected ':' after object key")) return false;
      SkipWhitespace();
      JsonValue member;
      if (!ParseValue(&member, depth + 1)) return false;
      value->Set(std::move(key), std::move(member));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  void AppendUtf8(std::string* out, uint32_t code_point) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad \\u escape digit");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (AtEnd()) return Fail("truncated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code_point = 0;
          if (!ParseHex4(&code_point)) return false;
          // Surrogate pair: a high surrogate must be followed by \uDC00..
          // \uDFFF; combine the two into one code point.
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("bad low surrogate");
            }
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            return Fail("unpaired low surrogate");
          }
          AppendUtf8(out, code_point);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  bool ParseNumber(JsonValue* value) {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    // Integer part: 0, or a nonzero digit followed by digits. This grammar
    // check is what rejects bare "NaN", "Infinity", "+1", ".5" and "01"
    // before strtod (which would happily accept several of them).
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      pos_ = start;
      return Fail("bad number");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        pos_ = start;
        return Fail("bad number");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        pos_ = start;
        return Fail("bad number");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    // The token passed the JSON grammar; strtod may still saturate an
    // overflowing exponent to ±HUGE_VAL. That is kept deliberately — the
    // request validation layer rejects non-finite fields by name.
    const std::string token(text_.substr(start, pos_ - start));
    *value = JsonValue::Number(std::strtod(token.c_str(), nullptr));
    return true;
  }

  std::string_view text_;
  size_t max_depth_;
  size_t pos_ = 0;
  std::string error_message_;
  size_t error_offset_ = 0;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* value, std::string* error,
               size_t max_depth) {
  return Parser(text, max_depth).Parse(value, error);
}

}  // namespace vsj::net
