#include "vsj/service/streaming_estimation_service.h"

#include <utility>

#include "vsj/lsh/gaussian_projection_cache.h"
#include "vsj/obs/obs.h"
#include "vsj/service/dataset_fingerprint.h"
#include "vsj/service/trial_runner.h"
#include "vsj/util/check.h"
#include "vsj/util/hash.h"

namespace vsj {

namespace {

StreamingCsrStorage RepackIntoArena(const VectorDataset& dataset,
                                    const StreamingStorageOptions& options) {
  StreamingCsrStorage store(options);
  for (VectorRef v : DatasetView(dataset)) store.Append(v);
  return store;
}

}  // namespace

StreamingEstimationService::StreamingEstimationService(
    VectorDataset dataset, StreamingEstimationServiceOptions options)
    : options_(options),
      store_(RepackIntoArena(dataset, options.storage)),
      base_fingerprint_(DatasetFingerprint(dataset)),
      family_(MakeLshFamily(options.measure, options.family_seed)),
      index_(*family_, options.k, options.num_tables),
      // The estimator reads vectors by stable id through the store's slot
      // table, never through the view's size (n comes from the live index),
      // so the view stays usable as AddVector grows the id space.
      estimator_(DatasetView::IdAddressed(store_), index_, options.measure,
                 options.lsh_ss),
      pool_(options.num_threads),
      cache_(options.cache_tau_bucket_width, options.cache_capacity,
             options.cache_num_shards) {
  BuildProjectionCache();
}

void StreamingEstimationService::BuildProjectionCache() {
  projection_cache_ = family_->MakeProjectionCache(
      DatasetView(store_), options_.k * options_.num_tables,
      pool_.num_threads() > 0 ? &pool_ : nullptr);
  index_.AttachProjectionCache(projection_cache_.get());
}

uint64_t StreamingEstimationService::effective_fingerprint() const {
  return HashCombine(base_fingerprint_, epoch_);
}

void StreamingEstimationService::BumpEpoch() {
  ++epoch_;
  cache_.NoteInvalidation();
  // One counter per mutation — the only per-mutation instrumentation on
  // the streaming path, protecting the sub-µs mutation budget.
  VSJ_COUNTER_ADD("service.mutations", 1);
}

VectorId StreamingEstimationService::AddVector(const SparseVector& vector) {
  const VectorId id = store_.Append(vector.ref());
  // The backing store changed; fold it into the epoch so the cache key
  // moves with it (the base fingerprint is frozen at construction).
  BumpEpoch();
  return id;
}

void StreamingEstimationService::Insert(VectorId id) {
  VSJ_CHECK_MSG(store_.Contains(id), "vector %u not in backing store", id);
  index_.Insert(id, store_.Ref(id));
  BumpEpoch();
}

void StreamingEstimationService::Remove(VectorId id) {
  index_.Remove(id);
  BumpEpoch();
}

void StreamingEstimationService::Erase(VectorId id) {
  if (index_.Contains(id)) index_.Remove(id);
  store_.Remove(id);
  BumpEpoch();
}

EstimateResponse StreamingEstimationService::Estimate(
    const EstimateRequest& request) {
  return EstimateBatch({request}).front();
}

std::vector<EstimateResponse> StreamingEstimationService::EstimateBatch(
    const std::vector<EstimateRequest>& requests) {
  return EstimateBatchImpl(requests, /*shared_stream=*/false);
}

std::vector<EstimateResponse> StreamingEstimationService::EstimateBatchShared(
    const std::vector<EstimateRequest>& requests) {
  return EstimateBatchImpl(requests, /*shared_stream=*/true);
}

std::vector<EstimateResponse> StreamingEstimationService::EstimateBatchImpl(
    const std::vector<EstimateRequest>& requests, bool shared_stream) {
  for (const EstimateRequest& request : requests) {
    const char* error = ValidateEstimateRequest(request);
    VSJ_CHECK_MSG(error == nullptr, "invalid EstimateRequest: %s", error);
  }
  // The batch's sample context: flat bucket-of arrays amortizing the
  // SampleL rejection test across every trial of every miss. Built lazily
  // on the first miss — still in the sequential pre-pass, so a fully
  // cache-served batch never pays the O(ℓ·n) export and workers only
  // read. Mutations are externally synchronized against EstimateBatch, so
  // the arrays stay valid for the whole batch.
  StreamingSampleContext context;
  return RunCachedBatch(
      requests, options_.enable_cache ? &cache_ : nullptr,
      effective_fingerprint(), pool_,
      [&](size_t i) {
        VSJ_CHECK_MSG(requests[i].estimator_name == "LSH-SS",
                      "streaming engine only serves LSH-SS");
        if (context.empty()) context.Build(index_, dataset().size());
      },
      [&](size_t i) {
        return Compute(requests[i], shared_stream ? 0 : i, context);
      });
}

EstimateResponse StreamingEstimationService::Compute(
    const EstimateRequest& request, size_t request_index,
    const StreamingSampleContext& context) const {
  const uint32_t num_tables = index_.num_tables();
  StreamingLshSsOptions override_storage;
  const StreamingLshSsOptions* overrides = nullptr;
  if (request.HasSamplingOverrides()) {
    override_storage = options_.lsh_ss;
    if (request.sample_size_h.has_value()) {
      override_storage.sample_size_h = *request.sample_size_h;
    }
    if (request.sample_size_l.has_value()) {
      override_storage.sample_size_l = *request.sample_size_l;
    }
    if (request.delta.has_value()) {
      override_storage.delta = *request.delta;
    }
    overrides = &override_storage;
  }
  // Spread trials round-robin across the ℓ tables: each table is an
  // independent stratification of the same pair set, so averaging across
  // them decorrelates the estimate at no extra cost.
  return RunDeterministicTrials(
      request, request_index, [&](size_t t, Rng& rng) {
        return estimator_.EstimateWithTable(
            request.tau, static_cast<uint32_t>(t % num_tables), rng,
            &context, overrides);
      });
}

}  // namespace vsj
