// Checkpoint/Restore of the StreamingEstimationService: the VSJS snapshot
// container (io/vsjb_format.h machinery, magic "VSJS").
//
// What is persisted, and why it is sufficient for bit-identical estimates:
//   META  engine identity — k, ℓ, measure, family seed (the hash functions
//         rebuild deterministically from these, per the paper's cheap-
//         rebuild observation), the LSH-SS sampling options, the dataset
//         base fingerprint, the epoch, and the store's id-space size.
//   SLOT  bitmap of store-live ids: tombstoned (erased) ids keep their
//         slots so the id space — and future AddVector ids — line up.
//   OFFS/DIMS/WGTS/NRMS/L1NM  the live payloads in id order, i.e. the
//         store compacted on write (dead payload bytes are not written).
//   LIVE  the index's live-id list verbatim (SampleLiveId indexes it).
//   TBLS  per-table replay orders (DynamicLshTable::ReplayOrder): replaying
//         them through Insert reproduces bucket slot order and
//         within-bucket member order, so every Fenwick descent and every
//         within-bucket draw of a restored engine matches the original.
// The estimate cache's entries are deliberately not persisted — responses
// are deterministic, so a cold cache recomputes identical answers — but
// the epoch counter is, keeping effective_fingerprint() and the
// invalidation stats continuous across restarts.

#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "vsj/fault/fault.h"
#include "vsj/io/atomic_file_writer.h"
#include "vsj/io/dataset_io.h"
#include "vsj/io/vsjb_format.h"
#include "vsj/service/streaming_estimation_service.h"

namespace vsj {

namespace {

/// Fixed-size payload of the META section.
struct SnapshotMeta {
  uint32_t k;
  uint32_t num_tables;
  uint32_t measure;
  uint32_t reserved0;
  uint64_t family_seed;
  uint64_t base_fingerprint;
  uint64_t epoch;
  uint64_t sample_size_h;
  uint64_t sample_size_l;
  uint64_t delta;
  uint64_t num_ids;         // store id space, tombstones included
  uint64_t num_index_live;  // ids currently live in the index
};
static_assert(sizeof(SnapshotMeta) == 80);

}  // namespace

IoStatus StreamingEstimationService::Checkpoint(
    const std::string& path) const {
  // Live payloads in id order — the store compacted on write. The dense
  // streaming view enumerates exactly live_ids() (ascending), so the
  // shared column extractor produces the sections directly.
  const std::vector<VectorId>& store_live = store_.live_ids();
  const VsjbColumns columns = MaterializeVsjbColumns(DatasetView(store_));

  std::vector<uint8_t> live_bitmap((store_.num_ids() + 7) / 8, 0);
  for (const VectorId id : store_live) live_bitmap[id / 8] |= 1u << (id % 8);

  const std::vector<VectorId>& index_live = index_.live_ids();
  const std::vector<std::vector<VectorId>> orders =
      index_.TableReplayOrders();
  std::vector<VectorId> replay_concat;
  replay_concat.reserve(orders.size() * index_live.size());
  for (const std::vector<VectorId>& order : orders) {
    replay_concat.insert(replay_concat.end(), order.begin(), order.end());
  }

  SnapshotMeta meta{};
  meta.k = options_.k;
  meta.num_tables = options_.num_tables;
  meta.measure = static_cast<uint32_t>(options_.measure);
  meta.family_seed = options_.family_seed;
  meta.base_fingerprint = base_fingerprint_;
  meta.epoch = epoch_;
  meta.sample_size_h = options_.lsh_ss.sample_size_h;
  meta.sample_size_l = options_.lsh_ss.sample_size_l;
  meta.delta = options_.lsh_ss.delta;
  meta.num_ids = store_.num_ids();
  meta.num_index_live = index_live.size();

  VsjbFileWriter writer(kVsjsMagic, kVsjsVersion, store_live.size(),
                        columns.dims.size(), /*name=*/"");
  writer.AddSection(kSecSnapshotMeta, &meta, sizeof(meta));
  writer.AddVectorSection(kSecStoreLiveBitmap, live_bitmap);
  writer.AddVectorSection(kSecOffsets, columns.offsets);
  writer.AddVectorSection(kSecDims, columns.dims);
  writer.AddVectorSection(kSecWeights, columns.weights);
  writer.AddVectorSection(kSecNorms, columns.norms);
  writer.AddVectorSection(kSecL1Norms, columns.l1_norms);
  writer.AddVectorSection(kSecIndexLiveOrder, index_live);
  writer.AddVectorSection(kSecTableReplay, replay_concat);

  VSJ_FAULT_IO("service.checkpoint", path);
  AtomicFileWriter file(path);
  IoStatus status = file.Open();
  if (!status.ok()) return status;
  status = writer.WriteTo(file.stream()).WithPath(path);
  if (!status.ok()) return status;  // dtor drops the tmp file
  return file.Commit();
}

StreamingEstimationService::StreamingEstimationService(
    RestoreTag, StreamingCsrStorage store,
    const StreamingEstimationServiceOptions& options,
    uint64_t base_fingerprint, uint64_t epoch)
    : options_(options),
      store_(std::move(store)),
      base_fingerprint_(base_fingerprint),
      epoch_(epoch),
      family_(MakeLshFamily(options.measure, options.family_seed)),
      index_(*family_, options.k, options.num_tables),
      estimator_(DatasetView::IdAddressed(store_), index_, options.measure,
                 options.lsh_ss),
      pool_(options.num_threads),
      cache_(options.cache_tau_bucket_width, options.cache_capacity) {
  cache_.RestoreEpoch(epoch_);
  // Replay (RestoreReplay, called right after construction) re-hashes
  // every live vector; attach the memoized hyperplane components first.
  BuildProjectionCache();
}

IoStatus StreamingEstimationService::Restore(
    const std::string& path,
    std::unique_ptr<StreamingEstimationService>* service,
    StreamingEstimationServiceOptions runtime_options) {
  service->reset();
  VSJ_FAULT_IO("service.restore", path);
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return IoStatus::Fail(IoError::kNotFound, "cannot open", 0, path);
  }
  VsjbFileContents contents;
  if (IoStatus status = ReadVsjbFile(is, kVsjsMagic, kVsjsVersion, &contents);
      !status) {
    return status.WithPath(path);
  }

  const int meta_index = contents.FindSection(kSecSnapshotMeta);
  if (IoStatus status = CheckVsjbSectionShape(
          contents.entries, meta_index, sizeof(SnapshotMeta), "meta");
      !status) {
    return status.WithPath(path);
  }
  SnapshotMeta meta;
  std::memcpy(&meta, contents.payloads[meta_index].data(), sizeof(meta));
  if (meta.k == 0 || meta.num_tables == 0 ||
      meta.measure > static_cast<uint32_t>(SimilarityMeasure::kJaccard) ||
      meta.num_index_live > meta.num_ids) {
    return IoStatus::Fail(IoError::kCorrupt, "implausible snapshot meta", 0,
                          path);
  }

  const uint64_t n_live = contents.header.num_vectors;
  const uint64_t features = contents.header.num_features;
  const int slot = contents.FindSection(kSecStoreLiveBitmap);
  const int offs = contents.FindSection(kSecOffsets);
  const int dims = contents.FindSection(kSecDims);
  const int wgts = contents.FindSection(kSecWeights);
  const int nrms = contents.FindSection(kSecNorms);
  const int l1nm = contents.FindSection(kSecL1Norms);
  const int live = contents.FindSection(kSecIndexLiveOrder);
  const int tbls = contents.FindSection(kSecTableReplay);
  for (IoStatus status : {
           CheckVsjbSectionShape(contents.entries, slot,
                                 (meta.num_ids + 7) / 8,
                                 "store-live bitmap"),
           CheckVsjbSectionShape(contents.entries, offs,
                                 (n_live + 1) * sizeof(uint64_t), "offsets"),
           CheckVsjbSectionShape(contents.entries, dims,
                                 features * sizeof(DimId), "dims"),
           CheckVsjbSectionShape(contents.entries, wgts,
                                 features * sizeof(float), "weights"),
           CheckVsjbSectionShape(contents.entries, nrms,
                                 n_live * sizeof(double), "norms"),
           CheckVsjbSectionShape(contents.entries, l1nm,
                                 n_live * sizeof(double), "l1 norms"),
           CheckVsjbSectionShape(contents.entries, live,
                                 meta.num_index_live * sizeof(VectorId),
                                 "index live order"),
           CheckVsjbSectionShape(contents.entries, tbls,
                                 uint64_t{meta.num_tables} *
                                     meta.num_index_live * sizeof(VectorId),
                                 "table replay orders"),
       }) {
    if (!status) return status.WithPath(path);
  }

  const auto* bitmap =
      reinterpret_cast<const uint8_t*>(contents.payloads[slot].data());
  const auto* offsets_data =
      reinterpret_cast<const uint64_t*>(contents.payloads[offs].data());
  const auto* dims_data =
      reinterpret_cast<const DimId*>(contents.payloads[dims].data());
  const auto* weights_data =
      reinterpret_cast<const float*>(contents.payloads[wgts].data());
  const auto* norms_data =
      reinterpret_cast<const double*>(contents.payloads[nrms].data());
  const auto* l1_data =
      reinterpret_cast<const double*>(contents.payloads[l1nm].data());
  if (offsets_data[0] != 0 || offsets_data[n_live] != features) {
    return IoStatus::Fail(IoError::kCorrupt,
                          "offsets do not span the feature payload", 0, path);
  }

  // Rebuild the store: live ids get their payloads back (in id order, the
  // order Checkpoint wrote them); tombstoned ids get payload-free slots.
  StreamingCsrStorage store(runtime_options.storage);
  uint64_t next_live = 0;
  for (uint64_t id = 0; id < meta.num_ids; ++id) {
    if ((bitmap[id / 8] >> (id % 8)) & 1u) {
      if (next_live >= n_live) {
        return IoStatus::Fail(IoError::kCorrupt,
                              "live bitmap counts more vectors than stored",
                              0, path);
      }
      const uint64_t begin = offsets_data[next_live];
      const uint64_t end = offsets_data[next_live + 1];
      if (begin > end || end > features) {
        return IoStatus::Fail(IoError::kCorrupt,
                              "offsets are not monotone at vector " +
                                  std::to_string(next_live),
                              0, path);
      }
      store.Append(VectorRef(dims_data + begin, weights_data + begin,
                             static_cast<uint32_t>(end - begin),
                             norms_data[next_live], l1_data[next_live]));
      ++next_live;
    } else {
      store.AppendDead();
    }
  }
  if (next_live != n_live) {
    return IoStatus::Fail(IoError::kCorrupt,
                          "live bitmap counts fewer vectors than stored", 0,
                          path);
  }

  // Validate the live order and replay orders against the store before
  // handing them to the (abort-on-misuse) index.
  const auto* live_data =
      reinterpret_cast<const VectorId*>(contents.payloads[live].data());
  std::vector<VectorId> live_order(live_data,
                                   live_data + meta.num_index_live);
  const auto* replay_data =
      reinterpret_cast<const VectorId*>(contents.payloads[tbls].data());
  std::vector<std::vector<VectorId>> table_orders(meta.num_tables);
  for (uint32_t t = 0; t < meta.num_tables; ++t) {
    table_orders[t].assign(replay_data + uint64_t{t} * meta.num_index_live,
                           replay_data + uint64_t{t + 1} * meta.num_index_live);
  }
  std::vector<bool> in_live_set(meta.num_ids, false);
  for (const VectorId id : live_order) {
    if (id >= meta.num_ids || !store.Contains(id) || in_live_set[id]) {
      return IoStatus::Fail(IoError::kCorrupt,
                            "index live order is not a set of live store ids",
                            0, path);
    }
    in_live_set[id] = true;
  }
  for (uint32_t t = 0; t < meta.num_tables; ++t) {
    std::vector<bool> seen(meta.num_ids, false);
    for (const VectorId id : table_orders[t]) {
      if (id >= meta.num_ids || !in_live_set[id] || seen[id]) {
        return IoStatus::Fail(
            IoError::kCorrupt,
            "table " + std::to_string(t) +
                " replay order is not a permutation of the live set",
            0, path);
      }
      seen[id] = true;
    }
  }

  StreamingEstimationServiceOptions options = runtime_options;
  options.k = meta.k;
  options.num_tables = meta.num_tables;
  options.measure = static_cast<SimilarityMeasure>(meta.measure);
  options.family_seed = meta.family_seed;
  options.lsh_ss.sample_size_h = meta.sample_size_h;
  options.lsh_ss.sample_size_l = meta.sample_size_l;
  options.lsh_ss.delta = meta.delta;

  service->reset(new StreamingEstimationService(
      RestoreTag{}, std::move(store), options, meta.base_fingerprint,
      meta.epoch));
  (*service)->index_.RestoreReplay(live_order, table_orders,
                                   (*service)->dataset());
  return IoStatus::Ok();
}

}  // namespace vsj
