#include "vsj/service/estimation_service.h"

#include <utility>

#include "vsj/obs/obs.h"
#include "vsj/service/dataset_fingerprint.h"
#include "vsj/service/trial_runner.h"
#include "vsj/util/check.h"
#include "vsj/util/timer.h"

namespace vsj {

EstimationService::EstimationService(VectorDataset dataset,
                                     EstimationServiceOptions options)
    : options_(options),
      dataset_(std::move(dataset)),
      view_(dataset_),
      fingerprint_(DatasetFingerprint(view_)),
      family_(MakeLshFamily(options.measure, options.family_seed)),
      pool_(options.num_threads),
      cache_(options.cache_tau_bucket_width, options.cache_capacity,
             options.cache_num_shards) {
  BuildIndexAndContext();
}

EstimationService::EstimationService(DatasetView dataset,
                                     EstimationServiceOptions options)
    : options_(options),
      view_(dataset),
      fingerprint_(DatasetFingerprint(view_)),
      family_(MakeLshFamily(options.measure, options.family_seed)),
      pool_(options.num_threads),
      cache_(options.cache_tau_bucket_width, options.cache_capacity,
             options.cache_num_shards) {
  BuildIndexAndContext();
}

void EstimationService::BuildIndexAndContext() {
  VSJ_CHECK_MSG(view_.size() >= 2,
                "EstimationService needs at least two vectors");
  Timer timer;
  {
    VSJ_TRACE_SPAN(build_span, "service.index_build_ns");
    index_ = std::make_unique<LshIndex>(*family_, view_, options_.k,
                                        options_.num_tables, &pool_);
  }
  index_build_seconds_ = timer.ElapsedSeconds();

  context_ = options_.estimator_options;
  context_.dataset = view_;
  context_.index = index_.get();
  context_.measure = options_.measure;
}

EstimateResponse EstimationService::Estimate(const EstimateRequest& request) {
  return EstimateBatch({request}).front();
}

std::vector<EstimateResponse> EstimationService::EstimateBatch(
    const std::vector<EstimateRequest>& requests) {
  return EstimateBatchImpl(requests, /*shared_stream=*/false);
}

std::vector<EstimateResponse> EstimationService::EstimateBatchShared(
    const std::vector<EstimateRequest>& requests) {
  return EstimateBatchImpl(requests, /*shared_stream=*/true);
}

std::vector<EstimateResponse> EstimationService::EstimateBatchImpl(
    const std::vector<EstimateRequest>& requests, bool shared_stream) {
  for (const EstimateRequest& request : requests) {
    const char* error = ValidateEstimateRequest(request);
    VSJ_CHECK_MSG(error == nullptr, "invalid EstimateRequest: %s", error);
  }
  // The miss pre-pass makes sure every requested estimator instance exists
  // before workers start, so they only ever read.
  std::vector<const JoinSizeEstimator*> estimators(requests.size(), nullptr);
  return RunCachedBatch(
      requests, options_.enable_cache ? &cache_ : nullptr, fingerprint_,
      pool_,
      [&](size_t i) { estimators[i] = &EstimatorFor(requests[i]); },
      [&](size_t i) {
        return Compute(requests[i], shared_stream ? 0 : i, *estimators[i]);
      });
}

const JoinSizeEstimator& EstimationService::EstimatorFor(
    const EstimateRequest& request) {
  std::string key = request.estimator_name;
  if (request.HasSamplingOverrides()) {
    for (const auto& field : {request.sample_size_h, request.sample_size_l,
                              request.delta}) {
      key.push_back('|');
      if (field.has_value()) {
        key.append(std::to_string(*field));
      } else {
        key.push_back('-');
      }
    }
  }
  std::lock_guard<std::mutex> lock(estimators_mutex_);
  auto it = estimators_.find(key);
  if (it == estimators_.end()) {
    EstimatorContext context = context_;
    if (request.sample_size_h.has_value()) {
      context.lsh_ss.sample_size_h = *request.sample_size_h;
    }
    if (request.sample_size_l.has_value()) {
      context.lsh_ss.sample_size_l = *request.sample_size_l;
    }
    if (request.delta.has_value()) {
      context.lsh_ss.delta = *request.delta;
    }
    it = estimators_
             .emplace(std::move(key),
                      CreateEstimator(request.estimator_name, context))
             .first;
  }
  return *it->second;
}

EstimateResponse EstimationService::Compute(
    const EstimateRequest& request, size_t request_index,
    const JoinSizeEstimator& estimator) const {
  return RunDeterministicTrials(
      request, request_index, [&](size_t, Rng& rng) {
        return estimator.Estimate(request.tau, rng);
      });
}

}  // namespace vsj
