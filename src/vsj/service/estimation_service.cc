#include "vsj/service/estimation_service.h"

#include <cmath>
#include <utility>

#include "vsj/lsh/minhash.h"
#include "vsj/lsh/simhash.h"
#include "vsj/service/dataset_fingerprint.h"
#include "vsj/util/check.h"
#include "vsj/util/timer.h"

namespace vsj {

namespace {

std::unique_ptr<LshFamily> MakeFamily(SimilarityMeasure measure,
                                      uint64_t seed) {
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return std::make_unique<SimHashFamily>(seed);
    case SimilarityMeasure::kJaccard:
      return std::make_unique<MinHashFamily>(seed);
  }
  VSJ_CHECK_MSG(false, "unknown similarity measure");
  return nullptr;
}

}  // namespace

EstimationService::EstimationService(VectorDataset dataset,
                                     EstimationServiceOptions options)
    : options_(options),
      dataset_(std::move(dataset)),
      fingerprint_(DatasetFingerprint(dataset_)),
      family_(MakeFamily(options.measure, options.family_seed)),
      pool_(options.num_threads),
      cache_(options.cache_tau_bucket_width, options.cache_capacity) {
  VSJ_CHECK_MSG(dataset_.size() >= 2,
                "EstimationService needs at least two vectors");
  Timer timer;
  index_ = std::make_unique<LshIndex>(*family_, dataset_, options_.k,
                                      options_.num_tables, &pool_);
  index_build_seconds_ = timer.ElapsedSeconds();

  context_ = options_.estimator_options;
  context_.dataset = &dataset_;
  context_.index = index_.get();
  context_.measure = options_.measure;
}

EstimateResponse EstimationService::Estimate(const EstimateRequest& request) {
  return EstimateBatch({request}).front();
}

std::vector<EstimateResponse> EstimationService::EstimateBatch(
    const std::vector<EstimateRequest>& requests) {
  std::vector<EstimateResponse> responses(requests.size());

  // Sequential pre-pass (request order): resolve cache hits and make sure
  // every requested estimator instance exists, so workers only ever read.
  std::vector<size_t> misses;
  misses.reserve(requests.size());
  std::vector<const JoinSizeEstimator*> estimators(requests.size(), nullptr);
  for (size_t i = 0; i < requests.size(); ++i) {
    const EstimateRequest& request = requests[i];
    if (options_.enable_cache) {
      if (auto hit = cache_.Lookup(request, fingerprint_)) {
        responses[i] = *hit;
        responses[i].tau = request.tau;
        responses[i].estimator_name = request.estimator_name;
        continue;
      }
    }
    estimators[i] = &EstimatorFor(request.estimator_name);
    misses.push_back(i);
  }

  // Parallel compute of the misses. Each request writes its pre-assigned
  // slot and draws from its own Fork(i) stream, so the outcome does not
  // depend on which thread runs which request.
  pool_.ParallelFor(misses.size(), [&](size_t m) {
    const size_t i = misses[m];
    responses[i] = Compute(requests[i], i, *estimators[i]);
  });

  // Sequential post-pass (request order): publish computed responses.
  if (options_.enable_cache) {
    for (size_t i : misses) {
      cache_.Insert(requests[i], fingerprint_, responses[i]);
    }
  }
  return responses;
}

const JoinSizeEstimator& EstimationService::EstimatorFor(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(estimators_mutex_);
  auto it = estimators_.find(name);
  if (it == estimators_.end()) {
    it = estimators_.emplace(name, CreateEstimator(name, context_)).first;
  }
  return *it->second;
}

EstimateResponse EstimationService::Compute(
    const EstimateRequest& request, size_t request_index,
    const JoinSizeEstimator& estimator) const {
  VSJ_CHECK(request.trials > 0);
  EstimateResponse response;
  response.tau = request.tau;
  response.estimator_name = request.estimator_name;
  response.trials = request.trials;

  const Rng request_stream = Rng(request.seed).Fork(request_index);
  std::vector<double> estimates;
  estimates.reserve(request.trials);
  for (size_t t = 0; t < request.trials; ++t) {
    Rng rng = request_stream.Fork(t);
    const EstimationResult result = estimator.Estimate(request.tau, rng);
    estimates.push_back(result.estimate);
    response.pairs_evaluated += result.pairs_evaluated;
    if (!result.guaranteed) ++response.num_unguaranteed;
  }

  double sum = 0.0;
  for (double e : estimates) sum += e;
  response.mean_estimate = sum / static_cast<double>(estimates.size());
  if (estimates.size() > 1) {
    double sq = 0.0;
    for (double e : estimates) {
      const double d = e - response.mean_estimate;
      sq += d * d;
    }
    response.std_dev =
        std::sqrt(sq / static_cast<double>(estimates.size() - 1));
    response.std_error =
        response.std_dev / std::sqrt(static_cast<double>(estimates.size()));
  }
  return response;
}

}  // namespace vsj
