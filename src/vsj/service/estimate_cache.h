// Sharded LRU cache of estimation responses for optimizer-style repeated
// probing.
//
// A query optimizer asks for J(τ) at many thresholds while costing plans
// (the threshold_explorer and query_optimizer examples show the pattern),
// and the batched pipeline drives the cache from every pool worker at
// once. Two design points follow:
//
//   * The key is exact. It is (estimator name, exact τ bits, dataset
//     fingerprint, trials, seed, max_rel_error bits, sampling overrides):
//     an estimate is a statement about one specific threshold under one
//     specific statistical policy, and serving a τ=0.72 probe a response
//     sampled at τ=0.70 silently mislabels the estimate, its error bar and
//     its sampling cost. (Earlier versions keyed on a τ-bucket and did
//     exactly that; tests/service/estimate_cache_test.cc now pins the
//     never-alias behavior.) Keying on trials and seed keeps two further
//     invariants: a request for an 8-trial error bar is never served a
//     cached single-trial response, and changing the seed really draws a
//     fresh sample.
//
//   * Storage is sharded. Entries spread over `num_shards` independent
//     LRU maps, each behind its own mutex, so concurrent workers of a
//     batch don't serialize on one global lock. The τ-bucket
//     (floor(τ / tau_bucket_width)) survives as the *shard hint*: it picks
//     the shard (together with the estimator name), colocating an
//     optimizer's sweep of nearby thresholds so one plan-costing session
//     evicts its own history before anyone else's. LRU order is exact per
//     shard, approximate globally — capacity splits evenly across shards.
//
// Thread safety: all methods are shard-mutex-guarded; the cache may be
// shared by concurrent CardinalityProviders.

#ifndef VSJ_SERVICE_ESTIMATE_CACHE_H_
#define VSJ_SERVICE_ESTIMATE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "vsj/obs/metrics.h"
#include "vsj/service/estimate_request.h"

namespace vsj {

/// Value snapshot of an EstimateCache's counters, assembled by stats().
/// The live counts are obs::Counter/obs::Gauge members of the cache
/// (mirrored into the global MetricRegistry as cache.* when metrics are
/// enabled) — this struct is a read-only view, not a second stats
/// mechanism.
struct EstimateCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Number of invalidation events observed via NoteInvalidation — for an
  /// epoch-keyed owner (StreamingEstimationService) this is the current
  /// epoch, making "did the mutation really invalidate the cache?"
  /// observable from the outside.
  uint64_t epoch = 0;

  double HitRate() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// Sharded bounded LRU map from the exact request key to a previously
/// computed EstimateResponse.
class EstimateCache {
 public:
  static constexpr size_t kDefaultNumShards = 8;

  /// `tau_bucket_width` controls how nearby thresholds colocate in one
  /// shard (a hint — never part of the key); `capacity` bounds the total
  /// number of cached responses across shards (> 0); `num_shards` is the
  /// lock-splitting factor (> 0; 1 gives a single exact global LRU).
  explicit EstimateCache(double tau_bucket_width = 0.01,
                         size_t capacity = 1024,
                         size_t num_shards = kDefaultNumShards);

  /// The bucket index of `tau` (floor(tau / width)) — the shard/eviction
  /// hint, not a key component.
  int64_t TauBucket(double tau) const;

  /// Returns the cached response for `request`'s key over the dataset with
  /// `fingerprint`, refreshing its LRU position, or nullopt. Counts a hit
  /// or a miss.
  std::optional<EstimateResponse> Lookup(const EstimateRequest& request,
                                         uint64_t fingerprint);

  /// Inserts (or overwrites) the response under `request`'s key, evicting
  /// the shard's least recently used entry when the shard is full.
  void Insert(const EstimateRequest& request, uint64_t fingerprint,
              const EstimateResponse& response);

  void Clear();

  /// Records an invalidation event (bumps stats().epoch). Owners that key
  /// entries on an epoch-folded fingerprint call this on every mutation;
  /// stale entries stay resident until LRU eviction but can never match a
  /// post-mutation key.
  void NoteInvalidation();

  /// Snapshot support: sets stats().epoch to a checkpointed value so a
  /// restored owner's epoch counter picks up where the original left off
  /// (entries themselves are not persisted — estimates are deterministic,
  /// so a cold cache recomputes identical responses).
  void RestoreEpoch(uint64_t epoch);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  double tau_bucket_width() const { return tau_bucket_width_; }
  EstimateCacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    EstimateResponse response;
  };

  /// One independently locked LRU map. Most recently used at the front;
  /// the index points into the list.
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  std::string MakeKey(const EstimateRequest& request,
                      uint64_t fingerprint) const;
  Shard& ShardFor(const EstimateRequest& request);

  double tau_bucket_width_;
  size_t capacity_;        // nominal total across shards
  size_t shard_capacity_;  // per-shard bound, ceil(capacity / num_shards)

  // Constructed once at the ctor; never resized (Shard is immovable).
  std::vector<Shard> shards_;

  // Live stats: lock-free obs primitives shared by all shards, so stats()
  // never contends with any shard mutex and per-instance counts stay
  // available even with the global metrics flag off (tests rely on them
  // unconditionally).
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter insertions_;
  obs::Counter evictions_;
  obs::Gauge epoch_;
};

}  // namespace vsj

#endif  // VSJ_SERVICE_ESTIMATE_CACHE_H_
