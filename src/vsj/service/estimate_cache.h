// LRU cache of estimation responses for optimizer-style repeated probing.
//
// A query optimizer asks for J(τ) at many nearby thresholds while costing
// plans (the threshold_explorer and query_optimizer examples show the
// pattern). Estimates are statistics, not exact answers, so two probes whose
// thresholds fall into the same narrow τ-bucket may share one sampled
// response. The cache key is (estimator name, τ-bucket, dataset
// fingerprint, trials, seed): changing the estimator, moving τ across a
// bucket boundary, editing the dataset, or asking under a different
// statistical policy (trial count or RNG seed) all miss, while re-probing
// an already-answered question hits without re-sampling. Keying on trials
// and seed keeps two invariants that a bare (estimator, τ) key would break:
// a request for an 8-trial error bar is never served a cached single-trial
// response with std_error = 0, and changing the seed really draws a fresh
// sample instead of replaying another seed's result.
//
// Thread safety: all methods are mutex-guarded; the cache may be shared by
// concurrent CardinalityProviders.

#ifndef VSJ_SERVICE_ESTIMATE_CACHE_H_
#define VSJ_SERVICE_ESTIMATE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "vsj/obs/metrics.h"
#include "vsj/service/estimate_request.h"

namespace vsj {

/// Value snapshot of an EstimateCache's counters, assembled by stats().
/// The live counts are obs::Counter/obs::Gauge members of the cache
/// (mirrored into the global MetricRegistry as cache.* when metrics are
/// enabled) — this struct is a read-only view, not a second stats
/// mechanism.
struct EstimateCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Number of invalidation events observed via NoteInvalidation — for an
  /// epoch-keyed owner (StreamingEstimationService) this is the current
  /// epoch, making "did the mutation really invalidate the cache?"
  /// observable from the outside.
  uint64_t epoch = 0;

  double HitRate() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// Bounded LRU map from (estimator, τ-bucket, dataset fingerprint, trials,
/// seed) to a previously computed EstimateResponse.
class EstimateCache {
 public:
  /// `tau_bucket_width` controls how close two thresholds must be to share
  /// a response; `capacity` bounds the number of cached responses (> 0).
  explicit EstimateCache(double tau_bucket_width = 0.01,
                         size_t capacity = 1024);

  /// The bucket index of `tau` (floor(tau / width)).
  int64_t TauBucket(double tau) const;

  /// Returns the cached response for `request`'s key over the dataset with
  /// `fingerprint`, refreshing its LRU position, or nullopt. Counts a hit
  /// or a miss.
  std::optional<EstimateResponse> Lookup(const EstimateRequest& request,
                                         uint64_t fingerprint);

  /// Inserts (or overwrites) the response under `request`'s key, evicting
  /// the least recently used entry when full.
  void Insert(const EstimateRequest& request, uint64_t fingerprint,
              const EstimateResponse& response);

  void Clear();

  /// Records an invalidation event (bumps stats().epoch). Owners that key
  /// entries on an epoch-folded fingerprint call this on every mutation;
  /// stale entries stay resident until LRU eviction but can never match a
  /// post-mutation key.
  void NoteInvalidation();

  /// Snapshot support: sets stats().epoch to a checkpointed value so a
  /// restored owner's epoch counter picks up where the original left off
  /// (entries themselves are not persisted — estimates are deterministic,
  /// so a cold cache recomputes identical responses).
  void RestoreEpoch(uint64_t epoch);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  double tau_bucket_width() const { return tau_bucket_width_; }
  EstimateCacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    EstimateResponse response;
  };

  std::string MakeKey(const EstimateRequest& request,
                      uint64_t fingerprint) const;

  double tau_bucket_width_;
  size_t capacity_;

  mutable std::mutex mutex_;
  // Most recently used at the front; the map points into the list.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;

  // Live stats: lock-free obs primitives so stats() never contends with
  // the LRU mutex and per-instance counts stay available even with the
  // global metrics flag off (tests rely on them unconditionally).
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter insertions_;
  obs::Counter evictions_;
  obs::Gauge epoch_;
};

}  // namespace vsj

#endif  // VSJ_SERVICE_ESTIMATE_CACHE_H_
