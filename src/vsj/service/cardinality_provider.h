// Optimizer-facing cardinality facade over the EstimationService.
//
// Query optimizers don't want estimator names, trial counts and RNG seeds —
// they want "how many pairs survive ON sim(u,v) >= τ, and how sure are
// you?". CardinalityProvider pins those knobs once at construction (the
// summary-object idiom of cardinality estimators in cost-based optimizers)
// and exposes a single call, EstimateJoin(τ), returning a JoinSizeSummary
// with the cardinality, its selectivity relative to the M = C(n,2) pair
// universe, and an error bar. Repeated probes at nearby thresholds are
// served from the service's cache without re-sampling.

#ifndef VSJ_SERVICE_CARDINALITY_PROVIDER_H_
#define VSJ_SERVICE_CARDINALITY_PROVIDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "vsj/service/estimation_service.h"

namespace vsj {

/// Cardinality answer for one join predicate sim(u, v) >= τ.
struct JoinSizeSummary {
  double tau = 0.0;

  /// Estimated join output cardinality Ĵ(τ), clamped to [0, M].
  double cardinality = 0.0;

  /// Ĵ / M: the predicate's selectivity over the C(n, 2) pair universe.
  double selectivity = 0.0;

  /// Standard error of the cardinality across the provider's trials.
  double std_error = 0.0;

  /// M = C(n, 2), the join's worst-case output.
  uint64_t max_pairs = 0;

  /// False when any trial returned a conservative fallback (treat the
  /// cardinality as a lower bound when costing plans).
  bool guaranteed = true;

  /// True when the summary was served from the estimate cache.
  bool from_cache = false;

  std::string estimator_name;
};

/// Per-provider estimation policy.
struct CardinalityProviderOptions {
  std::string estimator_name = "LSH-SS";
  /// Independent trials averaged per summary; >1 buys an error bar.
  size_t trials = 3;
  uint64_t seed = 1;
};

/// Facade bound to one EstimationService (which must outlive it).
class CardinalityProvider {
 public:
  explicit CardinalityProvider(EstimationService& service,
                               CardinalityProviderOptions options = {});

  /// Cardinality of the self-join at threshold τ.
  JoinSizeSummary EstimateJoin(double tau);

  /// Batched variant: one summary per threshold, computed concurrently on
  /// the service's pool.
  std::vector<JoinSizeSummary> EstimateJoinBatch(
      const std::vector<double>& taus);

  const CardinalityProviderOptions& options() const { return options_; }
  const EstimationService& service() const { return service_; }

 private:
  JoinSizeSummary Summarize(const EstimateResponse& response) const;

  EstimationService& service_;
  CardinalityProviderOptions options_;
};

}  // namespace vsj

#endif  // VSJ_SERVICE_CARDINALITY_PROVIDER_H_
