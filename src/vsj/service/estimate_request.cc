#include "vsj/service/estimate_request.h"

#include <cmath>

namespace vsj {

const char* ValidateEstimateRequest(const EstimateRequest& request) {
  if (request.trials == 0) {
    return "trials must be > 0";
  }
  if (!std::isfinite(request.tau)) {
    return "tau must be finite";
  }
  if (!std::isfinite(request.max_rel_error) || request.max_rel_error < 0.0) {
    return "max_rel_error must be finite and >= 0";
  }
  if (request.sample_size_h.has_value() && *request.sample_size_h == 0) {
    return "sample_size_h override must be > 0";
  }
  if (request.sample_size_l.has_value() && *request.sample_size_l == 0) {
    return "sample_size_l override must be > 0";
  }
  if (request.delta.has_value() && *request.delta == 0) {
    return "delta override must be > 0";
  }
  return nullptr;
}

}  // namespace vsj
