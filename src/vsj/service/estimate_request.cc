#include "vsj/service/estimate_request.h"

#include <cmath>

namespace vsj {

const char* ValidateEstimateRequest(const EstimateRequest& request) {
  if (request.trials == 0) {
    return "trials must be > 0";
  }
  // τ is a similarity threshold: a non-finite value (which the network
  // layer can produce from JSON like 1e999) or anything outside (0, 1]
  // reaches the sampling loops as nonsense — τ ≤ 0 selects every pair,
  // τ > 1 none, NaN poisons every comparison. One named diagnostic per
  // shape so a rejected RPC can say exactly what was wrong.
  if (std::isnan(request.tau)) {
    return "tau must not be NaN";
  }
  if (!std::isfinite(request.tau)) {
    return "tau must be finite";
  }
  if (!(request.tau > 0.0) || request.tau > 1.0) {
    return "tau must be in (0, 1]";
  }
  if (std::isnan(request.max_rel_error)) {
    return "max_rel_error must not be NaN";
  }
  if (!std::isfinite(request.max_rel_error) || request.max_rel_error < 0.0) {
    return "max_rel_error must be finite and >= 0";
  }
  if (request.sample_size_h.has_value() && *request.sample_size_h == 0) {
    return "sample_size_h override must be > 0";
  }
  if (request.sample_size_l.has_value() && *request.sample_size_l == 0) {
    return "sample_size_l override must be > 0";
  }
  if (request.delta.has_value() && *request.delta == 0) {
    return "delta override must be > 0";
  }
  return nullptr;
}

}  // namespace vsj
