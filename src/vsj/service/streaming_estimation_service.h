// Streaming join-size estimation engine: live dataset, dynamic ℓ-table LSH
// index, epoch-invalidated estimate cache.
//
// EstimationService answers over a frozen dataset with a one-shot index
// build; this engine keeps estimating while documents arrive and expire.
// It owns the backing StreamingCsrStorage (the chunked columnar arena of
// known vectors: appends go to the tail chunk, Erase tombstones payloads,
// and compaction reclaims them once churn crosses the configured dead
// fraction — ids stay stable throughout) and a DynamicLshIndex over the
// *live* subset; Insert/Remove maintain every table in O(ℓ log n) and bump
// a monotone epoch.
//
// Cache invalidation: cache entries are keyed on an effective fingerprint
// HashCombine(dataset fingerprint, epoch). Any mutation bumps the epoch, so
// a post-mutation lookup can never match a pre-mutation entry — stale
// answers are unreachable (not eagerly erased; LRU eviction reclaims them),
// and the cache's stats().epoch counter exposes the invalidations.
//
// Determinism: for batches executed between mutations the contract of
// EstimationService carries over — request i draws trial t from the
// value-derived stream Rng(seed).Fork(i).Fork(t), and trial t runs against
// table (t mod ℓ), so batch results are bit-identical at any thread count.

#ifndef VSJ_SERVICE_STREAMING_ESTIMATION_SERVICE_H_
#define VSJ_SERVICE_STREAMING_ESTIMATION_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vsj/core/streaming_lsh_ss_estimator.h"
#include "vsj/io/io_status.h"
#include "vsj/lsh/dynamic_lsh_index.h"
#include "vsj/lsh/gaussian_projection_cache.h"
#include "vsj/lsh/lsh_family.h"
#include "vsj/service/estimate_cache.h"
#include "vsj/service/estimate_request.h"
#include "vsj/util/thread_pool.h"
#include "vsj/vector/csr_storage.h"
#include "vsj/vector/dataset_view.h"
#include "vsj/vector/vector_dataset.h"

namespace vsj {

/// Construction-time configuration of a StreamingEstimationService.
struct StreamingEstimationServiceOptions {
  /// LSH functions per table and number ℓ of dynamic tables.
  uint32_t k = 20;
  uint32_t num_tables = 1;

  /// Concurrency of batch execution (1 = single-threaded).
  size_t num_threads = 1;

  SimilarityMeasure measure = SimilarityMeasure::kCosine;

  /// Seed of the LSH family (hash function selection). Matches
  /// EstimationServiceOptions so a streaming engine and a static engine can
  /// be built over identical hash functions.
  uint64_t family_seed = 0x5eedULL;

  /// Streaming LSH-SS sampling knobs (0 = derive from live n per call).
  StreamingLshSsOptions lsh_ss;

  /// Response cache; see EstimateCache for key semantics.
  bool enable_cache = true;
  double cache_tau_bucket_width = 0.01;
  size_t cache_capacity = 1024;
  size_t cache_num_shards = EstimateCache::kDefaultNumShards;

  /// Chunk size / compaction policy of the backing arena.
  StreamingStorageOptions storage;
};

/// Long-lived estimation engine over a churning live set.
///
/// Thread safety: EstimateBatch parallelizes internally, but the engine is
/// externally synchronized — callers must not mutate (Insert/Remove/
/// AddVector) concurrently with any other method.
class StreamingEstimationService {
 public:
  /// Consumes `dataset`, repacking it into the backing arena (vector i
  /// keeps id i). No vector starts live; replay Insert ops to populate
  /// the index.
  explicit StreamingEstimationService(
      VectorDataset dataset, StreamingEstimationServiceOptions options = {});

  /// Id-addressed view of the backing arena: dataset()[id] is valid for
  /// every non-erased id, and stays resolvable across mutations (the view
  /// reads through the store's slot table). size() spans the id space.
  DatasetView dataset() const { return DatasetView::IdAddressed(store_); }

  /// The backing chunked arena.
  const StreamingCsrStorage& store() const { return store_; }
  const DynamicLshIndex& index() const { return index_; }
  const LshFamily& family() const { return *family_; }
  const StreamingEstimationServiceOptions& options() const {
    return options_;
  }

  size_t num_live() const { return index_.num_vectors(); }

  /// Monotone mutation counter; bumped by Insert, Remove and AddVector.
  uint64_t epoch() const { return epoch_; }

  /// Cache key component: the backing dataset's fingerprint with the
  /// current epoch folded in.
  uint64_t effective_fingerprint() const;

  EstimateCache& cache() { return cache_; }
  const EstimateCache& cache() const { return cache_; }

  /// Appends a new vector to the backing store (not yet live) and returns
  /// its id.
  VectorId AddVector(const SparseVector& vector);

  /// Makes backing-store vector `id` live; it must not already be live.
  void Insert(VectorId id);

  /// Expires live vector `id`; its payload stays in the store (it may be
  /// re-Inserted later).
  void Remove(VectorId id);

  /// Expires `id` (if live) and tombstones its payload: the id can never
  /// come back and the arena reclaims the bytes at the next compaction.
  void Erase(VectorId id);

  bool Contains(VectorId id) const { return index_.Contains(id); }

  /// Answers one request; equivalent to a batch of size one.
  EstimateResponse Estimate(const EstimateRequest& request);

  /// Answers every request of the batch over the current live set with
  /// streaming LSH-SS (request.estimator_name must be "LSH-SS"). Cache
  /// hits resolve sequentially in request order; misses compute across the
  /// thread pool. Deterministic given (requests, epoch, cache state).
  std::vector<EstimateResponse> EstimateBatch(
      const std::vector<EstimateRequest>& requests);

  /// Cross-connection batching flavor: group leaders draw from RNG stream
  /// index 0 (what Estimate() uses) instead of their batch position, so
  /// responses are independent of how the network server packed requests
  /// into the batch. See EstimationService::EstimateBatchShared.
  std::vector<EstimateResponse> EstimateBatchShared(
      const std::vector<EstimateRequest>& requests);

  /// Serializes the engine to a VSJS snapshot at `path`: the backing store
  /// (compacted on write — only live payloads are written, tombstoned ids
  /// keep empty slots), the index rebuild recipe (family seed, k, ℓ) plus
  /// the replay orders that make the rebuild sampling-identical, the live
  /// id list, the base fingerprint and the epoch. See DESIGN.md
  /// ("Snapshot & recovery") for the invariants. Implemented in
  /// service_snapshot.cc.
  IoStatus Checkpoint(const std::string& path) const;

  /// Restores a checkpointed engine into `*service`. Format-critical
  /// options (k, ℓ, family seed, measure, LSH-SS sampling sizes) come from
  /// the snapshot; runtime options (threads, cache sizing, storage
  /// chunking) from `runtime_options`. A restored engine answers every
  /// estimate bit-identically to the engine that was checkpointed, and
  /// effective_fingerprint()/epoch() round-trip exactly.
  static IoStatus Restore(const std::string& path,
                          std::unique_ptr<StreamingEstimationService>* service,
                          StreamingEstimationServiceOptions runtime_options = {});

 private:
  /// Restore path: adopts a rebuilt store and the checkpointed identity;
  /// the index is replayed by Restore() right after construction.
  struct RestoreTag {};
  StreamingEstimationService(RestoreTag, StreamingCsrStorage store,
                             const StreamingEstimationServiceOptions& options,
                             uint64_t base_fingerprint, uint64_t epoch);

  /// Records a mutation: advances the epoch (invalidating every cached
  /// answer via the fingerprint fold) and bumps the cache's epoch stat so
  /// the two counters stay in lockstep. Every mutating method ends here.
  void BumpEpoch();

  /// Common batch body; `shared_stream` picks stream index 0 (shared) or
  /// the batch position for group leaders.
  std::vector<EstimateResponse> EstimateBatchImpl(
      const std::vector<EstimateRequest>& requests, bool shared_stream);

  /// `context` holds the batch's flat bucket-of arrays (built once in the
  /// sequential pre-pass of EstimateBatch; workers only read it).
  EstimateResponse Compute(const EstimateRequest& request,
                           size_t request_index,
                           const StreamingSampleContext& context) const;

  /// Builds and attaches the sealed Gaussian projection cache over the
  /// current backing store (ℓ·k functions), so every index mutation hashes
  /// from memoized hyperplane components. Vectors appended after
  /// construction may introduce uncached dimensions; those hash uncached,
  /// bit-identically. Called from both constructors.
  void BuildProjectionCache();

  StreamingEstimationServiceOptions options_;
  StreamingCsrStorage store_;
  uint64_t base_fingerprint_;
  uint64_t epoch_ = 0;
  std::unique_ptr<LshFamily> family_;
  std::unique_ptr<GaussianProjectionCache> projection_cache_;
  DynamicLshIndex index_;
  StreamingLshSsEstimator estimator_;
  ThreadPool pool_;
  EstimateCache cache_;
};

}  // namespace vsj

#endif  // VSJ_SERVICE_STREAMING_ESTIMATION_SERVICE_H_
