// Request/response types of the estimation service.
//
// A request names an estimator and a threshold; the service owns the
// dataset and the LSH index, so callers never touch those directly. The
// response aggregates the requested number of independent trials — mean,
// spread, and sampling cost — which is the unit a query optimizer consumes
// (one cardinality with an error bar), not a single noisy draw.

#ifndef VSJ_SERVICE_ESTIMATE_REQUEST_H_
#define VSJ_SERVICE_ESTIMATE_REQUEST_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace vsj {

/// One batched estimation question: "what is J(tau) according to
/// `estimator_name`, averaged over `trials` independent runs?"
struct EstimateRequest {
  std::string estimator_name = "LSH-SS";
  double tau = 0.8;
  size_t trials = 1;
  /// Base seed of this request's RNG streams. Two requests with the same
  /// seed and the same position in a batch produce identical results
  /// regardless of thread count (see EstimationService).
  uint64_t seed = 1;

  /// Any-τ early exit: when > 0, the service stops running trials as soon
  /// as at least two have completed and the running standard error of the
  /// mean is within `max_rel_error · |mean|`. `trials` becomes the budget
  /// rather than the exact count; the trials that do run are unchanged
  /// (each draws from its own value-derived stream), so an early-exited
  /// response is a prefix of the full-budget response's trial sequence.
  /// 0 disables (all `trials` always run).
  double max_rel_error = 0.0;

  /// Per-request overrides of the estimator's sampling budgets (m_H, m_L,
  /// δ of Algorithm 1). nullopt defers to the engine's configured options;
  /// an engaged zero is invalid — the zero-budget NaN edges are rejected
  /// here, at the validation layer, before reaching the sampling loops.
  std::optional<uint64_t> sample_size_h;
  std::optional<uint64_t> sample_size_l;
  std::optional<uint64_t> delta;

  /// True when any sampling override is engaged.
  bool HasSamplingOverrides() const {
    return sample_size_h.has_value() || sample_size_l.has_value() ||
           delta.has_value();
  }
};

/// The request validation layer shared by both service engines (and by the
/// network server, which routes every parsed RPC through it before the
/// request can reach an engine): returns nullptr when `request` is
/// servable, else a static description of the first violated rule.
/// Rejected: zero trials, NaN/±inf or out-of-(0,1] τ (JSON like 1e999
/// parses to +inf and must die here, not in a sampling loop), NaN/±inf or
/// negative budgets of the error-bound knob, and engaged-zero sampling
/// overrides
/// (a zero m_H, m_L, or δ would hit the degenerate-budget edges of the
/// sampling templates; engines refuse them up front instead of serving an
/// unguaranteed 0).
const char* ValidateEstimateRequest(const EstimateRequest& request);

/// Aggregated outcome of one request.
struct EstimateResponse {
  double tau = 0.0;
  std::string estimator_name;

  /// Mean estimate over the trials.
  double mean_estimate = 0.0;
  /// Sample standard deviation of the per-trial estimates (0 for a single
  /// trial).
  double std_dev = 0.0;
  /// Standard error of the mean: std_dev / sqrt(trials).
  double std_error = 0.0;
  /// Total pair-similarity evaluations across all trials (the paper's
  /// sampling cost model).
  uint64_t pairs_evaluated = 0;
  size_t trials = 0;
  /// Trials whose result the estimator flagged as not guaranteed (e.g.
  /// LSH-SS's safe lower bound when SampleL ran dry).
  size_t num_unguaranteed = 0;
  /// True when the response was served from the EstimateCache rather than
  /// computed.
  bool from_cache = false;
};

}  // namespace vsj

#endif  // VSJ_SERVICE_ESTIMATE_REQUEST_H_
