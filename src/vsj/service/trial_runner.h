// Deterministic trial execution shared by the service engines.
//
// Both EstimationService and StreamingEstimationService answer a request by
// running `trials` independent estimator draws and aggregating them into an
// EstimateResponse (mean, sample std-dev, standard error, sampling cost).
// The determinism contract lives here in one place: trial t of batch
// request i draws from the value-derived stream Rng(seed).Fork(i).Fork(t),
// never from scheduling order, so batch results are bit-identical at any
// thread count.

#ifndef VSJ_SERVICE_TRIAL_RUNNER_H_
#define VSJ_SERVICE_TRIAL_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "vsj/core/estimator.h"
#include "vsj/service/estimate_cache.h"
#include "vsj/service/estimate_request.h"
#include "vsj/util/thread_pool.h"

namespace vsj {

/// Runs up to `request.trials` draws of `run_trial(t, rng)` — rng being
/// the stream Rng(request.seed).Fork(request_index).Fork(t) — and
/// aggregates them. `request.trials` must be > 0. With
/// `request.max_rel_error > 0` the trial loop exits early once the running
/// standard error of the mean is inside the requested relative band (see
/// EstimateRequest::max_rel_error); the response's `trials` reports the
/// count actually run.
EstimateResponse RunDeterministicTrials(
    const EstimateRequest& request, size_t request_index,
    const std::function<EstimationResult(size_t, Rng&)>& run_trial);

/// The cached-batch protocol shared by the service engines:
///   1. sequential pre-pass in request order — resolve hits from `cache`,
///      group the remaining misses by compute key (estimator, exact τ
///      bits, trials, seed, error bound, sampling overrides — everything
///      but the batch position) so each group computes once, and call
///      `on_miss(i)` once per group leader so engine state (estimator
///      instances, sample contexts) is settled before workers start;
///   2. parallel compute of the leaders across `pool` — `compute(i)`
///      writes response slot i, deterministic because i is the RNG stream
///      index;
///   3. sequential post-pass — followers copy their leader's response
///      (what a cache hit on it would have served), then leaders publish
///      to `cache`.
/// Pass `cache == nullptr` to disable caching (grouping still applies).
std::vector<EstimateResponse> RunCachedBatch(
    const std::vector<EstimateRequest>& requests, EstimateCache* cache,
    uint64_t fingerprint, ThreadPool& pool,
    const std::function<void(size_t)>& on_miss,
    const std::function<EstimateResponse(size_t)>& compute);

}  // namespace vsj

#endif  // VSJ_SERVICE_TRIAL_RUNNER_H_
