// Deterministic trial execution shared by the service engines.
//
// Both EstimationService and StreamingEstimationService answer a request by
// running `trials` independent estimator draws and aggregating them into an
// EstimateResponse (mean, sample std-dev, standard error, sampling cost).
// The determinism contract lives here in one place: trial t of batch
// request i draws from the value-derived stream Rng(seed).Fork(i).Fork(t),
// never from scheduling order, so batch results are bit-identical at any
// thread count.

#ifndef VSJ_SERVICE_TRIAL_RUNNER_H_
#define VSJ_SERVICE_TRIAL_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "vsj/core/estimator.h"
#include "vsj/service/estimate_cache.h"
#include "vsj/service/estimate_request.h"
#include "vsj/util/thread_pool.h"

namespace vsj {

/// Runs `request.trials` draws of `run_trial(t, rng)` — rng being the
/// stream Rng(request.seed).Fork(request_index).Fork(t) — and aggregates
/// them. `request.trials` must be > 0.
EstimateResponse RunDeterministicTrials(
    const EstimateRequest& request, size_t request_index,
    const std::function<EstimationResult(size_t, Rng&)>& run_trial);

/// The cached-batch protocol shared by the service engines:
///   1. sequential pre-pass in request order — resolve hits from `cache`
///      (entries are re-stamped with the request's τ and estimator name)
///      and call `on_miss(i)` once per miss so engine state (estimator
///      instances, precondition checks) is settled before workers start;
///   2. parallel compute of the misses across `pool` — `compute(i)` writes
///      response slot i, deterministic because i is the RNG stream index;
///   3. sequential post-pass in request order — publish misses to `cache`.
/// Pass `cache == nullptr` to disable caching.
std::vector<EstimateResponse> RunCachedBatch(
    const std::vector<EstimateRequest>& requests, EstimateCache* cache,
    uint64_t fingerprint, ThreadPool& pool,
    const std::function<void(size_t)>& on_miss,
    const std::function<EstimateResponse(size_t)>& compute);

}  // namespace vsj

#endif  // VSJ_SERVICE_TRIAL_RUNNER_H_
