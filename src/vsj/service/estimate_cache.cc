#include "vsj/service/estimate_cache.h"

#include <cmath>
#include <cstring>
#include <functional>

#include "vsj/obs/obs.h"
#include "vsj/util/check.h"
#include "vsj/util/hash.h"

namespace vsj {

namespace {

/// The exact bit pattern of `value` — the key must distinguish every
/// distinct double (0.70 vs 0.72 vs the next representable neighbor), which
/// decimal formatting cannot guarantee.
uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

void AppendOverride(std::string& key, const std::optional<uint64_t>& value) {
  key.push_back('|');
  if (value.has_value()) {
    key.append(std::to_string(*value));
  } else {
    key.push_back('-');
  }
}

}  // namespace

EstimateCache::EstimateCache(double tau_bucket_width, size_t capacity,
                             size_t num_shards)
    : tau_bucket_width_(tau_bucket_width),
      capacity_(capacity),
      shard_capacity_((capacity + num_shards - 1) / num_shards),
      shards_(num_shards) {
  VSJ_CHECK(tau_bucket_width > 0.0);
  VSJ_CHECK(capacity > 0);
  VSJ_CHECK(num_shards > 0);
}

int64_t EstimateCache::TauBucket(double tau) const {
  return static_cast<int64_t>(std::floor(tau / tau_bucket_width_));
}

std::string EstimateCache::MakeKey(const EstimateRequest& request,
                                   uint64_t fingerprint) const {
  std::string key;
  key.reserve(request.estimator_name.size() + 104);
  key.append(request.estimator_name);
  key.push_back('|');
  key.append(std::to_string(DoubleBits(request.tau)));
  key.push_back('|');
  key.append(std::to_string(fingerprint));
  key.push_back('|');
  key.append(std::to_string(request.trials));
  key.push_back('|');
  key.append(std::to_string(request.seed));
  key.push_back('|');
  key.append(std::to_string(DoubleBits(request.max_rel_error)));
  AppendOverride(key, request.sample_size_h);
  AppendOverride(key, request.sample_size_l);
  AppendOverride(key, request.delta);
  return key;
}

EstimateCache::Shard& EstimateCache::ShardFor(const EstimateRequest& request) {
  // The shard hint: estimator × τ-bucket, so an optimizer's sweep of
  // nearby thresholds lands in one shard and competes only with itself
  // for eviction. Exact τ bits stay out of the hint on purpose — they are
  // the key's job.
  const uint64_t hint =
      HashCombine(std::hash<std::string>{}(request.estimator_name),
                  static_cast<uint64_t>(TauBucket(request.tau)));
  return shards_[hint % shards_.size()];
}

std::optional<EstimateResponse> EstimateCache::Lookup(
    const EstimateRequest& request, uint64_t fingerprint) {
  const std::string key = MakeKey(request, fingerprint);
  Shard& shard = ShardFor(request);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.Add(1);
    VSJ_COUNTER_ADD("cache.misses", 1);
    return std::nullopt;
  }
  hits_.Add(1);
  VSJ_COUNTER_ADD("cache.hits", 1);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  EstimateResponse response = it->second->response;
  response.from_cache = true;
  return response;
}

void EstimateCache::Insert(const EstimateRequest& request,
                           uint64_t fingerprint,
                           const EstimateResponse& response) {
  std::string key = MakeKey(request, fingerprint);
  Shard& shard = ShardFor(request);
  std::lock_guard<std::mutex> lock(shard.mutex);
  insertions_.Add(1);
  VSJ_COUNTER_ADD("cache.insertions", 1);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->response = response;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.Add(1);
    VSJ_COUNTER_ADD("cache.evictions", 1);
  }
  shard.lru.push_front(Entry{key, response});
  shard.index.emplace(std::move(key), shard.lru.begin());
}

void EstimateCache::NoteInvalidation() {
  epoch_.Add(1);
  VSJ_COUNTER_ADD("cache.invalidations", 1);
}

void EstimateCache::RestoreEpoch(uint64_t epoch) {
  epoch_.Set(static_cast<int64_t>(epoch));
}

void EstimateCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
  }
}

size_t EstimateCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

EstimateCacheStats EstimateCache::stats() const {
  EstimateCacheStats snapshot;
  snapshot.hits = hits_.Value();
  snapshot.misses = misses_.Value();
  snapshot.insertions = insertions_.Value();
  snapshot.evictions = evictions_.Value();
  snapshot.epoch = static_cast<uint64_t>(epoch_.Value());
  return snapshot;
}

}  // namespace vsj
