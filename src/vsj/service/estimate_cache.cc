#include "vsj/service/estimate_cache.h"

#include <cmath>

#include "vsj/obs/obs.h"
#include "vsj/util/check.h"

namespace vsj {

EstimateCache::EstimateCache(double tau_bucket_width, size_t capacity)
    : tau_bucket_width_(tau_bucket_width), capacity_(capacity) {
  VSJ_CHECK(tau_bucket_width > 0.0);
  VSJ_CHECK(capacity > 0);
}

int64_t EstimateCache::TauBucket(double tau) const {
  return static_cast<int64_t>(std::floor(tau / tau_bucket_width_));
}

std::string EstimateCache::MakeKey(const EstimateRequest& request,
                                   uint64_t fingerprint) const {
  std::string key;
  key.reserve(request.estimator_name.size() + 72);
  key.append(request.estimator_name);
  key.push_back('|');
  key.append(std::to_string(TauBucket(request.tau)));
  key.push_back('|');
  key.append(std::to_string(fingerprint));
  key.push_back('|');
  key.append(std::to_string(request.trials));
  key.push_back('|');
  key.append(std::to_string(request.seed));
  return key;
}

std::optional<EstimateResponse> EstimateCache::Lookup(
    const EstimateRequest& request, uint64_t fingerprint) {
  const std::string key = MakeKey(request, fingerprint);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.Add(1);
    VSJ_COUNTER_ADD("cache.misses", 1);
    return std::nullopt;
  }
  hits_.Add(1);
  VSJ_COUNTER_ADD("cache.hits", 1);
  lru_.splice(lru_.begin(), lru_, it->second);
  EstimateResponse response = it->second->response;
  response.from_cache = true;
  return response;
}

void EstimateCache::Insert(const EstimateRequest& request,
                           uint64_t fingerprint,
                           const EstimateResponse& response) {
  std::string key = MakeKey(request, fingerprint);
  std::lock_guard<std::mutex> lock(mutex_);
  insertions_.Add(1);
  VSJ_COUNTER_ADD("cache.insertions", 1);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->response = response;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.Add(1);
    VSJ_COUNTER_ADD("cache.evictions", 1);
  }
  lru_.push_front(Entry{key, response});
  index_.emplace(std::move(key), lru_.begin());
}

void EstimateCache::NoteInvalidation() {
  epoch_.Add(1);
  VSJ_COUNTER_ADD("cache.invalidations", 1);
}

void EstimateCache::RestoreEpoch(uint64_t epoch) {
  epoch_.Set(static_cast<int64_t>(epoch));
}

void EstimateCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

size_t EstimateCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

EstimateCacheStats EstimateCache::stats() const {
  EstimateCacheStats snapshot;
  snapshot.hits = hits_.Value();
  snapshot.misses = misses_.Value();
  snapshot.insertions = insertions_.Value();
  snapshot.evictions = evictions_.Value();
  snapshot.epoch = static_cast<uint64_t>(epoch_.Value());
  return snapshot;
}

}  // namespace vsj
