#include "vsj/service/cardinality_provider.h"

#include <utility>

namespace vsj {

CardinalityProvider::CardinalityProvider(EstimationService& service,
                                         CardinalityProviderOptions options)
    : service_(service), options_(std::move(options)) {}

JoinSizeSummary CardinalityProvider::EstimateJoin(double tau) {
  return EstimateJoinBatch({tau}).front();
}

std::vector<JoinSizeSummary> CardinalityProvider::EstimateJoinBatch(
    const std::vector<double>& taus) {
  std::vector<EstimateRequest> requests;
  requests.reserve(taus.size());
  for (double tau : taus) {
    EstimateRequest request;
    request.estimator_name = options_.estimator_name;
    request.tau = tau;
    request.trials = options_.trials;
    request.seed = options_.seed;
    requests.push_back(std::move(request));
  }

  const std::vector<EstimateResponse> responses =
      service_.EstimateBatch(requests);
  std::vector<JoinSizeSummary> summaries;
  summaries.reserve(responses.size());
  for (const EstimateResponse& response : responses) {
    summaries.push_back(Summarize(response));
  }
  return summaries;
}

JoinSizeSummary CardinalityProvider::Summarize(
    const EstimateResponse& response) const {
  JoinSizeSummary summary;
  summary.tau = response.tau;
  summary.max_pairs = service_.dataset().NumPairs();
  summary.cardinality = response.mean_estimate;
  summary.selectivity =
      summary.max_pairs == 0
          ? 0.0
          : summary.cardinality / static_cast<double>(summary.max_pairs);
  summary.std_error = response.std_error;
  summary.guaranteed = response.num_unguaranteed == 0;
  summary.from_cache = response.from_cache;
  summary.estimator_name = response.estimator_name;
  return summary;
}

}  // namespace vsj
