#include "vsj/service/dataset_fingerprint.h"

#include <bit>

#include "vsj/util/hash.h"

namespace vsj {

uint64_t DatasetFingerprint(DatasetView dataset) {
  uint64_t h = HashCombine(0x76736a6670ULL /* "vsjfp" */, dataset.size());
  for (VectorRef v : dataset) {
    h = HashCombine(h, v.size());
    for (const Feature f : v) {
      h = HashCombine(h, f.dim);
      h = HashCombine(h, std::bit_cast<uint32_t>(f.weight));
    }
  }
  return h;
}

}  // namespace vsj
