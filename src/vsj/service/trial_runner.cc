#include "vsj/service/trial_runner.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "vsj/obs/obs.h"
#include "vsj/util/check.h"

namespace vsj {

namespace {

/// Runtime-composed histogram name for per-request latency at
/// estimator × τ-bucket granularity (τ rounded to one decimal, matching
/// the EstimateCache shard hint). Composed only when metrics are on —
/// request granularity, so the string build is off every hot path.
std::string LatencyMetricName(const std::string& estimator_name, double tau) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".tau%.1f", tau);
  return "estimate.latency_ns." + estimator_name + suffix;
}

double MeanOf(const std::vector<double>& estimates) {
  double sum = 0.0;
  for (double e : estimates) sum += e;
  return sum / static_cast<double>(estimates.size());
}

double SampleStdDevOf(const std::vector<double>& estimates, double mean) {
  double sq = 0.0;
  for (double e : estimates) {
    const double d = e - mean;
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(estimates.size() - 1));
}

uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// The duplicate-compute key of a request within one batch: every field
/// the computed response depends on *except* the batch position (whose
/// forgiveness is the point of grouping — the cache key has no batch
/// position either, so a follower served its leader's response sees
/// exactly what a cache hit would have shown it). The dataset fingerprint
/// is constant across a batch and stays out.
std::string GroupKey(const EstimateRequest& request) {
  std::string key;
  key.reserve(request.estimator_name.size() + 88);
  key.append(request.estimator_name);
  key.push_back('|');
  key.append(std::to_string(DoubleBits(request.tau)));
  key.push_back('|');
  key.append(std::to_string(request.trials));
  key.push_back('|');
  key.append(std::to_string(request.seed));
  key.push_back('|');
  key.append(std::to_string(DoubleBits(request.max_rel_error)));
  for (const auto& field : {request.sample_size_h, request.sample_size_l,
                            request.delta}) {
    key.push_back('|');
    if (field.has_value()) {
      key.append(std::to_string(*field));
    } else {
      key.push_back('-');
    }
  }
  return key;
}

}  // namespace

EstimateResponse RunDeterministicTrials(
    const EstimateRequest& request, size_t request_index,
    const std::function<EstimationResult(size_t, Rng&)>& run_trial) {
  VSJ_CHECK(request.trials > 0);
  EstimateResponse response;
  response.tau = request.tau;
  response.estimator_name = request.estimator_name;

  const uint64_t request_start_ns = obs::MonotonicNowNs();
  VSJ_COUNTER_ADD("estimate.requests", 1);

  const Rng request_stream = Rng(request.seed).Fork(request_index);
  std::vector<double> estimates;
  estimates.reserve(request.trials);
  for (size_t t = 0; t < request.trials; ++t) {
    Rng rng = request_stream.Fork(t);
    VSJ_TRACE_SPAN(trial_span, "estimate.trial_ns");
    const EstimationResult result = run_trial(t, rng);
    estimates.push_back(result.estimate);
    response.pairs_evaluated += result.pairs_evaluated;
    if (!result.guaranteed) ++response.num_unguaranteed;
    // Any-τ early exit: `trials` is a budget, not a mandate. Once at least
    // two trials bound the spread and the running standard error of the
    // mean is inside the requested relative band, further trials buy
    // precision nobody asked for. Completed trials are untouched (each
    // drew from its own Fork(t) stream), so the early-exited response is a
    // prefix of the full-budget trial sequence — deterministic, just
    // shorter.
    if (request.max_rel_error > 0.0 && estimates.size() >= 2 &&
        estimates.size() < request.trials) {
      const double mean = MeanOf(estimates);
      const double std_error =
          SampleStdDevOf(estimates, mean) /
          std::sqrt(static_cast<double>(estimates.size()));
      if (std_error <= request.max_rel_error * std::abs(mean)) {
        VSJ_COUNTER_ADD("estimate.early_exit", 1);
        VSJ_COUNTER_ADD("estimate.trials_saved",
                        request.trials - estimates.size());
        break;
      }
    }
  }
  response.trials = estimates.size();
  VSJ_COUNTER_ADD("estimate.trials", estimates.size());
  if (VSJ_METRICS_COMPILED && obs::MetricsEnabled()) {
    obs::MetricRegistry::Global()
        .GetHistogram(LatencyMetricName(request.estimator_name, request.tau))
        .Record(obs::MonotonicNowNs() - request_start_ns);
  }

  response.mean_estimate = MeanOf(estimates);
  if (estimates.size() > 1) {
    response.std_dev = SampleStdDevOf(estimates, response.mean_estimate);
    response.std_error =
        response.std_dev / std::sqrt(static_cast<double>(estimates.size()));
  }
  return response;
}

std::vector<EstimateResponse> RunCachedBatch(
    const std::vector<EstimateRequest>& requests, EstimateCache* cache,
    uint64_t fingerprint, ThreadPool& pool,
    const std::function<void(size_t)>& on_miss,
    const std::function<EstimateResponse(size_t)>& compute) {
  std::vector<EstimateResponse> responses(requests.size());

  // Misses holds the group leaders — the requests actually computed. A
  // later miss whose GroupKey matches an earlier one becomes a follower:
  // it skips dispatch and copies its leader's response after the pool
  // drains, exactly what a cache hit on the leader's entry would have
  // produced (the cache key carries no batch position either). No
  // relabeling happens on hits or followers: with the exact-τ cache key
  // and the exact GroupKey, a served response already describes precisely
  // the τ/estimator/policy that was asked.
  std::vector<size_t> misses;
  misses.reserve(requests.size());
  std::vector<std::pair<size_t, size_t>> followers;  // (follower, leader)
  std::unordered_map<std::string, size_t> leader_of;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (cache != nullptr) {
      if (auto hit = cache->Lookup(requests[i], fingerprint)) {
        responses[i] = *hit;
        continue;
      }
    }
    const auto [it, inserted] = leader_of.emplace(GroupKey(requests[i]), i);
    if (!inserted) {
      followers.emplace_back(i, it->second);
      continue;
    }
    on_miss(i);
    misses.push_back(i);
  }
  VSJ_COUNTER_ADD("estimate.batch_requests", requests.size());
  VSJ_COUNTER_ADD("estimate.batch_misses", misses.size());
  VSJ_COUNTER_ADD("estimate.batch_grouped", followers.size());

  // Dispatch timestamp for the queue-wait histogram: how long a miss sat
  // between batch dispatch and a pool worker picking it up, vs. how long
  // the estimate itself took. Timing only — work order is untouched.
  const uint64_t dispatch_ns = obs::MonotonicNowNs();
  pool.ParallelFor(misses.size(), [&](size_t m) {
    VSJ_HIST_RECORD("estimate.queue_wait_ns",
                    obs::MonotonicNowNs() - dispatch_ns);
    VSJ_TRACE_SPAN(execute_span, "estimate.execute_ns");
    responses[misses[m]] = compute(misses[m]);
  });

  for (const auto& [follower, leader] : followers) {
    responses[follower] = responses[leader];
  }

  if (cache != nullptr) {
    for (size_t i : misses) {
      cache->Insert(requests[i], fingerprint, responses[i]);
    }
  }
  return responses;
}

}  // namespace vsj
