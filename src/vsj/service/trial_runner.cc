#include "vsj/service/trial_runner.h"

#include <cmath>
#include <vector>

#include "vsj/util/check.h"

namespace vsj {

EstimateResponse RunDeterministicTrials(
    const EstimateRequest& request, size_t request_index,
    const std::function<EstimationResult(size_t, Rng&)>& run_trial) {
  VSJ_CHECK(request.trials > 0);
  EstimateResponse response;
  response.tau = request.tau;
  response.estimator_name = request.estimator_name;
  response.trials = request.trials;

  const Rng request_stream = Rng(request.seed).Fork(request_index);
  std::vector<double> estimates;
  estimates.reserve(request.trials);
  for (size_t t = 0; t < request.trials; ++t) {
    Rng rng = request_stream.Fork(t);
    const EstimationResult result = run_trial(t, rng);
    estimates.push_back(result.estimate);
    response.pairs_evaluated += result.pairs_evaluated;
    if (!result.guaranteed) ++response.num_unguaranteed;
  }

  double sum = 0.0;
  for (double e : estimates) sum += e;
  response.mean_estimate = sum / static_cast<double>(estimates.size());
  if (estimates.size() > 1) {
    double sq = 0.0;
    for (double e : estimates) {
      const double d = e - response.mean_estimate;
      sq += d * d;
    }
    response.std_dev =
        std::sqrt(sq / static_cast<double>(estimates.size() - 1));
    response.std_error =
        response.std_dev / std::sqrt(static_cast<double>(estimates.size()));
  }
  return response;
}

std::vector<EstimateResponse> RunCachedBatch(
    const std::vector<EstimateRequest>& requests, EstimateCache* cache,
    uint64_t fingerprint, ThreadPool& pool,
    const std::function<void(size_t)>& on_miss,
    const std::function<EstimateResponse(size_t)>& compute) {
  std::vector<EstimateResponse> responses(requests.size());

  std::vector<size_t> misses;
  misses.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (cache != nullptr) {
      if (auto hit = cache->Lookup(requests[i], fingerprint)) {
        responses[i] = *hit;
        responses[i].tau = requests[i].tau;
        responses[i].estimator_name = requests[i].estimator_name;
        continue;
      }
    }
    on_miss(i);
    misses.push_back(i);
  }

  pool.ParallelFor(misses.size(),
                   [&](size_t m) { responses[misses[m]] = compute(misses[m]); });

  if (cache != nullptr) {
    for (size_t i : misses) {
      cache->Insert(requests[i], fingerprint, responses[i]);
    }
  }
  return responses;
}

}  // namespace vsj
