#include "vsj/service/trial_runner.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "vsj/obs/obs.h"
#include "vsj/util/check.h"

namespace vsj {

namespace {

/// Runtime-composed histogram name for per-request latency at
/// estimator × τ-bucket granularity (τ rounded to one decimal, matching
/// the EstimateCache key bucketing). Composed only when metrics are on —
/// request granularity, so the string build is off every hot path.
std::string LatencyMetricName(const std::string& estimator_name, double tau) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".tau%.1f", tau);
  return "estimate.latency_ns." + estimator_name + suffix;
}

}  // namespace

EstimateResponse RunDeterministicTrials(
    const EstimateRequest& request, size_t request_index,
    const std::function<EstimationResult(size_t, Rng&)>& run_trial) {
  VSJ_CHECK(request.trials > 0);
  EstimateResponse response;
  response.tau = request.tau;
  response.estimator_name = request.estimator_name;
  response.trials = request.trials;

  const uint64_t request_start_ns = obs::MonotonicNowNs();
  VSJ_COUNTER_ADD("estimate.requests", 1);
  VSJ_COUNTER_ADD("estimate.trials", request.trials);

  const Rng request_stream = Rng(request.seed).Fork(request_index);
  std::vector<double> estimates;
  estimates.reserve(request.trials);
  for (size_t t = 0; t < request.trials; ++t) {
    Rng rng = request_stream.Fork(t);
    VSJ_TRACE_SPAN(trial_span, "estimate.trial_ns");
    const EstimationResult result = run_trial(t, rng);
    estimates.push_back(result.estimate);
    response.pairs_evaluated += result.pairs_evaluated;
    if (!result.guaranteed) ++response.num_unguaranteed;
  }
  if (VSJ_METRICS_COMPILED && obs::MetricsEnabled()) {
    obs::MetricRegistry::Global()
        .GetHistogram(LatencyMetricName(request.estimator_name, request.tau))
        .Record(obs::MonotonicNowNs() - request_start_ns);
  }

  double sum = 0.0;
  for (double e : estimates) sum += e;
  response.mean_estimate = sum / static_cast<double>(estimates.size());
  if (estimates.size() > 1) {
    double sq = 0.0;
    for (double e : estimates) {
      const double d = e - response.mean_estimate;
      sq += d * d;
    }
    response.std_dev =
        std::sqrt(sq / static_cast<double>(estimates.size() - 1));
    response.std_error =
        response.std_dev / std::sqrt(static_cast<double>(estimates.size()));
  }
  return response;
}

std::vector<EstimateResponse> RunCachedBatch(
    const std::vector<EstimateRequest>& requests, EstimateCache* cache,
    uint64_t fingerprint, ThreadPool& pool,
    const std::function<void(size_t)>& on_miss,
    const std::function<EstimateResponse(size_t)>& compute) {
  std::vector<EstimateResponse> responses(requests.size());

  std::vector<size_t> misses;
  misses.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (cache != nullptr) {
      if (auto hit = cache->Lookup(requests[i], fingerprint)) {
        responses[i] = *hit;
        responses[i].tau = requests[i].tau;
        responses[i].estimator_name = requests[i].estimator_name;
        continue;
      }
    }
    on_miss(i);
    misses.push_back(i);
  }
  VSJ_COUNTER_ADD("estimate.batch_requests", requests.size());
  VSJ_COUNTER_ADD("estimate.batch_misses", misses.size());

  // Dispatch timestamp for the queue-wait histogram: how long a miss sat
  // between batch dispatch and a pool worker picking it up, vs. how long
  // the estimate itself took. Timing only — work order is untouched.
  const uint64_t dispatch_ns = obs::MonotonicNowNs();
  pool.ParallelFor(misses.size(), [&](size_t m) {
    VSJ_HIST_RECORD("estimate.queue_wait_ns",
                    obs::MonotonicNowNs() - dispatch_ns);
    VSJ_TRACE_SPAN(execute_span, "estimate.execute_ns");
    responses[misses[m]] = compute(misses[m]);
  });

  if (cache != nullptr) {
    for (size_t i : misses) {
      cache->Insert(requests[i], fingerprint, responses[i]);
    }
  }
  return responses;
}

}  // namespace vsj
