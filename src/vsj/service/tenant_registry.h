// Multi-tenant dataset registry of the serving layer.
//
// The network server serves many named datasets ("tenants") from one
// process. A tenant is a snapshot file under the registry root, resolved
// lazily on first use:
//
//   <root>/<name>.vsjs  — a VSJS streaming-engine snapshot. Restores into
//                         a StreamingEstimationService: mutable (insert/
//                         remove/erase/add_vector), LSH-SS only. Takes
//                         priority when both files exist.
//   <root>/<name>.vsjb  — a VSJB v2 dataset. Opened zero-copy via
//                         MappedCsrStorage (the mmap never copies vector
//                         payloads) under a static EstimationService: all
//                         registered estimators, mutations rejected as
//                         unsupported.
//
// Residency is bounded: at most `max_resident` tenants stay open, evicted
// least-recently-acquired first. Eviction is refcount-safe — tenants are
// handed out as shared_ptr, so an evicted tenant stays fully usable by
// in-flight requests and is destroyed when the last holder drops it.
// Dirty streaming tenants (mutated since load/last write-back) are
// checkpointed back to their .vsjs on eviction through AtomicFileWriter
// (tmp + fsync + rename + dir fsync, so neither a crash mid-write nor
// power loss after rename corrupts or loses the snapshot); a dirty
// tenant that is still pinned by in-flight work is skipped and retried
// at the next eviction pass rather than checkpointed under a live
// mutation stream.
//
// Degraded mode: when write-back fails (disk full, injected fault), the
// tenant is NOT dropped — it stays resident and dirty, even above the
// residency cap, because evicting it would discard the only copy of its
// mutations. The failure is counted (Tenant::checkpoint_failures,
// surfaced per-tenant through Stats() and the stats RPC) and the last
// error retained for diagnostics; the next eviction pass or Flush()
// retries. Startup sweeps orphaned *.tmp files a killed checkpoint left
// under the root (see TenantRegistryOptions::sweep_tmp).
//
// Thread safety: the registry is fully synchronized (one mutex for the
// resident map + LRU). Tenant serializes its own engine access with a
// per-tenant mutex, because the engines are externally-synchronized. Lock
// order is always registry → tenant, never the reverse.

#ifndef VSJ_SERVICE_TENANT_REGISTRY_H_
#define VSJ_SERVICE_TENANT_REGISTRY_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "vsj/io/io_status.h"
#include "vsj/service/estimation_service.h"
#include "vsj/service/streaming_estimation_service.h"
#include "vsj/vector/mapped_csr_storage.h"
#include "vsj/vector/sparse_vector.h"

namespace vsj {

/// Outcome of a tenant operation that can fail for protocol reasons
/// (as opposed to io failures, which are IoStatus).
struct TenantOpResult {
  enum class Code {
    kOk,
    kUnsupported,  ///< Op not available on this tenant flavor.
    kBadRequest,   ///< Precondition violated (unknown id, bad estimator).
  };
  Code code = Code::kOk;
  std::string message;
  /// Op-specific payload: the new vector id for AddVector, the post-op
  /// epoch for mutations.
  uint64_t value = 0;

  bool ok() const { return code == Code::kOk; }
  static TenantOpResult Ok(uint64_t value = 0) {
    return TenantOpResult{Code::kOk, "", value};
  }
  static TenantOpResult Unsupported(std::string message) {
    return TenantOpResult{Code::kUnsupported, std::move(message), 0};
  }
  static TenantOpResult BadRequest(std::string message) {
    return TenantOpResult{Code::kBadRequest, std::move(message), 0};
  }
};

/// Point-in-time tenant counters for the stats op and live profiling.
struct TenantStats {
  bool streaming = false;
  uint64_t epoch = 0;
  size_t num_vectors = 0;  ///< Backing store size (id space).
  size_t num_live = 0;     ///< Indexed vectors (streaming: live set).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  bool dirty = false;  ///< Mutations not yet written back (degraded if
                       ///< checkpoint_failures > 0 as well).
  uint64_t checkpoint_failures = 0;  ///< Failed write-back attempts.
};

/// One resident dataset with its estimation engine. All public methods
/// are internally synchronized; callers hold it as shared_ptr obtained
/// from TenantRegistry::Acquire.
class Tenant {
 public:
  /// Streaming flavor (restored from .vsjs).
  Tenant(std::string name, std::string snapshot_path,
         std::unique_ptr<StreamingEstimationService> engine);
  /// Static mmap flavor (.vsjb). `storage` must be the storage `engine`'s
  /// view reads from; the Tenant keeps it mapped for the engine's life.
  Tenant(std::string name, std::string snapshot_path,
         std::unique_ptr<MappedCsrStorage> storage,
         std::unique_ptr<EstimationService> engine);
  ~Tenant() = default;

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  const std::string& name() const { return name_; }
  const std::string& snapshot_path() const { return snapshot_path_; }
  bool is_streaming() const { return streaming_ != nullptr; }

  /// Pre-flight check of one estimate request against this tenant's
  /// engine: ValidateEstimateRequest plus the estimator-name rules the
  /// engines enforce with VSJ_CHECK (static: any registered estimator;
  /// streaming: LSH-SS only). Returns kOk or kBadRequest — a rejected
  /// request must not reach EstimateBatchShared.
  TenantOpResult ValidateEstimate(const EstimateRequest& request) const;

  /// Answers a batch with the shared-stream contract (every group leader
  /// draws from RNG stream 0), so responses are bit-identical to
  /// in-process Estimate() calls regardless of how the server packed
  /// concurrent connections into the batch. Every request must have
  /// passed ValidateEstimate.
  std::vector<EstimateResponse> EstimateBatchShared(
      const std::vector<EstimateRequest>& requests);

  /// Mutations; kUnsupported on static tenants. Preconditions are checked
  /// (not VSJ_CHECKed): unknown/duplicate ids come back as kBadRequest.
  TenantOpResult Insert(VectorId id);
  TenantOpResult Remove(VectorId id);
  TenantOpResult Erase(VectorId id);
  TenantOpResult AddVector(const std::vector<Feature>& features);

  TenantStats Stats() const;

  /// True when the tenant has mutations not yet written back.
  bool dirty() const;

  /// Writes the engine state back to the snapshot (streaming flavor;
  /// no-op Ok on static/clean tenants) through AtomicFileWriter: the
  /// snapshot is durably replaced or not at all. On failure the tenant
  /// stays dirty, checkpoint_failures() increments, and the error is
  /// retained in last_write_back_error().
  IoStatus WriteBack();

  /// Failed write-back attempts since load (degraded-mode signal).
  uint64_t checkpoint_failures() const;

  /// ToString() of the most recent write-back failure; empty after a
  /// successful write-back (or none ever failed).
  std::string last_write_back_error() const;

 private:
  const std::string name_;
  const std::string snapshot_path_;

  mutable std::mutex mutex_;
  // Exactly one engine is set, selecting the flavor.
  std::unique_ptr<StreamingEstimationService> streaming_;
  std::unique_ptr<MappedCsrStorage> mapped_;
  std::unique_ptr<EstimationService> static_;
  /// Engine epoch the snapshot on disk reflects (streaming only).
  uint64_t persisted_epoch_ = 0;
  uint64_t checkpoint_failures_ = 0;
  std::string last_write_back_error_;
};

/// Configuration of a TenantRegistry.
struct TenantRegistryOptions {
  /// Directory holding <name>.vsjs / <name>.vsjb snapshots.
  std::string root;

  /// Resident-tenant cap; 0 = unbounded. Eviction is LRU by Acquire
  /// order, with dirty write-back (see file comment).
  size_t max_resident = 8;

  /// Engine options applied to static (.vsjb) tenants.
  EstimationServiceOptions static_options;

  /// Runtime options applied to restored streaming tenants (format-
  /// critical fields come from the snapshot itself).
  StreamingEstimationServiceOptions streaming_options;

  /// Remove orphaned *.tmp files under the root at construction. A
  /// checkpoint killed between Open() and rename leaves its tmp file
  /// behind; the bytes are by definition unreferenced (the rename never
  /// happened, so the real snapshot is intact) and only waste space.
  bool sweep_tmp = true;
};

/// True iff `name` is acceptable as a tenant name: 1–128 chars drawn from
/// [A-Za-z0-9._-], not starting with a dot. The name is spliced into a
/// filesystem path, so this is the traversal guard ("../../etc/passwd"
/// never reaches open()).
bool ValidTenantName(const std::string& name);

/// Lazily-opening, LRU-bounded map of resident tenants.
class TenantRegistry {
 public:
  explicit TenantRegistry(TenantRegistryOptions options);
  ~TenantRegistry();

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Returns the resident tenant `name`, opening its snapshot on a cold
  /// miss. Failures:
  ///   kNotFound — invalid name, or neither <name>.vsjs nor <name>.vsjb
  ///               exists under the root (path names the .vsjs candidate);
  ///   anything else — the snapshot exists but failed to open; the
  ///               IoStatus carries the underlying path + reason.
  /// A successful Acquire marks `name` most recently used and may evict
  /// colder tenants beyond the cap (never the one just acquired).
  IoStatus Acquire(const std::string& name, std::shared_ptr<Tenant>* tenant);

  /// Writes back every dirty resident tenant; returns the first failure
  /// (but attempts all). Called on server drain so mutations survive
  /// shutdown.
  IoStatus Flush();

  /// Resident tenant names, most recently used first.
  std::vector<std::string> ResidentNames() const;

  size_t num_resident() const;

  /// Orphaned *.tmp files removed by the startup sweep.
  size_t swept_tmp_files() const { return swept_tmp_files_; }

  const TenantRegistryOptions& options() const { return options_; }

 private:
  /// Opens the snapshot for `name` (registry lock NOT held — opens can
  /// be slow and must not block unrelated tenants).
  IoStatus Open(const std::string& name, std::shared_ptr<Tenant>* tenant);

  /// Evicts beyond the cap, coldest first; `keep` is never evicted.
  /// Registry lock held.
  void EvictLocked(const std::string& keep);

  /// Removes `<root>/*.tmp` leftovers from killed checkpoints (ctor).
  void SweepOrphanedTmpFiles();

  TenantRegistryOptions options_;
  size_t swept_tmp_files_ = 0;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Tenant>> resident_;
  /// Recency list, most recent first; invariant: same keys as resident_.
  std::list<std::string> lru_;
};

}  // namespace vsj

#endif  // VSJ_SERVICE_TENANT_REGISTRY_H_
