#include "vsj/service/tenant_registry.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "vsj/core/estimator_registry.h"
#include "vsj/fault/fault.h"
#include "vsj/obs/obs.h"

namespace vsj {

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

Tenant::Tenant(std::string name, std::string snapshot_path,
               std::unique_ptr<StreamingEstimationService> engine)
    : name_(std::move(name)),
      snapshot_path_(std::move(snapshot_path)),
      streaming_(std::move(engine)),
      persisted_epoch_(streaming_->epoch()) {}

Tenant::Tenant(std::string name, std::string snapshot_path,
               std::unique_ptr<MappedCsrStorage> storage,
               std::unique_ptr<EstimationService> engine)
    : name_(std::move(name)),
      snapshot_path_(std::move(snapshot_path)),
      mapped_(std::move(storage)),
      static_(std::move(engine)) {}

TenantOpResult Tenant::ValidateEstimate(const EstimateRequest& request) const {
  // The engines enforce these rules with VSJ_CHECK (an abort); the server
  // must turn them into bad_request responses instead, so they are
  // re-checked here against the live registry before any engine call.
  if (const char* error = ValidateEstimateRequest(request)) {
    return TenantOpResult::BadRequest(error);
  }
  if (streaming_ != nullptr) {
    if (request.estimator_name != "LSH-SS") {
      return TenantOpResult::BadRequest(
          "streaming tenant '" + name_ + "' only serves estimator LSH-SS");
    }
    return TenantOpResult::Ok();
  }
  const std::vector<std::string> known = AllEstimatorNames();
  if (std::find(known.begin(), known.end(), request.estimator_name) ==
      known.end()) {
    return TenantOpResult::BadRequest("unknown estimator '" +
                                      request.estimator_name + "'");
  }
  return TenantOpResult::Ok();
}

std::vector<EstimateResponse> Tenant::EstimateBatchShared(
    const std::vector<EstimateRequest>& requests) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streaming_ != nullptr) return streaming_->EstimateBatchShared(requests);
  return static_->EstimateBatchShared(requests);
}

TenantOpResult Tenant::Insert(VectorId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streaming_ == nullptr) {
    return TenantOpResult::Unsupported(
        "tenant '" + name_ + "' is a static dataset; mutations need a "
        ".vsjs streaming snapshot");
  }
  if (!streaming_->store().Contains(id)) {
    return TenantOpResult::BadRequest("vector_id " + std::to_string(id) +
                                      " is not in the backing store");
  }
  if (streaming_->Contains(id)) {
    return TenantOpResult::BadRequest("vector_id " + std::to_string(id) +
                                      " is already live");
  }
  streaming_->Insert(id);
  return TenantOpResult::Ok(streaming_->epoch());
}

TenantOpResult Tenant::Remove(VectorId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streaming_ == nullptr) {
    return TenantOpResult::Unsupported(
        "tenant '" + name_ + "' is a static dataset; mutations need a "
        ".vsjs streaming snapshot");
  }
  if (!streaming_->Contains(id)) {
    return TenantOpResult::BadRequest("vector_id " + std::to_string(id) +
                                      " is not live");
  }
  streaming_->Remove(id);
  return TenantOpResult::Ok(streaming_->epoch());
}

TenantOpResult Tenant::Erase(VectorId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streaming_ == nullptr) {
    return TenantOpResult::Unsupported(
        "tenant '" + name_ + "' is a static dataset; mutations need a "
        ".vsjs streaming snapshot");
  }
  if (!streaming_->store().Contains(id)) {
    return TenantOpResult::BadRequest("vector_id " + std::to_string(id) +
                                      " is not in the backing store");
  }
  streaming_->Erase(id);
  return TenantOpResult::Ok(streaming_->epoch());
}

TenantOpResult Tenant::AddVector(const std::vector<Feature>& features) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streaming_ == nullptr) {
    return TenantOpResult::Unsupported(
        "tenant '" + name_ + "' is a static dataset; mutations need a "
        ".vsjs streaming snapshot");
  }
  const VectorId id = streaming_->AddVector(SparseVector(features));
  return TenantOpResult::Ok(id);
}

TenantStats Tenant::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TenantStats stats;
  if (streaming_ != nullptr) {
    stats.streaming = true;
    stats.epoch = streaming_->epoch();
    stats.num_vectors = streaming_->store().num_ids();
    stats.num_live = streaming_->num_live();
    const EstimateCacheStats cache = streaming_->cache().stats();
    stats.cache_hits = cache.hits;
    stats.cache_misses = cache.misses;
  } else {
    stats.num_vectors = static_->dataset().size();
    stats.num_live = stats.num_vectors;
    const EstimateCacheStats cache = static_->cache().stats();
    stats.cache_hits = cache.hits;
    stats.cache_misses = cache.misses;
  }
  stats.dirty =
      streaming_ != nullptr && streaming_->epoch() != persisted_epoch_;
  stats.checkpoint_failures = checkpoint_failures_;
  return stats;
}

bool Tenant::dirty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return streaming_ != nullptr && streaming_->epoch() != persisted_epoch_;
}

IoStatus Tenant::WriteBack() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streaming_ == nullptr || streaming_->epoch() == persisted_epoch_) {
    return IoStatus::Ok();
  }
  // The epoch to record as persisted is captured before the checkpoint:
  // the engine is locked here, but being explicit keeps the invariant
  // obvious — persisted_epoch_ must describe the bytes on disk.
  const uint64_t epoch = streaming_->epoch();
  IoStatus status = [&]() -> IoStatus {
    VSJ_FAULT_IO("registry.writeback", snapshot_path_);
    // Checkpoint writes through AtomicFileWriter: tmp + fsync + rename +
    // dir fsync, so the snapshot is durably replaced or left untouched.
    return streaming_->Checkpoint(snapshot_path_);
  }();
  if (!status.ok()) {
    // Degraded mode: the tenant stays dirty and resident; callers retry
    // on the next eviction pass / Flush.
    ++checkpoint_failures_;
    last_write_back_error_ = status.ToString();
    VSJ_COUNTER_ADD("registry.checkpoint_failures", 1);
    return status;
  }
  persisted_epoch_ = epoch;
  last_write_back_error_.clear();
  return IoStatus::Ok();
}

uint64_t Tenant::checkpoint_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return checkpoint_failures_;
}

std::string Tenant::last_write_back_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_write_back_error_;
}

bool ValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > 128 || name.front() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

TenantRegistry::TenantRegistry(TenantRegistryOptions options)
    : options_(std::move(options)) {
  if (options_.sweep_tmp) SweepOrphanedTmpFiles();
}

void TenantRegistry::SweepOrphanedTmpFiles() {
  DIR* dir = ::opendir(options_.root.c_str());
  if (dir == nullptr) return;  // missing root surfaces on first Acquire
  const std::string suffix = ".tmp";
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string path = options_.root + "/" + name;
    struct stat st;
    if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    if (std::remove(path.c_str()) == 0) {
      ++swept_tmp_files_;
      VSJ_COUNTER_ADD("registry.tmp_swept", 1);
    }
  }
  ::closedir(dir);
}

TenantRegistry::~TenantRegistry() {
  // Best effort: mutations held only in memory would otherwise vanish.
  Flush();
}

IoStatus TenantRegistry::Acquire(const std::string& name,
                                 std::shared_ptr<Tenant>* tenant) {
  if (!ValidTenantName(name)) {
    return IoStatus::Fail(IoError::kNotFound,
                          "invalid tenant name '" + name + "'");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = resident_.find(name);
    if (it != resident_.end()) {
      lru_.remove(name);
      lru_.push_front(name);
      *tenant = it->second;
      VSJ_COUNTER_ADD("registry.hits", 1);
      return IoStatus::Ok();
    }
  }
  // Cold miss: open outside the registry lock, so a slow restore does not
  // stall requests for tenants that are already resident.
  VSJ_COUNTER_ADD("registry.cold_opens", 1);
  std::shared_ptr<Tenant> opened;
  IoStatus status = Open(name, &opened);
  if (!status.ok()) return status;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = resident_.find(name);
    if (it != resident_.end()) {
      // Another thread won the race; its tenant is the canonical one.
      *tenant = it->second;
      lru_.remove(name);
      lru_.push_front(name);
      return IoStatus::Ok();
    }
    resident_.emplace(name, opened);
    lru_.push_front(name);
    EvictLocked(name);
  }
  *tenant = std::move(opened);
  return IoStatus::Ok();
}

IoStatus TenantRegistry::Open(const std::string& name,
                              std::shared_ptr<Tenant>* tenant) {
  const std::string stream_path = options_.root + "/" + name + ".vsjs";
  VSJ_FAULT_IO("registry.open", stream_path);
  const std::string static_path = options_.root + "/" + name + ".vsjb";
  if (FileExists(stream_path)) {
    std::unique_ptr<StreamingEstimationService> engine;
    IoStatus status = StreamingEstimationService::Restore(
        stream_path, &engine, options_.streaming_options);
    if (!status.ok()) return status;
    *tenant = std::make_shared<Tenant>(name, stream_path, std::move(engine));
    return IoStatus::Ok();
  }
  if (FileExists(static_path)) {
    auto storage = std::make_unique<MappedCsrStorage>();
    IoStatus status = MappedCsrStorage::Open(static_path, storage.get());
    if (!status.ok()) return status;
    if (storage->size() < 2) {
      // EstimationService aborts below two vectors; surface it as a
      // snapshot problem instead.
      return IoStatus::Fail(IoError::kCorrupt,
                            "dataset has fewer than two vectors", 0,
                            static_path);
    }
    auto engine = std::make_unique<EstimationService>(
        DatasetView(*storage), options_.static_options);
    *tenant = std::make_shared<Tenant>(name, static_path, std::move(storage),
                                       std::move(engine));
    return IoStatus::Ok();
  }
  return IoStatus::Fail(IoError::kNotFound,
                        "no snapshot for tenant '" + name + "' (tried " +
                            stream_path + " and " + static_path + ")",
                        0, stream_path);
}

void TenantRegistry::EvictLocked(const std::string& keep) {
  if (options_.max_resident == 0) return;
  // Coldest first. A dirty pinned tenant is skipped (write-back under a
  // live mutation stream could lose the mutations that land after the
  // checkpoint); clean tenants leave the map even when pinned — the
  // shared_ptr held by in-flight work keeps the engine alive.
  auto it = lru_.end();
  while (resident_.size() > options_.max_resident && it != lru_.begin()) {
    --it;
    const std::string& name = *it;
    if (name == keep) continue;
    auto found = resident_.find(name);
    std::shared_ptr<Tenant>& candidate = found->second;
    if (candidate->dirty()) {
      const bool pinned = candidate.use_count() > 1;
      if (pinned || !candidate->WriteBack().ok()) {
        // Also kept on write-back failure: dropping it would lose data.
        continue;
      }
    }
    VSJ_COUNTER_ADD("registry.evictions", 1);
    resident_.erase(found);
    it = lru_.erase(it);
  }
}

IoStatus TenantRegistry::Flush() {
  // Snapshot the resident set, then write back without the registry lock
  // (checkpoints are slow and take per-tenant locks).
  std::vector<std::shared_ptr<Tenant>> tenants;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tenants.reserve(resident_.size());
    for (const auto& [name, tenant] : resident_) tenants.push_back(tenant);
  }
  IoStatus first_failure = IoStatus::Ok();
  for (const std::shared_ptr<Tenant>& tenant : tenants) {
    IoStatus status = tenant->WriteBack();
    if (!status.ok() && first_failure.ok()) first_failure = status;
  }
  return first_failure;
}

std::vector<std::string> TenantRegistry::ResidentNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<std::string>(lru_.begin(), lru_.end());
}

size_t TenantRegistry::num_resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_.size();
}

}  // namespace vsj
