// Content fingerprint of a dataset view.
//
// The EstimateCache keys entries on the dataset identity; a pointer is not
// enough (datasets are moved/copied around the service boundary) and a name
// is not enough (two differently-sampled corpora can share one). The
// fingerprint is a 64-bit hash over every (dimension, weight) feature of
// every vector in order, so it changes whenever the joined content changes.

#ifndef VSJ_SERVICE_DATASET_FINGERPRINT_H_
#define VSJ_SERVICE_DATASET_FINGERPRINT_H_

#include <cstdint>

#include "vsj/vector/dataset_view.h"

namespace vsj {

/// 64-bit content hash of `dataset` (O(total features), deterministic
/// across runs and platforms).
uint64_t DatasetFingerprint(DatasetView dataset);

}  // namespace vsj

#endif  // VSJ_SERVICE_DATASET_FINGERPRINT_H_
