// Concurrent join-size estimation engine.
//
// The estimator core answers one (estimator, τ) question at a time on one
// thread; this service turns it into a long-lived engine that owns the
// dataset and the LSH index, builds the ℓ tables in parallel, answers
// *batches* of questions across a thread pool, and memoizes answers in an
// EstimateCache for optimizer-style repeated probing.
//
// Determinism: batch results are a pure function of the request list — not
// of the thread count or the scheduling order. Request i of a batch draws
// every trial t from the stream Rng(request.seed).Fork(i).Fork(t), which is
// computed from values only, so running the same batch at 1 or 8 threads is
// bit-identical (tests/service/estimation_service_test.cc pins this down).

#ifndef VSJ_SERVICE_ESTIMATION_SERVICE_H_
#define VSJ_SERVICE_ESTIMATION_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "vsj/core/estimator_registry.h"
#include "vsj/lsh/lsh_family.h"
#include "vsj/lsh/lsh_index.h"
#include "vsj/service/estimate_cache.h"
#include "vsj/service/estimate_request.h"
#include "vsj/util/thread_pool.h"
#include "vsj/vector/dataset_view.h"
#include "vsj/vector/vector_dataset.h"

namespace vsj {

/// Construction-time configuration of an EstimationService.
struct EstimationServiceOptions {
  /// LSH functions per table and number ℓ of tables of the owned index.
  uint32_t k = 20;
  uint32_t num_tables = 1;

  /// Total concurrency of the service (1 = single-threaded). Used both for
  /// the parallel index build and for batch execution.
  size_t num_threads = 1;

  SimilarityMeasure measure = SimilarityMeasure::kCosine;

  /// Seed of the LSH family (hash function selection).
  uint64_t family_seed = 0x5eedULL;

  /// Estimator option blocks applied to every created estimator (the
  /// dataset/index/measure fields are overwritten by the service).
  EstimatorContext estimator_options;

  /// Response cache; see EstimateCache for key semantics.
  bool enable_cache = true;
  double cache_tau_bucket_width = 0.01;
  size_t cache_capacity = 1024;
  size_t cache_num_shards = EstimateCache::kDefaultNumShards;
};

/// Long-lived, thread-pooled estimation engine over one dataset.
class EstimationService {
 public:
  /// Takes ownership of `dataset`, builds the LSH family and the ℓ-table
  /// index (in parallel when options.num_threads > 1).
  explicit EstimationService(VectorDataset dataset,
                             EstimationServiceOptions options = {});

  /// Non-owning flavor: serves any DatasetView — in particular a
  /// memory-mapped VSJB v2 arena (MappedCsrStorage), where vectors are
  /// read zero-copy from the file pages. The backing storage must outlive
  /// the service.
  explicit EstimationService(DatasetView dataset,
                             EstimationServiceOptions options = {});

  DatasetView dataset() const { return view_; }
  const LshIndex& index() const { return *index_; }
  const LshFamily& family() const { return *family_; }
  const EstimationServiceOptions& options() const { return options_; }

  /// Content fingerprint of the owned dataset (the cache key component).
  uint64_t dataset_fingerprint() const { return fingerprint_; }

  /// Wall-clock seconds the constructor spent building the LSH index.
  double index_build_seconds() const { return index_build_seconds_; }

  size_t num_threads() const { return options_.num_threads; }

  EstimateCache& cache() { return cache_; }
  const EstimateCache& cache() const { return cache_; }

  /// Answers one request; equivalent to a batch of size one (the request
  /// gets stream index 0).
  EstimateResponse Estimate(const EstimateRequest& request);

  /// Answers every request of the batch. Cache lookups and insertions
  /// happen sequentially in request order; cache misses are computed across
  /// the thread pool. Results are deterministic given (requests, cache
  /// state) — independent of num_threads.
  std::vector<EstimateResponse> EstimateBatch(
      const std::vector<EstimateRequest>& requests);

  /// The cross-connection batching flavor: every group leader draws from
  /// RNG stream index 0 — exactly what a batch of size one (Estimate())
  /// uses — instead of its batch position. Responses therefore do not
  /// depend on how requests happened to be packed into the batch, which is
  /// the contract the network server needs: a request batched with 63
  /// strangers answers bit-identically to the same request served alone.
  /// Duplicate requests still compute once (miss grouping dedups them
  /// before any stream index is assigned).
  std::vector<EstimateResponse> EstimateBatchShared(
      const std::vector<EstimateRequest>& requests);

 private:
  /// Common batch body; `shared_stream` picks stream index 0 (shared) or
  /// the batch position (legacy positional decorrelation) for leaders.
  std::vector<EstimateResponse> EstimateBatchImpl(
      const std::vector<EstimateRequest>& requests, bool shared_stream);
  /// Shared tail of both constructors: index build + estimator context.
  void BuildIndexAndContext();

  /// Returns the shared estimator instance serving `request` —
  /// constructed on first use and keyed by estimator name plus any
  /// engaged sampling overrides (an overridden request gets its own
  /// instance with the overrides folded into its LSH-SS options).
  /// Estimate() is const on estimators, so one instance serves all
  /// threads.
  const JoinSizeEstimator& EstimatorFor(const EstimateRequest& request);

  /// Runs the trials of `request` with the deterministic stream of batch
  /// position `request_index`.
  EstimateResponse Compute(const EstimateRequest& request,
                           size_t request_index,
                           const JoinSizeEstimator& estimator) const;

  EstimationServiceOptions options_;
  VectorDataset dataset_;  // empty in the non-owning flavor
  DatasetView view_;
  uint64_t fingerprint_;
  std::unique_ptr<LshFamily> family_;
  ThreadPool pool_;
  std::unique_ptr<LshIndex> index_;
  double index_build_seconds_ = 0.0;
  EstimatorContext context_;
  EstimateCache cache_;

  std::mutex estimators_mutex_;
  std::unordered_map<std::string, std::unique_ptr<JoinSizeEstimator>>
      estimators_;
};

}  // namespace vsj

#endif  // VSJ_SERVICE_ESTIMATION_SERVICE_H_
