// DatasetView: the one read interface every estimator consumes.
//
// A DatasetView is a non-owning, trivially-copyable handle presenting a
// dataset as dense positions [0, size): position i resolves to a VectorRef
// through a single indirect call into the backing storage. Three backings
// exist:
//
//   * VectorDataset / CsrStorage — positions are storage ids (dense);
//   * StreamingCsrStorage (default conversion) — positions enumerate the
//     *live* vectors in insertion order, so a churned store presents the
//     same dense face as a static dataset of the survivors;
//   * DatasetView::IdAddressed(streaming) — positions are raw stable ids,
//     for callers holding ids handed out by the store (the streaming
//     service's LSH index); only live ids may be dereferenced.
//
// Views are invalidated by any mutation of the backing storage (including
// compaction), like iterators of standard containers.

#ifndef VSJ_VECTOR_DATASET_VIEW_H_
#define VSJ_VECTOR_DATASET_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>

#include "vsj/vector/csr_storage.h"
#include "vsj/vector/vector_dataset.h"

namespace vsj {

class MappedCsrStorage;

/// Non-owning read view of a vector collection.
class DatasetView {
 public:
  /// Iterates the vectors of the view as VectorRefs.
  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = VectorRef;
    using difference_type = std::ptrdiff_t;
    using pointer = const VectorRef*;
    using reference = VectorRef;

    Iterator() = default;
    Iterator(const DatasetView* view, VectorId position)
        : view_(view), position_(position) {}

    VectorRef operator*() const { return (*view_)[position_]; }
    Iterator& operator++() {
      ++position_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.position_ == b.position_;
    }

   private:
    const DatasetView* view_ = nullptr;
    VectorId position_ = 0;
  };

  /// Invalid view; every consumer checks valid() before use.
  DatasetView() = default;

  DatasetView(const VectorDataset& dataset)  // NOLINT(runtime/explicit)
      : self_(&dataset.storage()),
        ref_fn_(&CsrRef),
        size_(dataset.size()),
        name_(&dataset.name()) {}

  DatasetView(const CsrStorage& storage)  // NOLINT(runtime/explicit)
      : self_(&storage), ref_fn_(&CsrRef), size_(storage.size()) {}

  /// Zero-copy view of an mmapped VSJB v2 arena (defined in
  /// dataset_view.cc; positions are storage ids, like CsrStorage).
  DatasetView(const MappedCsrStorage& storage);  // NOLINT(runtime/explicit)

  /// Dense view of the live vectors, in insertion order.
  DatasetView(const StreamingCsrStorage& storage)  // NOLINT(runtime/explicit)
      : self_(&storage), ref_fn_(&StreamingLiveRef), size_(storage.num_live()) {
    storage.live_ids();  // refresh the cache the view reads through
  }

  /// Raw-id view of a streaming store: operator[] takes a stable id (live
  /// ids only); size() spans the whole id space including tombstones.
  static DatasetView IdAddressed(const StreamingCsrStorage& storage) {
    DatasetView view;
    view.self_ = &storage;
    view.ref_fn_ = &StreamingIdRef;
    view.size_ = storage.num_ids();
    return view;
  }

  bool valid() const { return ref_fn_ != nullptr; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  VectorRef operator[](VectorId position) const {
    return ref_fn_(self_, position);
  }

  /// Total number of unordered pairs M = C(n, 2).
  uint64_t NumPairs() const {
    const uint64_t n = size_;
    return n * (n - 1) / 2;
  }

  /// Dataset name when the backing storage carries one, "" otherwise.
  const std::string& name() const;

  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, static_cast<VectorId>(size_)); }

 private:
  using RefFn = VectorRef (*)(const void*, VectorId);

  static VectorRef CsrRef(const void* self, VectorId id) {
    return static_cast<const CsrStorage*>(self)->Ref(id);
  }
  static VectorRef StreamingIdRef(const void* self, VectorId id) {
    return static_cast<const StreamingCsrStorage*>(self)->Ref(id);
  }
  static VectorRef MappedRef(const void* self, VectorId id);
  static VectorRef StreamingLiveRef(const void* self, VectorId position) {
    const auto* storage = static_cast<const StreamingCsrStorage*>(self);
    return storage->Ref(storage->live_ids_cache_[position]);
  }

  const void* self_ = nullptr;
  RefFn ref_fn_ = nullptr;
  size_t size_ = 0;
  const std::string* name_ = nullptr;
};

/// Summary statistics of any view (O(total features)); see DatasetStats for
/// the empty / all-empty-vector conventions.
DatasetStats ComputeStats(DatasetView dataset);

}  // namespace vsj

#endif  // VSJ_VECTOR_DATASET_VIEW_H_
