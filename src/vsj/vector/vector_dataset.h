// The vector collection V of the VSJ problem, plus corpus statistics.
//
// A VectorDataset is the append-once, compacted dataset flavor: every added
// vector's payload is packed into one contiguous CsrStorage arena, so
// element access returns a VectorRef into flat memory (no per-vector heap
// object survives the Add). The streaming flavor lives in
// StreamingCsrStorage; estimators consume either through DatasetView.

#ifndef VSJ_VECTOR_VECTOR_DATASET_H_
#define VSJ_VECTOR_VECTOR_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "vsj/vector/csr_storage.h"
#include "vsj/vector/sparse_vector.h"

namespace vsj {

/// Summary statistics of a dataset (compare against the corpora in App. C.1).
/// Every field is zero for an empty dataset; a dataset of all-empty vectors
/// has num_vectors set and every feature statistic (total/avg/min/max,
/// num_dimensions) zero — min_features = 0 always means "some vector has no
/// features (or there are no vectors)", never "uninitialized".
struct DatasetStats {
  size_t num_vectors = 0;
  size_t num_dimensions = 0;  // max dim id + 1 over all vectors
  size_t total_features = 0;
  double avg_features = 0.0;
  size_t min_features = 0;
  size_t max_features = 0;
};

/// Owning, append-once collection of sparse vectors over a CSR arena.
class VectorDataset {
 public:
  VectorDataset() = default;
  explicit VectorDataset(std::string name) : name_(std::move(name)) {}

  /// Appends a vector's payload to the arena and returns its id. Takes
  /// any VectorRef (a SparseVector converts implicitly), so re-adding a
  /// vector of another dataset needs no owned copy.
  VectorId Add(VectorRef vector) { return storage_.Append(vector); }

  size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }

  VectorRef operator[](VectorId id) const { return storage_[id]; }

  /// The backing columnar arena.
  const CsrStorage& storage() const { return storage_; }

  const std::string& name() const { return name_; }

  /// Total number of unordered pairs M = C(n, 2).
  uint64_t NumPairs() const {
    const uint64_t n = storage_.size();
    return n * (n - 1) / 2;
  }

  /// Computes summary statistics (O(total features)).
  DatasetStats ComputeStats() const;

 private:
  std::string name_;
  CsrStorage storage_;
};

}  // namespace vsj

#endif  // VSJ_VECTOR_VECTOR_DATASET_H_
