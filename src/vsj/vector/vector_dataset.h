// The vector collection V of the VSJ problem, plus corpus statistics.

#ifndef VSJ_VECTOR_VECTOR_DATASET_H_
#define VSJ_VECTOR_VECTOR_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "vsj/vector/sparse_vector.h"

namespace vsj {

/// Index of a vector within its dataset.
using VectorId = uint32_t;

/// Summary statistics of a dataset (compare against the corpora in App. C.1).
struct DatasetStats {
  size_t num_vectors = 0;
  size_t num_dimensions = 0;  // max dim id + 1 over all vectors
  size_t total_features = 0;
  double avg_features = 0.0;
  size_t min_features = 0;
  size_t max_features = 0;
};

/// Owning, append-once collection of sparse vectors.
class VectorDataset {
 public:
  VectorDataset() = default;
  explicit VectorDataset(std::string name) : name_(std::move(name)) {}

  /// Appends a vector and returns its id.
  VectorId Add(SparseVector vector);

  size_t size() const { return vectors_.size(); }
  bool empty() const { return vectors_.empty(); }

  const SparseVector& operator[](VectorId id) const { return vectors_[id]; }
  const std::vector<SparseVector>& vectors() const { return vectors_; }

  const std::string& name() const { return name_; }

  /// Total number of unordered pairs M = C(n, 2).
  uint64_t NumPairs() const {
    const uint64_t n = vectors_.size();
    return n * (n - 1) / 2;
  }

  /// Computes summary statistics (O(total features)).
  DatasetStats ComputeStats() const;

 private:
  std::string name_;
  std::vector<SparseVector> vectors_;
};

}  // namespace vsj

#endif  // VSJ_VECTOR_VECTOR_DATASET_H_
