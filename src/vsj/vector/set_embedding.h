// Vector ↔ set embedding used when adapting SSJ techniques to the VSJ
// problem (paper §1): a real-valued vector is converted to a multiset by
// repeating each dimension round(weight / resolution) times, so set-based
// machinery (e.g. MinHash over elements) can run on weighted data.

#ifndef VSJ_VECTOR_SET_EMBEDDING_H_
#define VSJ_VECTOR_SET_EMBEDDING_H_

#include <cstdint>
#include <vector>

#include "vsj/vector/vector_ref.h"

namespace vsj {

/// An embedded multiset element: (dimension, copy index).
struct SetElement {
  DimId dim;
  uint32_t copy;

  friend bool operator==(const SetElement&, const SetElement&) = default;
};

/// Embeds `v` into a multiset with the given weight resolution.
///
/// A weight w becomes max(1, round(w / resolution)) copies of the dimension
/// (standard rounding embedding; Arasu et al. [2]). For binary vectors with
/// resolution 1 this is the identity embedding.
std::vector<SetElement> EmbedAsSet(VectorRef v, double resolution);

/// Scratch-buffer overload for hot loops (MinHash hashes every vector of an
/// index build): clears and refills `*out`, reusing its capacity so a warm
/// caller embeds without allocating.
void EmbedAsSet(VectorRef v, double resolution, std::vector<SetElement>* out);

/// Jaccard similarity of the embedded multisets of `u` and `v`.
///
/// Equals JaccardSimilarity(u, v) exactly for binary vectors with
/// resolution 1, and converges to the weighted Jaccard as resolution → 0.
double EmbeddedJaccard(VectorRef u, VectorRef v, double resolution);

}  // namespace vsj

#endif  // VSJ_VECTOR_SET_EMBEDDING_H_
