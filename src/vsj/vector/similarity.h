// Similarity measures over sparse vectors.
//
// The paper's evaluation uses cosine similarity; Jaccard is provided both for
// the SSJ/Lattice-Counting adaptation (§3.2) and because MinHash satisfies the
// paper's idealized LSH property (Def. 3) exactly for it.

#ifndef VSJ_VECTOR_SIMILARITY_H_
#define VSJ_VECTOR_SIMILARITY_H_

#include <cstddef>
#include <cstdint>

#include "vsj/vector/vector_ref.h"

namespace vsj {

/// Supported similarity measures.
enum class SimilarityMeasure {
  kCosine,
  kJaccard,
};

/// Similarities within this distance of 1.0 are snapped to exactly 1.0, so
/// that identical vectors reach similarity 1 despite floating-point rounding
/// in Σw² / (√Σw²·√Σw²). All similarity computations in the library (direct,
/// histogram, exact joins) apply the same snap, keeping them consistent.
inline constexpr double kUnitSnapEpsilon = 1e-9;

/// Clamps to [·, 1] and snaps values within kUnitSnapEpsilon of 1 to 1.
inline double SnapUnitSimilarity(double sim) {
  return sim >= 1.0 - kUnitSnapEpsilon ? 1.0 : sim;
}

/// cos(u, v) = u·v / (‖u‖‖v‖); 0 if either vector is empty.
double CosineSimilarity(VectorRef u, VectorRef v);

/// Weighted (generalized/multiset) Jaccard: Σ min(u_i, v_i) / Σ max(u_i, v_i).
/// For binary vectors this is exactly set Jaccard |A∩B| / |A∪B|.
double JaccardSimilarity(VectorRef u, VectorRef v);

/// Dispatches on `measure`.
double Similarity(SimilarityMeasure measure, VectorRef u, VectorRef v);

// Batched pair evaluation (CountPairsAtOrAbove / EvaluatePairBatch) lives
// in vector/pair_eval.h next to the intersection kernels it drives.

/// Short lowercase name ("cosine", "jaccard") for reports.
const char* SimilarityMeasureName(SimilarityMeasure measure);

}  // namespace vsj

#endif  // VSJ_VECTOR_SIMILARITY_H_
