// Non-owning view of one sparse vector stored as parallel (dims, weights)
// arrays — the unit of the columnar storage core.
//
// Every vector in the library, whether owned by a SparseVector, packed into
// a CsrStorage arena, or living in a streaming chunk, is read through a
// VectorRef: two raw pointers, a length, and the cached norms. The Dot /
// OverlapSize members forward to the dispatched intersection kernels in
// vector/pair_eval.h — linear merge, galloping merge for skewed-size pairs,
// SIMD window search for balanced ones — all of which produce bit-identical
// results (matches are accumulated in increasing-dimension order by every
// strategy).

#ifndef VSJ_VECTOR_VECTOR_REF_H_
#define VSJ_VECTOR_VECTOR_REF_H_

#include <cstddef>
#include <cstdint>
#include <iterator>

namespace vsj {

/// Dimension identifier (vocabulary word id).
using DimId = uint32_t;

/// Index of a vector within its dataset / storage.
using VectorId = uint32_t;

/// One (dimension, weight) pair.
struct Feature {
  DimId dim;
  float weight;

  friend bool operator==(const Feature&, const Feature&) = default;
};

/// Non-owning view of a sparse vector: strictly increasing dims, positive
/// weights, cached norms. Trivially copyable — pass by value. Invalidated
/// by whatever invalidates the underlying storage (e.g. compaction).
class VectorRef {
 public:
  /// Iterates (dim, weight) pairs, materializing Feature values on the fly
  /// so range-for over a view reads like range-for over owned features.
  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Feature;
    using difference_type = std::ptrdiff_t;
    using pointer = const Feature*;
    using reference = Feature;

    Iterator() = default;
    Iterator(const DimId* dims, const float* weights)
        : dims_(dims), weights_(weights) {}

    Feature operator*() const { return Feature{*dims_, *weights_}; }
    Iterator& operator++() {
      ++dims_;
      ++weights_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.dims_ == b.dims_;
    }

   private:
    const DimId* dims_ = nullptr;
    const float* weights_ = nullptr;
  };

  VectorRef() = default;
  VectorRef(const DimId* dims, const float* weights, uint32_t size,
            double norm, double l1_norm)
      : dims_(dims),
        weights_(weights),
        size_(size),
        norm_(norm),
        l1_norm_(l1_norm) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  DimId dim(size_t i) const { return dims_[i]; }
  float weight(size_t i) const { return weights_[i]; }
  Feature operator[](size_t i) const { return Feature{dims_[i], weights_[i]}; }

  const DimId* dims() const { return dims_; }
  const float* weights() const { return weights_; }

  /// Cached Euclidean norm.
  double norm() const { return norm_; }

  /// Sum of weights (L1 norm); weights are non-negative by construction.
  double l1_norm() const { return l1_norm_; }

  /// Largest dimension id + 1, or 0 when empty.
  DimId dim_bound() const { return size_ == 0 ? 0 : dims_[size_ - 1] + 1; }

  Iterator begin() const { return Iterator(dims_, weights_); }
  Iterator end() const { return Iterator(dims_ + size_, weights_ + size_); }

  /// Inner product with `other`: merge join over sorted dims, galloping
  /// when one side is ≥ kGallopRatio× longer.
  double Dot(VectorRef other) const;

  /// Number of shared dimensions with `other` (same traversal as Dot).
  size_t OverlapSize(VectorRef other) const;

  /// Element-wise equality of (dims, weights).
  friend bool operator==(VectorRef a, VectorRef b);

 private:
  const DimId* dims_ = nullptr;
  const float* weights_ = nullptr;
  uint32_t size_ = 0;
  double norm_ = 0.0;
  double l1_norm_ = 0.0;
};

/// Size ratio at which Dot/OverlapSize switch from the linear merge to the
/// galloping merge. Both produce exactly equal results; the ratio only
/// picks the cheaper traversal.
inline constexpr size_t kGallopRatio = 8;

/// Hints the cache hierarchy to start loading the head of both feature
/// columns of `v`. Used by batched pair evaluation (stratified sampling
/// draws pairs ahead of evaluating them): typical corpus vectors fit their
/// dims and weights in one or two cache lines each, so two prefetches
/// hide most of the pointer-chase latency of a random pair.
inline void PrefetchFeatures(VectorRef v) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(v.dims());
  __builtin_prefetch(v.weights());
#else
  (void)v;
#endif
}

}  // namespace vsj

#endif  // VSJ_VECTOR_VECTOR_REF_H_
