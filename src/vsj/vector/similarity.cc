#include "vsj/vector/similarity.h"

#include <algorithm>

#include "vsj/util/check.h"

namespace vsj {

double CosineSimilarity(const SparseVector& u, const SparseVector& v) {
  const double denom = u.norm() * v.norm();
  if (denom == 0.0) return 0.0;
  return SnapUnitSimilarity(std::min(u.Dot(v) / denom, 1.0));
}

double JaccardSimilarity(const SparseVector& u, const SparseVector& v) {
  double min_sum = 0.0;
  double max_sum = 0.0;
  size_t i = 0, j = 0;
  const auto& a = u.features();
  const auto& b = v.features();
  while (i < a.size() && j < b.size()) {
    if (a[i].dim < b[j].dim) {
      max_sum += a[i++].weight;
    } else if (a[i].dim > b[j].dim) {
      max_sum += b[j++].weight;
    } else {
      min_sum += std::min(a[i].weight, b[j].weight);
      max_sum += std::max(a[i].weight, b[j].weight);
      ++i;
      ++j;
    }
  }
  while (i < a.size()) max_sum += a[i++].weight;
  while (j < b.size()) max_sum += b[j++].weight;
  if (max_sum == 0.0) return 0.0;
  return SnapUnitSimilarity(min_sum / max_sum);
}

double Similarity(SimilarityMeasure measure, const SparseVector& u,
                  const SparseVector& v) {
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return CosineSimilarity(u, v);
    case SimilarityMeasure::kJaccard:
      return JaccardSimilarity(u, v);
  }
  VSJ_CHECK(false);
  return 0.0;
}

const char* SimilarityMeasureName(SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return "cosine";
    case SimilarityMeasure::kJaccard:
      return "jaccard";
  }
  return "unknown";
}

}  // namespace vsj
