#include "vsj/vector/similarity.h"

#include <algorithm>

#include "vsj/util/check.h"

namespace vsj {

double CosineSimilarity(VectorRef u, VectorRef v) {
  const double denom = u.norm() * v.norm();
  if (denom == 0.0) return 0.0;
  return SnapUnitSimilarity(std::min(u.Dot(v) / denom, 1.0));
}

double JaccardSimilarity(VectorRef u, VectorRef v) {
  double min_sum = 0.0;
  double max_sum = 0.0;
  size_t i = 0, j = 0;
  while (i < u.size() && j < v.size()) {
    if (u.dim(i) < v.dim(j)) {
      max_sum += u.weight(i++);
    } else if (u.dim(i) > v.dim(j)) {
      max_sum += v.weight(j++);
    } else {
      min_sum += std::min(u.weight(i), v.weight(j));
      max_sum += std::max(u.weight(i), v.weight(j));
      ++i;
      ++j;
    }
  }
  while (i < u.size()) max_sum += u.weight(i++);
  while (j < v.size()) max_sum += v.weight(j++);
  if (max_sum == 0.0) return 0.0;
  return SnapUnitSimilarity(min_sum / max_sum);
}

namespace {

template <typename SimFn>
uint64_t CountBatch(DatasetView dataset, const VectorId* firsts,
                    const VectorId* seconds, size_t count, double tau,
                    size_t prefetch_distance, SimFn&& sim) {
  uint64_t hits = 0;
  const size_t lead = std::min(count, prefetch_distance);
  for (size_t i = 0; i < lead; ++i) {
    PrefetchFeatures(dataset[firsts[i]]);
    PrefetchFeatures(dataset[seconds[i]]);
  }
  for (size_t i = 0; i < count; ++i) {
    if (i + prefetch_distance < count) {
      PrefetchFeatures(dataset[firsts[i + prefetch_distance]]);
      PrefetchFeatures(dataset[seconds[i + prefetch_distance]]);
    }
    if (sim(dataset[firsts[i]], dataset[seconds[i]]) >= tau) ++hits;
  }
  return hits;
}

}  // namespace

uint64_t CountPairsAtOrAbove(SimilarityMeasure measure, DatasetView dataset,
                             const VectorId* firsts, const VectorId* seconds,
                             size_t count, double tau,
                             size_t prefetch_distance) {
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return CountBatch(dataset, firsts, seconds, count, tau,
                        prefetch_distance, CosineSimilarity);
    case SimilarityMeasure::kJaccard:
      return CountBatch(dataset, firsts, seconds, count, tau,
                        prefetch_distance, JaccardSimilarity);
  }
  VSJ_CHECK(false);
  return 0;
}

double Similarity(SimilarityMeasure measure, VectorRef u, VectorRef v) {
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return CosineSimilarity(u, v);
    case SimilarityMeasure::kJaccard:
      return JaccardSimilarity(u, v);
  }
  VSJ_CHECK(false);
  return 0.0;
}

const char* SimilarityMeasureName(SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return "cosine";
    case SimilarityMeasure::kJaccard:
      return "jaccard";
  }
  return "unknown";
}

}  // namespace vsj
