#include "vsj/vector/similarity.h"

#include <algorithm>

#include "vsj/util/check.h"

namespace vsj {

double CosineSimilarity(VectorRef u, VectorRef v) {
  const double denom = u.norm() * v.norm();
  if (denom == 0.0) return 0.0;
  return SnapUnitSimilarity(std::min(u.Dot(v) / denom, 1.0));
}

double JaccardSimilarity(VectorRef u, VectorRef v) {
  double min_sum = 0.0;
  double max_sum = 0.0;
  size_t i = 0, j = 0;
  while (i < u.size() && j < v.size()) {
    if (u.dim(i) < v.dim(j)) {
      max_sum += u.weight(i++);
    } else if (u.dim(i) > v.dim(j)) {
      max_sum += v.weight(j++);
    } else {
      min_sum += std::min(u.weight(i), v.weight(j));
      max_sum += std::max(u.weight(i), v.weight(j));
      ++i;
      ++j;
    }
  }
  while (i < u.size()) max_sum += u.weight(i++);
  while (j < v.size()) max_sum += v.weight(j++);
  if (max_sum == 0.0) return 0.0;
  return SnapUnitSimilarity(min_sum / max_sum);
}

double Similarity(SimilarityMeasure measure, VectorRef u, VectorRef v) {
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return CosineSimilarity(u, v);
    case SimilarityMeasure::kJaccard:
      return JaccardSimilarity(u, v);
  }
  VSJ_CHECK(false);
  return 0.0;
}

const char* SimilarityMeasureName(SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return "cosine";
    case SimilarityMeasure::kJaccard:
      return "jaccard";
  }
  return "unknown";
}

}  // namespace vsj
