// MappedCsrStorage: the zero-copy, read-only sibling of CsrStorage.
//
// A VSJB v2 file *is* a CsrStorage laid out on disk (64-byte-aligned
// offsets/dims/weights/norms columns; io/vsjb_format.h), so opening a
// dataset can be one mmap: this class maps the file and serves VectorRefs
// whose pointers aim straight into the file pages. No per-vector
// materialization, no heap arena — the OS pages the columns in on first
// touch, and several processes can share one physical copy.
//
// It plugs into the estimator stack through DatasetView exactly like the
// heap-backed storages (the equivalence suite pins bit-identical estimates
// across heap vs mapped backings), and CsrStorage::FromMapped copies the
// columns out for callers that need a mutable arena.

#ifndef VSJ_VECTOR_MAPPED_CSR_STORAGE_H_
#define VSJ_VECTOR_MAPPED_CSR_STORAGE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "vsj/io/io_status.h"
#include "vsj/util/mapped_file.h"
#include "vsj/vector/vector_ref.h"

namespace vsj {

/// Read-only CSR arena backed by an mmapped VSJB v2 file.
class MappedCsrStorage {
 public:
  /// Knobs of Open(); defaults favour safety over open latency.
  struct OpenOptions {
    /// Verify every section checksum on open (reads all pages once). Off,
    /// the open cost is O(header + section table) and bit rot surfaces as
    /// wrong estimates instead of a load error.
    bool verify_checksums = true;
  };

  MappedCsrStorage() = default;

  /// Maps `path` (must be VSJB v2 — v1 files cannot be mapped; load and
  /// re-save them). On failure `*storage` is reset to the empty state.
  static IoStatus Open(const std::string& path, MappedCsrStorage* storage,
                       const OpenOptions& options);
  static IoStatus Open(const std::string& path, MappedCsrStorage* storage) {
    return Open(path, storage, OpenOptions());
  }

  bool mapped() const { return file_.mapped(); }

  size_t size() const { return num_vectors_; }
  bool empty() const { return num_vectors_ == 0; }
  size_t total_features() const { return num_features_; }

  /// Dataset name recorded in the file header.
  const std::string& name() const { return name_; }

  VectorRef Ref(VectorId id) const {
    const uint64_t begin = offsets_[id];
    return VectorRef(dims_ + begin, weights_ + begin,
                     static_cast<uint32_t>(offsets_[id + 1] - begin),
                     norms_[id], l1_norms_[id]);
  }
  VectorRef operator[](VectorId id) const { return Ref(id); }

  /// Total number of unordered pairs M = C(n, 2).
  uint64_t NumPairs() const {
    const uint64_t n = num_vectors_;
    return n * (n - 1) / 2;
  }

  /// Bytes of the underlying mapping (file size, not resident set).
  size_t MappedBytes() const { return file_.size(); }

 private:
  MappedFile file_;
  std::string name_;
  size_t num_vectors_ = 0;
  size_t num_features_ = 0;
  const uint64_t* offsets_ = nullptr;
  const DimId* dims_ = nullptr;
  const float* weights_ = nullptr;
  const double* norms_ = nullptr;
  const double* l1_norms_ = nullptr;
};

}  // namespace vsj

#endif  // VSJ_VECTOR_MAPPED_CSR_STORAGE_H_
