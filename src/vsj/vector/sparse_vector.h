// Immutable sparse vectors: the objects joined by the VSJ problem.
//
// A vector is stored struct-of-arrays — parallel arrays of strictly
// increasing dimension ids and their (positive) weights — plus the cached
// L2/L1 norms, matching the columnar CsrStorage layout so a SparseVector is
// read through the same VectorRef view as an arena-resident vector.
// Documents are the motivating instance — a dimension is a vocabulary word
// and the weight is a 0/1 presence flag (DBLP-like) or a TF-IDF score
// (NYT/PUBMED-like).

#ifndef VSJ_VECTOR_SPARSE_VECTOR_H_
#define VSJ_VECTOR_SPARSE_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "vsj/vector/vector_ref.h"

namespace vsj {

/// Immutable sparse vector with sorted dimensions and cached norms.
class SparseVector {
 public:
  /// Empty vector (norm 0).
  SparseVector() = default;

  /// Builds from (dim, weight) pairs. Pairs are sorted by dimension;
  /// duplicate dimensions have their weights summed; zero/negative-weight
  /// features are dropped (cosine-similarity corpora carry non-negative
  /// weights; see DESIGN.md).
  explicit SparseVector(std::vector<Feature> features);

  /// Materializes an owned copy of a view (dims, weights and cached norms
  /// are copied verbatim — nothing is recomputed).
  explicit SparseVector(VectorRef ref);

  /// Convenience: binary vector over the given dimensions (weight 1 each).
  static SparseVector FromDims(std::vector<DimId> dims);

  /// Number of non-zero features.
  size_t size() const { return dims_.size(); }
  bool empty() const { return dims_.empty(); }

  DimId dim(size_t i) const { return dims_[i]; }
  float weight(size_t i) const { return weights_[i]; }
  Feature operator[](size_t i) const { return Feature{dims_[i], weights_[i]}; }

  const std::vector<DimId>& dims() const { return dims_; }
  const std::vector<float>& weights() const { return weights_; }

  /// Cached Euclidean norm.
  double norm() const { return norm_; }

  /// Sum of weights (L1 norm); weights are non-negative by construction.
  double l1_norm() const { return l1_norm_; }

  /// Largest dimension id + 1, or 0 when empty.
  DimId dim_bound() const { return dims_.empty() ? 0 : dims_.back() + 1; }

  /// Non-owning view of this vector; valid while the vector is alive.
  VectorRef ref() const {
    return VectorRef(dims_.data(), weights_.data(),
                     static_cast<uint32_t>(dims_.size()), norm_, l1_norm_);
  }
  operator VectorRef() const { return ref(); }  // NOLINT(runtime/explicit)

  VectorRef::Iterator begin() const { return ref().begin(); }
  VectorRef::Iterator end() const { return ref().end(); }

  /// Inner product with `other` (merge join over sorted dims).
  double Dot(VectorRef other) const { return ref().Dot(other); }

  /// Number of shared dimensions with `other`.
  size_t OverlapSize(VectorRef other) const { return ref().OverlapSize(other); }

  friend bool operator==(const SparseVector& a, const SparseVector& b) {
    return a.dims_ == b.dims_ && a.weights_ == b.weights_;
  }

 private:
  std::vector<DimId> dims_;
  std::vector<float> weights_;
  double norm_ = 0.0;
  double l1_norm_ = 0.0;
};

}  // namespace vsj

#endif  // VSJ_VECTOR_SPARSE_VECTOR_H_
