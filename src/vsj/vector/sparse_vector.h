// Immutable sparse vectors: the objects joined by the VSJ problem.
//
// A vector is stored as parallel arrays of strictly increasing dimension ids
// and their (positive) weights, plus the cached L2 norm. Documents are the
// motivating instance — a dimension is a vocabulary word and the weight is a
// 0/1 presence flag (DBLP-like) or a TF-IDF score (NYT/PUBMED-like).

#ifndef VSJ_VECTOR_SPARSE_VECTOR_H_
#define VSJ_VECTOR_SPARSE_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vsj {

/// Dimension identifier (vocabulary word id).
using DimId = uint32_t;

/// One (dimension, weight) pair.
struct Feature {
  DimId dim;
  float weight;

  friend bool operator==(const Feature&, const Feature&) = default;
};

/// Immutable sparse vector with sorted dimensions and cached L2 norm.
class SparseVector {
 public:
  /// Empty vector (norm 0).
  SparseVector() = default;

  /// Builds from (dim, weight) pairs. Pairs are sorted by dimension;
  /// duplicate dimensions have their weights summed; zero/negative-weight
  /// features are dropped (cosine-similarity corpora carry non-negative
  /// weights; see DESIGN.md).
  explicit SparseVector(std::vector<Feature> features);

  /// Convenience: binary vector over the given dimensions (weight 1 each).
  static SparseVector FromDims(std::vector<DimId> dims);

  /// Number of non-zero features.
  size_t size() const { return features_.size(); }
  bool empty() const { return features_.empty(); }

  const Feature& operator[](size_t i) const { return features_[i]; }
  const std::vector<Feature>& features() const { return features_; }

  /// Cached Euclidean norm.
  double norm() const { return norm_; }

  /// Sum of weights (L1 norm); weights are non-negative by construction.
  double l1_norm() const { return l1_norm_; }

  /// Largest dimension id + 1, or 0 when empty.
  DimId dim_bound() const {
    return features_.empty() ? 0 : features_.back().dim + 1;
  }

  /// Inner product with `other` (merge join over sorted dims).
  double Dot(const SparseVector& other) const;

  /// Number of shared dimensions with `other`.
  size_t OverlapSize(const SparseVector& other) const;

  friend bool operator==(const SparseVector& a, const SparseVector& b) {
    return a.features_ == b.features_;
  }

 private:
  std::vector<Feature> features_;
  double norm_ = 0.0;
  double l1_norm_ = 0.0;
};

}  // namespace vsj

#endif  // VSJ_VECTOR_SPARSE_VECTOR_H_
