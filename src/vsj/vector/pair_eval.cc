// Dispatched sparse-intersection kernels and the locality-ordered batch
// evaluator. Bit-identity rules of this file (DESIGN.md "Batch pair
// evaluation"):
//
//  * Matched products are accumulated with one IEEE double multiply + add
//    per match, in increasing-dimension order, by every strategy (linear
//    merge, gallop, SSE2/AVX2 window search). The SIMD code only *finds*
//    match positions; it never touches the accumulator.
//  * This translation unit compiles with -ffp-contract=off (CMakeLists) so
//    `sum += wa * wb` can never contract into an FMA on targets that have
//    one — the scalar and SIMD paths must round identically everywhere,
//    including -march=native builds.
//  * The cosine threshold test reproduces CosineSimilarity() term for term
//    (same denominator order, same clamp, same unit snap): the batch path
//    must count exactly what the unbatched Similarity loop counts.

#include "vsj/vector/pair_eval.h"

#include <algorithm>
#include <utility>

#include "vsj/obs/obs.h"
#include "vsj/util/check.h"
#include "vsj/util/cpu.h"

#if defined(__x86_64__) || defined(__i386__)
#define VSJ_PAIR_EVAL_X86 1
#include <immintrin.h>
#else
#define VSJ_PAIR_EVAL_X86 0
#endif

namespace vsj {

namespace {

// First index in [begin, n) with dims[idx] >= target, found by exponential
// probing from `begin` followed by a binary search over the bracketed run.
// The merge loops below advance `begin` monotonically, so consecutive
// gallops touch disjoint prefixes of the long side.
inline size_t GallopLowerBound(const DimId* dims, size_t n, size_t begin,
                               DimId target) {
  if (begin >= n || dims[begin] >= target) return begin;
  size_t bound = 1;
  while (begin + bound < n && dims[begin + bound] < target) bound <<= 1;
  const size_t lo = begin + (bound >> 1);
  const size_t hi = std::min(n, begin + bound);
  return static_cast<size_t>(
      std::lower_bound(dims + lo, dims + hi, target) - dims);
}

struct DotAccum {
  double sum = 0.0;
  uint32_t matches = 0;
};

// Reference traversal: linear merge, or galloping when the long side is
// >= kGallopRatio× the short one. Match positions arrive in increasing-
// dimension order under both strategies, which is what keeps every other
// kernel in this file exactly equal to this one.
DotAccum DotScalar(VectorRef small, VectorRef large) {
  const size_t an = small.size();
  const size_t bn = large.size();
  const DimId* a = small.dims();
  const DimId* b = large.dims();
  DotAccum acc;

  if (bn >= kGallopRatio * an) {
    size_t j = 0;
    for (size_t i = 0; i < an; ++i) {
      j = GallopLowerBound(b, bn, j, a[i]);
      if (j == bn) return acc;
      if (b[j] == a[i]) {
        acc.sum +=
            static_cast<double>(small.weight(i)) * large.weight(j);
        ++acc.matches;
        ++j;
      }
    }
    return acc;
  }

  size_t i = 0, j = 0;
  while (i < an && j < bn) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      acc.sum += static_cast<double>(small.weight(i)) * large.weight(j);
      ++acc.matches;
      ++i;
      ++j;
    }
  }
  return acc;
}

#if VSJ_PAIR_EVAL_X86

// SIMD window search, the balanced-length path. For each dim of the short
// side (walked in order, so accumulation order matches the linear merge) a
// broadcast-compare checks one W-wide window of the long side at once; the
// window advances by W whenever its maximum falls below the probe. Every
// short-side dim has at most one partner (dims are strictly increasing),
// and the window only ever advances past values smaller than all remaining
// probes, so no match is missed or duplicated. The branchy 3-way compare of
// the scalar merge — mispredicted roughly once per element on real corpora
// — becomes a branchless compare+movemask that only branches on an actual
// match.
DotAccum DotSse2(VectorRef small, VectorRef large) {
  const size_t an = small.size();
  const size_t bn = large.size();
  const DimId* a = small.dims();
  const DimId* b = large.dims();
  const float* wa = small.weights();
  const float* wb = large.weights();
  DotAccum acc;

  size_t i = 0, j = 0;
  while (i < an && j + 4 <= bn) {
    const DimId probe = a[i];
    if (b[j + 3] < probe) {
      j += 4;
      continue;
    }
    const __m128i va = _mm_set1_epi32(static_cast<int>(probe));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    const int mask =
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vb)));
    if (mask != 0) {
      const size_t jj =
          j + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
      acc.sum += static_cast<double>(wa[i]) * wb[jj];
      ++acc.matches;
    }
    ++i;
  }

  // Fewer than one window of the long side left: plain merge finishes.
  while (i < an && j < bn) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      acc.sum += static_cast<double>(wa[i]) * wb[j];
      ++acc.matches;
      ++i;
      ++j;
    }
  }
  return acc;
}

// Short-vector fast path: when the long side fits in two YMM registers the
// whole side is masked-loaded ONCE and every probe is a single broadcast +
// two compares — no window advance, no scalar tail. This is the common case
// on dblp-like corpora (mean length ~14): the ≥16-element window loop below
// barely engages there, exiting to its scalar tail after one advance.
// Masked lanes load as zero and a real dim of 0 would alias them, so the
// combined movemask is ANDed with the valid-lane mask before the hit test.
// Probes walk the short side in increasing-dim order and each matches at
// most one lane, so accumulation order — and therefore the rounded sum —
// is identical to the linear merge.
__attribute__((target("avx2"))) DotAccum DotAvx2Small(VectorRef small,
                                                      VectorRef large) {
  const size_t an = small.size();
  const size_t bn = large.size();  // 2 <= bn <= 16
  const DimId* a = small.dims();
  const DimId* b = large.dims();
  const float* wa = small.weights();
  const float* wb = large.weights();
  DotAccum acc;

  const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i lo_mask =
      _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(bn)), lane);
  const __m256i b_lo =
      _mm256_maskload_epi32(reinterpret_cast<const int*>(b), lo_mask);
  __m256i b_hi = _mm256_setzero_si256();
  if (bn > 8) {
    const __m256i hi_mask = _mm256_cmpgt_epi32(
        _mm256_set1_epi32(static_cast<int>(bn) - 8), lane);
    b_hi = _mm256_maskload_epi32(reinterpret_cast<const int*>(b + 8),
                                 hi_mask);
  }
  const uint32_t valid = (uint32_t{1} << bn) - 1u;

  for (size_t i = 0; i < an; ++i) {
    const __m256i probe = _mm256_set1_epi32(static_cast<int>(a[i]));
    uint32_t hits = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(probe, b_lo))));
    hits |= static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(
                _mm256_cmpeq_epi32(probe, b_hi))))
            << 8;
    hits &= valid;
    if (hits != 0) {
      const size_t jj = static_cast<size_t>(__builtin_ctz(hits));
      acc.sum += static_cast<double>(wa[i]) * wb[jj];
      ++acc.matches;
    }
  }
  return acc;
}

// Same idea, one more rung: long sides of 17..32 dims live in four YMM
// registers. Covers ~96% of dblp-like pairs together with the 2-register
// path (vector lengths are lognormal around ~14; >32 dims is the ~2% tail).
__attribute__((target("avx2"))) DotAccum DotAvx2Small32(VectorRef small,
                                                        VectorRef large) {
  const size_t an = small.size();
  const size_t bn = large.size();  // 17 <= bn <= 32
  const DimId* a = small.dims();
  const DimId* b = large.dims();
  const float* wa = small.weights();
  const float* wb = large.weights();
  DotAccum acc;

  const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i b0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  const __m256i b1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 8));
  const __m256i m2 = _mm256_cmpgt_epi32(
      _mm256_set1_epi32(static_cast<int>(bn) - 16), lane);
  const __m256i b2 =
      _mm256_maskload_epi32(reinterpret_cast<const int*>(b + 16), m2);
  __m256i b3 = _mm256_setzero_si256();
  if (bn > 24) {
    const __m256i m3 = _mm256_cmpgt_epi32(
        _mm256_set1_epi32(static_cast<int>(bn) - 24), lane);
    b3 = _mm256_maskload_epi32(reinterpret_cast<const int*>(b + 24), m3);
  }
  const uint32_t valid =
      bn == 32 ? 0xffffffffu : (uint32_t{1} << bn) - 1u;

  for (size_t i = 0; i < an; ++i) {
    const __m256i probe = _mm256_set1_epi32(static_cast<int>(a[i]));
    uint32_t hits = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(probe, b0))));
    hits |= static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(
                _mm256_cmpeq_epi32(probe, b1))))
            << 8;
    hits |= static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(
                _mm256_cmpeq_epi32(probe, b2))))
            << 16;
    hits |= static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(
                _mm256_cmpeq_epi32(probe, b3))))
            << 24;
    hits &= valid;
    if (hits != 0) {
      const size_t jj = static_cast<size_t>(__builtin_ctz(hits));
      acc.sum += static_cast<double>(wa[i]) * wb[jj];
      ++acc.matches;
    }
  }
  return acc;
}

__attribute__((target("avx2"))) DotAccum DotAvx2(VectorRef small,
                                                 VectorRef large) {
  if (large.size() <= 16) return DotAvx2Small(small, large);
  if (large.size() <= 32) return DotAvx2Small32(small, large);

  const size_t an = small.size();
  const size_t bn = large.size();
  const DimId* a = small.dims();
  const DimId* b = large.dims();
  const float* wa = small.weights();
  const float* wb = large.weights();
  DotAccum acc;

  size_t i = 0, j = 0;
  while (i < an && j + 8 <= bn) {
    const DimId probe = a[i];
    if (b[j + 7] < probe) {
      j += 8;
      continue;
    }
    const __m256i va = _mm256_set1_epi32(static_cast<int>(probe));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const int mask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb)));
    if (mask != 0) {
      const size_t jj =
          j + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
      acc.sum += static_cast<double>(wa[i]) * wb[jj];
      ++acc.matches;
    }
    ++i;
  }

  while (i < an && j < bn) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      acc.sum += static_cast<double>(wa[i]) * wb[j];
      ++acc.matches;
      ++i;
      ++j;
    }
  }
  return acc;
}

#endif  // VSJ_PAIR_EVAL_X86

// The short-circuits, the small/large swap, and the gallop-vs-window choice,
// templated on the balanced-length kernel so the batch loop below can bind
// the dispatched level ONCE per batch instead of re-reading it per pair
// (ActiveSimdLevel() is an out-of-line call; at ~14-dim dblp vectors it was
// measurable in the estimate profile). Degenerate pairs (either side empty,
// or dimension ranges fully disjoint) return {0, 0} before any kernel runs,
// so every level is indistinguishable on them; pair_eval_test pins this.
// Ordered so no dims pointer is dereferenced until both sides are known
// non-empty.
template <typename KernelFn>
inline PairDotResult PairDotCountWith(VectorRef a, VectorRef b,
                                      KernelFn kernel) {
  if (a.empty() || b.empty()) return {};
  if (a.dim(a.size() - 1) < b.dim(0) || b.dim(b.size() - 1) < a.dim(0)) {
    return {};
  }

  VectorRef small = a;
  VectorRef large = b;
  if (small.size() > large.size()) std::swap(small, large);

  DotAccum acc;
  // Heavily skewed pairs take the galloping skip at every level: it visits
  // O(small · log large) elements, already sublinear in the window scan.
  if (large.size() >= kGallopRatio * small.size()) {
    acc = DotScalar(small, large);
  } else {
    acc = kernel(small, large);
  }
  return PairDotResult{acc.sum, acc.matches};
}

// CosineSimilarity() with the Dot already in hand — term-for-term the same
// expression (denominator order, clamp, unit snap), so the batch evaluator
// reaches bit-identical similarity values while reusing the traversal's
// match count for the density histogram.
inline double CosineFromDot(double dot, VectorRef u, VectorRef v) {
  const double denom = u.norm() * v.norm();
  if (denom == 0.0) return 0.0;
  return SnapUnitSimilarity(std::min(dot / denom, 1.0));
}

struct BatchStats {
  uint64_t matches = 0;
  uint64_t min_len = 0;
};

// The cosine batch loop, templated on the kernel: dispatch resolved by the
// caller, per-pair work is just prefetch + traversal + threshold test.
template <typename KernelFn>
inline uint64_t RunCosineBatch(const VectorRef* u, const VectorRef* v,
                               const uint8_t* order, size_t count, double tau,
                               size_t prefetch_distance, KernelFn kernel,
                               BatchStats* stats) {
  uint64_t mask = 0;
  for (size_t k = 0; k < count; ++k) {
    if (k + prefetch_distance < count) {
      PrefetchFeatures(u[order[k + prefetch_distance]]);
      PrefetchFeatures(v[order[k + prefetch_distance]]);
    }
    const size_t i = order[k];
    const PairDotResult r = PairDotCountWith(u[i], v[i], kernel);
    stats->matches += r.matches;
    stats->min_len += std::min(u[i].size(), v[i].size());
    if (CosineFromDot(r.dot, u[i], v[i]) >= tau) mask |= uint64_t{1} << i;
  }
  return mask;
}

}  // namespace

PairDotResult PairDotCount(VectorRef a, VectorRef b) {
  // Single-pair entry (VectorRef::Dot/OverlapSize): one dispatch per call.
  // Batch callers go through EvaluatePairBatch, which hoists this switch.
  switch (ActiveSimdLevel()) {
#if VSJ_PAIR_EVAL_X86
    case SimdLevel::kAvx2:
      return PairDotCountWith(
          a, b, [](VectorRef s, VectorRef l) { return DotAvx2(s, l); });
    case SimdLevel::kSse2:
      return PairDotCountWith(
          a, b, [](VectorRef s, VectorRef l) { return DotSse2(s, l); });
#endif
    default:
      return PairDotCountWith(
          a, b, [](VectorRef s, VectorRef l) { return DotScalar(s, l); });
  }
}

uint64_t EvaluatePairBatch(SimilarityMeasure measure, DatasetView dataset,
                           const VectorId* firsts, const VectorId* seconds,
                           size_t count, double tau, size_t prefetch_distance,
                           uint64_t* hit_mask) {
  VSJ_CHECK(count <= kPairEvalBatch);
  if (count == 0) {
    if (hit_mask != nullptr) *hit_mask = 0;
    return 0;
  }

  // Materialize every VectorRef once. The storage indirection (DatasetView's
  // ref_fn_) used to run three times per side per pair — prefetch lead,
  // prefetch ahead, evaluation — which on the streaming backing means three
  // slot-table lookups through a function pointer. Once is enough.
  VectorRef u[kPairEvalBatch];
  VectorRef v[kPairEvalBatch];
  uint8_t order[kPairEvalBatch];
  for (size_t i = 0; i < count; ++i) {
    u[i] = dataset[firsts[i]];
    v[i] = dataset[seconds[i]];
    order[i] = static_cast<uint8_t>(i);
  }

  // Locality order (NeedleTail): evaluate pairs sorted by the smallest
  // arena offset they touch, so consecutive evaluations walk the feature
  // arena near-sequentially instead of hopping between random chunks.
  // Pointers are compared as integers because streaming chunks are separate
  // allocations. The sort runs over packed (offset key, index) words — the
  // low 6 bits carry the batch index, which both breaks ties and rides
  // along for free. Reordering only pays when the batch actually spans more
  // memory than the cache can hold: when every pair in the batch already
  // sits within a cache-scale span (kLocalitySortSpanBytes, roughly L2),
  // evaluation order cannot change what is resident and the sort would be
  // pure overhead, so draw order is kept. Hit bits stay keyed by the
  // original index either way, so callers see draw order; the count is
  // order-insensitive (pinned by the reorder-invariance tests).
  uint64_t keyed[kPairEvalBatch];
  uint64_t min_key = ~uint64_t{0};
  uint64_t max_key = 0;
  for (size_t i = 0; i < count; ++i) {
    const auto up = reinterpret_cast<uintptr_t>(u[i].dims());
    const auto vp = reinterpret_cast<uintptr_t>(v[i].dims());
    const uint64_t key = static_cast<uint64_t>(up < vp ? up : vp);
    min_key = key < min_key ? key : min_key;
    max_key = key > max_key ? key : max_key;
    keyed[i] = (key << 6) | static_cast<uint64_t>(i);
  }
  const bool locality_sorted = max_key - min_key > kLocalitySortSpanBytes;
  if (locality_sorted) {
    std::sort(keyed, keyed + count);
    for (size_t i = 0; i < count; ++i) {
      order[i] = static_cast<uint8_t>(keyed[i] & 63u);
    }
  }

  const size_t lead = std::min(count, prefetch_distance);
  for (size_t k = 0; k < lead; ++k) {
    PrefetchFeatures(u[order[k]]);
    PrefetchFeatures(v[order[k]]);
  }

  // Dispatch bound once for the whole batch: the cosine loop instantiates
  // per level, so the per-pair path has no level read, no measure test, and
  // a direct kernel call. Jaccard's weighted min/max walk over the union is
  // order-sensitive FP accumulation that the dot traversal cannot reproduce,
  // so that measure keeps the scalar Similarity routine per pair.
  const SimdLevel level = ActiveSimdLevel();
  uint64_t mask = 0;
  BatchStats stats;
  if (measure == SimilarityMeasure::kCosine) {
    switch (level) {
#if VSJ_PAIR_EVAL_X86
      case SimdLevel::kAvx2:
        mask = RunCosineBatch(
            u, v, order, count, tau, prefetch_distance,
            [](VectorRef s, VectorRef l) { return DotAvx2(s, l); }, &stats);
        break;
      case SimdLevel::kSse2:
        mask = RunCosineBatch(
            u, v, order, count, tau, prefetch_distance,
            [](VectorRef s, VectorRef l) { return DotSse2(s, l); }, &stats);
        break;
#endif
      default:
        mask = RunCosineBatch(
            u, v, order, count, tau, prefetch_distance,
            [](VectorRef s, VectorRef l) { return DotScalar(s, l); }, &stats);
        break;
    }
  } else {
    for (size_t k = 0; k < count; ++k) {
      if (k + prefetch_distance < count) {
        PrefetchFeatures(u[order[k + prefetch_distance]]);
        PrefetchFeatures(v[order[k + prefetch_distance]]);
      }
      const size_t i = order[k];
      if (JaccardSimilarity(u[i], v[i]) >= tau) mask |= uint64_t{1} << i;
    }
  }

  // Bulk post-batch instrumentation only; the pair loop stays bare (the
  // metrics overhead gate in CI holds the dot kernel to <= 5%).
  VSJ_COUNTER_ADD("pair_eval.batches", 1);
  VSJ_COUNTER_ADD("pair_eval.pairs", count);
  if (locality_sorted) VSJ_COUNTER_ADD("pair_eval.locality_sorted", 1);
  switch (level) {
    case SimdLevel::kAvx2:
      VSJ_COUNTER_ADD("pair_eval.dispatch.avx2", 1);
      break;
    case SimdLevel::kSse2:
      VSJ_COUNTER_ADD("pair_eval.dispatch.sse2", 1);
      break;
    case SimdLevel::kScalar:
      VSJ_COUNTER_ADD("pair_eval.dispatch.scalar", 1);
      break;
  }
  VSJ_HIST_RECORD("pair_eval.batch_fill_pct",
                  count * 100 / kPairEvalBatch);
  if (measure == SimilarityMeasure::kCosine && stats.min_len > 0) {
    VSJ_HIST_RECORD("pair_eval.intersection_density_pct",
                    stats.matches * 100 / stats.min_len);
  }

  if (hit_mask != nullptr) *hit_mask = mask;
  return static_cast<uint64_t>(__builtin_popcountll(mask));
}

uint64_t CountPairsAtOrAbove(SimilarityMeasure measure, DatasetView dataset,
                             const VectorId* firsts, const VectorId* seconds,
                             size_t count, double tau,
                             size_t prefetch_distance) {
  uint64_t hits = 0;
  for (size_t off = 0; off < count; off += kPairEvalBatch) {
    const size_t chunk = std::min<size_t>(kPairEvalBatch, count - off);
    hits += EvaluatePairBatch(measure, dataset, firsts + off, seconds + off,
                              chunk, tau, prefetch_distance, nullptr);
  }
  return hits;
}

}  // namespace vsj
