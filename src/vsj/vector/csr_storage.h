// Columnar (CSR-style) vector storage: the arena behind every dataset.
//
// CsrStorage packs all vectors of a collection into three contiguous
// struct-of-arrays buffers — dims[], weights[], offsets[] — plus per-vector
// cached norms, so the Dot kernel streams through one allocation instead of
// pointer-chasing per-vector heap blocks (the layout idea of columnar /
// slotted-page engines, applied to the VSJ hot path).
//
// StreamingCsrStorage is the mutable counterpart for the streaming engine:
// a chunked arena (appends go to the open tail chunk; full chunks are
// sealed) with tombstone deletion and churn-triggered compaction. Vector
// ids are stable across compaction — a slot table maps id → (chunk, index)
// — so LSH indexes and caches keyed by id survive arbitrary churn. See
// DESIGN.md ("Columnar storage core") for the policy details.

#ifndef VSJ_VECTOR_CSR_STORAGE_H_
#define VSJ_VECTOR_CSR_STORAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vsj/util/check.h"
#include "vsj/vector/vector_ref.h"

namespace vsj {

class MappedCsrStorage;

/// Append-once contiguous arena of sparse vectors.
class CsrStorage {
 public:
  CsrStorage() = default;

  /// Copies an mmapped (read-only) arena into a mutable heap arena — the
  /// escape hatch when a zero-copy dataset needs editing. Norms are copied
  /// verbatim. Defined in mapped_csr_storage.cc.
  static CsrStorage FromMapped(const MappedCsrStorage& mapped);

  /// Pre-allocates for `num_vectors` vectors totalling `num_features`
  /// features.
  void Reserve(size_t num_vectors, size_t num_features);

  /// Copies the vector's payload into the arena and returns its id.
  VectorId Append(VectorRef vector);

  size_t size() const { return norms_.size(); }
  bool empty() const { return norms_.empty(); }
  size_t total_features() const { return dims_.size(); }

  VectorRef Ref(VectorId id) const {
    const uint64_t begin = offsets_[id];
    return VectorRef(dims_.data() + begin, weights_.data() + begin,
                     static_cast<uint32_t>(offsets_[id + 1] - begin),
                     norms_[id], l1_norms_[id]);
  }
  VectorRef operator[](VectorId id) const { return Ref(id); }

  /// Payload bytes of the arena (dims + weights + offsets + norms).
  size_t MemoryBytes() const;

 private:
  std::vector<DimId> dims_;
  std::vector<float> weights_;
  std::vector<uint64_t> offsets_{0};  // size() + 1 entries
  std::vector<double> norms_;
  std::vector<double> l1_norms_;
};

/// Tuning knobs of the streaming arena.
struct StreamingStorageOptions {
  /// A chunk is sealed once it holds at least this many features; appends
  /// then open a fresh chunk. Bounds the copy cost of any single growth
  /// while keeping each chunk's payload contiguous.
  size_t chunk_features = 1 << 16;

  /// Compaction triggers when tombstoned ids make up at least this fraction
  /// of all ids (and min_dead_for_compaction is met). 0 disables automatic
  /// compaction.
  double compact_dead_fraction = 0.25;

  /// Minimum number of tombstones before automatic compaction fires, so
  /// tiny stores don't compact on every removal.
  size_t min_dead_for_compaction = 64;
};

/// Chunked arena with tombstones and churn-triggered compaction.
///
/// Externally synchronized, like the streaming service that owns it.
/// Mutations (Append/Remove/Compact) invalidate outstanding VectorRefs and
/// views; ids remain stable forever.
class StreamingCsrStorage {
 public:
  explicit StreamingCsrStorage(StreamingStorageOptions options = {});

  const StreamingStorageOptions& options() const { return options_; }

  /// Copies the vector into the open tail chunk and returns its stable id.
  VectorId Append(VectorRef vector);

  /// Tombstones `id` (must be live). The payload is reclaimed by the next
  /// compaction, which runs automatically once the dead fraction crosses
  /// the configured threshold.
  void Remove(VectorId id);

  /// Allocates the next id already tombstoned, with no payload — snapshot
  /// restore uses this to reproduce a churned store's id space (erased ids
  /// keep their slots, payload-free) without replaying the churn.
  VectorId AppendDead();

  /// True iff `id` was appended and not removed.
  bool Contains(VectorId id) const {
    return id < slots_.size() && slots_[id].chunk != kDeadChunk;
  }

  /// View of live vector `id` (checked: tombstoned/unknown ids abort,
  /// like every other misuse in the library); valid until the next
  /// mutation. Inline: the batch pair evaluator materializes two refs per
  /// sampled pair through this lookup, which made the out-of-line call
  /// visible in the estimate profile.
  VectorRef Ref(VectorId id) const {
    VSJ_CHECK_MSG(Contains(id), "vector %u not live in streaming storage",
                  id);
    const Slot slot = slots_[id];
    return chunks_[slot.chunk].Ref(slot.index);
  }

  /// Total ids ever appended (the id space; includes tombstones).
  size_t num_ids() const { return slots_.size(); }
  size_t num_live() const { return slots_.size() - dead_count_; }
  size_t num_dead() const { return dead_count_; }
  size_t num_chunks() const { return chunks_.size(); }

  /// Number of compactions run so far (automatic + manual).
  uint64_t compactions() const { return compactions_; }

  /// Rewrites every live payload into one fresh chunk (in id order) and
  /// drops tombstoned payloads. Ids are unchanged; refs/views are
  /// invalidated.
  void Compact();

  /// Live ids in increasing (= insertion) order; rebuilt lazily after
  /// mutations. Valid until the next mutation.
  const std::vector<VectorId>& live_ids() const;

  /// Payload bytes across all chunks (tombstoned payloads included until
  /// compaction reclaims them).
  size_t MemoryBytes() const;

 private:
  friend class DatasetView;

  static constexpr uint32_t kDeadChunk = 0xffffffffu;

  struct Slot {
    uint32_t chunk;
    VectorId index;  // position within the chunk
  };

  void MaybeCompact();

  StreamingStorageOptions options_;
  std::vector<CsrStorage> chunks_;
  std::vector<Slot> slots_;  // id -> location, kDeadChunk when tombstoned
  size_t dead_count_ = 0;         // tombstoned ids, ever
  size_t unreclaimed_dead_ = 0;   // tombstones whose payload is still stored
  uint64_t compactions_ = 0;
  mutable std::vector<VectorId> live_ids_cache_;
  mutable bool live_ids_dirty_ = false;
};

}  // namespace vsj

#endif  // VSJ_VECTOR_CSR_STORAGE_H_
