#include "vsj/vector/dataset_view.h"

#include <algorithm>

#include "vsj/vector/mapped_csr_storage.h"

namespace vsj {

DatasetView::DatasetView(const MappedCsrStorage& storage)
    : self_(&storage),
      ref_fn_(&MappedRef),
      size_(storage.size()),
      name_(&storage.name()) {}

VectorRef DatasetView::MappedRef(const void* self, VectorId id) {
  return static_cast<const MappedCsrStorage*>(self)->Ref(id);
}

const std::string& DatasetView::name() const {
  static const std::string kEmpty;
  return name_ != nullptr ? *name_ : kEmpty;
}

DatasetStats ComputeStats(DatasetView dataset) {
  DatasetStats stats;
  stats.num_vectors = dataset.size();
  if (dataset.empty()) return stats;  // everything stays zeroed
  stats.min_features = dataset[0].size();
  for (VectorRef v : dataset) {
    stats.total_features += v.size();
    stats.min_features = std::min(stats.min_features, v.size());
    stats.max_features = std::max(stats.max_features, v.size());
    stats.num_dimensions =
        std::max<size_t>(stats.num_dimensions, v.dim_bound());
  }
  stats.avg_features =
      static_cast<double>(stats.total_features) / stats.num_vectors;
  return stats;
}

}  // namespace vsj
