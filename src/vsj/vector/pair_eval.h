// Batch pair evaluation: the innermost kernel of every estimator.
//
// Everything the library does with a sampled pair — SampleH hit counting,
// SampleL adaptive verification, brute-force joins, the acceptance suite's
// ground truth — bottoms out in "intersect two sorted sparse vectors and
// accumulate the matched products". This header owns that kernel in two
// shapes:
//
//  * PairDotCount / PairDot / PairOverlap: one pair, runtime-dispatched
//    (AVX2 / SSE2 / scalar via util/cpu.h). The SIMD widths vectorize only
//    the *search* for matching dims (broadcast-compare over a window of the
//    longer side, with the galloping skip taking over for heavily skewed
//    lengths); the FP accumulation of matched products stays scalar, in
//    increasing-dimension order, so every width returns bit-identical
//    doubles (DESIGN.md "Batch pair evaluation").
//
//  * EvaluatePairBatch / CountPairsAtOrAbove: up to kPairEvalBatch pairs at
//    once. The batch form materializes every VectorRef once (instead of
//    re-deriving it per prefetch and per evaluation), then evaluates in
//    *locality order* — sorted by the arena offset of the pair's feature
//    columns, NeedleTail-style — with the feature columns of the pair
//    kPairPrefetchDistance ahead prefetched. Reordering is legal because a
//    hit count is an order-insensitive sum and each pair's hit bit is keyed
//    by its original batch index; draws are never reordered, so the sample
//    set is bit-identical to the unbatched loop.

#ifndef VSJ_VECTOR_PAIR_EVAL_H_
#define VSJ_VECTOR_PAIR_EVAL_H_

#include <cstddef>
#include <cstdint>

#include "vsj/vector/dataset_view.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/vector_ref.h"

namespace vsj {

/// Pairs evaluated per batch by the sampling loops and the brute-force
/// joins, and how many pairs ahead of the (locality-ordered) evaluation
/// cursor the feature columns are prefetched. Tuning knobs only: neither
/// changes any draw or result. kPairEvalBatch must stay <= 64 so a batch's
/// hit set fits one uint64_t mask.
inline constexpr uint64_t kPairEvalBatch = 64;
inline constexpr uint64_t kPairPrefetchDistance = 8;

/// Locality reordering engages only when the batch's feature columns span
/// more address space than this (roughly an L2's worth): within a
/// cache-scale span, evaluation order cannot change residency and the sort
/// would be pure overhead. Policy knob only — hit results never depend on
/// evaluation order.
inline constexpr uint64_t kLocalitySortSpanBytes = uint64_t{2} << 20;

/// Dot product plus intersection size from one traversal.
struct PairDotResult {
  double dot = 0.0;
  uint32_t matches = 0;
};

/// Inner product and shared-dimension count of two sparse vectors: merge
/// join over the sorted dims, galloping when one side is >= kGallopRatio×
/// longer, SIMD window search otherwise. Pairs with an empty side or fully
/// disjoint dim ranges short-circuit to {0.0, 0} before any level-specific
/// code runs, so the scalar and SIMD paths cannot diverge on degenerate
/// input (the regression pair_eval_test pins this).
PairDotResult PairDotCount(VectorRef a, VectorRef b);

/// Inner product only (VectorRef::Dot routes here).
inline double PairDot(VectorRef a, VectorRef b) {
  return PairDotCount(a, b).dot;
}

/// Shared-dimension count only (VectorRef::OverlapSize routes here).
inline size_t PairOverlap(VectorRef a, VectorRef b) {
  return PairDotCount(a, b).matches;
}

/// Evaluates up to kPairEvalBatch pairs (firsts[i], seconds[i]) against
/// `tau` under `measure` and returns the hit count. The per-pair arithmetic
/// is exactly Similarity() — same kernel, same unit snap — so a hit here is
/// a hit in the unbatched loop and vice versa. Evaluation runs in locality
/// order (see file comment) with prefetching; when `hit_mask` is non-null,
/// bit i of *hit_mask reports pair i's result in the *original* order, which
/// is what lets SampleL reconstruct the exact draw its unbatched loop would
/// have stopped on. Requires count <= kPairEvalBatch.
uint64_t EvaluatePairBatch(SimilarityMeasure measure, DatasetView dataset,
                           const VectorId* firsts, const VectorId* seconds,
                           size_t count, double tau, size_t prefetch_distance,
                           uint64_t* hit_mask);

/// Counts how many of the `count` pairs have similarity >= tau, chunking
/// through EvaluatePairBatch. Order-independent by construction: any
/// permutation of the pair list returns the same count.
uint64_t CountPairsAtOrAbove(SimilarityMeasure measure, DatasetView dataset,
                             const VectorId* firsts, const VectorId* seconds,
                             size_t count, double tau,
                             size_t prefetch_distance);

}  // namespace vsj

#endif  // VSJ_VECTOR_PAIR_EVAL_H_
