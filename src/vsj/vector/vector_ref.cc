#include "vsj/vector/vector_ref.h"

#include <algorithm>
#include <utility>

namespace vsj {

namespace {

// First index in [begin, n) with dims[idx] >= target, found by exponential
// probing from `begin` followed by a binary search over the bracketed run.
// The merge loops below advance `begin` monotonically, so consecutive
// gallops touch disjoint prefixes of the long side.
inline size_t GallopLowerBound(const DimId* dims, size_t n, size_t begin,
                               DimId target) {
  if (begin >= n || dims[begin] >= target) return begin;
  size_t bound = 1;
  while (begin + bound < n && dims[begin + bound] < target) bound <<= 1;
  const size_t lo = begin + (bound >> 1);
  const size_t hi = std::min(n, begin + bound);
  return static_cast<size_t>(
      std::lower_bound(dims + lo, dims + hi, target) - dims);
}

// Shared traversal of Dot and OverlapSize. `on_match(i, j)` sees the match
// positions in increasing-dimension order regardless of which strategy ran,
// which is what keeps the two strategies exactly equal.
template <typename OnMatch>
void MergeMatches(VectorRef small, VectorRef large, OnMatch on_match) {
  const size_t an = small.size();
  const size_t bn = large.size();
  const DimId* a = small.dims();
  const DimId* b = large.dims();

  if (bn >= kGallopRatio * an) {
    size_t j = 0;
    for (size_t i = 0; i < an; ++i) {
      j = GallopLowerBound(b, bn, j, a[i]);
      if (j == bn) return;
      if (b[j] == a[i]) {
        on_match(i, j);
        ++j;
      }
    }
    return;
  }

  size_t i = 0, j = 0;
  while (i < an && j < bn) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      on_match(i, j);
      ++i;
      ++j;
    }
  }
}

}  // namespace

double VectorRef::Dot(VectorRef other) const {
  VectorRef small = *this;
  VectorRef large = other;
  if (small.size() > large.size()) std::swap(small, large);
  double sum = 0.0;
  MergeMatches(small, large, [&](size_t i, size_t j) {
    sum += static_cast<double>(small.weight(i)) * large.weight(j);
  });
  return sum;
}

size_t VectorRef::OverlapSize(VectorRef other) const {
  VectorRef small = *this;
  VectorRef large = other;
  if (small.size() > large.size()) std::swap(small, large);
  size_t count = 0;
  MergeMatches(small, large, [&](size_t, size_t) { ++count; });
  return count;
}

bool operator==(VectorRef a, VectorRef b) {
  if (a.size_ != b.size_) return false;
  return std::equal(a.dims_, a.dims_ + a.size_, b.dims_) &&
         std::equal(a.weights_, a.weights_ + a.size_, b.weights_);
}

}  // namespace vsj
