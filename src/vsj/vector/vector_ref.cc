#include "vsj/vector/vector_ref.h"

#include <algorithm>

#include "vsj/vector/pair_eval.h"

namespace vsj {

// The merge kernels themselves live in pair_eval.cc so the single-pair and
// batched entry points share one dispatched implementation (and one
// -ffp-contract=off translation unit).

double VectorRef::Dot(VectorRef other) const { return PairDot(*this, other); }

size_t VectorRef::OverlapSize(VectorRef other) const {
  return PairOverlap(*this, other);
}

bool operator==(VectorRef a, VectorRef b) {
  if (a.size_ != b.size_) return false;
  return std::equal(a.dims_, a.dims_ + a.size_, b.dims_) &&
         std::equal(a.weights_, a.weights_ + a.size_, b.weights_);
}

}  // namespace vsj
