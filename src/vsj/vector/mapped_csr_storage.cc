#include "vsj/vector/mapped_csr_storage.h"

#include <vector>

#include "vsj/io/vsjb_format.h"
#include "vsj/vector/csr_storage.h"

namespace vsj {

IoStatus MappedCsrStorage::Open(const std::string& path,
                                MappedCsrStorage* storage,
                                const OpenOptions& options) {
  *storage = MappedCsrStorage();
  std::string error;
  if (!storage->file_.Open(path, &error)) {
    const bool missing = storage->file_.not_found();
    return IoStatus::Fail(missing ? IoError::kNotFound : IoError::kIoError,
                          error, 0, path);
  }

  VsjbHeader header;
  std::vector<VsjbSectionEntry> entries;
  IoStatus status = ValidateVsjbImage(
      storage->file_.data(), storage->file_.size(), kVsjbMagic, kVsjbVersion,
      options.verify_checksums, &header, &storage->name_, &entries);
  if (!status) {
    // A VSJD v1 stream is a legitimate dataset file that simply cannot be
    // mapped; say so instead of "bad magic".
    if (status.code == IoError::kBadMagic && storage->file_.size() >= 4 &&
        std::memcmp(storage->file_.data(), kVsjdMagic, 4) == 0) {
      status.code = IoError::kUnsupportedVersion;
      status.reason =
          "VSJD v1 stream files cannot be memory-mapped; load and re-save "
          "as VSJB v2";
    }
    *storage = MappedCsrStorage();
    return status.WithPath(path);
  }

  const auto* base = static_cast<const char*>(storage->file_.data());
  const uint64_t n = header.num_vectors;
  const uint64_t features = header.num_features;
  struct Want {
    uint32_t id;
    uint64_t bytes;
    const char* what;
    const void** target;
  };
  const Want wants[] = {
      {kSecOffsets, (n + 1) * sizeof(uint64_t), "offsets",
       reinterpret_cast<const void**>(&storage->offsets_)},
      {kSecDims, features * sizeof(DimId), "dims",
       reinterpret_cast<const void**>(&storage->dims_)},
      {kSecWeights, features * sizeof(float), "weights",
       reinterpret_cast<const void**>(&storage->weights_)},
      {kSecNorms, n * sizeof(double), "norms",
       reinterpret_cast<const void**>(&storage->norms_)},
      {kSecL1Norms, n * sizeof(double), "l1 norms",
       reinterpret_cast<const void**>(&storage->l1_norms_)},
  };
  for (const Want& want : wants) {
    const int found = FindVsjbSection(entries, want.id);
    if (IoStatus shape =
            CheckVsjbSectionShape(entries, found, want.bytes, want.what);
        !shape) {
      *storage = MappedCsrStorage();
      return shape.WithPath(path);
    }
    *want.target = base + entries[found].offset;
  }

  if (storage->offsets_[0] != 0 || storage->offsets_[n] != features) {
    *storage = MappedCsrStorage();
    return IoStatus::Fail(IoError::kCorrupt,
                          "offsets do not span the feature payload", 0, path);
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (storage->offsets_[i] > storage->offsets_[i + 1]) {
      *storage = MappedCsrStorage();
      return IoStatus::Fail(IoError::kCorrupt,
                            "offsets are not monotone at vector " +
                                std::to_string(i),
                            0, path);
    }
  }
  storage->num_vectors_ = n;
  storage->num_features_ = features;
  return IoStatus::Ok();
}

CsrStorage CsrStorage::FromMapped(const MappedCsrStorage& mapped) {
  CsrStorage storage;
  storage.Reserve(mapped.size(), mapped.total_features());
  for (VectorId id = 0; id < mapped.size(); ++id) {
    storage.Append(mapped.Ref(id));
  }
  return storage;
}

}  // namespace vsj
