#include "vsj/vector/sparse_vector.h"

#include <algorithm>
#include <cmath>

namespace vsj {

SparseVector::SparseVector(std::vector<Feature> features)
    : features_(std::move(features)) {
  std::sort(features_.begin(), features_.end(),
            [](const Feature& a, const Feature& b) { return a.dim < b.dim; });
  // Coalesce duplicates in place, dropping non-positive weights.
  size_t out = 0;
  for (size_t i = 0; i < features_.size();) {
    DimId dim = features_[i].dim;
    double weight = 0.0;
    while (i < features_.size() && features_[i].dim == dim) {
      weight += features_[i].weight;
      ++i;
    }
    if (weight > 0.0) {
      features_[out++] = Feature{dim, static_cast<float>(weight)};
    }
  }
  features_.resize(out);
  features_.shrink_to_fit();

  double sq = 0.0;
  double l1 = 0.0;
  for (const Feature& f : features_) {
    sq += static_cast<double>(f.weight) * f.weight;
    l1 += f.weight;
  }
  norm_ = std::sqrt(sq);
  l1_norm_ = l1;
}

SparseVector SparseVector::FromDims(std::vector<DimId> dims) {
  std::vector<Feature> features;
  features.reserve(dims.size());
  for (DimId d : dims) features.push_back(Feature{d, 1.0f});
  return SparseVector(std::move(features));
}

double SparseVector::Dot(const SparseVector& other) const {
  double sum = 0.0;
  size_t i = 0, j = 0;
  const auto& a = features_;
  const auto& b = other.features_;
  while (i < a.size() && j < b.size()) {
    if (a[i].dim < b[j].dim) {
      ++i;
    } else if (a[i].dim > b[j].dim) {
      ++j;
    } else {
      sum += static_cast<double>(a[i].weight) * b[j].weight;
      ++i;
      ++j;
    }
  }
  return sum;
}

size_t SparseVector::OverlapSize(const SparseVector& other) const {
  size_t count = 0;
  size_t i = 0, j = 0;
  const auto& a = features_;
  const auto& b = other.features_;
  while (i < a.size() && j < b.size()) {
    if (a[i].dim < b[j].dim) {
      ++i;
    } else if (a[i].dim > b[j].dim) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace vsj
