#include "vsj/vector/sparse_vector.h"

#include <algorithm>
#include <cmath>

namespace vsj {

SparseVector::SparseVector(std::vector<Feature> features) {
  std::sort(features.begin(), features.end(),
            [](const Feature& a, const Feature& b) { return a.dim < b.dim; });
  dims_.reserve(features.size());
  weights_.reserve(features.size());
  // Coalesce duplicates, dropping non-positive weights.
  for (size_t i = 0; i < features.size();) {
    const DimId dim = features[i].dim;
    double weight = 0.0;
    while (i < features.size() && features[i].dim == dim) {
      weight += features[i].weight;
      ++i;
    }
    if (weight > 0.0) {
      dims_.push_back(dim);
      weights_.push_back(static_cast<float>(weight));
    }
  }
  dims_.shrink_to_fit();
  weights_.shrink_to_fit();

  double sq = 0.0;
  double l1 = 0.0;
  for (const float w : weights_) {
    sq += static_cast<double>(w) * w;
    l1 += w;
  }
  norm_ = std::sqrt(sq);
  l1_norm_ = l1;
}

SparseVector::SparseVector(VectorRef ref)
    : dims_(ref.dims(), ref.dims() + ref.size()),
      weights_(ref.weights(), ref.weights() + ref.size()),
      norm_(ref.norm()),
      l1_norm_(ref.l1_norm()) {}

SparseVector SparseVector::FromDims(std::vector<DimId> dims) {
  std::vector<Feature> features;
  features.reserve(dims.size());
  for (DimId d : dims) features.push_back(Feature{d, 1.0f});
  return SparseVector(std::move(features));
}

}  // namespace vsj
