#include "vsj/vector/vector_dataset.h"

#include <algorithm>

namespace vsj {

VectorId VectorDataset::Add(SparseVector vector) {
  vectors_.push_back(std::move(vector));
  return static_cast<VectorId>(vectors_.size() - 1);
}

DatasetStats VectorDataset::ComputeStats() const {
  DatasetStats stats;
  stats.num_vectors = vectors_.size();
  if (vectors_.empty()) return stats;
  stats.min_features = vectors_.front().size();
  for (const SparseVector& v : vectors_) {
    stats.total_features += v.size();
    stats.min_features = std::min(stats.min_features, v.size());
    stats.max_features = std::max(stats.max_features, v.size());
    stats.num_dimensions =
        std::max<size_t>(stats.num_dimensions, v.dim_bound());
  }
  stats.avg_features =
      static_cast<double>(stats.total_features) / stats.num_vectors;
  return stats;
}

}  // namespace vsj
