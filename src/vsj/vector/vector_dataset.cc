#include "vsj/vector/vector_dataset.h"

#include "vsj/vector/dataset_view.h"

namespace vsj {

DatasetStats VectorDataset::ComputeStats() const {
  return vsj::ComputeStats(DatasetView(*this));
}

}  // namespace vsj
