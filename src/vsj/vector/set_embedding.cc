#include "vsj/vector/set_embedding.h"

#include <algorithm>
#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

namespace {

uint32_t NumCopies(float weight, double resolution) {
  double copies = std::round(static_cast<double>(weight) / resolution);
  return static_cast<uint32_t>(std::max(1.0, copies));
}

}  // namespace

std::vector<SetElement> EmbedAsSet(const SparseVector& v, double resolution) {
  VSJ_CHECK(resolution > 0.0);
  std::vector<SetElement> elements;
  elements.reserve(v.size());
  for (const Feature& f : v.features()) {
    const uint32_t copies = NumCopies(f.weight, resolution);
    for (uint32_t c = 0; c < copies; ++c) {
      elements.push_back(SetElement{f.dim, c});
    }
  }
  return elements;
}

double EmbeddedJaccard(const SparseVector& u, const SparseVector& v,
                       double resolution) {
  VSJ_CHECK(resolution > 0.0);
  // Multiset Jaccard of the embeddings: per shared dim, intersection is
  // min(copies), union is max(copies); per unshared dim, union adds copies.
  uint64_t inter = 0;
  uint64_t uni = 0;
  size_t i = 0, j = 0;
  const auto& a = u.features();
  const auto& b = v.features();
  while (i < a.size() && j < b.size()) {
    if (a[i].dim < b[j].dim) {
      uni += NumCopies(a[i++].weight, resolution);
    } else if (a[i].dim > b[j].dim) {
      uni += NumCopies(b[j++].weight, resolution);
    } else {
      const uint32_t ca = NumCopies(a[i].weight, resolution);
      const uint32_t cb = NumCopies(b[j].weight, resolution);
      inter += std::min(ca, cb);
      uni += std::max(ca, cb);
      ++i;
      ++j;
    }
  }
  while (i < a.size()) uni += NumCopies(a[i++].weight, resolution);
  while (j < b.size()) uni += NumCopies(b[j++].weight, resolution);
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace vsj
