#include "vsj/vector/set_embedding.h"

#include <algorithm>
#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

namespace {

uint32_t NumCopies(float weight, double resolution) {
  double copies = std::round(static_cast<double>(weight) / resolution);
  return static_cast<uint32_t>(std::max(1.0, copies));
}

}  // namespace

std::vector<SetElement> EmbedAsSet(VectorRef v, double resolution) {
  std::vector<SetElement> elements;
  elements.reserve(v.size());
  EmbedAsSet(v, resolution, &elements);
  return elements;
}

void EmbedAsSet(VectorRef v, double resolution,
                std::vector<SetElement>* out) {
  VSJ_CHECK(resolution > 0.0);
  out->clear();
  for (const Feature f : v) {
    const uint32_t copies = NumCopies(f.weight, resolution);
    for (uint32_t c = 0; c < copies; ++c) {
      out->push_back(SetElement{f.dim, c});
    }
  }
}

double EmbeddedJaccard(VectorRef u, VectorRef v, double resolution) {
  VSJ_CHECK(resolution > 0.0);
  // Multiset Jaccard of the embeddings: per shared dim, intersection is
  // min(copies), union is max(copies); per unshared dim, union adds copies.
  uint64_t inter = 0;
  uint64_t uni = 0;
  size_t i = 0, j = 0;
  while (i < u.size() && j < v.size()) {
    if (u.dim(i) < v.dim(j)) {
      uni += NumCopies(u.weight(i++), resolution);
    } else if (u.dim(i) > v.dim(j)) {
      uni += NumCopies(v.weight(j++), resolution);
    } else {
      const uint32_t ca = NumCopies(u.weight(i), resolution);
      const uint32_t cb = NumCopies(v.weight(j), resolution);
      inter += std::min(ca, cb);
      uni += std::max(ca, cb);
      ++i;
      ++j;
    }
  }
  while (i < u.size()) uni += NumCopies(u.weight(i++), resolution);
  while (j < v.size()) uni += NumCopies(v.weight(j++), resolution);
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace vsj
