#include "vsj/vector/csr_storage.h"

#include <utility>

#include "vsj/obs/obs.h"
#include "vsj/util/check.h"

namespace vsj {

void CsrStorage::Reserve(size_t num_vectors, size_t num_features) {
  dims_.reserve(num_features);
  weights_.reserve(num_features);
  offsets_.reserve(num_vectors + 1);
  norms_.reserve(num_vectors);
  l1_norms_.reserve(num_vectors);
}

VectorId CsrStorage::Append(VectorRef vector) {
  dims_.insert(dims_.end(), vector.dims(), vector.dims() + vector.size());
  weights_.insert(weights_.end(), vector.weights(),
                  vector.weights() + vector.size());
  offsets_.push_back(dims_.size());
  norms_.push_back(vector.norm());
  l1_norms_.push_back(vector.l1_norm());
  return static_cast<VectorId>(norms_.size() - 1);
}

size_t CsrStorage::MemoryBytes() const {
  return dims_.size() * sizeof(DimId) + weights_.size() * sizeof(float) +
         offsets_.size() * sizeof(uint64_t) +
         (norms_.size() + l1_norms_.size()) * sizeof(double);
}

StreamingCsrStorage::StreamingCsrStorage(StreamingStorageOptions options)
    : options_(options) {
  VSJ_CHECK(options_.chunk_features > 0);
  chunks_.emplace_back();
}

VectorId StreamingCsrStorage::Append(VectorRef vector) {
  if (chunks_.back().total_features() >= options_.chunk_features) {
    chunks_.emplace_back();
  }
  const auto chunk = static_cast<uint32_t>(chunks_.size() - 1);
  const VectorId index = chunks_.back().Append(vector);
  slots_.push_back(Slot{chunk, index});
  live_ids_dirty_ = true;
  return static_cast<VectorId>(slots_.size() - 1);
}

VectorId StreamingCsrStorage::AppendDead() {
  slots_.push_back(Slot{kDeadChunk, 0});
  ++dead_count_;
  // No payload was ever stored, so there is nothing for compaction to
  // reclaim — unreclaimed_dead_ stays put and no compaction is triggered.
  live_ids_dirty_ = true;
  return static_cast<VectorId>(slots_.size() - 1);
}

void StreamingCsrStorage::Remove(VectorId id) {
  VSJ_CHECK_MSG(Contains(id), "vector %u not in streaming storage", id);
  slots_[id].chunk = kDeadChunk;
  ++dead_count_;
  ++unreclaimed_dead_;
  live_ids_dirty_ = true;
  MaybeCompact();
}

void StreamingCsrStorage::MaybeCompact() {
  if (options_.compact_dead_fraction <= 0.0) return;
  if (unreclaimed_dead_ < options_.min_dead_for_compaction) return;
  // Fraction of *stored* payloads (live + not-yet-reclaimed tombstones)
  // that compaction would drop; ids reclaimed by earlier compactions no
  // longer occupy arena space and don't count.
  const auto stored = static_cast<double>(num_live() + unreclaimed_dead_);
  if (static_cast<double>(unreclaimed_dead_) <
      options_.compact_dead_fraction * stored) {
    return;
  }
  Compact();
}

void StreamingCsrStorage::Compact() {
  VSJ_COUNTER_ADD("storage.compactions", 1);
  VSJ_TRACE_SPAN(compact_span, "storage.compact_ns");
  CsrStorage merged;
  size_t live_features = 0;
  for (VectorId id = 0; id < slots_.size(); ++id) {
    if (slots_[id].chunk != kDeadChunk) live_features += Ref(id).size();
  }
  merged.Reserve(num_live(), live_features);
  for (VectorId id = 0; id < slots_.size(); ++id) {
    if (slots_[id].chunk == kDeadChunk) continue;
    const VectorId index = merged.Append(Ref(id));
    slots_[id] = Slot{0, index};
  }
  chunks_.clear();
  chunks_.push_back(std::move(merged));
  unreclaimed_dead_ = 0;
  ++compactions_;
  live_ids_dirty_ = true;
}

const std::vector<VectorId>& StreamingCsrStorage::live_ids() const {
  if (live_ids_dirty_) {
    live_ids_cache_.clear();
    live_ids_cache_.reserve(num_live());
    for (VectorId id = 0; id < slots_.size(); ++id) {
      if (slots_[id].chunk != kDeadChunk) live_ids_cache_.push_back(id);
    }
    live_ids_dirty_ = false;
  }
  return live_ids_cache_;
}

size_t StreamingCsrStorage::MemoryBytes() const {
  size_t total = slots_.size() * sizeof(Slot);
  for (const CsrStorage& chunk : chunks_) total += chunk.MemoryBytes();
  return total;
}

}  // namespace vsj
