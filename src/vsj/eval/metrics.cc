#include "vsj/eval/metrics.h"

#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

ErrorStats ComputeErrorStats(const std::vector<double>& estimates,
                             double true_size) {
  VSJ_CHECK(!estimates.empty());
  VSJ_CHECK_MSG(true_size > 0.0, "relative error undefined for J = 0");
  ErrorStats stats;
  stats.num_trials = estimates.size();
  stats.true_size = true_size;

  double sum = 0.0;
  double over_sum = 0.0;
  double under_sum = 0.0;
  double abs_sum = 0.0;
  for (double estimate : estimates) {
    sum += estimate;
    const double rel = (estimate - true_size) / true_size;
    abs_sum += std::fabs(rel);
    if (estimate > true_size) {
      over_sum += rel;
      ++stats.num_overestimates;
      if (estimate / true_size >= 10.0) ++stats.num_big_overestimates;
    } else if (estimate < true_size) {
      under_sum += rel;
      ++stats.num_underestimates;
      if (estimate <= 0.0 || true_size / estimate >= 10.0) {
        ++stats.num_big_underestimates;
      }
    }
  }
  const double n = static_cast<double>(stats.num_trials);
  stats.mean_estimate = sum / n;
  stats.mean_absolute_relative_error = abs_sum / n;
  if (stats.num_overestimates > 0) {
    stats.mean_overestimation =
        over_sum / static_cast<double>(stats.num_overestimates);
  }
  if (stats.num_underestimates > 0) {
    stats.mean_underestimation =
        under_sum / static_cast<double>(stats.num_underestimates);
  }

  double sq_sum = 0.0;
  for (double estimate : estimates) {
    const double d = estimate - stats.mean_estimate;
    sq_sum += d * d;
  }
  // Population STD, as in reporting the spread of repeated experiments.
  stats.std_dev = std::sqrt(sq_sum / n);
  return stats;
}

}  // namespace vsj
