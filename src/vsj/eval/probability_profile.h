// Exact stratification probabilities P(T), P(T|H), P(H|T), P(T|L) per
// threshold — Tables 1 and 2 of the paper, and the quantities (α, β) whose
// assumed ranges drive Theorems 1-3.

#ifndef VSJ_EVAL_PROBABILITY_PROFILE_H_
#define VSJ_EVAL_PROBABILITY_PROFILE_H_

#include <cstddef>

#include <vector>

#include "vsj/eval/ground_truth.h"
#include "vsj/lsh/lsh_table.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// One row of Table 1 / Table 2.
struct ProbabilityRow {
  double tau = 0.0;
  uint64_t join_size = 0;      // J = N_T
  uint64_t true_in_h = 0;      // J_H: true pairs that share a bucket
  double p_true = 0.0;         // P(T)
  double p_true_given_h = 0.0; // α = P(T|H)
  double p_h_given_true = 0.0; // P(H|T)
  double p_true_given_l = 0.0; // β = P(T|L)
};

/// Computes exact rows for every threshold of `truth` (which must have been
/// built over `dataset` with `measure`). Cost: O(N_H) pair similarity
/// evaluations inside buckets plus the ground truth already computed.
std::vector<ProbabilityRow> ComputeProbabilityProfile(
    DatasetView dataset, const LshTable& table,
    SimilarityMeasure measure, const GroundTruth& truth);

/// The theorem assumptions for reference: at high thresholds LSH-SS assumes
/// α ≥ log₂(n)/n and β < 1/n; at low thresholds β ≥ log₂(n)/n (§5.2).
struct TheoremThresholds {
  double alpha_floor = 0.0;  // log₂(n)/n
  double beta_high_ceiling = 0.0;  // 1/n
};
TheoremThresholds ComputeTheoremThresholds(size_t n);

}  // namespace vsj

#endif  // VSJ_EVAL_PROBABILITY_PROFILE_H_
