#include "vsj/eval/probability_profile.h"

#include <algorithm>
#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

std::vector<ProbabilityRow> ComputeProbabilityProfile(
    DatasetView dataset, const LshTable& table,
    SimilarityMeasure measure, const GroundTruth& truth) {
  VSJ_CHECK(table.num_vectors() == dataset.size());
  const std::vector<double>& taus = truth.histogram().exact_thresholds();

  // Count, per threshold, the true pairs inside buckets: one pass over all
  // same-bucket pairs (N_H similarity evaluations).
  std::vector<uint64_t> true_in_h(taus.size(), 0);
  for (size_t b = 0; b < table.num_buckets(); ++b) {
    const auto& members = table.bucket(b);
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        const double sim =
            Similarity(measure, dataset[members[i]], dataset[members[j]]);
        auto it = std::upper_bound(taus.begin(), taus.end(), sim);
        for (size_t t = 0; t < static_cast<size_t>(it - taus.begin()); ++t) {
          ++true_in_h[t];
        }
      }
    }
  }

  const double total_pairs = static_cast<double>(truth.TotalPairs());
  const double n_h = static_cast<double>(table.NumSameBucketPairs());
  const double n_l = static_cast<double>(table.NumCrossBucketPairs());

  std::vector<ProbabilityRow> rows;
  rows.reserve(taus.size());
  for (size_t t = 0; t < taus.size(); ++t) {
    ProbabilityRow row;
    row.tau = taus[t];
    row.join_size = truth.JoinSize(taus[t]);
    row.true_in_h = true_in_h[t];
    const double j = static_cast<double>(row.join_size);
    const double j_h = static_cast<double>(row.true_in_h);
    row.p_true = total_pairs > 0.0 ? j / total_pairs : 0.0;
    row.p_true_given_h = n_h > 0.0 ? j_h / n_h : 0.0;
    row.p_h_given_true = j > 0.0 ? j_h / j : 0.0;
    row.p_true_given_l = n_l > 0.0 ? (j - j_h) / n_l : 0.0;
    rows.push_back(row);
  }
  return rows;
}

TheoremThresholds ComputeTheoremThresholds(size_t n) {
  TheoremThresholds t;
  const double dn = static_cast<double>(n);
  t.alpha_floor = std::log2(dn) / dn;
  t.beta_high_ceiling = 1.0 / dn;
  return t;
}

}  // namespace vsj
