// Ground-truth oracle: exact J(τ) for a dataset at a set of thresholds.

#ifndef VSJ_EVAL_GROUND_TRUTH_H_
#define VSJ_EVAL_GROUND_TRUTH_H_

#include <memory>
#include <vector>

#include "vsj/join/similarity_histogram.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// The paper's standard threshold grid {0.1, 0.2, ..., 1.0}.
std::vector<double> StandardThresholds();

/// Wraps the exact similarity histogram with join-size accessors.
class GroundTruth {
 public:
  /// Computes exact join sizes for every τ in `thresholds` (one parallel
  /// pass over the inverted index regardless of the number of thresholds).
  GroundTruth(DatasetView dataset, SimilarityMeasure measure,
              std::vector<double> thresholds);

  /// Exact J(τ) for a registered threshold.
  uint64_t JoinSize(double tau) const { return histogram_.CountAtLeast(tau); }

  /// J(τ) / M.
  double Selectivity(double tau) const;

  uint64_t TotalPairs() const { return histogram_.NumTotalPairs(); }

  const SimilarityHistogram& histogram() const { return histogram_; }

 private:
  SimilarityHistogram histogram_;
};

}  // namespace vsj

#endif  // VSJ_EVAL_GROUND_TRUTH_H_
