// Trial runner: repeats an estimator R times with independent RNG streams
// and aggregates accuracy and runtime, the protocol behind every figure of
// the paper's §6 ("we report figures over 100 experiments").

#ifndef VSJ_EVAL_EXPERIMENT_H_
#define VSJ_EVAL_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vsj/core/estimator.h"
#include "vsj/eval/metrics.h"

namespace vsj {

/// Raw outcome of R repeated estimates at one threshold.
struct TrialSeries {
  double tau = 0.0;
  std::vector<double> estimates;
  std::vector<uint64_t> pairs_evaluated;
  size_t num_unguaranteed = 0;  // trials flagged `guaranteed = false`
  double mean_runtime_ms = 0.0;
};

/// Runs `trials` independent estimates of J(tau). Trial t uses the RNG
/// stream derived from (seed, t) so results are reproducible and adding
/// trials never perturbs earlier ones.
TrialSeries RunTrials(const JoinSizeEstimator& estimator, double tau,
                      size_t trials, uint64_t seed);

/// Convenience: RunTrials + ComputeErrorStats against the true size.
ErrorStats RunAndScore(const JoinSizeEstimator& estimator, double tau,
                       size_t trials, uint64_t seed, double true_size);

}  // namespace vsj

#endif  // VSJ_EVAL_EXPERIMENT_H_
