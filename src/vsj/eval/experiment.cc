#include "vsj/eval/experiment.h"

#include "vsj/util/hash.h"
#include "vsj/util/timer.h"

namespace vsj {

TrialSeries RunTrials(const JoinSizeEstimator& estimator, double tau,
                      size_t trials, uint64_t seed) {
  TrialSeries series;
  series.tau = tau;
  series.estimates.reserve(trials);
  series.pairs_evaluated.reserve(trials);
  double total_ms = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    Rng rng(HashCombine(seed, t));
    Timer timer;
    const EstimationResult result = estimator.Estimate(tau, rng);
    total_ms += timer.ElapsedMillis();
    series.estimates.push_back(result.estimate);
    series.pairs_evaluated.push_back(result.pairs_evaluated);
    if (!result.guaranteed) ++series.num_unguaranteed;
  }
  series.mean_runtime_ms = trials > 0 ? total_ms / trials : 0.0;
  return series;
}

ErrorStats RunAndScore(const JoinSizeEstimator& estimator, double tau,
                       size_t trials, uint64_t seed, double true_size) {
  const TrialSeries series = RunTrials(estimator, tau, trials, seed);
  return ComputeErrorStats(series.estimates, true_size);
}

}  // namespace vsj
