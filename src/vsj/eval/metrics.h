// Accuracy metrics matching the paper's evaluation protocol (§6.1):
// relative errors reported separately for over- and underestimation, the
// standard deviation of the estimates across trials, and the "big error"
// counts (Ĵ/J ≥ 10 or J/Ĵ ≥ 10) of Appendix C.2.

#ifndef VSJ_EVAL_METRICS_H_
#define VSJ_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vsj {

/// Aggregated accuracy of a set of independent estimates of one true value.
struct ErrorStats {
  size_t num_trials = 0;
  double true_size = 0.0;

  double mean_estimate = 0.0;
  double std_dev = 0.0;  // STD σ of the estimates (paper's variance plots)

  /// Mean signed relative error (Ĵ − J)/J over overestimating trials, as a
  /// fraction (0.5 = +50%); 0 when no trial overestimates.
  double mean_overestimation = 0.0;
  size_t num_overestimates = 0;

  /// Mean signed relative error over underestimating trials (negative).
  double mean_underestimation = 0.0;
  size_t num_underestimates = 0;

  /// Mean |Ĵ − J| / J over all trials (App. C.2's "average relative error").
  double mean_absolute_relative_error = 0.0;

  /// Trials with Ĵ/J ≥ 10 resp. J/Ĵ ≥ 10 (Ĵ = 0 with J > 0 counts as a big
  /// underestimation).
  size_t num_big_overestimates = 0;
  size_t num_big_underestimates = 0;
};

/// Computes ErrorStats for `estimates` of the true value `true_size`.
/// `true_size` must be positive (callers skip thresholds with J = 0, as the
/// paper's relative-error metric is undefined there).
ErrorStats ComputeErrorStats(const std::vector<double>& estimates,
                             double true_size);

}  // namespace vsj

#endif  // VSJ_EVAL_METRICS_H_
