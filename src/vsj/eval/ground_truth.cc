#include "vsj/eval/ground_truth.h"

// GroundTruth delegates to the inverted-index SimilarityHistogram, which
// accumulates numerators per posting rather than intersecting pairs — the
// pairwise ground-truth path used by the acceptance suite and `--exact` is
// join/brute_force_join, which runs the batched SIMD pair evaluator
// (vector/pair_eval.h).

namespace vsj {

std::vector<double> StandardThresholds() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

GroundTruth::GroundTruth(DatasetView dataset,
                         SimilarityMeasure measure,
                         std::vector<double> thresholds)
    : histogram_(dataset, measure, std::move(thresholds)) {}

double GroundTruth::Selectivity(double tau) const {
  const uint64_t total = TotalPairs();
  if (total == 0) return 0.0;
  return static_cast<double>(JoinSize(tau)) / static_cast<double>(total);
}

}  // namespace vsj
