#include "vsj/core/lsh_s_estimator.h"

#include "vsj/util/check.h"
#include "vsj/vector/similarity.h"

namespace vsj {

LshSEstimator::LshSEstimator(DatasetView dataset,
                             const LshFamily& family, const LshTable& table,
                             LshSOptions options)
    : dataset_(dataset),
      family_(&family),
      table_(&table),
      model_(family, table.k()),
      sample_size_(options.sample_size != 0 ? options.sample_size
                                            : dataset.size()) {
  VSJ_CHECK(dataset.size() >= 2);
  VSJ_CHECK(table.num_vectors() == dataset.size());
}

EstimationResult LshSEstimator::Estimate(double tau, Rng& rng) const {
  EstimationResult result;
  const uint64_t total_pairs = dataset_.NumPairs();
  if (tau <= 0.0) {
    result.estimate = static_cast<double>(total_pairs);
    return result;
  }
  const SimilarityMeasure measure = family_->measure();

  // Uniform pair sample; accumulate Σ f(sim) separately over S_T and S_F.
  double f_sum_true = 0.0;
  uint64_t num_true = 0;
  double f_sum_false = 0.0;
  uint64_t num_false = 0;
  const size_t n = dataset_.size();
  for (uint64_t s = 0; s < sample_size_; ++s) {
    const auto u = static_cast<VectorId>(rng.Below(n));
    auto v = static_cast<VectorId>(rng.Below(n - 1));
    if (v >= u) ++v;
    const double sim = Similarity(measure, dataset_[u], dataset_[v]);
    const double f = model_.BandProbability(sim);
    if (sim >= tau) {
      f_sum_true += f;
      ++num_true;
    } else {
      f_sum_false += f;
      ++num_false;
    }
  }
  result.pairs_evaluated = sample_size_;

  double p_h_given_t;
  if (num_true > 0) {
    p_h_given_t = f_sum_true / static_cast<double>(num_true);
  } else {
    p_h_given_t = model_.ConditionalHGivenTrue(tau);  // fallback, unreliable
    result.guaranteed = false;
  }
  double p_h_given_f;
  if (num_false > 0) {
    p_h_given_f = f_sum_false / static_cast<double>(num_false);
  } else {
    p_h_given_f = model_.ConditionalHGivenFalse(tau);
    result.guaranteed = false;
  }

  const double denom = p_h_given_t - p_h_given_f;
  if (denom <= 0.0) {
    result.guaranteed = false;
    result.estimate = 0.0;
    return result;
  }
  const double n_h = static_cast<double>(table_->NumSameBucketPairs());
  const double m = static_cast<double>(total_pairs);
  result.estimate =
      ClampEstimate((n_h - m * p_h_given_f) / denom, total_pairs);
  return result;
}

}  // namespace vsj
