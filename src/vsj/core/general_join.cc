#include "vsj/core/general_join.h"

#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

GeneralLshSsEstimator::GeneralLshSsEstimator(
    DatasetView left, DatasetView right,
    const LshTable& left_table, const LshTable& right_table,
    SimilarityMeasure measure, GeneralLshSsOptions options)
    : left_(left),
      right_(right),
      left_table_(&left_table),
      right_table_(&right_table),
      measure_(measure),
      dampening_(options.dampening),
      dampening_factor_(options.dampening_factor) {
  VSJ_CHECK(!left.empty() && !right.empty());
  VSJ_CHECK(left_table.num_vectors() == left.size());
  VSJ_CHECK(right_table.num_vectors() == right.size());
  VSJ_CHECK(left_table.k() == right_table.k());
  const auto n = static_cast<uint64_t>(std::max(left.size(), right.size()));
  sample_size_h_ = options.sample_size_h != 0 ? options.sample_size_h : n;
  sample_size_l_ = options.sample_size_l != 0 ? options.sample_size_l : n;
  delta_ = options.delta != 0
               ? options.delta
               : static_cast<uint64_t>(
                     std::max(1.0, std::log2(static_cast<double>(n))));

  // Align buckets of the two tables by their g value.
  std::vector<double> weights;
  const auto& right_keys = right_table.key_to_bucket();
  for (size_t b = 0; b < left_table.num_buckets(); ++b) {
    auto it = right_keys.find(left_table.BucketKey(b));
    if (it == right_keys.end()) continue;
    const uint64_t weight =
        static_cast<uint64_t>(left_table.bucket_count(b)) *
        right_table.bucket_count(it->second);
    num_same_bucket_pairs_ += weight;
    matches_.push_back(
        MatchedBuckets{static_cast<uint32_t>(b), it->second});
    weights.push_back(static_cast<double>(weight));
  }
  if (!weights.empty()) {
    match_picker_ = std::make_unique<AliasTable>(weights);
  }
}

uint64_t GeneralLshSsEstimator::NumTotalPairs() const {
  return static_cast<uint64_t>(left_.size()) * right_.size();
}

EstimationResult GeneralLshSsEstimator::Estimate(double tau,
                                                 Rng& rng) const {
  EstimationResult result;
  const uint64_t total_pairs = NumTotalPairs();
  if (tau <= 0.0) {
    result.estimate = static_cast<double>(total_pairs);
    return result;
  }

  // --- SampleH: matched bucket pair ∝ b_j·c_i, one member per side. ---
  double estimate_h = 0.0;
  if (match_picker_ != nullptr) {
    uint64_t hits = 0;
    for (uint64_t s = 0; s < sample_size_h_; ++s) {
      const MatchedBuckets& m = matches_[match_picker_->Sample(rng)];
      const auto& lhs = left_table_->bucket(m.left_bucket);
      const auto& rhs = right_table_->bucket(m.right_bucket);
      const VectorId u = lhs[rng.Below(lhs.size())];
      const VectorId v = rhs[rng.Below(rhs.size())];
      if (Similarity(measure_, left_[u], right_[v]) >= tau) ++hits;
    }
    result.pairs_evaluated += sample_size_h_;
    estimate_h = static_cast<double>(hits) *
                 static_cast<double>(num_same_bucket_pairs_) /
                 static_cast<double>(sample_size_h_);
  }

  // --- SampleL: uniform (u, v), rejected when g(u) = g(v). ---
  const uint64_t n_pairs_l = total_pairs - num_same_bucket_pairs_;
  double estimate_l = 0.0;
  bool reliable = true;
  if (n_pairs_l > 0) {
    uint64_t hits = 0;
    uint64_t samples = 0;
    while (hits < delta_ && samples < sample_size_l_) {
      VectorId u, v;
      do {
        u = static_cast<VectorId>(rng.Below(left_.size()));
        v = static_cast<VectorId>(rng.Below(right_.size()));
      } while (left_table_->BucketKey(left_table_->BucketOf(u)) ==
               right_table_->BucketKey(right_table_->BucketOf(v)));
      if (Similarity(measure_, left_[u], right_[v]) >= tau) ++hits;
      ++samples;
    }
    result.pairs_evaluated += samples;
    if (samples >= sample_size_l_ && hits < delta_) {
      reliable = false;
      switch (dampening_) {
        case DampeningMode::kSafeLowerBound:
          estimate_l = static_cast<double>(hits);
          break;
        case DampeningMode::kFixedFactor:
          estimate_l = static_cast<double>(hits) * dampening_factor_ *
                       static_cast<double>(n_pairs_l) /
                       static_cast<double>(sample_size_l_);
          break;
        case DampeningMode::kAdaptiveNlOverDelta:
          estimate_l = static_cast<double>(hits) *
                       (static_cast<double>(hits) /
                        static_cast<double>(delta_)) *
                       static_cast<double>(n_pairs_l) /
                       static_cast<double>(sample_size_l_);
          break;
      }
    } else {
      estimate_l = static_cast<double>(hits) *
                   static_cast<double>(n_pairs_l) /
                   static_cast<double>(samples);
    }
  }

  result.stratum_h_estimate = estimate_h;
  result.stratum_l_estimate = estimate_l;
  result.guaranteed = reliable;
  result.estimate = ClampEstimate(estimate_h + estimate_l, total_pairs);
  return result;
}

GeneralRandomPairSampling::GeneralRandomPairSampling(
    DatasetView left, DatasetView right,
    SimilarityMeasure measure, uint64_t sample_size)
    : left_(left), right_(right), measure_(measure) {
  VSJ_CHECK(!left.empty() && !right.empty());
  sample_size_ =
      sample_size != 0
          ? sample_size
          : static_cast<uint64_t>(
                std::llround(1.5 * std::max(left.size(), right.size())));
}

EstimationResult GeneralRandomPairSampling::Estimate(double tau,
                                                     Rng& rng) const {
  uint64_t hits = 0;
  for (uint64_t s = 0; s < sample_size_; ++s) {
    const auto u = static_cast<VectorId>(rng.Below(left_.size()));
    const auto v = static_cast<VectorId>(rng.Below(right_.size()));
    if (Similarity(measure_, left_[u], right_[v]) >= tau) ++hits;
  }
  const uint64_t total_pairs =
      static_cast<uint64_t>(left_.size()) * right_.size();
  EstimationResult result;
  result.pairs_evaluated = sample_size_;
  result.estimate = ClampEstimate(static_cast<double>(hits) *
                                      static_cast<double>(total_pairs) /
                                      static_cast<double>(sample_size_),
                                  total_pairs);
  return result;
}

}  // namespace vsj
