#include "vsj/core/virtual_bucket_estimator.h"

#include <cmath>
#include <unordered_set>

#include "vsj/util/check.h"

namespace vsj {

namespace {

inline uint64_t PackPair(VectorId u, VectorId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

VirtualBucketEstimator::VirtualBucketEstimator(DatasetView dataset,
                                               const LshIndex& index,
                                               SimilarityMeasure measure,
                                               LshSsOptions options)
    : dataset_(dataset),
      index_(&index),
      measure_(measure),
      dampening_(options.dampening),
      dampening_factor_(options.dampening_factor) {
  VSJ_CHECK(dataset.size() >= 2);
  const auto n = static_cast<uint64_t>(dataset.size());
  sample_size_h_ = options.sample_size_h != 0 ? options.sample_size_h : n;
  sample_size_l_ = options.sample_size_l != 0 ? options.sample_size_l : n;
  delta_ = options.delta != 0
               ? options.delta
               : static_cast<uint64_t>(
                     std::max(1.0, std::log2(static_cast<double>(n))));

  // Exact |∪_t SH_t| by deduplication; the per-table totals are small by
  // LSH design (Σ_t N_H^t ≈ ℓ·n in any healthy index).
  std::unordered_set<uint64_t> distinct;
  std::vector<double> table_weights;
  for (uint32_t t = 0; t < index.num_tables(); ++t) {
    const LshTable& table = index.table(t);
    table_weights.push_back(static_cast<double>(table.NumSameBucketPairs()));
    for (size_t b = 0; b < table.num_buckets(); ++b) {
      const auto& members = table.bucket(b);
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          distinct.insert(PackPair(members[i], members[j]));
        }
      }
    }
  }
  num_virtual_pairs_ = distinct.size();
  bool any_positive = false;
  for (double w : table_weights) any_positive |= w > 0.0;
  if (any_positive) {
    table_picker_ = std::make_unique<AliasTable>(table_weights);
  }
}

uint32_t VirtualBucketEstimator::Multiplicity(VectorId u, VectorId v) const {
  uint32_t count = 0;
  for (uint32_t t = 0; t < index_->num_tables(); ++t) {
    if (index_->table(t).SameBucket(u, v)) ++count;
  }
  return count;
}

VectorPair VirtualBucketEstimator::SampleVirtualPair(Rng& rng) const {
  // Multiplicity rejection makes the draw uniform over the union.
  while (true) {
    const auto t = static_cast<uint32_t>(table_picker_->Sample(rng));
    const VectorPair pair = index_->table(t).SampleSameBucketPair(rng);
    const uint32_t mult = Multiplicity(pair.first, pair.second);
    VSJ_DCHECK(mult >= 1);
    if (mult == 1 || rng.NextDouble() < 1.0 / mult) return pair;
  }
}

EstimationResult VirtualBucketEstimator::Estimate(double tau,
                                                  Rng& rng) const {
  EstimationResult result;
  const uint64_t total_pairs = dataset_.NumPairs();
  if (tau <= 0.0) {
    result.estimate = static_cast<double>(total_pairs);
    return result;
  }

  // --- SampleH over the virtual stratum. ---
  double estimate_h = 0.0;
  if (num_virtual_pairs_ > 0 && table_picker_ != nullptr) {
    uint64_t hits = 0;
    for (uint64_t s = 0; s < sample_size_h_; ++s) {
      const VectorPair pair = SampleVirtualPair(rng);
      if (Similarity(measure_, dataset_[pair.first],
                     dataset_[pair.second]) >= tau) {
        ++hits;
      }
    }
    result.pairs_evaluated += sample_size_h_;
    estimate_h = static_cast<double>(hits) *
                 static_cast<double>(num_virtual_pairs_) /
                 static_cast<double>(sample_size_h_);
  }

  // --- SampleL over pairs outside every table's buckets. ---
  const uint64_t n_pairs_l = total_pairs - num_virtual_pairs_;
  double estimate_l = 0.0;
  bool reliable = true;
  if (n_pairs_l > 0) {
    const size_t n = dataset_.size();
    uint64_t hits = 0;
    uint64_t samples = 0;
    while (hits < delta_ && samples < sample_size_l_) {
      VectorId u, v;
      do {
        u = static_cast<VectorId>(rng.Below(n));
        v = static_cast<VectorId>(rng.Below(n - 1));
        if (v >= u) ++v;
      } while (index_->SameBucketInAnyTable(u, v));
      if (Similarity(measure_, dataset_[u], dataset_[v]) >= tau) {
        ++hits;
      }
      ++samples;
    }
    result.pairs_evaluated += samples;
    if (samples >= sample_size_l_ && hits < delta_) {
      reliable = false;
      switch (dampening_) {
        case DampeningMode::kSafeLowerBound:
          estimate_l = static_cast<double>(hits);
          break;
        case DampeningMode::kFixedFactor:
          estimate_l = static_cast<double>(hits) * dampening_factor_ *
                       static_cast<double>(n_pairs_l) /
                       static_cast<double>(sample_size_l_);
          break;
        case DampeningMode::kAdaptiveNlOverDelta:
          estimate_l = static_cast<double>(hits) *
                       (static_cast<double>(hits) /
                        static_cast<double>(delta_)) *
                       static_cast<double>(n_pairs_l) /
                       static_cast<double>(sample_size_l_);
          break;
      }
    } else {
      estimate_l = static_cast<double>(hits) *
                   static_cast<double>(n_pairs_l) /
                   static_cast<double>(samples);
    }
  }

  result.stratum_h_estimate = estimate_h;
  result.stratum_l_estimate = estimate_l;
  result.guaranteed = reliable;
  result.estimate = ClampEstimate(estimate_h + estimate_l, total_pairs);
  return result;
}

}  // namespace vsj
