// The shared SampleH / SampleL loops of Algorithm 1 (paper §5).
//
// Before the DatasetView refactor the static LshSsEstimator and the
// streaming StreamingLshSsEstimator each carried a private copy of the
// stratum-sampling loops, differing only in where pairs come from (static
// alias-table samplers vs. the dynamic index's live-id rejection sampler)
// and in the dampening policy. These templates are that single
// implementation: both estimators bind a pair source and get bit-identical
// behavior to their pre-refactor selves (same RNG draw order, same
// accumulation order).

#ifndef VSJ_CORE_STRATIFIED_SAMPLING_H_
#define VSJ_CORE_STRATIFIED_SAMPLING_H_

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "vsj/obs/obs.h"
#include "vsj/util/check.h"
#include "vsj/util/rng.h"
#include "vsj/vector/dataset_view.h"
#include "vsj/vector/pair_eval.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/vector_ref.h"

namespace vsj {

/// How SampleL scales its count when the answer-size threshold δ was not
/// reached within the sample budget m_L.
enum class DampeningMode {
  /// Return the safe lower bound Ĵ_L = n_L (plain LSH-SS, Theorem 1).
  kSafeLowerBound,
  /// Ĵ_L = n_L · c_s · (N_L / m_L) with fixed c_s (Theorem 2).
  kFixedFactor,
  /// c_s = n_L / δ, the adaptive choice used for LSH-SS(D) in §6.
  kAdaptiveNlOverDelta,
};

// kPairEvalBatch / kPairPrefetchDistance moved to vector/pair_eval.h with
// the batch evaluator; both templates below use them unchanged.

/// SampleH of Algorithm 1: draw m_h same-bucket pairs through `sample_pair`
/// (any callable Rng& -> VectorPair-like with .first/.second positions into
/// `dataset`), count hits against τ, scale by N_H / m_h.
///
/// Evaluation is batched: each round draws up to kPairEvalBatch pairs
/// first, then evaluates them through the locality-ordered SIMD batch
/// kernel (vector/pair_eval.h). Bit-identity is preserved because
/// stratum-H draws never depend on evaluation results: the RNG consumes
/// exactly the same sequence as the draw-evaluate-draw loop, and the hit
/// count is an order-insensitive sum.
template <typename SamplePairFn>
double SampleStratumH(DatasetView dataset, SimilarityMeasure measure,
                      double tau, uint64_t num_pairs_h, uint64_t m_h,
                      SamplePairFn&& sample_pair, Rng& rng,
                      uint64_t* evaluated) {
  if (num_pairs_h == 0) return 0.0;
  // Zero sample budget: the loop would never run and the N_H/m_h scale-up
  // would be 0/0. An unsampled stratum contributes nothing.
  if (m_h == 0) return 0.0;
  VectorId firsts[kPairEvalBatch];
  VectorId seconds[kPairEvalBatch];
  uint64_t hits = 0;
  for (uint64_t done = 0; done < m_h;) {
    const uint64_t count = std::min(kPairEvalBatch, m_h - done);
    for (uint64_t i = 0; i < count; ++i) {
      const auto pair = sample_pair(rng);
      firsts[i] = pair.first;
      seconds[i] = pair.second;
    }
    hits += CountPairsAtOrAbove(measure, dataset, firsts, seconds, count,
                                tau, kPairPrefetchDistance);
    done += count;
  }
  *evaluated += m_h;
  // Bulk post-loop adds: the pair loop itself stays instrumentation-free.
  VSJ_COUNTER_ADD("estimate.pairs_h", m_h);
  return static_cast<double>(hits) * static_cast<double>(num_pairs_h) /
         static_cast<double>(m_h);
}

/// SampleL of Algorithm 1: adaptive sampling of cross-bucket pairs until δ
/// true pairs are found (reliable: Ĵ_L = hits · N_L / i) or the budget m_l
/// is exhausted, in which case `*reliable` is cleared and the dampening
/// policy decides between the safe lower bound and a dampened scale-up.
///
/// Unlike stratum H, how many pairs this loop draws depends on each
/// evaluation (the hits-vs-δ race), so drawing a batch ahead consumes RNG
/// state the unbatched loop never would. The batched form below stays
/// bit-identical anyway by *rewinding*: the RNG state is checkpointed
/// before every draw, and when the per-pair hit mask shows δ was reached
/// at draw i of the batch, the RNG is restored to its post-draw-i
/// checkpoint — exactly where the draw-evaluate-draw loop would have left
/// it — and the evaluations past i are discarded. hits, samples, the RNG
/// stream, and therefore every estimate are unchanged; only wasted
/// evaluations (bounded by one batch per call, counted by
/// `estimate.pairs_l_discarded`) differ.
///
/// Contract note for `sample_pair`: within one batch it may be invoked up
/// to kPairEvalBatch times even when the unbatched loop would have stopped
/// earlier, and it is never invoked again after the rewind — so it must
/// draw as a pure function of the RNG state (true of the engine samplers;
/// scripted test sources are safe because a script of length m_l is never
/// over-consumed: batches never draw past the m_l budget).
template <typename SamplePairFn>
double SampleStratumL(DatasetView dataset, SimilarityMeasure measure,
                      double tau, uint64_t num_pairs_l, uint64_t m_l,
                      uint64_t delta, DampeningMode dampening,
                      double dampening_factor, SamplePairFn&& sample_pair,
                      Rng& rng, uint64_t* evaluated, bool* reliable) {
  if (num_pairs_l == 0) return 0.0;
  // Degenerate budgets: with δ = 0 the adaptive loop never draws (hits < 0
  // is unsatisfiable), with m_L = 0 it never may, and either way the
  // "reliable" scale-up n_L · N_L / i would be 0 · N_L / 0 = NaN. Nothing
  // was sampled, so nothing is known about stratum L: return the empty
  // safe lower bound (0) with *reliable cleared — the caller sees an
  // unguaranteed conservative answer, never a NaN. Service engines reject
  // these values at the EstimateRequest validation layer; this guard
  // covers direct template callers.
  if (m_l == 0 || delta == 0) {
    *reliable = false;
    return 0.0;
  }

  uint64_t hits = 0;     // n_L in Algorithm 1
  uint64_t samples = 0;  // i in Algorithm 1
  VectorId firsts[kPairEvalBatch];
  VectorId seconds[kPairEvalBatch];
  Rng checkpoints[kPairEvalBatch];
  uint64_t discarded = 0;
  while (hits < delta && samples < m_l) {
    const uint64_t want = std::min(kPairEvalBatch, m_l - samples);
    for (uint64_t i = 0; i < want; ++i) {
      checkpoints[i] = rng;
      const auto pair = sample_pair(rng);
      firsts[i] = pair.first;
      seconds[i] = pair.second;
    }
    uint64_t hit_bits = 0;
    const uint64_t batch_hits =
        EvaluatePairBatch(measure, dataset, firsts, seconds, want, tau,
                          kPairPrefetchDistance, &hit_bits);
    if (hits + batch_hits >= delta) {
      // δ reached inside the batch: find the exact draw the unbatched loop
      // would have stopped on and rewind the RNG to just after it.
      uint64_t need = delta - hits;
      uint64_t stop = 0;
      for (uint64_t i = 0; i < want; ++i) {
        if ((hit_bits >> i) & 1u) {
          if (--need == 0) {
            stop = i;
            break;
          }
        }
      }
      hits = delta;
      samples += stop + 1;
      discarded += want - (stop + 1);
      if (stop + 1 < want) rng = checkpoints[stop + 1];
      break;
    }
    hits += batch_hits;
    samples += want;
  }
  *evaluated += samples;
  VSJ_COUNTER_ADD("estimate.pairs_l", samples);
  if (discarded > 0) VSJ_COUNTER_ADD("estimate.pairs_l_discarded", discarded);
  if (hits >= delta) VSJ_COUNTER_ADD("estimate.sample_l_early_exit", 1);

  if (samples >= m_l && hits < delta) {
    VSJ_COUNTER_ADD("estimate.sample_l_dampened", 1);
    // The answer-size threshold was not met: scaling up by N_L/i carries no
    // guarantee (Example 1 of the paper). Return the safe lower bound n_L,
    // or the dampened scale-up of Theorem 2.
    *reliable = false;
    switch (dampening) {
      case DampeningMode::kSafeLowerBound:
        return static_cast<double>(hits);
      case DampeningMode::kFixedFactor:
        return static_cast<double>(hits) * dampening_factor *
               static_cast<double>(num_pairs_l) / static_cast<double>(m_l);
      case DampeningMode::kAdaptiveNlOverDelta: {
        const double cs =
            static_cast<double>(hits) / static_cast<double>(delta);
        return static_cast<double>(hits) * cs *
               static_cast<double>(num_pairs_l) / static_cast<double>(m_l);
      }
    }
    VSJ_CHECK(false);
  }
  // Reliable path: the adaptive bound of Lipton et al. applies.
  return static_cast<double>(hits) * static_cast<double>(num_pairs_l) /
         static_cast<double>(samples);
}

}  // namespace vsj

#endif  // VSJ_CORE_STRATIFIED_SAMPLING_H_
