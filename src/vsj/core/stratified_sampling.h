// The shared SampleH / SampleL loops of Algorithm 1 (paper §5).
//
// Before the DatasetView refactor the static LshSsEstimator and the
// streaming StreamingLshSsEstimator each carried a private copy of the
// stratum-sampling loops, differing only in where pairs come from (static
// alias-table samplers vs. the dynamic index's live-id rejection sampler)
// and in the dampening policy. These templates are that single
// implementation: both estimators bind a pair source and get bit-identical
// behavior to their pre-refactor selves (same RNG draw order, same
// accumulation order).

#ifndef VSJ_CORE_STRATIFIED_SAMPLING_H_
#define VSJ_CORE_STRATIFIED_SAMPLING_H_

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "vsj/obs/obs.h"
#include "vsj/util/check.h"
#include "vsj/util/rng.h"
#include "vsj/vector/dataset_view.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/vector_ref.h"

namespace vsj {

/// How SampleL scales its count when the answer-size threshold δ was not
/// reached within the sample budget m_L.
enum class DampeningMode {
  /// Return the safe lower bound Ĵ_L = n_L (plain LSH-SS, Theorem 1).
  kSafeLowerBound,
  /// Ĵ_L = n_L · c_s · (N_L / m_L) with fixed c_s (Theorem 2).
  kFixedFactor,
  /// c_s = n_L / δ, the adaptive choice used for LSH-SS(D) in §6.
  kAdaptiveNlOverDelta,
};

/// Pairs drawn per batch by SampleStratumH, and how many pairs ahead of the
/// evaluation cursor the feature columns are prefetched. Tuning knobs only:
/// neither changes any draw or result.
inline constexpr uint64_t kPairEvalBatch = 64;
inline constexpr uint64_t kPairPrefetchDistance = 8;

/// SampleH of Algorithm 1: draw m_h same-bucket pairs through `sample_pair`
/// (any callable Rng& -> VectorPair-like with .first/.second positions into
/// `dataset`), count hits against τ, scale by N_H / m_h.
///
/// Evaluation is batched: each round draws up to kPairEvalBatch pairs
/// first, then evaluates them with the feature columns of the pair
/// kPairPrefetchDistance ahead being prefetched — random pairs touch
/// uncorrelated arena offsets, so without the hint every Similarity starts
/// on a cold line. Bit-identity is preserved because stratum-H draws never
/// depend on evaluation results: the RNG consumes exactly the same
/// sequence as the draw-evaluate-draw loop, and the hit count is an
/// order-insensitive sum.
template <typename SamplePairFn>
double SampleStratumH(DatasetView dataset, SimilarityMeasure measure,
                      double tau, uint64_t num_pairs_h, uint64_t m_h,
                      SamplePairFn&& sample_pair, Rng& rng,
                      uint64_t* evaluated) {
  if (num_pairs_h == 0) return 0.0;
  // Zero sample budget: the loop would never run and the N_H/m_h scale-up
  // would be 0/0. An unsampled stratum contributes nothing.
  if (m_h == 0) return 0.0;
  VectorId firsts[kPairEvalBatch];
  VectorId seconds[kPairEvalBatch];
  uint64_t hits = 0;
  for (uint64_t done = 0; done < m_h;) {
    const uint64_t count = std::min(kPairEvalBatch, m_h - done);
    for (uint64_t i = 0; i < count; ++i) {
      const auto pair = sample_pair(rng);
      firsts[i] = pair.first;
      seconds[i] = pair.second;
    }
    hits += CountPairsAtOrAbove(measure, dataset, firsts, seconds, count,
                                tau, kPairPrefetchDistance);
    done += count;
  }
  *evaluated += m_h;
  // Bulk post-loop adds: the pair loop itself stays instrumentation-free.
  VSJ_COUNTER_ADD("estimate.pairs_h", m_h);
  return static_cast<double>(hits) * static_cast<double>(num_pairs_h) /
         static_cast<double>(m_h);
}

/// SampleL of Algorithm 1: adaptive sampling of cross-bucket pairs until δ
/// true pairs are found (reliable: Ĵ_L = hits · N_L / i) or the budget m_l
/// is exhausted, in which case `*reliable` is cleared and the dampening
/// policy decides between the safe lower bound and a dampened scale-up.
///
/// Unlike stratum H this loop cannot batch its draws: how many pairs are
/// drawn depends on each evaluation (the hits-vs-δ race), so drawing ahead
/// would consume RNG state the unbatched loop never would — changing every
/// subsequent draw and breaking the bit-identity contract.
template <typename SamplePairFn>
double SampleStratumL(DatasetView dataset, SimilarityMeasure measure,
                      double tau, uint64_t num_pairs_l, uint64_t m_l,
                      uint64_t delta, DampeningMode dampening,
                      double dampening_factor, SamplePairFn&& sample_pair,
                      Rng& rng, uint64_t* evaluated, bool* reliable) {
  if (num_pairs_l == 0) return 0.0;
  // Degenerate budgets: with δ = 0 the adaptive loop never draws (hits < 0
  // is unsatisfiable), with m_L = 0 it never may, and either way the
  // "reliable" scale-up n_L · N_L / i would be 0 · N_L / 0 = NaN. Nothing
  // was sampled, so nothing is known about stratum L: return the empty
  // safe lower bound (0) with *reliable cleared — the caller sees an
  // unguaranteed conservative answer, never a NaN. Service engines reject
  // these values at the EstimateRequest validation layer; this guard
  // covers direct template callers.
  if (m_l == 0 || delta == 0) {
    *reliable = false;
    return 0.0;
  }

  uint64_t hits = 0;     // n_L in Algorithm 1
  uint64_t samples = 0;  // i in Algorithm 1
  while (hits < delta && samples < m_l) {
    const auto pair = sample_pair(rng);
    if (Similarity(measure, dataset[pair.first], dataset[pair.second]) >=
        tau) {
      ++hits;
    }
    ++samples;
  }
  *evaluated += samples;
  VSJ_COUNTER_ADD("estimate.pairs_l", samples);
  if (hits >= delta) VSJ_COUNTER_ADD("estimate.sample_l_early_exit", 1);

  if (samples >= m_l && hits < delta) {
    VSJ_COUNTER_ADD("estimate.sample_l_dampened", 1);
    // The answer-size threshold was not met: scaling up by N_L/i carries no
    // guarantee (Example 1 of the paper). Return the safe lower bound n_L,
    // or the dampened scale-up of Theorem 2.
    *reliable = false;
    switch (dampening) {
      case DampeningMode::kSafeLowerBound:
        return static_cast<double>(hits);
      case DampeningMode::kFixedFactor:
        return static_cast<double>(hits) * dampening_factor *
               static_cast<double>(num_pairs_l) / static_cast<double>(m_l);
      case DampeningMode::kAdaptiveNlOverDelta: {
        const double cs =
            static_cast<double>(hits) / static_cast<double>(delta);
        return static_cast<double>(hits) * cs *
               static_cast<double>(num_pairs_l) / static_cast<double>(m_l);
      }
    }
    VSJ_CHECK(false);
  }
  // Reliable path: the adaptive bound of Lipton et al. applies.
  return static_cast<double>(hits) * static_cast<double>(num_pairs_l) /
         static_cast<double>(samples);
}

}  // namespace vsj

#endif  // VSJ_CORE_STRATIFIED_SAMPLING_H_
