#include "vsj/core/streaming_lsh_ss_estimator.h"

#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

StreamingLshSsEstimator::StreamingLshSsEstimator(
    const VectorDataset& dataset, const DynamicLshIndex& index,
    SimilarityMeasure measure, StreamingLshSsOptions options)
    : dataset_(&dataset),
      index_(&index),
      measure_(measure),
      options_(options) {}

std::string StreamingLshSsEstimator::name() const { return "LSH-SS(stream)"; }

double StreamingLshSsEstimator::SampleStratumH(const DynamicLshTable& table,
                                               double tau, Rng& rng,
                                               uint64_t m_h,
                                               uint64_t* evaluated) const {
  const uint64_t n_pairs_h = table.NumSameBucketPairs();
  if (n_pairs_h == 0) return 0.0;
  uint64_t hits = 0;
  for (uint64_t s = 0; s < m_h; ++s) {
    const VectorPair pair = table.SampleSameBucketPair(rng);
    if (Similarity(measure_, (*dataset_)[pair.first],
                   (*dataset_)[pair.second]) >= tau) {
      ++hits;
    }
  }
  *evaluated += m_h;
  return static_cast<double>(hits) * static_cast<double>(n_pairs_h) /
         static_cast<double>(m_h);
}

double StreamingLshSsEstimator::SampleStratumL(const DynamicLshTable& table,
                                               double tau, Rng& rng,
                                               uint64_t m_l, uint64_t delta,
                                               uint64_t* evaluated,
                                               bool* reliable) const {
  const uint64_t n_pairs_l = table.NumCrossBucketPairs();
  if (n_pairs_l == 0) return 0.0;

  uint64_t hits = 0;     // n_L in Algorithm 1
  uint64_t samples = 0;  // i in Algorithm 1
  while (hits < delta && samples < m_l) {
    // Uniform live pair, rejecting same-bucket pairs. Termination: N_L > 0
    // guarantees an accepting pair exists; the expected number of
    // rejections per draw is N_H / N_L.
    VectorId u, v;
    do {
      u = index_->SampleLiveId(rng);
      v = index_->SampleLiveId(rng);
    } while (u == v || table.SameBucket(u, v));
    if (Similarity(measure_, (*dataset_)[u], (*dataset_)[v]) >= tau) ++hits;
    ++samples;
  }
  *evaluated += samples;

  if (samples >= m_l && hits < delta) {
    // Answer-size threshold not met: return the safe lower bound (plain
    // LSH-SS, Theorem 1).
    *reliable = false;
    return static_cast<double>(hits);
  }
  return static_cast<double>(hits) * static_cast<double>(n_pairs_l) /
         static_cast<double>(samples);
}

EstimationResult StreamingLshSsEstimator::EstimateWithTable(double tau,
                                                            uint32_t t,
                                                            Rng& rng) const {
  VSJ_CHECK(t < index_->num_tables());
  EstimationResult result;
  const uint64_t n = index_->num_vectors();
  if (n < 2) return result;
  const uint64_t total_pairs = n * (n - 1) / 2;
  if (tau <= 0.0) {
    result.estimate = static_cast<double>(total_pairs);
    return result;
  }

  const uint64_t m_h = options_.sample_size_h != 0 ? options_.sample_size_h : n;
  const uint64_t m_l = options_.sample_size_l != 0 ? options_.sample_size_l : n;
  const uint64_t delta =
      options_.delta != 0
          ? options_.delta
          : static_cast<uint64_t>(
                std::max(1.0, std::log2(static_cast<double>(n))));

  const DynamicLshTable& table = index_->table(t);
  bool reliable = true;
  result.stratum_h_estimate =
      SampleStratumH(table, tau, rng, m_h, &result.pairs_evaluated);
  result.stratum_l_estimate = SampleStratumL(
      table, tau, rng, m_l, delta, &result.pairs_evaluated, &reliable);
  result.guaranteed = reliable;
  result.estimate = ClampEstimate(
      result.stratum_h_estimate + result.stratum_l_estimate, total_pairs);
  return result;
}

EstimationResult StreamingLshSsEstimator::Estimate(double tau,
                                                   Rng& rng) const {
  return EstimateWithTable(tau, 0, rng);
}

}  // namespace vsj
