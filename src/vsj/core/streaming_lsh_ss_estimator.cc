#include "vsj/core/streaming_lsh_ss_estimator.h"

#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

StreamingLshSsEstimator::StreamingLshSsEstimator(
    DatasetView dataset, const DynamicLshIndex& index,
    SimilarityMeasure measure, StreamingLshSsOptions options)
    : dataset_(dataset),
      index_(&index),
      measure_(measure),
      options_(options) {}

std::string StreamingLshSsEstimator::name() const { return "LSH-SS(stream)"; }

void StreamingSampleContext::Build(const DynamicLshIndex& index,
                                   size_t id_bound) {
  bucket_of.resize(index.num_tables());
  for (uint32_t t = 0; t < index.num_tables(); ++t) {
    bucket_of[t].assign(id_bound, kAbsentBucket);
    index.table(t).ExportBucketOf(bucket_of[t]);
  }
}

EstimationResult StreamingLshSsEstimator::EstimateWithTable(
    double tau, uint32_t t, Rng& rng, const StreamingSampleContext* context,
    const StreamingLshSsOptions* override_options) const {
  VSJ_CHECK(t < index_->num_tables());
  const StreamingLshSsOptions& opts =
      override_options != nullptr ? *override_options : options_;
  EstimationResult result;
  const uint64_t n = index_->num_vectors();
  if (n < 2) return result;
  const uint64_t total_pairs = n * (n - 1) / 2;
  if (tau <= 0.0) {
    result.estimate = static_cast<double>(total_pairs);
    return result;
  }

  const uint64_t m_h = opts.sample_size_h != 0 ? opts.sample_size_h : n;
  const uint64_t m_l = opts.sample_size_l != 0 ? opts.sample_size_l : n;
  const uint64_t delta =
      opts.delta != 0
          ? opts.delta
          : static_cast<uint64_t>(
                std::max(1.0, std::log2(static_cast<double>(n))));

  const DynamicLshTable& table = index_->table(t);
  const uint32_t* bucket_of = context != nullptr && !context->empty()
                                  ? context->bucket_of[t].data()
                                  : nullptr;
  bool reliable = true;
  result.stratum_h_estimate = SampleStratumH(
      dataset_, measure_, tau, table.NumSameBucketPairs(), m_h,
      [&](Rng& r) { return table.SampleSameBucketPair(r); }, rng,
      &result.pairs_evaluated);
  // SampleL draws uniform live pairs through the index's live-id list,
  // rejecting same-bucket pairs of the chosen table. Termination: N_L > 0
  // guarantees an accepting pair exists; the expected number of rejections
  // per draw is N_H / N_L. The streaming engine always uses the safe lower
  // bound (Theorem 1) when the answer-size threshold is missed.
  result.stratum_l_estimate = SampleStratumL(
      dataset_, measure_, tau, table.NumCrossBucketPairs(), m_l, delta,
      DampeningMode::kSafeLowerBound, 1.0,
      [&](Rng& r) {
        VectorId u, v;
        do {
          u = index_->SampleLiveId(r);
          v = index_->SampleLiveId(r);
        } while (u == v || (bucket_of != nullptr
                                ? bucket_of[u] == bucket_of[v]
                                : table.SameBucket(u, v)));
        return VectorPair{u, v};
      },
      rng, &result.pairs_evaluated, &reliable);
  result.guaranteed = reliable;
  result.estimate = ClampEstimate(
      result.stratum_h_estimate + result.stratum_l_estimate, total_pairs);
  return result;
}

EstimationResult StreamingLshSsEstimator::Estimate(double tau,
                                                   Rng& rng) const {
  return EstimateWithTable(tau, 0, rng);
}

}  // namespace vsj
