#include "vsj/core/median_estimator.h"

#include <algorithm>

namespace vsj {

MedianEstimator::MedianEstimator(DatasetView dataset,
                                 const LshIndex& index,
                                 SimilarityMeasure measure,
                                 LshSsOptions options) {
  per_table_.reserve(index.num_tables());
  for (uint32_t t = 0; t < index.num_tables(); ++t) {
    per_table_.push_back(std::make_unique<LshSsEstimator>(
        dataset, index.table(t), measure, options));
  }
}

EstimationResult MedianEstimator::Estimate(double tau, Rng& rng) const {
  std::vector<double> estimates;
  estimates.reserve(per_table_.size());
  EstimationResult combined;
  combined.guaranteed = true;
  for (const auto& estimator : per_table_) {
    const EstimationResult r = estimator->Estimate(tau, rng);
    estimates.push_back(r.estimate);
    combined.pairs_evaluated += r.pairs_evaluated;
    combined.guaranteed = combined.guaranteed && r.guaranteed;
  }
  const size_t mid = estimates.size() / 2;
  std::nth_element(estimates.begin(), estimates.begin() + mid,
                   estimates.end());
  double median = estimates[mid];
  if (estimates.size() % 2 == 0) {
    // Even ℓ: average the two central order statistics.
    const double upper = median;
    std::nth_element(estimates.begin(), estimates.begin() + (mid - 1),
                     estimates.begin() + mid);
    median = 0.5 * (estimates[mid - 1] + upper);
  }
  combined.estimate = median;
  return combined;
}

}  // namespace vsj
