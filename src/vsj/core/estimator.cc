#include "vsj/core/estimator.h"

#include <algorithm>

namespace vsj {

double ClampEstimate(double estimate, uint64_t max_pairs) {
  return std::clamp(estimate, 0.0, static_cast<double>(max_pairs));
}

}  // namespace vsj
