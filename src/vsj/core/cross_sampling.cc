#include "vsj/core/cross_sampling.h"

#include <cmath>
#include <unordered_set>
#include <vector>

#include "vsj/util/check.h"

namespace vsj {

CrossSampling::CrossSampling(DatasetView dataset,
                             SimilarityMeasure measure,
                             CrossSamplingOptions options)
    : dataset_(dataset), measure_(measure) {
  VSJ_CHECK(dataset.size() >= 2);
  const uint64_t pair_budget =
      options.sample_size != 0
          ? options.sample_size
          : static_cast<uint64_t>(std::llround(options.sample_size_factor *
                                               static_cast<double>(
                                                   dataset.size())));
  num_records_ = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(pair_budget))));
  num_records_ = std::max<size_t>(2, std::min(num_records_, dataset.size()));
}

EstimationResult CrossSampling::Estimate(double tau, Rng& rng) const {
  const size_t n = dataset_.size();
  // Without-replacement record sample (Floyd-style via a set; the sample is
  // far smaller than n in every intended configuration).
  std::unordered_set<VectorId> chosen;
  std::vector<VectorId> records;
  records.reserve(num_records_);
  while (records.size() < num_records_) {
    const auto id = static_cast<VectorId>(rng.Below(n));
    if (chosen.insert(id).second) records.push_back(id);
  }

  uint64_t hits = 0;
  uint64_t evaluated = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    for (size_t j = i + 1; j < records.size(); ++j) {
      ++evaluated;
      if (Similarity(measure_, dataset_[records[i]],
                     dataset_[records[j]]) >= tau) {
        ++hits;
      }
    }
  }

  EstimationResult result;
  result.pairs_evaluated = evaluated;
  const double sampled_pairs = static_cast<double>(evaluated);
  result.estimate = ClampEstimate(
      static_cast<double>(hits) *
          static_cast<double>(dataset_.NumPairs()) / sampled_pairs,
      dataset_.NumPairs());
  return result;
}

}  // namespace vsj
