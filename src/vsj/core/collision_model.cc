#include "vsj/core/collision_model.h"

#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

namespace {

constexpr int kSimpsonIntervals = 2048;  // even; plenty for smooth f

}  // namespace

CollisionModel::CollisionModel(const LshFamily& family, uint32_t k)
    : family_(&family), k_(k) {
  VSJ_CHECK(k > 0);
}

double CollisionModel::BandProbability(double similarity) const {
  return family_->BandCollisionProbability(similarity, k_);
}

double CollisionModel::IntegralBelow(double tau) const {
  if (tau <= 0.0) return 0.0;
  const double hi = std::min(tau, 1.0);
  // Composite Simpson over [0, hi].
  const double h = hi / kSimpsonIntervals;
  double sum = BandProbability(0.0) + BandProbability(hi);
  for (int i = 1; i < kSimpsonIntervals; ++i) {
    sum += BandProbability(i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

double CollisionModel::IntegralAbove(double tau) const {
  if (tau >= 1.0) return 0.0;
  // Defined as total − below so that the two areas of Figure 1 partition
  // the total mass exactly regardless of quadrature error.
  return std::max(0.0, IntegralBelow(1.0) - IntegralBelow(tau));
}

double CollisionModel::ConditionalHGivenTrue(double tau) const {
  constexpr double kEps = 1e-12;
  if (tau >= 1.0 - kEps) return BandProbability(1.0);
  return IntegralAbove(tau) / (1.0 - tau);
}

double CollisionModel::ConditionalHGivenFalse(double tau) const {
  constexpr double kEps = 1e-12;
  if (tau <= kEps) return BandProbability(0.0);
  return IntegralBelow(tau) / tau;
}

bool CollisionModel::IsIdentityCurve() const {
  for (double s : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    if (std::fabs(family_->CollisionProbability(s) - s) > 1e-9) return false;
  }
  return true;
}

}  // namespace vsj
