#include "vsj/core/lattice_counting.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "vsj/util/check.h"
#include "vsj/util/hash.h"

namespace vsj {

namespace {

/// ∫_{lo}^{hi} x^a dx with the a = −1 singularity handled.
double PowerIntegral(double a, double lo, double hi) {
  if (hi <= lo) return 0.0;
  if (std::fabs(a + 1.0) < 1e-9) return std::log(hi / lo);
  return (std::pow(hi, a + 1.0) - std::pow(lo, a + 1.0)) / (a + 1.0);
}

}  // namespace

LatticeCountingEstimator::LatticeCountingEstimator(
    DatasetView dataset, const LshFamily& family,
    LatticeCountingOptions options)
    : family_(&family) {
  VSJ_CHECK(dataset.size() >= 2);
  if (options.signature_length == 0) options.signature_length = 20;
  VSJ_CHECK(options.num_moments >= 2);
  VSJ_CHECK(options.min_support >= 2);
  const uint64_t n = dataset.size();
  total_pairs_ = n * (n - 1) / 2;
  x_min_ = std::max(family.CollisionProbability(0.0), 1e-6);
  ComputeMoments(dataset, family, options);
  FitPowerLaw();
}

void LatticeCountingEstimator::ComputeMoments(
    DatasetView dataset, const LshFamily& family,
    const LatticeCountingOptions& options) {
  const uint32_t k = options.signature_length;
  const SignatureDatabase signatures(family, dataset, k);
  const size_t n = dataset.size();
  moments_.assign(options.num_moments, 0.0);

  // Deterministic subset enumeration: order-t subset r is positions
  // {Mix64(r, t, j) mod k : j < t} (deduplicated); order 1 uses each
  // position exactly once.
  Rng subset_rng(0x5ca1ab1e);
  std::unordered_map<uint64_t, uint32_t> groups;
  groups.reserve(n);

  for (uint32_t order = 1; order <= options.num_moments; ++order) {
    const uint32_t num_subsets =
        order == 1 ? k : std::min(options.subsets_per_order,
                                  static_cast<uint32_t>(k));
    double sum_over_subsets = 0.0;
    for (uint32_t r = 0; r < num_subsets; ++r) {
      // Choose `order` distinct positions.
      std::vector<uint32_t> positions;
      if (order == 1) {
        positions.push_back(r);
      } else {
        while (positions.size() < order) {
          auto pos = static_cast<uint32_t>(subset_rng.Below(k));
          if (std::find(positions.begin(), positions.end(), pos) ==
              positions.end()) {
            positions.push_back(pos);
          }
        }
      }
      // Group vectors by the projected signature; count pairs per group.
      groups.clear();
      for (VectorId id = 0; id < n; ++id) {
        auto sig = signatures.Of(id);
        uint64_t key = 0x9ae16a3b2f90404fULL;
        for (uint32_t pos : positions) key = HashCombine(key, sig[pos]);
        ++groups[key];
      }
      uint64_t agreeing_pairs = 0;
      for (const auto& [key, count] : groups) {
        if (count < options.min_support) continue;
        agreeing_pairs += static_cast<uint64_t>(count) * (count - 1) / 2;
      }
      sum_over_subsets += static_cast<double>(agreeing_pairs);
    }
    moments_[order - 1] = sum_over_subsets / num_subsets;
  }
}

void LatticeCountingEstimator::FitPowerLaw() {
  // Match the ratio M_1 / M_2 = I_1(a) / I_2(a), where
  // I_t(a) = ∫_{x_min}^1 x^{a+t} dx, by bisection over the exponent a. The
  // ratio is monotone decreasing in a (larger a shifts mass toward 1 where
  // x^2 ≈ x).
  const double m1 = moments_[0];
  const double m2 = moments_[1];
  if (m1 <= 0.0 || m2 <= 0.0) {
    // Degenerate signature database (e.g. all-identical or all-distinct):
    // fall back to a flat density carrying M_1.
    exponent_ = 0.0;
    scale_ = m1 > 0.0 ? m1 / PowerIntegral(1.0, x_min_, 1.0) : 0.0;
    return;
  }
  const double target = m1 / m2;
  auto ratio = [&](double a) {
    return PowerIntegral(a + 1.0, x_min_, 1.0) /
           PowerIntegral(a + 2.0, x_min_, 1.0);
  };
  double lo = -40.0;
  double hi = 40.0;
  // ratio(lo) is large (mass near x_min), ratio(hi) → 1 (mass near 1).
  if (target >= ratio(lo)) {
    exponent_ = lo;
  } else if (target <= ratio(hi)) {
    exponent_ = hi;
  } else {
    for (int iter = 0; iter < 200; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (ratio(mid) > target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    exponent_ = 0.5 * (lo + hi);
  }
  scale_ = m1 / PowerIntegral(exponent_ + 1.0, x_min_, 1.0);
}

EstimationResult LatticeCountingEstimator::Estimate(double tau,
                                                    Rng& rng) const {
  (void)rng;  // the analysis is deterministic given the signature database
  EstimationResult result;
  if (tau <= 0.0) {
    result.estimate = static_cast<double>(total_pairs_);
    return result;
  }
  // Pairs with similarity ≥ τ are those with collision probability
  // ≥ p(τ) under the fitted density.
  const double p_tau =
      std::max(family_->CollisionProbability(tau), x_min_);
  const double estimate = scale_ * PowerIntegral(exponent_, p_tau, 1.0);
  result.estimate = ClampEstimate(estimate, total_pairs_);
  result.guaranteed = false;  // model-based; no distribution-free bound
  return result;
}

}  // namespace vsj
