#include "vsj/core/lsh_ss_estimator.h"

#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

LshSsEstimator::LshSsEstimator(DatasetView dataset,
                               const LshTable& table,
                               SimilarityMeasure measure,
                               LshSsOptions options)
    : dataset_(dataset),
      table_(&table),
      measure_(measure),
      dampening_(options.dampening),
      dampening_factor_(options.dampening_factor) {
  VSJ_CHECK(dataset.size() >= 2);
  VSJ_CHECK(table.num_vectors() == dataset.size());
  const auto n = static_cast<uint64_t>(dataset.size());
  sample_size_h_ = options.sample_size_h != 0 ? options.sample_size_h : n;
  sample_size_l_ = options.sample_size_l != 0 ? options.sample_size_l : n;
  delta_ = options.delta != 0
               ? options.delta
               : static_cast<uint64_t>(
                     std::max(1.0, std::log2(static_cast<double>(n))));
  if (dampening_ == DampeningMode::kFixedFactor) {
    VSJ_CHECK_MSG(dampening_factor_ > 0.0 && dampening_factor_ <= 1.0,
                  "dampening factor c_s must be in (0, 1]");
  }
}

std::string LshSsEstimator::name() const {
  return dampening_ == DampeningMode::kSafeLowerBound ? "LSH-SS"
                                                      : "LSH-SS(D)";
}

EstimationResult LshSsEstimator::Estimate(double tau, Rng& rng) const {
  EstimationResult result;
  const uint64_t total_pairs = dataset_.NumPairs();
  if (tau <= 0.0) {
    result.estimate = static_cast<double>(total_pairs);
    return result;
  }
  bool reliable = true;
  result.stratum_h_estimate = SampleStratumH(
      dataset_, measure_, tau, table_->NumSameBucketPairs(), sample_size_h_,
      [&](Rng& r) { return table_->SampleSameBucketPair(r); }, rng,
      &result.pairs_evaluated);
  result.stratum_l_estimate = SampleStratumL(
      dataset_, measure_, tau, table_->NumCrossBucketPairs(), sample_size_l_,
      delta_, dampening_, dampening_factor_,
      [&](Rng& r) { return table_->SampleCrossBucketPair(r); }, rng,
      &result.pairs_evaluated, &reliable);
  result.guaranteed = reliable;
  result.estimate = ClampEstimate(
      result.stratum_h_estimate + result.stratum_l_estimate, total_pairs);
  return result;
}

}  // namespace vsj
