#include "vsj/core/lsh_ss_estimator.h"

#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

LshSsEstimator::LshSsEstimator(const VectorDataset& dataset,
                               const LshTable& table,
                               SimilarityMeasure measure,
                               LshSsOptions options)
    : dataset_(&dataset),
      table_(&table),
      measure_(measure),
      dampening_(options.dampening),
      dampening_factor_(options.dampening_factor) {
  VSJ_CHECK(dataset.size() >= 2);
  VSJ_CHECK(table.num_vectors() == dataset.size());
  const auto n = static_cast<uint64_t>(dataset.size());
  sample_size_h_ = options.sample_size_h != 0 ? options.sample_size_h : n;
  sample_size_l_ = options.sample_size_l != 0 ? options.sample_size_l : n;
  delta_ = options.delta != 0
               ? options.delta
               : static_cast<uint64_t>(
                     std::max(1.0, std::log2(static_cast<double>(n))));
  if (dampening_ == DampeningMode::kFixedFactor) {
    VSJ_CHECK_MSG(dampening_factor_ > 0.0 && dampening_factor_ <= 1.0,
                  "dampening factor c_s must be in (0, 1]");
  }
}

std::string LshSsEstimator::name() const {
  return dampening_ == DampeningMode::kSafeLowerBound ? "LSH-SS"
                                                      : "LSH-SS(D)";
}

double LshSsEstimator::SampleStratumH(double tau, Rng& rng,
                                      uint64_t* evaluated) const {
  const uint64_t n_pairs_h = table_->NumSameBucketPairs();
  if (n_pairs_h == 0) return 0.0;
  uint64_t hits = 0;
  for (uint64_t s = 0; s < sample_size_h_; ++s) {
    const VectorPair pair = table_->SampleSameBucketPair(rng);
    if (Similarity(measure_, (*dataset_)[pair.first],
                   (*dataset_)[pair.second]) >= tau) {
      ++hits;
    }
  }
  *evaluated += sample_size_h_;
  return static_cast<double>(hits) * static_cast<double>(n_pairs_h) /
         static_cast<double>(sample_size_h_);
}

double LshSsEstimator::SampleStratumL(double tau, Rng& rng,
                                      uint64_t* evaluated,
                                      bool* reliable) const {
  const uint64_t n_pairs_l = table_->NumCrossBucketPairs();
  if (n_pairs_l == 0) return 0.0;

  uint64_t hits = 0;     // n_L in Algorithm 1
  uint64_t samples = 0;  // i in Algorithm 1
  while (hits < delta_ && samples < sample_size_l_) {
    const VectorPair pair = table_->SampleCrossBucketPair(rng);
    if (Similarity(measure_, (*dataset_)[pair.first],
                   (*dataset_)[pair.second]) >= tau) {
      ++hits;
    }
    ++samples;
  }
  *evaluated += samples;

  if (samples >= sample_size_l_ && hits < delta_) {
    // The answer-size threshold was not met: scaling up by N_L/i carries no
    // guarantee (Example 1 of the paper). Return the safe lower bound n_L,
    // or the dampened scale-up of Theorem 2.
    *reliable = false;
    switch (dampening_) {
      case DampeningMode::kSafeLowerBound:
        return static_cast<double>(hits);
      case DampeningMode::kFixedFactor:
        return static_cast<double>(hits) * dampening_factor_ *
               static_cast<double>(n_pairs_l) /
               static_cast<double>(sample_size_l_);
      case DampeningMode::kAdaptiveNlOverDelta: {
        const double cs =
            static_cast<double>(hits) / static_cast<double>(delta_);
        return static_cast<double>(hits) * cs *
               static_cast<double>(n_pairs_l) /
               static_cast<double>(sample_size_l_);
      }
    }
    VSJ_CHECK(false);
  }
  // Reliable path: the adaptive bound of Lipton et al. applies.
  return static_cast<double>(hits) * static_cast<double>(n_pairs_l) /
         static_cast<double>(samples);
}

EstimationResult LshSsEstimator::Estimate(double tau, Rng& rng) const {
  EstimationResult result;
  const uint64_t total_pairs = dataset_->NumPairs();
  if (tau <= 0.0) {
    result.estimate = static_cast<double>(total_pairs);
    return result;
  }
  bool reliable = true;
  result.stratum_h_estimate =
      SampleStratumH(tau, rng, &result.pairs_evaluated);
  result.stratum_l_estimate =
      SampleStratumL(tau, rng, &result.pairs_evaluated, &reliable);
  result.guaranteed = reliable;
  result.estimate = ClampEstimate(
      result.stratum_h_estimate + result.stratum_l_estimate, total_pairs);
  return result;
}

}  // namespace vsj
