#include "vsj/core/random_pair_sampling.h"

#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

RandomPairSampling::RandomPairSampling(DatasetView dataset,
                                       SimilarityMeasure measure,
                                       RandomPairSamplingOptions options)
    : dataset_(dataset), measure_(measure) {
  VSJ_CHECK(dataset.size() >= 2);
  sample_size_ =
      options.sample_size != 0
          ? options.sample_size
          : static_cast<uint64_t>(std::llround(options.sample_size_factor *
                                               static_cast<double>(
                                                   dataset.size())));
  VSJ_CHECK(sample_size_ > 0);
}

EstimationResult RandomPairSampling::Estimate(double tau, Rng& rng) const {
  const size_t n = dataset_.size();
  const double total_pairs = static_cast<double>(dataset_.NumPairs());
  uint64_t hits = 0;
  for (uint64_t s = 0; s < sample_size_; ++s) {
    const auto u = static_cast<VectorId>(rng.Below(n));
    auto v = static_cast<VectorId>(rng.Below(n - 1));
    if (v >= u) ++v;
    if (Similarity(measure_, dataset_[u], dataset_[v]) >= tau) ++hits;
  }
  EstimationResult result;
  result.pairs_evaluated = sample_size_;
  result.estimate = ClampEstimate(
      static_cast<double>(hits) * total_pairs /
          static_cast<double>(sample_size_),
      dataset_.NumPairs());
  return result;
}

}  // namespace vsj
