#include "vsj/core/estimator_registry.h"

#include "vsj/core/median_estimator.h"
#include "vsj/core/uniformity_estimator.h"
#include "vsj/core/virtual_bucket_estimator.h"
#include "vsj/util/check.h"

namespace vsj {

namespace {

const LshIndex& RequireIndex(const EstimatorContext& context,
                             std::string_view name) {
  VSJ_CHECK_MSG(context.index != nullptr,
                "estimator %.*s requires an LSH index",
                static_cast<int>(name.size()), name.data());
  return *context.index;
}

}  // namespace

std::unique_ptr<JoinSizeEstimator> CreateEstimator(
    std::string_view name, const EstimatorContext& context) {
  VSJ_CHECK_MSG(context.dataset.valid(), "EstimatorContext needs a dataset");
  const DatasetView dataset = context.dataset;

  if (name == "RS(pop)") {
    return std::make_unique<RandomPairSampling>(dataset, context.measure,
                                                context.random_pair);
  }
  if (name == "RS(cross)") {
    return std::make_unique<CrossSampling>(dataset, context.measure,
                                           context.cross);
  }
  if (name == "Bifocal") {
    return std::make_unique<DegreeSamplingEstimator>(
        dataset, context.measure, context.degree);
  }
  if (name == "Adaptive") {
    return std::make_unique<AdaptiveSamplingEstimator>(
        dataset, context.measure, context.adaptive);
  }
  if (name == "LSH-SS") {
    LshSsOptions options = context.lsh_ss;
    options.dampening = DampeningMode::kSafeLowerBound;
    return std::make_unique<LshSsEstimator>(
        dataset, RequireIndex(context, name).table(0), context.measure,
        options);
  }
  if (name == "LSH-SS(D)") {
    LshSsOptions options = context.lsh_ss;
    options.dampening = DampeningMode::kAdaptiveNlOverDelta;
    return std::make_unique<LshSsEstimator>(
        dataset, RequireIndex(context, name).table(0), context.measure,
        options);
  }
  if (name == "LSH-S") {
    const LshIndex& index = RequireIndex(context, name);
    return std::make_unique<LshSEstimator>(dataset, index.family(),
                                           index.table(0), context.lsh_s);
  }
  if (name == "J_U") {
    const LshIndex& index = RequireIndex(context, name);
    return std::make_unique<UniformityEstimator>(index.table(0),
                                                 index.family());
  }
  if (name == "LC") {
    const LshIndex& index = RequireIndex(context, name);
    LatticeCountingOptions options = context.lattice;
    if (options.signature_length == 0) options.signature_length = index.k();
    return std::make_unique<LatticeCountingEstimator>(
        dataset, index.family(), options);
  }
  if (name == "LSH-SS(median)") {
    return std::make_unique<MedianEstimator>(
        dataset, RequireIndex(context, name), context.measure,
        context.lsh_ss);
  }
  if (name == "LSH-SS(vbucket)") {
    return std::make_unique<VirtualBucketEstimator>(
        dataset, RequireIndex(context, name), context.measure,
        context.lsh_ss);
  }
  VSJ_CHECK_MSG(false, "unknown estimator name: %.*s",
                static_cast<int>(name.size()), name.data());
  return nullptr;
}

std::vector<std::string> HeadlineEstimatorNames() {
  return {"LSH-SS", "LSH-SS(D)", "RS(pop)", "RS(cross)"};
}

std::vector<std::string> AllEstimatorNames() {
  return {"LSH-SS",    "LSH-SS(D)", "RS(pop)",        "RS(cross)",
          "LSH-S",     "J_U",       "LC",             "Adaptive",
          "Bifocal",   "LSH-SS(median)", "LSH-SS(vbucket)"};
}

}  // namespace vsj
