// The Optimal-k Problem (paper Appendix B.1, Definition 4).
//
// Given a desired error bound ε and probabilistic guarantee p (together
// defining a precision floor ρ = ρ(ε, p)), find the minimum k such that
// P(T|H) ≥ ρ. Smaller k grows stratum H (higher recall P(H|T), more of the
// join caught by the reliable SampleH procedure, cheaper hashing); larger k
// sharpens precision P(T|H). Since P(T|H) is data dependent there is no
// closed form; this module searches k by building candidate tables and
// estimating α = P(T|H) by uniform sampling from stratum H.

#ifndef VSJ_CORE_OPTIMAL_K_H_
#define VSJ_CORE_OPTIMAL_K_H_

#include <cstdint>
#include <vector>

#include "vsj/lsh/lsh_family.h"
#include "vsj/util/rng.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Search options.
struct OptimalKOptions {
  uint32_t min_k = 2;
  uint32_t max_k = 40;
  /// Same-bucket pair samples used to estimate α per candidate k.
  uint64_t samples_per_k = 2000;
  /// Geometric step of the scan (1 = test every k).
  uint32_t step = 2;
};

/// One probed configuration.
struct KCandidate {
  uint32_t k = 0;
  double alpha = 0.0;           // estimated P(T|H)
  uint64_t same_bucket_pairs = 0;  // N_H of the candidate table
};

/// Search outcome.
struct OptimalKResult {
  /// Smallest probed k with α ≥ rho; 0 if none qualifies.
  uint32_t best_k = 0;
  std::vector<KCandidate> probed;
};

/// Converts an (ε, p) target into the precision floor ρ of Definition 4
/// via the Chernoff sample-size heuristic used in the paper's analysis:
/// with m_H = n samples, α ≥ ρ keeps Pr(|Ĵ_H − J_H| > εJ_H) ≤ 1 − p.
double PrecisionFloor(double epsilon, double probability, size_t n);

/// Probes k = min_k, min_k + step, ... and returns the smallest k whose
/// estimated α = P(T|H) at threshold `tau` reaches `rho`.
OptimalKResult FindOptimalK(DatasetView dataset,
                            const LshFamily& family, double tau, double rho,
                            Rng& rng, OptimalKOptions options = {});

}  // namespace vsj

#endif  // VSJ_CORE_OPTIMAL_K_H_
