// Adaptive sampling (Lipton, Naughton & Schneider, SIGMOD 1990).
//
// Sampling terminates when the *accumulated answer size* reaches a threshold
// δ rather than when a fixed number of samples is drawn; the estimate
// hits · (population / samples) then carries the error bounds of Theorems
// 2.1/2.2 of that paper. Used both as a standalone baseline and as the
// SampleL subroutine of LSH-SS (paper §5.1.2), where the "answer" is the
// number of true pairs found.

#ifndef VSJ_CORE_ADAPTIVE_SAMPLING_H_
#define VSJ_CORE_ADAPTIVE_SAMPLING_H_

#include <cstdint>
#include <functional>

#include "vsj/core/estimator.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Outcome of one adaptive-sampling loop.
struct AdaptiveSamplingOutcome {
  uint64_t hits = 0;           // true pairs found (n_L in Algorithm 1)
  uint64_t samples = 0;        // samples drawn (i in Algorithm 1)
  bool reached_answer_threshold = false;  // loop ended via hits ≥ δ
};

/// Runs the adaptive loop: draws samples via `sample_is_hit` until `hits ≥
/// delta` or `samples ≥ max_samples`. `sample_is_hit` returns whether one
/// freshly drawn population element satisfies the predicate.
AdaptiveSamplingOutcome RunAdaptiveSampling(
    uint64_t delta, uint64_t max_samples,
    const std::function<bool()>& sample_is_hit);

/// Options of the standalone adaptive-sampling baseline estimator.
struct AdaptiveSamplingOptions {
  /// Answer-size threshold δ; 0 means log₂ n.
  uint64_t delta = 0;
  /// Maximum sample size; 0 means n.
  uint64_t max_samples = 0;
};

/// Standalone adaptive-sampling estimator over the full pair population.
///
/// Returns hits · M / samples when the answer threshold was met (reliable;
/// Lipton et al.'s bounds apply) and the same scaled value flagged
/// `guaranteed = false` otherwise (their "loose upper bound" case).
class AdaptiveSamplingEstimator final : public JoinSizeEstimator {
 public:
  AdaptiveSamplingEstimator(DatasetView dataset,
                            SimilarityMeasure measure,
                            AdaptiveSamplingOptions options = {});

  EstimationResult Estimate(double tau, Rng& rng) const override;
  std::string name() const override { return "Adaptive"; }

 private:
  DatasetView dataset_;
  SimilarityMeasure measure_;
  uint64_t delta_;
  uint64_t max_samples_;
};

}  // namespace vsj

#endif  // VSJ_CORE_ADAPTIVE_SAMPLING_H_
