// Common interface of all join-size estimators (the VSJ problem, Def. 1).
//
// An estimator is constructed over a dataset (and whatever auxiliary
// structure it needs — an LSH table, signatures, nothing) and then queried
// for any similarity threshold τ. `Estimate` is const and takes the RNG by
// reference, so one estimator instance supports repeated independent trials,
// matching how a query optimizer would hold a long-lived statistics object.

#ifndef VSJ_CORE_ESTIMATOR_H_
#define VSJ_CORE_ESTIMATOR_H_

#include <cstdint>
#include <string>

#include "vsj/util/rng.h"

namespace vsj {

/// Outcome of one estimation call.
struct EstimationResult {
  /// The join size estimate Ĵ.
  double estimate = 0.0;

  /// Number of pair similarity evaluations performed (the sampling cost
  /// model of the paper: similarity joins must actually compare pairs).
  uint64_t pairs_evaluated = 0;

  /// False when the estimator knowingly returned a conservative value, e.g.
  /// LSH-SS's safe lower bound when SampleL could not meet the answer-size
  /// threshold δ (paper §5.1.2), or LSH-S when no true pair was sampled.
  bool guaranteed = true;

  /// Diagnostics for stratified estimators: Ĵ_H and Ĵ_L of Equation (7).
  /// Zero for non-stratified estimators.
  double stratum_h_estimate = 0.0;
  double stratum_l_estimate = 0.0;
};

/// Abstract join-size estimator.
class JoinSizeEstimator {
 public:
  virtual ~JoinSizeEstimator() = default;

  /// Estimates J(τ). Implementations must clamp to [0, M].
  virtual EstimationResult Estimate(double tau, Rng& rng) const = 0;

  /// Display name, e.g. "LSH-SS", "RS(pop)".
  virtual std::string name() const = 0;
};

/// Clamps a raw estimate into the feasible range [0, max_pairs].
double ClampEstimate(double estimate, uint64_t max_pairs);

}  // namespace vsj

#endif  // VSJ_CORE_ESTIMATOR_H_
