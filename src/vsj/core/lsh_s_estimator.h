// LSH-S: sampling-weighted conditional probabilities (paper §4.3).
//
// Removes Ĵ_U's uniformity assumption: a uniform pair sample S is split into
// true pairs S_T and false pairs S_F at threshold τ, and the conditionals of
// Equation (1) are estimated by weighting the band collision curve with the
// *observed* similarity values:
//
//     P̂(H|T) = Σ_{(u,v)∈S_T} f(sim(u,v)) / |S_T|          [Eq. 5]
//     P̂(H|F) = Σ_{(u,v)∈S_F} f(sim(u,v)) / |S_F|          [Eq. 6]
//
// At high thresholds S_T is usually empty and the estimate becomes
// unreliable — the failure mode the paper reports in §6.2 and that motivates
// LSH-SS. When a stratum of the sample is empty this implementation falls
// back to the uniform-model conditional for that stratum and marks the
// result `guaranteed = false`.

#ifndef VSJ_CORE_LSH_S_ESTIMATOR_H_
#define VSJ_CORE_LSH_S_ESTIMATOR_H_

#include "vsj/core/collision_model.h"
#include "vsj/core/estimator.h"
#include "vsj/lsh/lsh_table.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Options of LSH-S.
struct LshSOptions {
  /// Pair sample size m; 0 means n.
  uint64_t sample_size = 0;
};

/// The LSH-S estimator of §4.3.
class LshSEstimator final : public JoinSizeEstimator {
 public:
  /// `table` must be built over `dataset` with functions of `family`; the
  /// join predicate uses `family.measure()`.
  LshSEstimator(DatasetView dataset, const LshFamily& family,
                const LshTable& table, LshSOptions options = {});

  EstimationResult Estimate(double tau, Rng& rng) const override;
  std::string name() const override { return "LSH-S"; }

 private:
  DatasetView dataset_;
  const LshFamily* family_;
  const LshTable* table_;
  CollisionModel model_;
  uint64_t sample_size_;
};

}  // namespace vsj

#endif  // VSJ_CORE_LSH_S_ESTIMATOR_H_
