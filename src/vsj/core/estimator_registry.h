// Name-based estimator construction, shared by the benches, examples and
// integration tests so every experiment configures algorithms identically.

#ifndef VSJ_CORE_ESTIMATOR_REGISTRY_H_
#define VSJ_CORE_ESTIMATOR_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "vsj/core/adaptive_sampling.h"
#include "vsj/core/cross_sampling.h"
#include "vsj/core/degree_sampling.h"
#include "vsj/core/estimator.h"
#include "vsj/core/lattice_counting.h"
#include "vsj/core/lsh_s_estimator.h"
#include "vsj/core/lsh_ss_estimator.h"
#include "vsj/core/random_pair_sampling.h"
#include "vsj/lsh/lsh_index.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Everything an estimator might need, with per-algorithm option blocks.
struct EstimatorContext {
  DatasetView dataset;
  /// Required by LSH-based estimators; estimators use table 0 of the index
  /// unless they are explicitly multi-table.
  const LshIndex* index = nullptr;
  SimilarityMeasure measure = SimilarityMeasure::kCosine;

  LshSsOptions lsh_ss;
  RandomPairSamplingOptions random_pair;
  CrossSamplingOptions cross;
  LshSOptions lsh_s;
  LatticeCountingOptions lattice;
  AdaptiveSamplingOptions adaptive;
  DegreeSamplingOptions degree;
};

/// Creates the estimator registered under `name`. Known names:
///   "LSH-SS", "LSH-SS(D)", "RS(pop)", "RS(cross)", "LSH-S", "J_U", "LC",
///   "Adaptive", "Bifocal", "LSH-SS(median)", "LSH-SS(vbucket)".
/// Aborts on unknown names or missing context pieces.
std::unique_ptr<JoinSizeEstimator> CreateEstimator(
    std::string_view name, const EstimatorContext& context);

/// The four algorithms of the paper's headline comparison (Figures 2/3).
std::vector<std::string> HeadlineEstimatorNames();

/// Every registered name.
std::vector<std::string> AllEstimatorNames();

}  // namespace vsj

#endif  // VSJ_CORE_ESTIMATOR_REGISTRY_H_
