// RS(cross): cross sampling (Haas et al., PODS 1993; paper §3.1).
//
// Sample ⌈√m⌉ records and evaluate *all* pairs among them, scaling the hit
// count by M / C(r, 2). Compared with RS(pop) it reuses each sampled record
// against every other, trading independence of the sampled pairs for fewer
// record fetches.

#ifndef VSJ_CORE_CROSS_SAMPLING_H_
#define VSJ_CORE_CROSS_SAMPLING_H_

#include <cstddef>

#include "vsj/core/estimator.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Options of RS(cross).
struct CrossSamplingOptions {
  /// Pair budget m; 0 means `sample_size_factor · n`. The number of sampled
  /// records is ⌈√m⌉.
  uint64_t sample_size = 0;
  double sample_size_factor = 1.5;
};

/// Cross sampling over a without-replacement record sample.
class CrossSampling final : public JoinSizeEstimator {
 public:
  CrossSampling(DatasetView dataset, SimilarityMeasure measure,
                CrossSamplingOptions options = {});

  EstimationResult Estimate(double tau, Rng& rng) const override;
  std::string name() const override { return "RS(cross)"; }

  /// Number of records drawn per estimate.
  size_t num_records() const { return num_records_; }

 private:
  DatasetView dataset_;
  SimilarityMeasure measure_;
  size_t num_records_;
};

}  // namespace vsj

#endif  // VSJ_CORE_CROSS_SAMPLING_H_
