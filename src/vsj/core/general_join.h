// Non-self (general) join estimation (paper Appendix B.2.2, Definition 5).
//
// Two collections U, V are hashed by the *same* g into tables D_g and E_g.
// Stratum H becomes {(u, v) : g(u) = g(v)} with
// N_H = Σ_{g(B_j) = g(C_i)} b_j · c_i; sampling from H draws a matched
// bucket pair with weight b_j · c_i and one member from each side. Stratum L
// is sampled by rejection on g(u) ≠ g(v). The estimator mirrors Algorithm 1.

#ifndef VSJ_CORE_GENERAL_JOIN_H_
#define VSJ_CORE_GENERAL_JOIN_H_

#include <memory>
#include <vector>

#include "vsj/core/estimator.h"
#include "vsj/core/lsh_ss_estimator.h"
#include "vsj/lsh/lsh_table.h"
#include "vsj/util/alias_table.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Options of the general-join LSH-SS (defaults use n = max(|U|, |V|)).
struct GeneralLshSsOptions {
  uint64_t sample_size_h = 0;  // 0 → n
  uint64_t sample_size_l = 0;  // 0 → n
  uint64_t delta = 0;          // 0 → log₂ n
  DampeningMode dampening = DampeningMode::kSafeLowerBound;
  double dampening_factor = 1.0;
};

/// LSH-SS for J = |{(u, v) ∈ U × V : sim(u, v) ≥ τ}| (ordered pairs).
class GeneralLshSsEstimator final : public JoinSizeEstimator {
 public:
  /// `left_table` / `right_table` must be built over `left` / `right` with
  /// the same family, k, and function offset (identical g).
  GeneralLshSsEstimator(DatasetView left, DatasetView right,
                        const LshTable& left_table,
                        const LshTable& right_table,
                        SimilarityMeasure measure,
                        GeneralLshSsOptions options = {});

  EstimationResult Estimate(double tau, Rng& rng) const override;
  std::string name() const override { return "LSH-SS(general)"; }

  /// N_H = Σ over matched buckets of b_j · c_i.
  uint64_t NumSameBucketPairs() const { return num_same_bucket_pairs_; }

  /// Total pairs |U| · |V|.
  uint64_t NumTotalPairs() const;

 private:
  struct MatchedBuckets {
    uint32_t left_bucket;
    uint32_t right_bucket;
  };

  DatasetView left_;
  DatasetView right_;
  const LshTable* left_table_;
  const LshTable* right_table_;
  SimilarityMeasure measure_;
  uint64_t sample_size_h_;
  uint64_t sample_size_l_;
  uint64_t delta_;
  DampeningMode dampening_;
  double dampening_factor_;
  uint64_t num_same_bucket_pairs_ = 0;
  std::vector<MatchedBuckets> matches_;
  std::unique_ptr<AliasTable> match_picker_;  // weight b_j · c_i
};

/// RS(pop) for general joins: uniform (u, v) ∈ U × V with replacement.
class GeneralRandomPairSampling final : public JoinSizeEstimator {
 public:
  GeneralRandomPairSampling(DatasetView left,
                            DatasetView right,
                            SimilarityMeasure measure,
                            uint64_t sample_size = 0);  // 0 → 1.5·max(n1,n2)

  EstimationResult Estimate(double tau, Rng& rng) const override;
  std::string name() const override { return "RS(pop,general)"; }

 private:
  DatasetView left_;
  DatasetView right_;
  SimilarityMeasure measure_;
  uint64_t sample_size_;
};

}  // namespace vsj

#endif  // VSJ_CORE_GENERAL_JOIN_H_
