#include "vsj/core/adaptive_sampling.h"

#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

AdaptiveSamplingOutcome RunAdaptiveSampling(
    uint64_t delta, uint64_t max_samples,
    const std::function<bool()>& sample_is_hit) {
  AdaptiveSamplingOutcome outcome;
  while (outcome.hits < delta && outcome.samples < max_samples) {
    if (sample_is_hit()) ++outcome.hits;
    ++outcome.samples;
  }
  outcome.reached_answer_threshold = outcome.hits >= delta;
  return outcome;
}

AdaptiveSamplingEstimator::AdaptiveSamplingEstimator(
    DatasetView dataset, SimilarityMeasure measure,
    AdaptiveSamplingOptions options)
    : dataset_(dataset), measure_(measure) {
  VSJ_CHECK(dataset.size() >= 2);
  const double n = static_cast<double>(dataset.size());
  delta_ = options.delta != 0
               ? options.delta
               : static_cast<uint64_t>(std::max(1.0, std::log2(n)));
  max_samples_ =
      options.max_samples != 0 ? options.max_samples : dataset.size();
}

EstimationResult AdaptiveSamplingEstimator::Estimate(double tau,
                                                     Rng& rng) const {
  const size_t n = dataset_.size();
  auto draw = [&]() {
    const auto u = static_cast<VectorId>(rng.Below(n));
    auto v = static_cast<VectorId>(rng.Below(n - 1));
    if (v >= u) ++v;
    return Similarity(measure_, dataset_[u], dataset_[v]) >= tau;
  };
  const AdaptiveSamplingOutcome outcome =
      RunAdaptiveSampling(delta_, max_samples_, draw);

  EstimationResult result;
  result.pairs_evaluated = outcome.samples;
  result.guaranteed = outcome.reached_answer_threshold;
  const double scale = static_cast<double>(dataset_.NumPairs()) /
                       static_cast<double>(outcome.samples);
  result.estimate = ClampEstimate(
      static_cast<double>(outcome.hits) * scale, dataset_.NumPairs());
  return result;
}

}  // namespace vsj
