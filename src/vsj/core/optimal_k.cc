#include "vsj/core/optimal_k.h"

#include <cmath>

#include "vsj/lsh/lsh_table.h"
#include "vsj/util/check.h"

namespace vsj {

double PrecisionFloor(double epsilon, double probability, size_t n) {
  VSJ_CHECK(epsilon > 0.0 && epsilon < 1.0);
  VSJ_CHECK(probability > 0.0 && probability < 1.0);
  VSJ_CHECK(n >= 2);
  // Chernoff: with m_H = n samples at hit rate α, the relative error of
  // Ĵ_H exceeds ε with probability ≤ 2·exp(−ε²·α·n/4). Solving
  // 2·exp(−ε²·ρ·n/4) = 1 − p for ρ:
  const double failure = 1.0 - probability;
  const double rho =
      4.0 * std::log(2.0 / failure) / (epsilon * epsilon *
                                       static_cast<double>(n));
  return std::min(rho, 1.0);
}

OptimalKResult FindOptimalK(DatasetView dataset,
                            const LshFamily& family, double tau, double rho,
                            Rng& rng, OptimalKOptions options) {
  VSJ_CHECK(options.min_k >= 1);
  VSJ_CHECK(options.min_k <= options.max_k);
  VSJ_CHECK(options.step >= 1);
  VSJ_CHECK(options.samples_per_k > 0);
  const SimilarityMeasure measure = family.measure();

  OptimalKResult result;
  for (uint32_t k = options.min_k; k <= options.max_k; k += options.step) {
    LshTable table(family, dataset, k);
    KCandidate candidate;
    candidate.k = k;
    candidate.same_bucket_pairs = table.NumSameBucketPairs();
    if (candidate.same_bucket_pairs > 0) {
      uint64_t hits = 0;
      for (uint64_t s = 0; s < options.samples_per_k; ++s) {
        const VectorPair pair = table.SampleSameBucketPair(rng);
        if (Similarity(measure, dataset[pair.first], dataset[pair.second]) >=
            tau) {
          ++hits;
        }
      }
      candidate.alpha = static_cast<double>(hits) /
                        static_cast<double>(options.samples_per_k);
    }
    result.probed.push_back(candidate);
    // α grows with k (larger k → more selective g); stop at the first
    // k that meets the floor — it is the minimum on the probed grid.
    if (result.best_k == 0 && candidate.alpha >= rho &&
        candidate.same_bucket_pairs > 0) {
      result.best_k = k;
      break;
    }
  }
  return result;
}

}  // namespace vsj
