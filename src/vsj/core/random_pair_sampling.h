// RS(pop): uniform random pair sampling (paper §3.1, first baseline).
//
// Draw m pairs of vectors uniformly at random with replacement from the
// M = C(n,2) population, count the pairs meeting τ, and scale by M/m. The
// estimator is unbiased but its relative error explodes when the selectivity
// J/M drops below ~1/m — exactly the high-threshold regime the paper targets.

#ifndef VSJ_CORE_RANDOM_PAIR_SAMPLING_H_
#define VSJ_CORE_RANDOM_PAIR_SAMPLING_H_

#include "vsj/core/estimator.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Options of RS(pop).
struct RandomPairSamplingOptions {
  /// Absolute sample size m; 0 means `sample_size_factor · n`.
  uint64_t sample_size = 0;
  /// The paper compares at m_R = 1.5 n ("roughly the same runtime").
  double sample_size_factor = 1.5;
};

/// Uniform with-replacement pair sampling over the cross product.
class RandomPairSampling final : public JoinSizeEstimator {
 public:
  RandomPairSampling(DatasetView dataset, SimilarityMeasure measure,
                     RandomPairSamplingOptions options = {});

  EstimationResult Estimate(double tau, Rng& rng) const override;
  std::string name() const override { return "RS(pop)"; }

  uint64_t sample_size() const { return sample_size_; }

 private:
  DatasetView dataset_;
  SimilarityMeasure measure_;
  uint64_t sample_size_;
};

}  // namespace vsj

#endif  // VSJ_CORE_RANDOM_PAIR_SAMPLING_H_
