// Collision-probability model of a k-function LSH band (paper §4.2, Fig. 1).
//
// For g = (h_1, ..., h_k), f(s) = p(s)^k is the probability that two vectors
// at similarity s share a bucket. The areas of Figure 1 and the conditional
// probabilities of Equations (2)/(3) are integrals of f. The paper derives
// closed forms for the idealized p(s) = s (Appendix A.1, Eqs. 8/9); this
// model evaluates the same quantities for *any* family curve by adaptive
// Simpson quadrature, so Charikar SimHash (p(s) = 1 − arccos(s)/π) is
// handled exactly rather than approximated by Def. 3.

#ifndef VSJ_CORE_COLLISION_MODEL_H_
#define VSJ_CORE_COLLISION_MODEL_H_

#include <cstdint>

#include "vsj/lsh/lsh_family.h"

namespace vsj {

/// Integrals and conditionals of f(s) = p(s)^k over s ∈ [0, 1].
class CollisionModel {
 public:
  CollisionModel(const LshFamily& family, uint32_t k);

  uint32_t k() const { return k_; }

  /// f(s) = p(s)^k.
  double BandProbability(double similarity) const;

  /// P(H ∩ F) = ∫_0^τ f(s) ds  (under the uniform-similarity model).
  double IntegralBelow(double tau) const;

  /// P(H ∩ T) = ∫_τ^1 f(s) ds.
  double IntegralAbove(double tau) const;

  /// P(H|T) = (1/(1−τ)) ∫_τ^1 f(s) ds; the τ → 1 limit is f(1). [Eq. 8]
  double ConditionalHGivenTrue(double tau) const;

  /// P(H|F) = (1/τ) ∫_0^τ f(s) ds; the τ → 0 limit is f(0). [Eq. 9]
  double ConditionalHGivenFalse(double tau) const;

  /// True when the family satisfies Definition 3 exactly (p(s) = s), in
  /// which case the paper's closed forms (Eq. 4) apply verbatim.
  bool IsIdentityCurve() const;

 private:
  const LshFamily* family_;
  uint32_t k_;
};

}  // namespace vsj

#endif  // VSJ_CORE_COLLISION_MODEL_H_
