#include "vsj/core/degree_sampling.h"

#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

DegreeSamplingEstimator::DegreeSamplingEstimator(
    DatasetView dataset, SimilarityMeasure measure,
    DegreeSamplingOptions options)
    : dataset_(dataset), measure_(measure) {
  VSJ_CHECK(dataset.size() >= 2);
  const double n = static_cast<double>(dataset.size());
  const auto sqrt_nlogn =
      static_cast<uint64_t>(std::ceil(std::sqrt(n * std::log2(n))));
  num_vertices_ =
      options.num_vertices != 0 ? options.num_vertices : sqrt_nlogn;
  coarse_probes_ = options.coarse_probes != 0
                       ? options.coarse_probes
                       : std::max<uint64_t>(1, sqrt_nlogn / 4);
  refined_probes_ = options.refined_probes != 0 ? options.refined_probes
                                                : 4 * coarse_probes_;
}

EstimationResult DegreeSamplingEstimator::Estimate(double tau,
                                                   Rng& rng) const {
  EstimationResult result;
  const size_t n = dataset_.size();
  const uint64_t total_pairs = dataset_.NumPairs();
  if (tau <= 0.0) {
    result.estimate = static_cast<double>(total_pairs);
    return result;
  }

  // Probe `probes` random partners of u; returns the hit count.
  auto probe = [&](VectorId u, uint64_t probes) {
    uint64_t hits = 0;
    for (uint64_t p = 0; p < probes; ++p) {
      auto v = static_cast<VectorId>(rng.Below(n - 1));
      if (v >= u) ++v;
      if (Similarity(measure_, dataset_[u], dataset_[v]) >= tau) {
        ++hits;
      }
    }
    result.pairs_evaluated += probes;
    return hits;
  };

  double degree_sum = 0.0;
  bool any_refined = false;
  for (uint64_t s = 0; s < num_vertices_; ++s) {
    const auto u = static_cast<VectorId>(rng.Below(n));
    const uint64_t coarse_hits = probe(u, coarse_probes_);
    if (coarse_hits == 0) continue;  // sparse vertex: contributes ≈ 0
    // Dense-looking vertex: refine with the longer focal length.
    any_refined = true;
    const uint64_t refined_hits = probe(u, refined_probes_);
    const double deg = static_cast<double>(coarse_hits + refined_hits) /
                       static_cast<double>(coarse_probes_ + refined_probes_) *
                       static_cast<double>(n - 1);
    degree_sum += deg;
  }

  const double scale =
      static_cast<double>(n) / static_cast<double>(num_vertices_);
  result.estimate = ClampEstimate(scale * degree_sum / 2.0, total_pairs);
  // With no dense vertex found the estimate is an unguaranteed zero — the
  // high-threshold failure mode the paper points out.
  result.guaranteed = any_refined;
  return result;
}

}  // namespace vsj
