// LC: Lattice Counting adapted to the VSJ problem (paper §3.2).
//
// Lee, Ng & Shim (PVLDB 2009) estimate SSJ size by analyzing the lattice of
// signature-position agreements of a Min-Hash signature database under a
// power-law similarity model. The 2011 paper treats LC as a black box whose
// only requirement is that signature agreement be proportional to similarity
// — i.e. an LSH signature database.
//
// This implementation follows that spirit:
//   1. Build sig(v) = (h_1(v), ..., h_k(v)) for every vector.
//   2. For t = 1..T, compute the *lattice count* of order t: the number of
//      pairs agreeing simultaneously on a t-subset of positions, averaged
//      over sampled subsets and counted exactly by hashing the projected
//      signatures (Σ_groups C(c, 2), honoring the min-support ξ). Its
//      expectation is the t-th moment Σ_pairs p(sim)^t of the per-function
//      collision probability over all pairs.
//   3. Fit a truncated power-law density g(x) = A·x^a of collision
//      probabilities on [p(0), 1] by moment matching (exact 1-D solve).
//   4. Report Ĵ(τ) = ∫_{p(τ)}^1 g(x) dx.
//
// As the paper observes (§6.2), binary cosine-LSH functions compress the
// collision-probability range to [0.5, 1], which conditions the fit poorly —
// LC systematically underestimates there. The benches reproduce exactly that.

#ifndef VSJ_CORE_LATTICE_COUNTING_H_
#define VSJ_CORE_LATTICE_COUNTING_H_

#include <memory>

#include "vsj/core/estimator.h"
#include "vsj/lsh/lsh_family.h"
#include "vsj/lsh/signature.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Options of LC.
struct LatticeCountingOptions {
  /// Signature length k; 0 means 20 (the paper's default table width).
  uint32_t signature_length = 0;
  /// Minimum support ξ: groups smaller than ξ vectors are ignored when
  /// counting agreements (the LC(ξ) parameter of §6.1).
  uint32_t min_support = 2;
  /// Highest moment order used by the fit (≥ 2).
  uint32_t num_moments = 3;
  /// Position subsets sampled per moment order (t = 1 uses all k).
  uint32_t subsets_per_order = 8;
};

/// The Lattice-Counting estimator. Signature construction happens once at
/// build time; Estimate() only re-evaluates the power-law fit integral.
class LatticeCountingEstimator final : public JoinSizeEstimator {
 public:
  LatticeCountingEstimator(DatasetView dataset,
                           const LshFamily& family,
                           LatticeCountingOptions options = {});

  EstimationResult Estimate(double tau, Rng& rng) const override;
  std::string name() const override { return "LC"; }

  /// The measured lattice moments M_t = Σ_pairs p(sim)^t, t = 1-based.
  const std::vector<double>& moments() const { return moments_; }

  /// Fitted exponent a and scale A of g(x) = A·x^a on [x_min, 1].
  double fitted_exponent() const { return exponent_; }
  double fitted_scale() const { return scale_; }

 private:
  void ComputeMoments(DatasetView dataset, const LshFamily& family,
                      const LatticeCountingOptions& options);
  void FitPowerLaw();

  uint64_t total_pairs_;
  double x_min_;  // p(0): smallest possible collision probability
  std::vector<double> moments_;
  double exponent_ = 0.0;
  double scale_ = 0.0;
  const LshFamily* family_;
};

}  // namespace vsj

#endif  // VSJ_CORE_LATTICE_COUNTING_H_
