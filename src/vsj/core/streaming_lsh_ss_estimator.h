// Streaming LSH-SS: Algorithm 1 run directly over a live DynamicLshIndex.
//
// The static LshSsEstimator is bound to an immutable LshTable covering the
// whole dataset; under churn the live subset changes and every stratum
// quantity (N_H, N_L, n) moves with it. This estimator re-reads those
// quantities from the dynamic index on every call, so a single instance
// stays valid across arbitrarily many Insert/Remove operations — the
// paper's "minimal addition to the existing LSH index" claim made good for
// an online index. It lifts the EstimateStratified logic that used to live
// in tests/integration/streaming_estimation_test.cc into a reusable core
// path (StreamingEstimationService is the other caller).
//
// Differences from the static algorithm, all forced by dynamism:
//   * defaults m_H = m_L = n and δ = log₂ n are recomputed per call from
//     the current live count, not frozen at construction;
//   * SampleL draws uniform live pairs through the index's live-id list
//     (the static table's rejection sampler assumes ids 0..n−1 are all
//     present) and rejects same-bucket pairs of the chosen table.

#ifndef VSJ_CORE_STREAMING_LSH_SS_ESTIMATOR_H_
#define VSJ_CORE_STREAMING_LSH_SS_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "vsj/core/estimator.h"
#include "vsj/core/stratified_sampling.h"
#include "vsj/lsh/dynamic_lsh_index.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Options of streaming LSH-SS; zero means "derive from the live count n
/// at call time" (m_H = m_L = n, δ = log₂ n), matching §5.1.
struct StreamingLshSsOptions {
  uint64_t sample_size_h = 0;
  uint64_t sample_size_l = 0;
  uint64_t delta = 0;
};

/// Flat per-table bucket-of arrays amortizing the SampleL index walk across
/// every trial of a batch. The rejection test `table.SameBucket(u, v)` costs
/// two hash-map lookups per drawn pair; with ~n draws per trial and T·R
/// trials per batch that dominates the SampleL walk. Build() exports each
/// table's membership once, after which the test is two array loads.
/// Equality on the arrays answers exactly SameBucket for live ids (live ids
/// are present in every table), so accept/reject decisions — and therefore
/// every RNG draw — are bit-identical to the uncontexted path.
///
/// Validity: the arrays snapshot the index's state at Build() time; any
/// Insert/Remove invalidates them. The service rebuilds per batch (its
/// mutations are serialized against batches).
struct StreamingSampleContext {
  /// Pre-fill for ids absent from a table. Two absent ids compare equal
  /// under it — indistinguishable from sharing a bucket — which SampleL
  /// never observes: it draws only live ids.
  static constexpr uint32_t kAbsentBucket = UINT32_MAX;

  std::vector<std::vector<uint32_t>> bucket_of;  // [table][id] -> bucket slot

  /// (Re)builds the arrays from the index's current membership. `id_bound`
  /// must exceed every live id (the backing dataset's size qualifies).
  void Build(const DynamicLshIndex& index, size_t id_bound);

  bool empty() const { return bucket_of.empty(); }
};

/// Algorithm 1 over the live subset of a DynamicLshIndex.
class StreamingLshSsEstimator final : public JoinSizeEstimator {
 public:
  /// `dataset` is the backing store the index's ids refer to; both must
  /// outlive the estimator. The index may mutate freely between calls (but
  /// not during one).
  StreamingLshSsEstimator(DatasetView dataset,
                          const DynamicLshIndex& index,
                          SimilarityMeasure measure,
                          StreamingLshSsOptions options = {});

  /// Estimates J(τ) over the current live set using table 0.
  EstimationResult Estimate(double tau, Rng& rng) const override;

  /// Same, stratifying by table `t` — callers with ℓ > 1 tables can spread
  /// independent trials across tables to decorrelate the stratification.
  ///
  /// `context`, when non-null and built, replaces the SameBucket hash-map
  /// rejection test with the context's flat arrays (same decisions, same
  /// draws — see StreamingSampleContext). `override_options`, when
  /// non-null, replaces the constructor options for this call only (zero
  /// fields still mean "derive from n") — how per-request sampling
  /// overrides reach a shared estimator without rebuilding it.
  EstimationResult EstimateWithTable(
      double tau, uint32_t t, Rng& rng,
      const StreamingSampleContext* context = nullptr,
      const StreamingLshSsOptions* override_options = nullptr) const;

  std::string name() const override;

 private:
  DatasetView dataset_;
  const DynamicLshIndex* index_;
  SimilarityMeasure measure_;
  StreamingLshSsOptions options_;
};

}  // namespace vsj

#endif  // VSJ_CORE_STREAMING_LSH_SS_ESTIMATOR_H_
