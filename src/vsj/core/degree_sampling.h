// Bifocal-style vertex/degree sampling (adapted from Ganguly, Gibbons,
// Matias & Silberschatz, SIGMOD 1996; discussed in paper §2).
//
// Bifocal sampling fights skew in equi-join size estimation by treating
// high-frequency ("dense") and low-frequency ("sparse") join values with
// separate procedures. The natural VSJ analogue works on the similarity
// graph: J = Σ_u deg(u) / 2 with deg(u) = |{v : sim(u,v) ≥ τ}|.
//
//   1. Sample s vertices; probe each with a coarse round of m₁ random
//      partners to estimate its degree.
//   2. Vertices that look dense (≥ 1 coarse hit) get a refined round of
//      m₂ » m₁ partner probes — the "second focal length".
//   3. Ĵ = (n / 2s) Σ_u d̂eg(u).
//
// As the paper argues, the equi-join guarantee (good estimates for join
// sizes Ω(n log n)) does not transfer: at high thresholds every coarse
// round comes back empty and the estimator collapses to 0. The bench suite
// uses this estimator to demonstrate exactly that failure mode.

#ifndef VSJ_CORE_DEGREE_SAMPLING_H_
#define VSJ_CORE_DEGREE_SAMPLING_H_

#include "vsj/core/estimator.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Options of the bifocal-style estimator. Defaults follow the √(n log n)
/// budgets of the original scheme.
struct DegreeSamplingOptions {
  /// Vertex sample size s; 0 means ⌈√(n·log₂ n)⌉.
  uint64_t num_vertices = 0;
  /// Coarse partner probes m₁ per vertex; 0 means ⌈√(n·log₂ n)⌉ / 4.
  uint64_t coarse_probes = 0;
  /// Refined partner probes m₂ for dense-looking vertices; 0 means 4·m₁.
  uint64_t refined_probes = 0;
};

/// The adapted bifocal estimator.
class DegreeSamplingEstimator final : public JoinSizeEstimator {
 public:
  DegreeSamplingEstimator(DatasetView dataset,
                          SimilarityMeasure measure,
                          DegreeSamplingOptions options = {});

  EstimationResult Estimate(double tau, Rng& rng) const override;
  std::string name() const override { return "Bifocal"; }

  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t coarse_probes() const { return coarse_probes_; }
  uint64_t refined_probes() const { return refined_probes_; }

 private:
  DatasetView dataset_;
  SimilarityMeasure measure_;
  uint64_t num_vertices_;
  uint64_t coarse_probes_;
  uint64_t refined_probes_;
};

}  // namespace vsj

#endif  // VSJ_CORE_DEGREE_SAMPLING_H_
