// Ĵ_U: the estimator with the uniformity assumption (paper §4.2, Eq. 4).
//
// From Bayes' rule, N_H = N_T·P(H|T) + N_F·P(H|F), so
//
//     Ĵ_U = (N_H − M·P̂(H|F)) / (P̂(H|T) − P̂(H|F)).            [Eq. 1]
//
// Assuming pair similarities are uniform on [0, 1], the conditionals are the
// normalized areas of Figure 1; for the idealized f(s) = s^k this collapses
// to the closed form
//
//     Ĵ_U = ((k+1)·N_H − τ^k·M) / Σ_{i=0}^{k-1} τ^i.           [Eq. 4]
//
// This estimator samples nothing: it reads N_H off the bucket counts. Its
// bias is exactly the uniformity assumption, which real corpora violate
// badly — it is included as the stepping stone to LSH-S, as in the paper.

#ifndef VSJ_CORE_UNIFORMITY_ESTIMATOR_H_
#define VSJ_CORE_UNIFORMITY_ESTIMATOR_H_

#include "vsj/core/collision_model.h"
#include "vsj/core/estimator.h"
#include "vsj/lsh/lsh_table.h"

namespace vsj {

/// Sampling-free estimator under the uniform-similarity assumption.
class UniformityEstimator final : public JoinSizeEstimator {
 public:
  /// `table` must have been built with `k` functions of `family`.
  UniformityEstimator(const LshTable& table, const LshFamily& family);

  EstimationResult Estimate(double tau, Rng& rng) const override;
  std::string name() const override { return "J_U"; }

  /// The closed form of Eq. 4; only meaningful for identity-curve families
  /// (exposed separately for tests and for the paper's formula).
  static double ClosedFormIdealized(uint64_t num_same_bucket_pairs,
                                    uint64_t total_pairs, uint32_t k,
                                    double tau);

 private:
  const LshTable* table_;
  CollisionModel model_;
};

}  // namespace vsj

#endif  // VSJ_CORE_UNIFORMITY_ESTIMATOR_H_
