// LSH-SS: stratified sampling over an LSH table (paper §5, Algorithm 1 —
// the paper's main contribution).
//
// The table partitions the M pairs into stratum H (same bucket) and stratum
// L (different buckets); Ĵ = Ĵ_H + Ĵ_L (Eq. 7).
//
//   SampleH — uniform random sampling in H: draw a bucket with weight
//     C(b_j, 2), then a uniform pair inside it; Ĵ_H = n_H · N_H / m_H.
//     P(T|H) stays ≳ log n / n even at τ = 0.9 (Table 1), so m_H = n
//     samples give the Chernoff guarantee of Lemma 1.
//
//   SampleL — adaptive sampling in L: draw uniform cross-bucket pairs until
//     δ true pairs are found (reliable: Ĵ_L = n_L · N_L / i) or the budget
//     m_L is exhausted. In the latter case the scaled-up estimate is NOT
//     trustworthy and the algorithm returns a *safe lower bound* Ĵ_L = n_L
//     (paper's novelty), or optionally a dampened scale-up
//     Ĵ_L = n_L · c_s · N_L / m_L — the LSH-SS(D) variant of Theorem 2.
//
// Defaults follow §5.1: m_H = m_L = n, δ = log₂ n, c_s = n_L/δ for D.

#ifndef VSJ_CORE_LSH_SS_ESTIMATOR_H_
#define VSJ_CORE_LSH_SS_ESTIMATOR_H_

#include "vsj/core/estimator.h"
#include "vsj/core/stratified_sampling.h"
#include "vsj/lsh/lsh_table.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Options of LSH-SS (DampeningMode lives in stratified_sampling.h).
struct LshSsOptions {
  /// Sample size m_H for stratum H; 0 means n.
  uint64_t sample_size_h = 0;
  /// Maximum sample size m_L for stratum L; 0 means n.
  uint64_t sample_size_l = 0;
  /// Answer-size threshold δ; 0 means log₂ n.
  uint64_t delta = 0;
  DampeningMode dampening = DampeningMode::kSafeLowerBound;
  /// c_s for DampeningMode::kFixedFactor (must be in (0, 1]).
  double dampening_factor = 1.0;
};

/// Algorithm 1 (LSH-SS / LSH-SS(D)).
class LshSsEstimator final : public JoinSizeEstimator {
 public:
  /// `table` must be built over `dataset`; the join predicate is `measure`.
  LshSsEstimator(DatasetView dataset, const LshTable& table,
                 SimilarityMeasure measure, LshSsOptions options = {});

  EstimationResult Estimate(double tau, Rng& rng) const override;
  std::string name() const override;

  uint64_t sample_size_h() const { return sample_size_h_; }
  uint64_t sample_size_l() const { return sample_size_l_; }
  uint64_t delta() const { return delta_; }

 private:
  DatasetView dataset_;
  const LshTable* table_;
  SimilarityMeasure measure_;
  uint64_t sample_size_h_;
  uint64_t sample_size_l_;
  uint64_t delta_;
  DampeningMode dampening_;
  double dampening_factor_;
};

}  // namespace vsj

#endif  // VSJ_CORE_LSH_SS_ESTIMATOR_H_
