// Median estimator over multiple LSH tables (paper Appendix B.2.1).
//
// Runs LSH-SS independently against each of the ℓ tables of an LSH index and
// returns the median of the ℓ estimates. By the standard Chernoff argument,
// if each per-table estimate is within (1+ε)J with probability ≥ 1 − 2/n,
// the median deviates with probability at most 2^(−ℓ/2).

#ifndef VSJ_CORE_MEDIAN_ESTIMATOR_H_
#define VSJ_CORE_MEDIAN_ESTIMATOR_H_

#include <memory>
#include <vector>

#include "vsj/core/estimator.h"
#include "vsj/core/lsh_ss_estimator.h"
#include "vsj/lsh/lsh_index.h"

namespace vsj {

/// Median of per-table LSH-SS estimates.
class MedianEstimator final : public JoinSizeEstimator {
 public:
  /// Builds one LSH-SS estimator per table of `index`. `options` applies to
  /// every per-table estimator; the per-table sample size defaults are
  /// unchanged, so the total sample budget grows by a factor of ℓ — pass
  /// explicit sizes to split a fixed budget (App. B.2.1 discussion).
  MedianEstimator(DatasetView dataset, const LshIndex& index,
                  SimilarityMeasure measure, LshSsOptions options = {});

  EstimationResult Estimate(double tau, Rng& rng) const override;
  std::string name() const override { return "LSH-SS(median)"; }

  uint32_t num_tables() const {
    return static_cast<uint32_t>(per_table_.size());
  }

 private:
  std::vector<std::unique_ptr<LshSsEstimator>> per_table_;
};

}  // namespace vsj

#endif  // VSJ_CORE_MEDIAN_ESTIMATOR_H_
