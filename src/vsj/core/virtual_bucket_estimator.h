// Virtual-bucket estimator over multiple LSH tables (paper Appendix B.2.1).
//
// A pair is "in the same (virtual) bucket" iff it shares a bucket in ANY of
// the ℓ tables, which relaxes an overly selective g (large k): stratum H
// becomes the union ∪_t SH_t, capturing more true pairs. Algorithm 1 then
// runs unchanged against the virtual strata:
//   * N_H is computed exactly by deduplicating the same-bucket pairs of all
//     tables (their total count is Σ_t N_H^t, small by LSH design).
//   * Uniform sampling from the union uses multiplicity rejection: draw a
//     table ∝ N_H^t, a pair within it, and accept with probability
//     1/multiplicity(pair) where multiplicity counts the tables in which the
//     pair shares a bucket.

#ifndef VSJ_CORE_VIRTUAL_BUCKET_ESTIMATOR_H_
#define VSJ_CORE_VIRTUAL_BUCKET_ESTIMATOR_H_

#include <memory>
#include <vector>

#include "vsj/core/estimator.h"
#include "vsj/core/lsh_ss_estimator.h"
#include "vsj/lsh/lsh_index.h"
#include "vsj/util/alias_table.h"
#include "vsj/vector/similarity.h"

namespace vsj {

/// LSH-SS over virtual buckets (union of per-table strata H).
class VirtualBucketEstimator final : public JoinSizeEstimator {
 public:
  VirtualBucketEstimator(DatasetView dataset, const LshIndex& index,
                         SimilarityMeasure measure, LshSsOptions options = {});

  EstimationResult Estimate(double tau, Rng& rng) const override;
  std::string name() const override { return "LSH-SS(vbucket)"; }

  /// |∪_t SH_t|: the exact virtual stratum-H size.
  uint64_t NumVirtualSameBucketPairs() const { return num_virtual_pairs_; }

 private:
  VectorPair SampleVirtualPair(Rng& rng) const;
  uint32_t Multiplicity(VectorId u, VectorId v) const;

  DatasetView dataset_;
  const LshIndex* index_;
  SimilarityMeasure measure_;
  uint64_t sample_size_h_;
  uint64_t sample_size_l_;
  uint64_t delta_;
  DampeningMode dampening_;
  double dampening_factor_;
  uint64_t num_virtual_pairs_ = 0;
  std::unique_ptr<AliasTable> table_picker_;  // weight N_H^t per table
};

}  // namespace vsj

#endif  // VSJ_CORE_VIRTUAL_BUCKET_ESTIMATOR_H_
