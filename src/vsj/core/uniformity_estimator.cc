#include "vsj/core/uniformity_estimator.h"

#include <cmath>

#include "vsj/util/check.h"

namespace vsj {

UniformityEstimator::UniformityEstimator(const LshTable& table,
                                         const LshFamily& family)
    : table_(&table), model_(family, table.k()) {}

EstimationResult UniformityEstimator::Estimate(double tau, Rng& rng) const {
  (void)rng;  // deterministic: no sampling involved
  EstimationResult result;
  const uint64_t n = table_->num_vectors();
  const uint64_t total_pairs = n * (n - 1) / 2;
  if (tau <= 0.0) {
    result.estimate = static_cast<double>(total_pairs);
    return result;
  }

  const double p_h_given_t = model_.ConditionalHGivenTrue(tau);
  const double p_h_given_f = model_.ConditionalHGivenFalse(tau);
  const double denom = p_h_given_t - p_h_given_f;
  const double n_h = static_cast<double>(table_->NumSameBucketPairs());
  const double m = static_cast<double>(total_pairs);
  if (denom <= 0.0) {
    result.guaranteed = false;
    result.estimate = 0.0;
    return result;
  }
  result.estimate = ClampEstimate((n_h - m * p_h_given_f) / denom,
                                  total_pairs);
  return result;
}

double UniformityEstimator::ClosedFormIdealized(
    uint64_t num_same_bucket_pairs, uint64_t total_pairs, uint32_t k,
    double tau) {
  VSJ_CHECK(k > 0);
  // Σ_{i=0}^{k-1} τ^i
  double geo = 0.0;
  double power = 1.0;
  for (uint32_t i = 0; i < k; ++i) {
    geo += power;
    power *= tau;
  }
  // After the loop `power` is τ^k.
  return ((k + 1.0) * static_cast<double>(num_same_bucket_pairs) -
          power * static_cast<double>(total_pairs)) /
         geo;
}

}  // namespace vsj
