#include "vsj/lsh/signature.h"

#include "vsj/util/check.h"

namespace vsj {

SignatureDatabase::SignatureDatabase(const LshFamily& family,
                                     DatasetView dataset, uint32_t k,
                                     uint32_t function_offset)
    : k_(k) {
  VSJ_CHECK(k > 0);
  values_.resize(static_cast<size_t>(dataset.size()) * k);
  HashScratch scratch;
  for (VectorId id = 0; id < dataset.size(); ++id) {
    family.HashRange(dataset[id], function_offset, k,
                     values_.data() + static_cast<size_t>(id) * k, scratch);
  }
}

uint32_t SignatureDatabase::MatchCount(VectorId a, VectorId b) const {
  auto sa = Of(a);
  auto sb = Of(b);
  uint32_t matches = 0;
  for (uint32_t j = 0; j < k_; ++j) matches += sa[j] == sb[j] ? 1 : 0;
  return matches;
}

}  // namespace vsj
