#include "vsj/lsh/bucket_grouper.h"

#include <algorithm>
#include <array>
#include <utility>

namespace vsj {

namespace {

struct KeyedId {
  uint64_t key;
  VectorId id;
};

/// Stable LSD radix sort of `items` by key, least-significant byte first.
/// Byte passes where all keys agree are skipped (cheap detection from the
/// counting pass); with hash-random keys all 8 passes usually run.
void RadixSortByKey(std::vector<KeyedId>& items) {
  const size_t n = items.size();
  if (n < 2) return;
  std::vector<KeyedId> buffer(n);
  KeyedId* src = items.data();
  KeyedId* dst = buffer.data();
  bool swapped = false;
  for (uint32_t pass = 0; pass < 8; ++pass) {
    const uint32_t shift = pass * 8;
    std::array<uint32_t, 256> count{};
    for (size_t i = 0; i < n; ++i) {
      ++count[(src[i].key >> shift) & 0xff];
    }
    if (std::any_of(count.begin(), count.end(),
                    [n](uint32_t c) { return c == n; })) {
      continue;  // all keys share this byte; the pass is the identity
    }
    uint32_t offset = 0;
    std::array<uint32_t, 256> start;
    for (size_t b = 0; b < 256; ++b) {
      start[b] = offset;
      offset += count[b];
    }
    for (size_t i = 0; i < n; ++i) {
      dst[start[(src[i].key >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
    swapped = !swapped;
  }
  if (swapped) items.swap(buffer);
}

}  // namespace

BucketGrouping GroupByBucketKey(const std::vector<uint64_t>& keys) {
  const size_t n = keys.size();
  BucketGrouping grouping;
  grouping.bucket_of.resize(n);
  grouping.members.resize(n);

  std::vector<KeyedId> sorted(n);
  for (size_t id = 0; id < n; ++id) {
    sorted[id] = KeyedId{keys[id], static_cast<VectorId>(id)};
  }
  RadixSortByKey(sorted);

  // Runs of equal key = buckets. The sort is stable over an ascending-id
  // input, so run[0].id is the key's first occurrence; ordering runs by it
  // reproduces the first-occurrence bucket indices of the map-based build.
  struct Run {
    VectorId first_id;
    uint32_t start;
    uint32_t length;
  };
  std::vector<Run> runs;
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && sorted[j].key == sorted[i].key) ++j;
    runs.push_back(Run{sorted[i].id, static_cast<uint32_t>(i),
                       static_cast<uint32_t>(j - i)});
    i = j;
  }
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.first_id < b.first_id; });

  grouping.offsets.reserve(runs.size() + 1);
  grouping.bucket_keys.reserve(runs.size());
  grouping.offsets.push_back(0);
  uint32_t out = 0;
  for (size_t b = 0; b < runs.size(); ++b) {
    const Run& run = runs[b];
    grouping.bucket_keys.push_back(sorted[run.start].key);
    for (uint32_t i = 0; i < run.length; ++i) {
      const VectorId id = sorted[run.start + i].id;
      grouping.members[out++] = id;
      grouping.bucket_of[id] = static_cast<uint32_t>(b);
    }
    grouping.offsets.push_back(out);
  }
  return grouping;
}

}  // namespace vsj
