// Dynamic LSH table: the bucket-count extension of §4.1.1 under inserts and
// deletes.
//
// The paper stresses that LSH-SS "only needs minimal addition to the
// existing LSH index"; production LSH indexes are dynamic (documents arrive
// and expire), so the estimator-facing quantities must stay maintainable
// online. This table keeps, under Insert/Remove:
//   * bucket membership with O(1) same-bucket tests,
//   * N_H = Σ C(b_j, 2) incrementally,
//   * weighted bucket sampling through a Fenwick tree over the pair
//     weights C(b_j, 2) — O(log n) per update and per draw, replacing the
//     static table's O(n) alias rebuild.
//
// Storage: bucket members live in one arena (member_arena_) with
// per-bucket {offset, size, capacity} slots. Buckets keep geometric
// capacity slack, so an insert is usually one store into reserved space; a
// full bucket relocates to the arena tail with doubled capacity, and the
// arena compacts (offsets move, slot order and member order do not) once
// relocation garbage exceeds the live footprint. Bucket slot indices and
// within-bucket member order — everything ReplayOrder captures — evolve
// exactly as they did with per-bucket vectors: slots append on first key
// sighting and persist through emptiness, members push at the tail and
// remove by swap-pop.

#ifndef VSJ_LSH_DYNAMIC_LSH_TABLE_H_
#define VSJ_LSH_DYNAMIC_LSH_TABLE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "vsj/lsh/lsh_family.h"
#include "vsj/lsh/lsh_table.h"
#include "vsj/util/fenwick_tree.h"
#include "vsj/util/rng.h"

namespace vsj {

/// Mutable LSH table with bucket counts and O(log n) stratum-H sampling.
class DynamicLshTable {
 public:
  /// `family` must outlive the table; hash functions
  /// [function_offset, function_offset + k) are used.
  DynamicLshTable(const LshFamily& family, uint32_t k,
                  uint32_t function_offset = 0);

  uint32_t k() const { return k_; }
  size_t num_vectors() const { return members_.size(); }
  size_t num_buckets() const { return num_nonempty_buckets_; }

  /// Inserts vector `id`, hashing through `scratch` (the hot path; the
  /// scratch may carry a sealed projection cache). `id` must not be
  /// present.
  void Insert(VectorId id, VectorRef vector, HashScratch& scratch);

  /// Scratch-allocating overload (cold paths, tests).
  void Insert(VectorId id, VectorRef vector);

  /// Removes vector `id`; it must be present.
  void Remove(VectorId id);

  bool Contains(VectorId id) const { return members_.count(id) > 0; }

  /// True iff both vectors are present and share a bucket.
  bool SameBucket(VectorId u, VectorId v) const;

  /// Writes the bucket slot of every present id into `out[id]`; entries of
  /// absent ids are left untouched (callers pre-fill a sentinel). One flat
  /// O(n) export replaces the two hash-map lookups SameBucket pays per
  /// rejection test — the amortization behind the batched SampleL walk:
  /// bucket equality on the exported array answers exactly SameBucket for
  /// any two present ids. `out.size()` must exceed every present id.
  void ExportBucketOf(std::span<uint32_t> out) const {
    for (const auto& [id, membership] : members_) {
      out[id] = membership.bucket;
    }
  }

  /// N_H over the currently present vectors.
  uint64_t NumSameBucketPairs() const { return num_same_bucket_pairs_; }

  /// N_L = C(n, 2) − N_H over present vectors.
  uint64_t NumCrossBucketPairs() const;

  /// Uniform random pair from stratum H. Requires N_H > 0.
  VectorPair SampleSameBucketPair(Rng& rng) const;

  /// Total Fenwick weight Σ C(b_j, 2); equals NumSameBucketPairs() whenever
  /// the incremental maintenance is consistent (asserted by the churn test).
  double PairWeightTotal() const { return pair_weights_.Total(); }

  /// Snapshot support: an insertion order that, replayed through Insert on
  /// an empty table, reproduces this table's *sampling state* exactly —
  /// the present ids concatenated bucket-by-bucket in slot order, members
  /// in their current within-bucket order. Replay recreates the non-empty
  /// buckets in the same relative slot order with identical member arrays;
  /// empty historical bucket slots are dropped, which SampleSameBucketPair
  /// cannot observe (zero-weight slots never shift the Fenwick descent).
  std::vector<VectorId> ReplayOrder() const;

 private:
  struct Membership {
    uint32_t bucket;
    uint32_t position;  // index within the bucket's member list
  };

  /// Arena slot of one bucket: members at
  /// member_arena_[offset .. offset + size), reserved space to
  /// offset + capacity.
  struct BucketSlot {
    uint32_t offset;
    uint32_t size;
    uint32_t capacity;
  };

  uint64_t BucketKeyFor(VectorRef vector, HashScratch& scratch) const;

  /// The current members of bucket `b` (O(1); no per-bucket vector).
  std::span<const VectorId> BucketMembers(uint32_t b) const {
    const BucketSlot& slot = slots_[b];
    return {member_arena_.data() + slot.offset, slot.size};
  }

  /// Relocates bucket `b` to the arena tail with doubled capacity.
  void GrowBucket(uint32_t b);

  /// Compacts when relocation garbage + removal slack dominate the live
  /// members (O(1) trigger; see the .cc for the bound). Only called from
  /// mutation tails — never while a member write is pending.
  void MaybeCompactArena();

  /// Rewrites the arena slot-by-slot, dropping relocation garbage and
  /// trimming each bucket's capacity to the next power of two of its
  /// current size. Offsets and capacities change; slot indices and member
  /// order do not.
  void CompactArena();

  const LshFamily* family_;
  uint32_t k_;
  uint32_t function_offset_;
  std::vector<BucketSlot> slots_;  // index = bucket id, append-only
  std::vector<VectorId> member_arena_;
  std::unordered_map<uint64_t, uint32_t> key_to_bucket_;
  std::unordered_map<VectorId, Membership> members_;
  FenwickTree pair_weights_;  // slot per bucket, weight C(b, 2)
  uint64_t num_same_bucket_pairs_ = 0;
  size_t num_nonempty_buckets_ = 0;
};

}  // namespace vsj

#endif  // VSJ_LSH_DYNAMIC_LSH_TABLE_H_
