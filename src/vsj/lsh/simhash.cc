#include "vsj/lsh/simhash.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "vsj/util/hash.h"

namespace vsj {

SimHashFamily::SimHashFamily(uint64_t seed) : seed_(Mix64(seed)) {}

void SimHashFamily::HashRange(VectorRef v, uint32_t function_offset,
                              uint32_t k, uint64_t* out) const {
  // One pass over the features, k running projections. This is the build
  // hot path: each (feature, function) pair costs one hash-derived Gaussian.
  std::vector<double> projections(k, 0.0);
  std::vector<uint64_t> fn_seeds(k);
  for (uint32_t j = 0; j < k; ++j) {
    fn_seeds[j] = HashCombine(seed_, function_offset + j);
  }
  for (const Feature f : v) {
    for (uint32_t j = 0; j < k; ++j) {
      projections[j] += f.weight * GaussianFromHash(f.dim, fn_seeds[j]);
    }
  }
  for (uint32_t j = 0; j < k; ++j) out[j] = projections[j] >= 0.0 ? 1 : 0;
}

double SimHashFamily::CollisionProbability(double similarity) const {
  const double s = std::clamp(similarity, -1.0, 1.0);
  return 1.0 - std::acos(s) / M_PI;
}

}  // namespace vsj
