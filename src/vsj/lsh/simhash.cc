#include "vsj/lsh/simhash.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "vsj/lsh/gaussian_projection_cache.h"
#include "vsj/lsh/simhash_kernel.h"
#include "vsj/obs/obs.h"
#include "vsj/util/hash.h"

namespace vsj {

SimHashFamily::SimHashFamily(uint64_t seed) : seed_(Mix64(seed)) {}

void SimHashFamily::DoHashRange(VectorRef v, uint32_t function_offset,
                                uint32_t k, uint64_t* out,
                                HashScratch& scratch) const {
  // One pass over the features, k running projections — lane j of the
  // kernels owns function (function_offset + j), so accumulation order per
  // function is the scalar order at every SIMD width.
  scratch.projections.assign(k, 0.0);
  double* projections = scratch.projections.data();
  scratch.lane_seeds.resize(k);
  uint64_t* fn_seeds = scratch.lane_seeds.data();
  for (uint32_t j = 0; j < k; ++j) {
    fn_seeds[j] = HashCombine(seed_, function_offset + j);
  }

  // A cache is usable only if it was built by this family (tag = mixed
  // seed) and covers the requested function range; rows hold exactly the
  // GaussianFromHash values, so cached and uncached hashes are bit-equal.
  const GaussianProjectionCache* cache = scratch.gaussian_cache;
  if (cache != nullptr &&
      (cache->family_tag() != seed_ ||
       static_cast<uint64_t>(function_offset) + k > cache->num_functions())) {
    cache = nullptr;
  }

  // Cache hit accounting is local and flushed in bulk after the loop —
  // the per-feature path carries no atomics.
  uint64_t cache_misses = 0;
  for (const Feature f : v) {
    const double* row = cache != nullptr ? cache->Row(f.dim) : nullptr;
    if (row != nullptr) {
      AccumulateProjectionLanes(row + function_offset,
                                static_cast<double>(f.weight), projections,
                                k);
    } else {
      ++cache_misses;
      for (uint32_t j = 0; j < k; ++j) {
        projections[j] += f.weight * GaussianFromHash(f.dim, fn_seeds[j]);
      }
    }
  }
  VSJ_COUNTER_ADD("lsh.projcache.lookups", v.size());
  if (cache_misses > 0) VSJ_COUNTER_ADD("lsh.projcache.misses", cache_misses);
  for (uint32_t j = 0; j < k; ++j) out[j] = projections[j] >= 0.0 ? 1 : 0;
}

std::unique_ptr<GaussianProjectionCache> SimHashFamily::MakeProjectionCache(
    DatasetView dataset, uint32_t num_functions, ThreadPool* pool) const {
  std::vector<uint64_t> fn_seeds(num_functions);
  for (uint32_t f = 0; f < num_functions; ++f) {
    fn_seeds[f] = HashCombine(seed_, f);
  }
  auto cache =
      std::make_unique<GaussianProjectionCache>(seed_, std::move(fn_seeds));
  for (VectorRef v : dataset) cache->AddDims(v);
  cache->Fill(pool);
  return cache;
}

double SimHashFamily::CollisionProbability(double similarity) const {
  const double s = std::clamp(similarity, -1.0, 1.0);
  return 1.0 - std::acos(s) / M_PI;
}

}  // namespace vsj
