// Sort-based grouping of precomputed bucket keys into the CSR bucket arena
// of LshTable — the build-side replacement for unordered_map insertion.
//
// Hash-map grouping walks pointer-chased nodes and rehashes on growth; for
// a build where the keys are already materialized, a radix sort of
// (key, id) pairs followed by one run scan produces the same partition from
// contiguous memory. Determinism contract (golden fixtures depend on it):
//
//   * bucket indices are assigned in order of each key's FIRST occurrence
//     in id order (exactly the order unordered_map try_emplace assigned);
//   * members within a bucket are in ascending id order (exactly the order
//     push_back produced, since ids are scanned 0..n−1).
//
// The LSD radix sort is stable, so ids stay ascending within equal keys;
// the run list is then re-sorted by first member id to recover
// first-occurrence bucket order.

#ifndef VSJ_LSH_BUCKET_GROUPER_H_
#define VSJ_LSH_BUCKET_GROUPER_H_

#include <cstdint>
#include <vector>

#include "vsj/vector/vector_ref.h"

namespace vsj {

/// CSR partition of ids 0..n−1 by bucket key.
struct BucketGrouping {
  /// Prefix offsets into `members`; bucket b spans
  /// [offsets[b], offsets[b+1]). Size num_buckets + 1.
  std::vector<uint32_t> offsets;
  /// All n ids, grouped by bucket, ascending within each bucket.
  std::vector<VectorId> members;
  /// Bucket key per bucket, in bucket-index order.
  std::vector<uint64_t> bucket_keys;
  /// Bucket index per id.
  std::vector<uint32_t> bucket_of;
};

/// Groups ids 0..keys.size()−1 by keys[id] under the determinism contract
/// above.
BucketGrouping GroupByBucketKey(const std::vector<uint64_t>& keys);

}  // namespace vsj

#endif  // VSJ_LSH_BUCKET_GROUPER_H_
