#include "vsj/lsh/minhash.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "vsj/lsh/simhash_kernel.h"
#include "vsj/util/check.h"
#include "vsj/util/hash.h"
#include "vsj/vector/set_embedding.h"

namespace vsj {

namespace {

inline uint64_t ElementKey(DimId dim, uint32_t copy) {
  return (static_cast<uint64_t>(dim) << 20) ^ copy;
}

}  // namespace

MinHashFamily::MinHashFamily(uint64_t seed, double resolution)
    : seed_(Mix64(seed)), resolution_(resolution) {
  VSJ_CHECK(resolution > 0.0);
}

void MinHashFamily::DoHashRange(VectorRef v, uint32_t function_offset,
                                uint32_t k, uint64_t* out,
                                HashScratch& scratch) const {
  scratch.lane_seeds.resize(k);
  uint64_t* terms = scratch.lane_seeds.data();
  for (uint32_t j = 0; j < k; ++j) {
    // term_j = fn_seed_j·γ + 1 reduces HashCombine(key, fn_seed_j) to
    // Mix64(Mix64(key) + term_j) inside the lane fold.
    terms[j] = HashCombine(seed_, function_offset + j) * kHashCombineGamma + 1;
  }
  std::fill(out, out + k, std::numeric_limits<uint64_t>::max());
  // The embedding buffer is computed once per vector and reused across the
  // k functions (and across calls, via the caller's scratch).
  EmbedAsSet(v, resolution_, &scratch.embed);
  for (const SetElement& e : scratch.embed) {
    MinFoldLanes(Mix64(ElementKey(e.dim, e.copy)), terms, out, k);
  }
}

double MinHashFamily::CollisionProbability(double similarity) const {
  return std::clamp(similarity, 0.0, 1.0);
}

}  // namespace vsj
