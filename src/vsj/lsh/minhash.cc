#include "vsj/lsh/minhash.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "vsj/util/check.h"
#include "vsj/util/hash.h"
#include "vsj/vector/set_embedding.h"

namespace vsj {

namespace {

inline uint64_t ElementKey(DimId dim, uint32_t copy) {
  return (static_cast<uint64_t>(dim) << 20) ^ copy;
}

}  // namespace

MinHashFamily::MinHashFamily(uint64_t seed, double resolution)
    : seed_(Mix64(seed)), resolution_(resolution) {
  VSJ_CHECK(resolution > 0.0);
}

void MinHashFamily::HashRange(VectorRef v, uint32_t function_offset,
                              uint32_t k, uint64_t* out) const {
  std::vector<uint64_t> fn_seeds(k);
  for (uint32_t j = 0; j < k; ++j) {
    fn_seeds[j] = HashCombine(seed_, function_offset + j);
  }
  std::fill(out, out + k, std::numeric_limits<uint64_t>::max());
  for (const SetElement& e : EmbedAsSet(v, resolution_)) {
    const uint64_t key = ElementKey(e.dim, e.copy);
    for (uint32_t j = 0; j < k; ++j) {
      out[j] = std::min(out[j], HashCombine(key, fn_seeds[j]));
    }
  }
}

double MinHashFamily::CollisionProbability(double similarity) const {
  return std::clamp(similarity, 0.0, 1.0);
}

}  // namespace vsj
