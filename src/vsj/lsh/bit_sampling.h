// Bit sampling: the LSH family for Hamming distance (Indyk & Motwani,
// STOC 1998) — one of the families the paper lists in §4.1.
//
//   h_i(v) = v[d_i]  for a uniformly random coordinate d_i of {0, ..., D−1}
//   P(h(u) = h(v)) = 1 − HD(u, v)/D = HammingSimilarity(u, v, D)
//
// Definition 3 holds exactly, like MinHash for Jaccard. Vectors are treated
// as binary: a dimension counts as set when it carries a positive weight.
// The ambient dimensionality D is part of the family (Hamming similarity is
// only defined relative to a fixed-width space).

#ifndef VSJ_LSH_BIT_SAMPLING_H_
#define VSJ_LSH_BIT_SAMPLING_H_

#include "vsj/lsh/lsh_family.h"

namespace vsj {

/// Normalized Hamming similarity 1 − HD(u, v)/dimension over the binary
/// projections of `u` and `v` (positive weight = set bit). Both vectors
/// must fit in `dimension`.
double HammingSimilarity(VectorRef u, VectorRef v, uint32_t dimension);

/// Coordinate-sampling family over a D-dimensional binary space.
class BitSamplingFamily final : public LshFamily {
 public:
  BitSamplingFamily(uint64_t seed, uint32_t dimension);

  double CollisionProbability(double similarity) const override;
  /// Hamming similarity is not in the SimilarityMeasure enum (it needs the
  /// ambient dimension); the join predicate for this family is the
  /// HammingSimilarity free function with `dimension()`. The closest
  /// enum-dispatchable measure (binary Jaccard) is reported here only for
  /// interface completeness; estimator integration should curry
  /// HammingSimilarity explicitly.
  SimilarityMeasure measure() const override {
    return SimilarityMeasure::kJaccard;
  }
  const char* name() const override { return "bit-sampling"; }

  uint32_t dimension() const { return dimension_; }

 protected:
  void DoHashRange(VectorRef v, uint32_t function_offset, uint32_t k,
                   uint64_t* out, HashScratch& scratch) const override;

 private:
  uint64_t seed_;
  uint32_t dimension_;
};

}  // namespace vsj

#endif  // VSJ_LSH_BIT_SAMPLING_H_
