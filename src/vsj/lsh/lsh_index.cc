#include "vsj/lsh/lsh_index.h"

#include <algorithm>
#include <utility>

#include "vsj/lsh/gaussian_projection_cache.h"
#include "vsj/obs/obs.h"
#include "vsj/util/check.h"

namespace vsj {

LshIndex::LshIndex(const LshFamily& family, DatasetView dataset,
                   uint32_t k, uint32_t num_tables, ThreadPool* pool)
    : family_(&family), dataset_(dataset), k_(k) {
  VSJ_CHECK(num_tables > 0);
  tables_.reserve(num_tables);
  VSJ_COUNTER_ADD("lsh.build.tables", num_tables);

  ThreadPool* workers =
      (pool != nullptr && pool->num_threads() > 0) ? pool : nullptr;

  // The Gaussian projection cache memoizes every (dim, function) hyperplane
  // component the build will need — the fill pass is O(distinct dims · ℓ·k)
  // where the uncached build derives O(n · features · ℓ·k) of them. It is
  // filled (in parallel when a pool is given), sealed, then shared
  // read-only by every hashing worker; families without a table-driven
  // form return nullptr and hash uncached. Build results are bit-identical
  // with and without the cache.
  VSJ_TRACE_SPAN(projcache_span, "lsh.build.projcache_fill_ns");
  const std::unique_ptr<GaussianProjectionCache> cache =
      family.MakeProjectionCache(dataset, k * num_tables, workers);
  projcache_span.End();

  const auto n = static_cast<VectorId>(dataset.size());

  if (workers == nullptr) {
    std::vector<uint64_t> keys(n);
    HashScratch scratch;
    scratch.gaussian_cache = cache.get();
    for (uint32_t t = 0; t < num_tables; ++t) {
      VSJ_TRACE_SPAN(table_span, "lsh.build.table_ns");
      LshTable::ComputeBucketKeys(family, dataset, k, t * k, 0, n,
                                  keys.data(), scratch);
      tables_.push_back(std::make_unique<LshTable>(dataset, k, keys));
    }
    return;
  }

  // Phase 1: hash every (table, vector) pair across the pool. The ℓ·n key
  // computations are independent; chunk them in units of vectors so one
  // parallel-for item is a contiguous slice of one table's key array. Each
  // chunk owns a scratch; the sealed cache is shared by all of them.
  std::vector<std::vector<uint64_t>> keys(num_tables);
  for (auto& table_keys : keys) table_keys.resize(n);

  VSJ_TRACE_SPAN(hash_span, "lsh.build.hash_ns");
  constexpr VectorId kChunk = 2048;
  const size_t chunks_per_table =
      n == 0 ? 0 : (n + kChunk - 1) / kChunk;
  workers->ParallelFor(chunks_per_table * num_tables, [&](size_t item) {
    const auto t = static_cast<uint32_t>(item / chunks_per_table);
    const auto begin = static_cast<VectorId>((item % chunks_per_table) * kChunk);
    const VectorId end = std::min<VectorId>(n, begin + kChunk);
    HashScratch scratch;
    scratch.gaussian_cache = cache.get();
    LshTable::ComputeBucketKeys(family, dataset, k, t * k, begin, end,
                                keys[t].data() + begin, scratch);
  });

  hash_span.End();

  // Phase 2: group into buckets — sequential per table, tables in parallel.
  VSJ_TRACE_SPAN(group_span, "lsh.build.group_ns");
  tables_.resize(num_tables);
  workers->ParallelFor(num_tables, [&](size_t t) {
    tables_[t] = std::make_unique<LshTable>(dataset, k, keys[t]);
  });
}

bool LshIndex::SameBucketInAnyTable(VectorId u, VectorId v) const {
  for (const auto& table : tables_) {
    if (table->SameBucket(u, v)) return true;
  }
  return false;
}

size_t LshIndex::MemoryBytes() const {
  size_t total = 0;
  for (const auto& table : tables_) total += table->MemoryBytes();
  return total;
}

}  // namespace vsj
