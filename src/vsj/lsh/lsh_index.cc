#include "vsj/lsh/lsh_index.h"

#include "vsj/util/check.h"

namespace vsj {

LshIndex::LshIndex(const LshFamily& family, const VectorDataset& dataset,
                   uint32_t k, uint32_t num_tables)
    : family_(&family), dataset_(&dataset), k_(k) {
  VSJ_CHECK(num_tables > 0);
  tables_.reserve(num_tables);
  for (uint32_t t = 0; t < num_tables; ++t) {
    tables_.push_back(std::make_unique<LshTable>(family, dataset, k, t * k));
  }
}

bool LshIndex::SameBucketInAnyTable(VectorId u, VectorId v) const {
  for (const auto& table : tables_) {
    if (table->SameBucket(u, v)) return true;
  }
  return false;
}

size_t LshIndex::MemoryBytes() const {
  size_t total = 0;
  for (const auto& table : tables_) total += table->MemoryBytes();
  return total;
}

}  // namespace vsj
