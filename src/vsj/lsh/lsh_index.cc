#include "vsj/lsh/lsh_index.h"

#include <utility>

#include "vsj/util/check.h"

namespace vsj {

LshIndex::LshIndex(const LshFamily& family, DatasetView dataset,
                   uint32_t k, uint32_t num_tables, ThreadPool* pool)
    : family_(&family), dataset_(dataset), k_(k) {
  VSJ_CHECK(num_tables > 0);
  tables_.reserve(num_tables);

  if (pool == nullptr || pool->num_threads() == 0) {
    for (uint32_t t = 0; t < num_tables; ++t) {
      tables_.push_back(std::make_unique<LshTable>(family, dataset, k, t * k));
    }
    return;
  }

  // Phase 1: hash every (table, vector) pair across the pool. The ℓ·n key
  // computations are independent; chunk them in units of vectors so one
  // parallel-for item is a contiguous slice of one table's key array.
  const auto n = static_cast<VectorId>(dataset.size());
  std::vector<std::vector<uint64_t>> keys(num_tables);
  for (auto& table_keys : keys) table_keys.resize(n);

  constexpr VectorId kChunk = 2048;
  const size_t chunks_per_table =
      n == 0 ? 0 : (n + kChunk - 1) / kChunk;
  pool->ParallelFor(chunks_per_table * num_tables, [&](size_t item) {
    const auto t = static_cast<uint32_t>(item / chunks_per_table);
    const auto begin = static_cast<VectorId>((item % chunks_per_table) * kChunk);
    const VectorId end = std::min<VectorId>(n, begin + kChunk);
    LshTable::ComputeBucketKeys(family, dataset, k, t * k, begin, end,
                                keys[t].data() + begin);
  });

  // Phase 2: group into buckets — sequential per table, tables in parallel.
  tables_.resize(num_tables);
  pool->ParallelFor(num_tables, [&](size_t t) {
    tables_[t] = std::make_unique<LshTable>(dataset, k, keys[t]);
  });
}

bool LshIndex::SameBucketInAnyTable(VectorId u, VectorId v) const {
  for (const auto& table : tables_) {
    if (table->SameBucket(u, v)) return true;
  }
  return false;
}

size_t LshIndex::MemoryBytes() const {
  size_t total = 0;
  for (const auto& table : tables_) total += table->MemoryBytes();
  return total;
}

}  // namespace vsj
