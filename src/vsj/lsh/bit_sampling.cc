#include "vsj/lsh/bit_sampling.h"

#include <algorithm>

#include "vsj/util/check.h"
#include "vsj/util/hash.h"

namespace vsj {

double HammingSimilarity(VectorRef u, VectorRef v, uint32_t dimension) {
  VSJ_CHECK(u.dim_bound() <= dimension && v.dim_bound() <= dimension);
  // HD = |u| + |v| − 2·|u ∩ v| over set bits.
  const size_t overlap = u.OverlapSize(v);
  const size_t hamming = u.size() + v.size() - 2 * overlap;
  return 1.0 - static_cast<double>(hamming) / dimension;
}

BitSamplingFamily::BitSamplingFamily(uint64_t seed, uint32_t dimension)
    : seed_(Mix64(seed)), dimension_(dimension) {
  VSJ_CHECK(dimension > 0);
}

void BitSamplingFamily::DoHashRange(VectorRef v,
                                    uint32_t function_offset, uint32_t k,
                                    uint64_t* out,
                                    HashScratch& /*scratch*/) const {
  for (uint32_t j = 0; j < k; ++j) {
    const uint64_t fn_seed = HashCombine(seed_, function_offset + j);
    const auto coordinate =
        static_cast<DimId>(fn_seed % dimension_);
    // Binary lookup: is `coordinate` a set bit of v? The columnar layout
    // makes this a search over the raw dim array.
    const bool set =
        std::binary_search(v.dims(), v.dims() + v.size(), coordinate);
    out[j] = set ? 1 : 0;
  }
}

double BitSamplingFamily::CollisionProbability(double similarity) const {
  return std::clamp(similarity, 0.0, 1.0);
}

}  // namespace vsj
