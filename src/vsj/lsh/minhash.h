// MinHash: the LSH family for Jaccard similarity (Broder 1997).
//
//   h_j(A) = argmin_{e ∈ A} π_j(e)   for a random permutation π_j
//   P(h(A) = h(B)) = |A∩B| / |A∪B|  — the paper's Definition 3, exactly.
//
// Weighted vectors are handled through the rounding set embedding of
// vsj/vector/set_embedding.h: weight w contributes max(1, round(w/res))
// multiset copies of the dimension, so the family is locality sensitive for
// the embedded (≈ weighted) Jaccard similarity.

#ifndef VSJ_LSH_MINHASH_H_
#define VSJ_LSH_MINHASH_H_

#include "vsj/lsh/lsh_family.h"

namespace vsj {

/// MinHash family over the rounding set embedding of a vector.
class MinHashFamily final : public LshFamily {
 public:
  /// `resolution` is the weight quantum of the set embedding; 1.0 makes
  /// binary vectors embed as plain sets.
  explicit MinHashFamily(uint64_t seed = 0, double resolution = 1.0);

  double CollisionProbability(double similarity) const override;
  SimilarityMeasure measure() const override {
    return SimilarityMeasure::kJaccard;
  }
  const char* name() const override { return "minhash"; }

  double resolution() const { return resolution_; }

 protected:
  void DoHashRange(VectorRef v, uint32_t function_offset, uint32_t k,
                   uint64_t* out, HashScratch& scratch) const override;

 private:
  uint64_t seed_;
  double resolution_;
};

}  // namespace vsj

#endif  // VSJ_LSH_MINHASH_H_
