// Vectorized hashing kernels for the LSH families — the index-build hot
// path made SIMD-wide while staying bit-identical to the scalar code.
//
// Both kernels vectorize *across the k hash functions of one feature*:
// lane j owns function j, so the per-function accumulation (or min-fold)
// order over the features is exactly the scalar order and no floating-point
// reassociation ever happens. Concretely:
//
//   * AccumulateProjectionLanes — SimHash. acc[j] += weight * gaussians[j]
//     per lane, as one IEEE multiply followed by one IEEE add (never an
//     FMA; the translation unit is built with -ffp-contract=off so the
//     scalar fallback cannot contract either). Identical rounding per lane
//     at every width.
//
//   * MinFoldLanes — MinHash. mins[j] = min(mins[j], Mix64(key + terms[j]))
//     per lane; pure 64-bit integer arithmetic, so bit-identity is trivial
//     once the lane owns the function.
//
// Width is chosen at runtime from util/cpu.h (scalar / SSE2 / AVX2; the
// AVX2 bodies are compiled with a function-level target attribute, so the
// binary stays runnable on plain x86-64). The dispatch bit-identity suite
// (tests/lsh/simd_dispatch_test.cc) pins all widths against scalar.

#ifndef VSJ_LSH_SIMHASH_KERNEL_H_
#define VSJ_LSH_SIMHASH_KERNEL_H_

#include <cstdint>

namespace vsj {

/// acc[j] += weight * gaussians[j] for j in [0, k) — the SimHash inner loop
/// over one feature, given the feature's k cached Gaussian components.
void AccumulateProjectionLanes(const double* gaussians, double weight,
                               double* acc, uint32_t k);

/// mins[j] = min(mins[j], Mix64(mixed_key + seed_terms[j])) for j in
/// [0, k) — the MinHash inner loop over one set element. `mixed_key` is
/// Mix64(element key); `seed_terms[j]` is fn_seed_j * kGoldenGamma + 1, so
/// the lane computes exactly HashCombine(element key, fn_seed_j).
void MinFoldLanes(uint64_t mixed_key, const uint64_t* seed_terms,
                  uint64_t* mins, uint32_t k);

}  // namespace vsj

#endif  // VSJ_LSH_SIMHASH_KERNEL_H_
