// An LSH index I_G = {D_g1, ..., D_gℓ}: ℓ tables over one dataset.
//
// Table t uses hash functions [t·k, (t+1)·k) of the family, matching the
// paper's construction of choosing ℓ functions g_i from G independently.
// Single-table estimators (§4, §5) run against `table(0)`; the multi-table
// estimators of Appendix B.2.1 (median, virtual bucket) use all ℓ tables.

#ifndef VSJ_LSH_LSH_INDEX_H_
#define VSJ_LSH_LSH_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "vsj/lsh/lsh_family.h"
#include "vsj/lsh/lsh_table.h"
#include "vsj/util/thread_pool.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Immutable collection of ℓ LSH tables built over one dataset.
class LshIndex {
 public:
  /// Builds ℓ tables with k functions each. The family and dataset must
  /// outlive the index.
  ///
  /// When `pool` is non-null the signature computation — the dominant
  /// O(ℓ·n·k·features) cost — is partitioned across the pool; bucket
  /// grouping stays sequential per table, so the resulting index is
  /// bit-identical to a single-threaded build of the same (family, k, ℓ).
  /// The pool is only used during construction and not retained.
  LshIndex(const LshFamily& family, DatasetView dataset, uint32_t k,
           uint32_t num_tables, ThreadPool* pool = nullptr);

  uint32_t k() const { return k_; }
  uint32_t num_tables() const { return static_cast<uint32_t>(tables_.size()); }

  const LshTable& table(uint32_t t) const { return *tables_[t]; }
  const LshFamily& family() const { return *family_; }
  DatasetView dataset() const { return dataset_; }

  /// True iff u and v share a bucket in at least one table (the
  /// virtual-bucket membership test of Appendix B.2.1).
  bool SameBucketInAnyTable(VectorId u, VectorId v) const;

  /// Total memory of all tables (paper's accounting; see LshTable).
  size_t MemoryBytes() const;

 private:
  const LshFamily* family_;
  DatasetView dataset_;
  uint32_t k_;
  std::vector<std::unique_ptr<LshTable>> tables_;
};

}  // namespace vsj

#endif  // VSJ_LSH_LSH_INDEX_H_
