// Locality-sensitive hash families (paper §4.1).
//
// A family H supplies an unbounded sequence of hash functions h_0, h_1, ...
// (identified by index and derived deterministically from the family seed)
// together with the family's *collision-probability curve*
//
//     p(s) = P(h(u) = h(v))   when sim(u, v) = s.
//
// The paper idealizes p(s) = s (Definition 3). MinHash achieves that exactly
// for Jaccard similarity; Charikar's hyperplane SimHash — the scheme the
// paper's evaluation uses for cosine — has p(s) = 1 − arccos(s)/π. Every
// estimator that relies on the curve (J_U, LSH-S) queries it through this
// interface, so both exact-Def.-3 and real cosine LSH are supported
// (DESIGN.md §3.3).

#ifndef VSJ_LSH_LSH_FAMILY_H_
#define VSJ_LSH_LSH_FAMILY_H_

#include <cstdint>
#include <memory>

#include "vsj/vector/similarity.h"
#include "vsj/vector/vector_ref.h"

namespace vsj {

/// Abstract LSH family; implementations are stateless beyond their seed and
/// safe to share across threads.
class LshFamily {
 public:
  virtual ~LshFamily() = default;

  /// Writes h_offset(v), ..., h_{offset+k-1}(v) into `out`. Batched because
  /// implementations share one pass over the vector's features; an LSH index
  /// with ℓ tables of k functions each gives table t the range
  /// [t·k, (t+1)·k).
  virtual void HashRange(VectorRef v, uint32_t function_offset,
                         uint32_t k, uint64_t* out) const = 0;

  /// Value of a single hash function on `v`.
  uint64_t Hash(VectorRef v, uint32_t function_index) const {
    uint64_t out;
    HashRange(v, function_index, 1, &out);
    return out;
  }

  /// p(s): single-function collision probability at similarity `s`.
  virtual double CollisionProbability(double similarity) const = 0;

  /// The similarity measure this family is locality-sensitive for.
  virtual SimilarityMeasure measure() const = 0;

  /// Short human-readable name ("simhash", "minhash").
  virtual const char* name() const = 0;

  /// P(g(u) = g(v)) for g = (h_1, ..., h_k): p(s)^k.
  double BandCollisionProbability(double similarity, uint32_t k) const;
};

/// The canonical family for `measure`: SimHash for cosine, MinHash for
/// Jaccard (the pairing both service engines use).
std::unique_ptr<LshFamily> MakeLshFamily(SimilarityMeasure measure,
                                         uint64_t seed);

}  // namespace vsj

#endif  // VSJ_LSH_LSH_FAMILY_H_
