// Locality-sensitive hash families (paper §4.1).
//
// A family H supplies an unbounded sequence of hash functions h_0, h_1, ...
// (identified by index and derived deterministically from the family seed)
// together with the family's *collision-probability curve*
//
//     p(s) = P(h(u) = h(v))   when sim(u, v) = s.
//
// The paper idealizes p(s) = s (Definition 3). MinHash achieves that exactly
// for Jaccard similarity; Charikar's hyperplane SimHash — the scheme the
// paper's evaluation uses for cosine — has p(s) = 1 − arccos(s)/π. Every
// estimator that relies on the curve (J_U, LSH-S) queries it through this
// interface, so both exact-Def.-3 and real cosine LSH are supported
// (DESIGN.md §3.3).
//
// Hashing is the index-build hot path, so HashRange takes a caller-provided
// HashScratch: reusable buffers (no per-call allocation once warm) plus an
// optional read-only GaussianProjectionCache that SimHash consults instead
// of re-deriving hyperplane components. The scratchless overload exists for
// cold paths and tests; it allocates a scratch per call.

#ifndef VSJ_LSH_LSH_FAMILY_H_
#define VSJ_LSH_LSH_FAMILY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "vsj/vector/dataset_view.h"
#include "vsj/vector/set_embedding.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/vector_ref.h"

namespace vsj {

class GaussianProjectionCache;
class ThreadPool;

/// Reusable hashing state, owned by the caller and threaded through every
/// hot-path HashRange call. One scratch per thread: the buffers are mutated
/// freely, so a scratch must never be shared between concurrent hashers
/// (the pointed-to projection cache is sealed read-only and may be).
struct HashScratch {
  /// SimHash: the k running projections of the current call.
  std::vector<double> projections;
  /// Per-function seed material (SimHash: fn seeds; MinHash: fold terms).
  std::vector<uint64_t> lane_seeds;
  /// Combined-key staging for ComputeBucketKeys-style callers.
  std::vector<uint64_t> signature;
  /// MinHash: the set embedding of the current vector.
  std::vector<SetElement> embed;
  /// Optional sealed Gaussian cache (see GaussianProjectionCache); families
  /// that cannot use it ignore it, SimHash validates the tag before use.
  const GaussianProjectionCache* gaussian_cache = nullptr;
};

/// Abstract LSH family; implementations are stateless beyond their seed and
/// safe to share across threads.
class LshFamily {
 public:
  virtual ~LshFamily() = default;

  /// Writes h_offset(v), ..., h_{offset+k-1}(v) into `out`. Batched because
  /// implementations share one pass over the vector's features; an LSH index
  /// with ℓ tables of k functions each gives table t the range
  /// [t·k, (t+1)·k). `scratch` is reused across calls — hot loops hold one
  /// per thread.
  void HashRange(VectorRef v, uint32_t function_offset, uint32_t k,
                 uint64_t* out, HashScratch& scratch) const {
    DoHashRange(v, function_offset, k, out, scratch);
  }

  /// Convenience overload allocating a fresh scratch (cold paths, tests).
  void HashRange(VectorRef v, uint32_t function_offset, uint32_t k,
                 uint64_t* out) const {
    HashScratch scratch;
    DoHashRange(v, function_offset, k, out, scratch);
  }

  /// Value of a single hash function on `v`.
  uint64_t Hash(VectorRef v, uint32_t function_index) const {
    uint64_t out;
    HashRange(v, function_index, 1, &out);
    return out;
  }

  /// Builds a sealed projection cache covering functions [0, num_functions)
  /// over the dimensions of `dataset`, filled across `pool` when given.
  /// Families whose hashing cannot be table-driven return nullptr (the
  /// default); callers treat a null cache as "hash uncached" — results are
  /// bit-identical either way.
  virtual std::unique_ptr<GaussianProjectionCache> MakeProjectionCache(
      DatasetView dataset, uint32_t num_functions, ThreadPool* pool) const;

  /// p(s): single-function collision probability at similarity `s`.
  virtual double CollisionProbability(double similarity) const = 0;

  /// The similarity measure this family is locality-sensitive for.
  virtual SimilarityMeasure measure() const = 0;

  /// Short human-readable name ("simhash", "minhash").
  virtual const char* name() const = 0;

  /// P(g(u) = g(v)) for g = (h_1, ..., h_k): p(s)^k.
  double BandCollisionProbability(double similarity, uint32_t k) const;

 protected:
  /// The one hashing entry point implementations provide; both public
  /// overloads funnel here.
  virtual void DoHashRange(VectorRef v, uint32_t function_offset, uint32_t k,
                           uint64_t* out, HashScratch& scratch) const = 0;
};

/// The canonical family for `measure`: SimHash for cosine, MinHash for
/// Jaccard (the pairing both service engines use).
std::unique_ptr<LshFamily> MakeLshFamily(SimilarityMeasure measure,
                                         uint64_t seed);

}  // namespace vsj

#endif  // VSJ_LSH_LSH_FAMILY_H_
