// Memoized SimHash hyperplane components: GaussianFromHash(dim, fn_seed)
// for every (dimension, function) pair of an index build, computed once.
//
// SimHash derives the Gaussian entry r_f[dim] on the fly so that no
// projection matrices are stored — but an index build evaluates that
// derivation O(n · ℓ·k · features) times while only O(distinct dims · ℓ·k)
// distinct values exist (a DBLP-scale corpus repeats each dimension
// hundreds of times). This cache turns the build from hash-heavy
// (Box–Muller per pair) into load-heavy: a flat open-addressed table keyed
// by dimension, one contiguous row of num_functions() doubles per
// dimension, so HashRange over functions [offset, offset+k) reads k
// consecutive doubles — exactly the layout the SIMD accumulation kernel
// (simhash_kernel.h) wants.
//
// Sealing rule: the table is filled in two phases. AddDim() registers
// dimensions single-threaded (slot assignment may rehash); Fill() computes
// all rows — trivially parallel, each row is independent — and seals the
// table. Row() returns nullptr until sealed, so a partially filled cache
// can never leak garbage into a hash; after sealing the cache is
// immutable and safe to share read-only across ParallelFor workers.
// Dimensions absent from the cache (e.g. vectors appended to a streaming
// store after construction) miss to nullptr and the caller recomputes on
// the fly — bit-identical either way, since rows hold exactly the values
// GaussianFromHash would produce.

#ifndef VSJ_LSH_GAUSSIAN_PROJECTION_CACHE_H_
#define VSJ_LSH_GAUSSIAN_PROJECTION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vsj/vector/vector_ref.h"

namespace vsj {

class ThreadPool;

/// Sealed, read-only shareable (dim → k Gaussians) table for one family.
class GaussianProjectionCache {
 public:
  /// `family_tag` identifies the owning family (SimHash passes its mixed
  /// seed) so a hash path can reject a cache built for different hash
  /// functions. `fn_seeds[f]` is the per-function seed fed to
  /// GaussianFromHash; rows hold values for functions [0, fn_seeds.size()).
  GaussianProjectionCache(uint64_t family_tag, std::vector<uint64_t> fn_seeds);

  /// Registers `dim` (idempotent). Pre-seal only; single-threaded.
  void AddDim(DimId dim);

  /// Registers every dimension of `v` (convenience for fill passes).
  void AddDims(VectorRef v);

  /// Computes all rows — across `pool` when given — and seals the table.
  void Fill(ThreadPool* pool);

  bool sealed() const { return sealed_; }
  uint64_t family_tag() const { return family_tag_; }
  uint32_t num_functions() const {
    return static_cast<uint32_t>(fn_seeds_.size());
  }
  size_t num_dims() const { return num_dims_; }

  /// The row of `dim`: num_functions() contiguous doubles, value f equal to
  /// GaussianFromHash(dim, fn_seeds[f]). nullptr when `dim` is not cached
  /// or the table is not sealed yet. Rows are stored densely (one per
  /// registered dim, not per hash slot), addressed through the slot's row
  /// index.
  const double* Row(DimId dim) const {
    if (!sealed_) return nullptr;
    const size_t mask = capacity_ - 1;
    size_t slot = SlotHash(dim) & mask;
    while (states_[slot] != kEmptySlot) {
      if (slot_dims_[slot] == dim) {
        return values_.data() + static_cast<size_t>(row_of_slot_[slot]) * RowStride();
      }
      slot = (slot + 1) & mask;
    }
    return nullptr;
  }

  /// Table + rows footprint.
  size_t MemoryBytes() const;

 private:
  static constexpr uint8_t kEmptySlot = 0;
  static constexpr uint8_t kOccupiedSlot = 1;

  static uint64_t SlotHash(DimId dim);
  size_t RowStride() const { return fn_seeds_.size(); }
  void Rehash(size_t new_capacity);
  size_t FindOrInsertSlot(DimId dim);

  uint64_t family_tag_;
  std::vector<uint64_t> fn_seeds_;
  size_t capacity_ = 0;  // power of two
  size_t num_dims_ = 0;
  std::vector<DimId> slot_dims_;
  std::vector<uint8_t> states_;
  std::vector<uint32_t> row_of_slot_;  // slot -> dense row index (sealed)
  std::vector<double> values_;  // num_dims() × num_functions(), dense rows
  bool sealed_ = false;
};

}  // namespace vsj

#endif  // VSJ_LSH_GAUSSIAN_PROJECTION_CACHE_H_
