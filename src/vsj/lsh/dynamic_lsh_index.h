// A dynamic LSH index: ℓ DynamicLshTables kept consistent under
// Insert/Remove — the online counterpart of LshIndex.
//
// Table t uses hash functions [t·k, (t+1)·k) of the family, matching the
// static index's construction, so a dynamic index and a static index built
// from the same (family, k, ℓ) over the same live set partition the vectors
// identically. On top of the tables the index maintains the list of live
// vector ids with O(1) membership updates and O(1) uniform sampling — the
// SampleL side of streaming LSH-SS needs uniform live pairs, which the
// per-table structures alone cannot provide.

#ifndef VSJ_LSH_DYNAMIC_LSH_INDEX_H_
#define VSJ_LSH_DYNAMIC_LSH_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "vsj/lsh/dynamic_lsh_table.h"
#include "vsj/lsh/lsh_family.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Mutable collection of ℓ DynamicLshTables plus the live-id list.
class DynamicLshIndex {
 public:
  /// Creates ℓ empty tables with k functions each. The family must outlive
  /// the index.
  DynamicLshIndex(const LshFamily& family, uint32_t k, uint32_t num_tables);

  uint32_t k() const { return k_; }
  uint32_t num_tables() const { return static_cast<uint32_t>(tables_.size()); }
  const LshFamily& family() const { return *family_; }

  const DynamicLshTable& table(uint32_t t) const { return *tables_[t]; }

  size_t num_vectors() const { return live_.size(); }

  /// Live vector ids in an order determined only by the Insert/Remove
  /// history (swap-pop on removal), never by scheduling.
  const std::vector<VectorId>& live_ids() const { return live_; }

  /// Uniform random live id. Requires num_vectors() > 0.
  VectorId SampleLiveId(Rng& rng) const {
    return live_[rng.Below(live_.size())];
  }

  /// Inserts `id` into every table; `id` must not be present. Hashing
  /// reuses the index-owned scratch (and its attached projection cache),
  /// so the ℓ HashRange calls of one insert allocate nothing once warm.
  void Insert(VectorId id, VectorRef vector);

  /// Removes `id` from every table; it must be present.
  void Remove(VectorId id);

  bool Contains(VectorId id) const { return live_position_.count(id) > 0; }

  /// True iff both vectors are live and share a bucket in at least one
  /// table (the virtual-bucket membership test of Appendix B.2.1).
  bool SameBucketInAnyTable(VectorId u, VectorId v) const;

  /// Attaches a sealed Gaussian projection cache consulted by every
  /// subsequent Insert (SimHash skips re-deriving hyperplane components
  /// for cached dimensions; hashes are bit-identical either way). The
  /// cache must be sealed, belong to this index's family, cover functions
  /// [0, k·ℓ), and outlive the index. nullptr detaches.
  void AttachProjectionCache(const GaussianProjectionCache* cache) {
    scratch_.gaussian_cache = cache;
  }

  /// Snapshot support: per-table replay orders (entry t is
  /// table(t).ReplayOrder()). Together with live_ids() this captures every
  /// sampling-relevant bit of the index; the hash functions themselves are
  /// not persisted — they rebuild from (family seed, k, ℓ).
  std::vector<std::vector<VectorId>> TableReplayOrders() const;

  /// Snapshot support: rebuilds a freshly constructed (empty) index so its
  /// sampling state is identical to the checkpointed one. `table_orders[t]`
  /// is replayed through table t (reproducing bucket slot order and
  /// within-bucket member order), and the live list is restored to
  /// `live_order` verbatim (SampleLiveId indexes it directly). Each
  /// table_orders[t] must be a permutation of `live_order`; ids resolve
  /// through `vectors`.
  void RestoreReplay(const std::vector<VectorId>& live_order,
                     const std::vector<std::vector<VectorId>>& table_orders,
                     DatasetView vectors);

 private:
  const LshFamily* family_;
  uint32_t k_;
  std::vector<std::unique_ptr<DynamicLshTable>> tables_;
  std::vector<VectorId> live_;
  std::unordered_map<VectorId, size_t> live_position_;  // id -> index in live_
  // Mutation-path hashing scratch. Mutations are externally synchronized
  // (the streaming service's contract), so one scratch suffices; read-only
  // methods never touch it.
  HashScratch scratch_;
};

}  // namespace vsj

#endif  // VSJ_LSH_DYNAMIC_LSH_INDEX_H_
