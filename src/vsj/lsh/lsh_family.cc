#include "vsj/lsh/lsh_family.h"

#include <cmath>

#include "vsj/lsh/gaussian_projection_cache.h"
#include "vsj/lsh/minhash.h"
#include "vsj/lsh/simhash.h"
#include "vsj/util/check.h"

namespace vsj {

double LshFamily::BandCollisionProbability(double similarity,
                                           uint32_t k) const {
  return std::pow(CollisionProbability(similarity), static_cast<double>(k));
}

std::unique_ptr<GaussianProjectionCache> LshFamily::MakeProjectionCache(
    DatasetView /*dataset*/, uint32_t /*num_functions*/,
    ThreadPool* /*pool*/) const {
  return nullptr;
}

std::unique_ptr<LshFamily> MakeLshFamily(SimilarityMeasure measure,
                                         uint64_t seed) {
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return std::make_unique<SimHashFamily>(seed);
    case SimilarityMeasure::kJaccard:
      return std::make_unique<MinHashFamily>(seed);
  }
  VSJ_CHECK_MSG(false, "unknown similarity measure");
  return nullptr;
}

}  // namespace vsj
