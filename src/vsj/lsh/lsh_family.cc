#include "vsj/lsh/lsh_family.h"

#include <cmath>

namespace vsj {

double LshFamily::BandCollisionProbability(double similarity,
                                           uint32_t k) const {
  return std::pow(CollisionProbability(similarity), static_cast<double>(k));
}

}  // namespace vsj
