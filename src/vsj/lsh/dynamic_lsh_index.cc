#include "vsj/lsh/dynamic_lsh_index.h"

#include "vsj/obs/obs.h"
#include "vsj/util/check.h"

namespace vsj {

DynamicLshIndex::DynamicLshIndex(const LshFamily& family, uint32_t k,
                                 uint32_t num_tables)
    : family_(&family), k_(k) {
  VSJ_CHECK(k > 0);
  VSJ_CHECK(num_tables > 0);
  tables_.reserve(num_tables);
  for (uint32_t t = 0; t < num_tables; ++t) {
    tables_.push_back(std::make_unique<DynamicLshTable>(family, k, t * k));
  }
}

void DynamicLshIndex::Insert(VectorId id, VectorRef vector) {
  VSJ_CHECK_MSG(!Contains(id), "vector %u already present", id);
  VSJ_COUNTER_ADD("lsh.dyn.inserts", 1);
  for (auto& table : tables_) table->Insert(id, vector, scratch_);
  live_position_[id] = live_.size();
  live_.push_back(id);
}

void DynamicLshIndex::Remove(VectorId id) {
  auto it = live_position_.find(id);
  VSJ_CHECK_MSG(it != live_position_.end(), "vector %u not present", id);
  VSJ_COUNTER_ADD("lsh.dyn.removes", 1);
  for (auto& table : tables_) table->Remove(id);
  // Swap-pop the live list; fix the displaced id's position.
  const size_t position = it->second;
  const VectorId last = live_.back();
  live_[position] = last;
  live_.pop_back();
  if (last != id) live_position_[last] = position;
  live_position_.erase(it);
}

std::vector<std::vector<VectorId>> DynamicLshIndex::TableReplayOrders() const {
  std::vector<std::vector<VectorId>> orders;
  orders.reserve(tables_.size());
  for (const auto& table : tables_) orders.push_back(table->ReplayOrder());
  return orders;
}

void DynamicLshIndex::RestoreReplay(
    const std::vector<VectorId>& live_order,
    const std::vector<std::vector<VectorId>>& table_orders,
    DatasetView vectors) {
  VSJ_CHECK_MSG(live_.empty(), "RestoreReplay needs a fresh index");
  VSJ_CHECK_MSG(table_orders.size() == tables_.size(),
                "snapshot has %zu tables, index has %zu",
                table_orders.size(), tables_.size());
  for (size_t t = 0; t < tables_.size(); ++t) {
    VSJ_CHECK_MSG(table_orders[t].size() == live_order.size(),
                  "table %zu replay order covers %zu of %zu live ids", t,
                  table_orders[t].size(), live_order.size());
    for (const VectorId id : table_orders[t]) {
      tables_[t]->Insert(id, vectors[id], scratch_);
    }
  }
  live_ = live_order;
  live_position_.clear();
  live_position_.reserve(live_.size());
  for (size_t i = 0; i < live_.size(); ++i) live_position_[live_[i]] = i;
}

bool DynamicLshIndex::SameBucketInAnyTable(VectorId u, VectorId v) const {
  for (const auto& table : tables_) {
    if (table->SameBucket(u, v)) return true;
  }
  return false;
}

}  // namespace vsj
