#include "vsj/lsh/simhash_kernel.h"

#include "vsj/util/cpu.h"
#include "vsj/util/hash.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define VSJ_KERNEL_X86 1
#else
#define VSJ_KERNEL_X86 0
#endif

namespace vsj {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference — the semantics every wider width must reproduce bitwise.
// ---------------------------------------------------------------------------

inline void AccumulateScalar(const double* gaussians, double weight,
                             double* acc, uint32_t begin, uint32_t end) {
  for (uint32_t j = begin; j < end; ++j) {
    acc[j] += weight * gaussians[j];
  }
}

inline void MinFoldScalar(uint64_t mixed_key, const uint64_t* seed_terms,
                          uint64_t* mins, uint32_t begin, uint32_t end) {
  for (uint32_t j = begin; j < end; ++j) {
    const uint64_t h = Mix64(mixed_key + seed_terms[j]);
    if (h < mins[j]) mins[j] = h;
  }
}

#if VSJ_KERNEL_X86

// ---------------------------------------------------------------------------
// SSE2 (2 lanes). SSE2 is part of baseline x86-64, so no target attribute.
// ---------------------------------------------------------------------------

/// 64x64→64 low multiply by a constant; SSE2 has only 32x32→64
/// (_mm_mul_epu32), so the low half is assembled from three partials.
inline __m128i Mul64Sse2(__m128i a, uint64_t constant) {
  const __m128i b = _mm_set1_epi64x(static_cast<long long>(constant));
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i cross = _mm_add_epi64(
      _mm_mul_epu32(_mm_srli_epi64(a, 32), b),
      _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

inline __m128i Mix64Sse2(__m128i x) {
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 30));
  x = Mul64Sse2(x, 0xbf58476d1ce4e5b9ULL);
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 27));
  x = Mul64Sse2(x, 0x94d049bb133111ebULL);
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 31));
  return x;
}

/// Per-64-bit-lane signed a > b without _mm_cmpgt_epi64 (SSE4.2): compare
/// the high dwords; where they tie, take the borrow sign of b − a. The
/// high dword of the partial result is a full 0/~0 mask in every case, so
/// broadcasting it down yields the lane mask.
inline __m128i CmpGtEpi64Sse2(__m128i a, __m128i b) {
  __m128i r =
      _mm_and_si128(_mm_cmpeq_epi32(a, b), _mm_sub_epi64(b, a));
  r = _mm_or_si128(r, _mm_cmpgt_epi32(a, b));
  return _mm_shuffle_epi32(r, _MM_SHUFFLE(3, 3, 1, 1));
}

inline __m128i MinEpu64Sse2(__m128i a, __m128i b) {
  const __m128i sign =
      _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m128i a_gt_b = CmpGtEpi64Sse2(_mm_xor_si128(a, sign),
                                        _mm_xor_si128(b, sign));
  return _mm_or_si128(_mm_and_si128(a_gt_b, b),
                      _mm_andnot_si128(a_gt_b, a));
}

void AccumulateSse2(const double* gaussians, double weight, double* acc,
                    uint32_t k) {
  const __m128d w = _mm_set1_pd(weight);
  uint32_t j = 0;
  for (; j + 2 <= k; j += 2) {
    const __m128d g = _mm_loadu_pd(gaussians + j);
    const __m128d a = _mm_loadu_pd(acc + j);
    _mm_storeu_pd(acc + j, _mm_add_pd(a, _mm_mul_pd(w, g)));
  }
  AccumulateScalar(gaussians, weight, acc, j, k);
}

void MinFoldSse2(uint64_t mixed_key, const uint64_t* seed_terms,
                 uint64_t* mins, uint32_t k) {
  const __m128i key = _mm_set1_epi64x(static_cast<long long>(mixed_key));
  uint32_t j = 0;
  for (; j + 2 <= k; j += 2) {
    const __m128i terms = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(seed_terms + j));
    const __m128i h = Mix64Sse2(_mm_add_epi64(key, terms));
    __m128i* slot = reinterpret_cast<__m128i*>(mins + j);
    _mm_storeu_si128(slot, MinEpu64Sse2(_mm_loadu_si128(slot), h));
  }
  MinFoldScalar(mixed_key, seed_terms, mins, j, k);
}

// ---------------------------------------------------------------------------
// AVX2 (4 lanes). Function-level target attributes keep the binary
// runnable on CPUs without AVX2; dispatch guards every call.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i Mul64Avx2(__m256i a,
                                                         uint64_t constant) {
  const __m256i b = _mm256_set1_epi64x(static_cast<long long>(constant));
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i Mix64Avx2(__m256i x) {
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
  x = Mul64Avx2(x, 0xbf58476d1ce4e5b9ULL);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
  x = Mul64Avx2(x, 0x94d049bb133111ebULL);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
  return x;
}

__attribute__((target("avx2"))) inline __m256i MinEpu64Avx2(__m256i a,
                                                            __m256i b) {
  const __m256i sign =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i a_gt_b = _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                                            _mm256_xor_si256(b, sign));
  return _mm256_blendv_epi8(a, b, a_gt_b);
}

__attribute__((target("avx2"))) void AccumulateAvx2(const double* gaussians,
                                                    double weight,
                                                    double* acc, uint32_t k) {
  const __m256d w = _mm256_set1_pd(weight);
  uint32_t j = 0;
  for (; j + 4 <= k; j += 4) {
    const __m256d g = _mm256_loadu_pd(gaussians + j);
    const __m256d a = _mm256_loadu_pd(acc + j);
    _mm256_storeu_pd(acc + j, _mm256_add_pd(a, _mm256_mul_pd(w, g)));
  }
  AccumulateScalar(gaussians, weight, acc, j, k);
}

__attribute__((target("avx2"))) void MinFoldAvx2(uint64_t mixed_key,
                                                 const uint64_t* seed_terms,
                                                 uint64_t* mins, uint32_t k) {
  const __m256i key = _mm256_set1_epi64x(static_cast<long long>(mixed_key));
  uint32_t j = 0;
  for (; j + 4 <= k; j += 4) {
    const __m256i terms = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(seed_terms + j));
    const __m256i h = Mix64Avx2(_mm256_add_epi64(key, terms));
    __m256i* slot = reinterpret_cast<__m256i*>(mins + j);
    _mm256_storeu_si256(slot, MinEpu64Avx2(_mm256_loadu_si256(slot), h));
  }
  MinFoldScalar(mixed_key, seed_terms, mins, j, k);
}

#endif  // VSJ_KERNEL_X86

}  // namespace

void AccumulateProjectionLanes(const double* gaussians, double weight,
                               double* acc, uint32_t k) {
#if VSJ_KERNEL_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      AccumulateAvx2(gaussians, weight, acc, k);
      return;
    case SimdLevel::kSse2:
      AccumulateSse2(gaussians, weight, acc, k);
      return;
    case SimdLevel::kScalar:
      break;
  }
#endif
  AccumulateScalar(gaussians, weight, acc, 0, k);
}

void MinFoldLanes(uint64_t mixed_key, const uint64_t* seed_terms,
                  uint64_t* mins, uint32_t k) {
#if VSJ_KERNEL_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      MinFoldAvx2(mixed_key, seed_terms, mins, k);
      return;
    case SimdLevel::kSse2:
      MinFoldSse2(mixed_key, seed_terms, mins, k);
      return;
    case SimdLevel::kScalar:
      break;
  }
#endif
  MinFoldScalar(mixed_key, seed_terms, mins, 0, k);
}

}  // namespace vsj
