#include "vsj/lsh/lsh_table.h"

#include <algorithm>
#include <utility>

#include "vsj/lsh/bucket_grouper.h"
#include "vsj/util/check.h"
#include "vsj/util/hash.h"

namespace vsj {

LshTable::LshTable(const LshFamily& family, DatasetView dataset,
                   uint32_t k, uint32_t function_offset)
    : k_(k) {
  VSJ_CHECK(k > 0);
  std::vector<uint64_t> keys(dataset.size());
  HashScratch scratch;
  ComputeBucketKeys(family, dataset, k, function_offset, 0,
                    static_cast<VectorId>(dataset.size()), keys.data(),
                    scratch);
  BuildFromKeys(keys);
}

LshTable::LshTable(DatasetView dataset, uint32_t k,
                   const std::vector<uint64_t>& keys)
    : k_(k) {
  VSJ_CHECK(k > 0);
  VSJ_CHECK_MSG(keys.size() == dataset.size(),
                "need one precomputed key per vector");
  BuildFromKeys(keys);
}

void LshTable::ComputeBucketKeys(const LshFamily& family, DatasetView dataset,
                                 uint32_t k, uint32_t function_offset,
                                 VectorId begin, VectorId end, uint64_t* out,
                                 HashScratch& scratch) {
  scratch.signature.resize(k);
  uint64_t* signature = scratch.signature.data();
  for (VectorId id = begin; id < end; ++id) {
    family.HashRange(dataset[id], function_offset, k, signature, scratch);
    uint64_t key = 0x2545f4914f6cdd1dULL;
    for (uint32_t j = 0; j < k; ++j) key = HashCombine(key, signature[j]);
    out[id - begin] = key;
  }
}

void LshTable::ComputeBucketKeys(const LshFamily& family,
                                 DatasetView dataset, uint32_t k,
                                 uint32_t function_offset, VectorId begin,
                                 VectorId end, uint64_t* out) {
  HashScratch scratch;
  ComputeBucketKeys(family, dataset, k, function_offset, begin, end, out,
                    scratch);
}

void LshTable::BuildFromKeys(const std::vector<uint64_t>& keys) {
  BucketGrouping grouping = GroupByBucketKey(keys);
  bucket_offsets_ = std::move(grouping.offsets);
  bucket_members_ = std::move(grouping.members);
  bucket_keys_ = std::move(grouping.bucket_keys);
  bucket_of_ = std::move(grouping.bucket_of);

  const size_t num_buckets = bucket_keys_.size();
  key_to_bucket_.reserve(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) {
    key_to_bucket_.emplace(bucket_keys_[b], static_cast<uint32_t>(b));
  }

  std::vector<double> weights;
  weights.reserve(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) {
    const uint64_t size = bucket_count(b);
    const uint64_t pairs = size * (size - 1) / 2;
    num_same_bucket_pairs_ += pairs;
    if (pairs > 0) {
      sampleable_buckets_.push_back(static_cast<uint32_t>(b));
      weights.push_back(static_cast<double>(pairs));
    }
  }
  if (!weights.empty()) {
    pair_weighted_buckets_ = std::make_unique<AliasTable>(weights);
  }
}

VectorPair LshTable::SampleSameBucketPair(Rng& rng) const {
  VSJ_CHECK_MSG(pair_weighted_buckets_ != nullptr,
                "stratum H is empty: no bucket holds two vectors");
  const uint32_t b = sampleable_buckets_[pair_weighted_buckets_->Sample(rng)];
  const std::span<const VectorId> members = bucket(b);
  const size_t i = rng.Below(members.size());
  size_t j = rng.Below(members.size() - 1);
  if (j >= i) ++j;
  return VectorPair{members[i], members[j]};
}

VectorPair LshTable::SampleCrossBucketPair(Rng& rng) const {
  VSJ_CHECK_MSG(NumCrossBucketPairs() > 0, "stratum L is empty");
  while (true) {
    VectorPair pair = SamplePair(rng);
    if (!SameBucket(pair.first, pair.second)) return pair;
  }
}

VectorPair LshTable::SamplePair(Rng& rng) const {
  const size_t n = bucket_of_.size();
  VSJ_CHECK(n >= 2);
  const auto u = static_cast<VectorId>(rng.Below(n));
  auto v = static_cast<VectorId>(rng.Below(n - 1));
  if (v >= u) ++v;
  return VectorPair{u, v};
}

size_t LshTable::MemoryBytes() const {
  return bucket_keys_.size() * (sizeof(uint64_t) + sizeof(uint32_t)) +
         bucket_of_.size() * sizeof(VectorId);
}

}  // namespace vsj
