// A single LSH table D_g for g = (h_1, ..., h_k), extended with bucket
// counts (paper §4.1.1).
//
// On top of the conventional bucket → {vector ids} map, the table maintains
// everything the estimators of §4–§5 need:
//   * the bucket count b_j of every bucket,
//   * N_H = Σ_j C(b_j, 2): the number of same-bucket pairs (stratum H size),
//   * O(1) same-bucket tests via a per-vector bucket index,
//   * O(1) uniform sampling of a pair from stratum H, implemented as an
//     alias-table draw of a bucket with weight C(b_j, 2) followed by a
//     uniform pair draw inside the bucket (SampleH, Algorithm 1).
//
// Storage: buckets live in one CSR-style arena (bucket_offsets_[] into
// bucket_members_[]), not per-bucket vectors — SampleH and the bucket
// scans of the multi-table estimators walk contiguous memory, and bucket
// sizes are O(1) offset differences (no per-bucket headers to chase).
// Grouping ids into the arena is sort-based (lsh/bucket_grouper.h) and
// reproduces the historical map-based bucket order exactly.

#ifndef VSJ_LSH_LSH_TABLE_H_
#define VSJ_LSH_LSH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "vsj/lsh/lsh_family.h"
#include "vsj/util/alias_table.h"
#include "vsj/util/rng.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// An unordered pair of distinct vector ids.
struct VectorPair {
  VectorId first;
  VectorId second;
};

/// Hash table D_g with bucket counts.
class LshTable {
 public:
  /// Hashes every vector of `dataset` with functions
  /// [function_offset, function_offset + k) of `family`.
  ///
  /// The bucket key is the 64-bit combination of the k hash values; for
  /// SimHash (k one-bit values) the key is collision-free, for general
  /// families a 64-bit key makes accidental key collisions negligible
  /// (< M · 2^-64).
  LshTable(const LshFamily& family, DatasetView dataset, uint32_t k,
           uint32_t function_offset = 0);

  /// Builds the table from precomputed bucket keys (`keys[id]` = combined
  /// key of vector id, as produced by `ComputeBucketKeys`). This is the
  /// entry point of the parallel index build: key computation — the O(n·k·
  /// features) part — parallelizes trivially, while the grouping done here
  /// stays sequential and therefore identical to the single-threaded build.
  LshTable(DatasetView dataset, uint32_t k,
           const std::vector<uint64_t>& keys);

  /// Computes the combined 64-bit bucket key of vectors [begin, end) into
  /// out[0 .. end-begin): the HashCombine fold of the k hash values
  /// [function_offset, function_offset + k). Pure and thread-safe; disjoint
  /// ranges may be computed concurrently with per-caller scratches (the
  /// scratch's projection cache, if any, is sealed and shared read-only).
  static void ComputeBucketKeys(const LshFamily& family, DatasetView dataset,
                                uint32_t k, uint32_t function_offset,
                                VectorId begin, VectorId end, uint64_t* out,
                                HashScratch& scratch);

  /// Scratch-allocating overload (cold paths, tests).
  static void ComputeBucketKeys(const LshFamily& family,
                                DatasetView dataset, uint32_t k,
                                uint32_t function_offset, VectorId begin,
                                VectorId end, uint64_t* out);

  uint32_t k() const { return k_; }
  size_t num_vectors() const { return bucket_of_.size(); }

  /// Number of non-empty buckets n_g.
  size_t num_buckets() const { return bucket_keys_.size(); }

  /// Members of bucket `b`: a contiguous slice of the member arena.
  std::span<const VectorId> bucket(size_t b) const {
    return {bucket_members_.data() + bucket_offsets_[b],
            bucket_offsets_[b + 1] - bucket_offsets_[b]};
  }

  /// Bucket count b_j — an O(1) offset difference, no bucket materialized.
  uint32_t bucket_count(size_t b) const {
    return bucket_offsets_[b + 1] - bucket_offsets_[b];
  }

  /// Index of the bucket containing vector `id` (B(v) in the paper).
  uint32_t BucketOf(VectorId id) const { return bucket_of_[id]; }

  /// Bucket key g(v) for the bucket index `b`.
  uint64_t BucketKey(size_t b) const { return bucket_keys_[b]; }

  /// True iff B(u) = B(v).
  bool SameBucket(VectorId u, VectorId v) const {
    return bucket_of_[u] == bucket_of_[v];
  }

  /// N_H = Σ_j C(b_j, 2); the number of pairs in stratum H.
  uint64_t NumSameBucketPairs() const { return num_same_bucket_pairs_; }

  /// N_L = M − N_H; the number of pairs in stratum L.
  uint64_t NumCrossBucketPairs() const {
    const uint64_t n = bucket_of_.size();
    return n * (n - 1) / 2 - num_same_bucket_pairs_;
  }

  /// Uniform random pair from stratum H. Requires N_H > 0.
  VectorPair SampleSameBucketPair(Rng& rng) const;

  /// Uniform random pair from stratum L (rejection from all pairs; the
  /// expected number of rejections is N_H / M « 1). Requires N_L > 0.
  VectorPair SampleCrossBucketPair(Rng& rng) const;

  /// Uniform random pair of distinct vectors. Requires n ≥ 2.
  VectorPair SamplePair(Rng& rng) const;

  /// Estimated size of the table following the paper's §6.3 accounting:
  /// per bucket the g value (8 B) and the bucket count (4 B), plus one
  /// vector id (4 B) per indexed vector. Implementation-dependent overheads
  /// (the hash map itself) are excluded, as in the paper.
  size_t MemoryBytes() const;

  /// Map from bucket key to bucket index (used by general, non-self joins
  /// to align buckets of two tables).
  const std::unordered_map<uint64_t, uint32_t>& key_to_bucket() const {
    return key_to_bucket_;
  }

 private:
  /// Groups vectors into buckets by key and builds the sampling structures.
  void BuildFromKeys(const std::vector<uint64_t>& keys);

  uint32_t k_;
  // CSR bucket arena: bucket b's members are
  // bucket_members_[bucket_offsets_[b] .. bucket_offsets_[b+1]).
  std::vector<uint32_t> bucket_offsets_;
  std::vector<VectorId> bucket_members_;
  std::vector<uint64_t> bucket_keys_;
  std::vector<uint32_t> bucket_of_;  // vector id -> bucket index
  std::unordered_map<uint64_t, uint32_t> key_to_bucket_;
  uint64_t num_same_bucket_pairs_ = 0;
  // Alias table over buckets with >= 2 members, weight C(b_j, 2); null when
  // no bucket has 2 members.
  std::unique_ptr<AliasTable> pair_weighted_buckets_;
  std::vector<uint32_t> sampleable_buckets_;  // alias index -> bucket index
};

}  // namespace vsj

#endif  // VSJ_LSH_LSH_TABLE_H_
