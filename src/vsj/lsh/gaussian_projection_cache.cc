#include "vsj/lsh/gaussian_projection_cache.h"

#include <bit>
#include <utility>

#include "vsj/util/check.h"
#include "vsj/util/hash.h"
#include "vsj/util/thread_pool.h"

namespace vsj {

namespace {

constexpr size_t kInitialCapacity = 64;

}  // namespace

GaussianProjectionCache::GaussianProjectionCache(
    uint64_t family_tag, std::vector<uint64_t> fn_seeds)
    : family_tag_(family_tag), fn_seeds_(std::move(fn_seeds)) {
  VSJ_CHECK_MSG(!fn_seeds_.empty(), "a projection cache needs >= 1 function");
  Rehash(kInitialCapacity);
}

uint64_t GaussianProjectionCache::SlotHash(DimId dim) { return Mix64(dim); }

void GaussianProjectionCache::Rehash(size_t new_capacity) {
  std::vector<DimId> old_dims = std::move(slot_dims_);
  std::vector<uint8_t> old_states = std::move(states_);
  capacity_ = new_capacity;
  slot_dims_.assign(capacity_, 0);
  states_.assign(capacity_, kEmptySlot);
  const size_t mask = capacity_ - 1;
  for (size_t i = 0; i < old_states.size(); ++i) {
    if (old_states[i] != kOccupiedSlot) continue;
    size_t slot = SlotHash(old_dims[i]) & mask;
    while (states_[slot] != kEmptySlot) slot = (slot + 1) & mask;
    slot_dims_[slot] = old_dims[i];
    states_[slot] = kOccupiedSlot;
  }
}

size_t GaussianProjectionCache::FindOrInsertSlot(DimId dim) {
  const size_t mask = capacity_ - 1;
  size_t slot = SlotHash(dim) & mask;
  while (states_[slot] != kEmptySlot) {
    if (slot_dims_[slot] == dim) return slot;
    slot = (slot + 1) & mask;
  }
  slot_dims_[slot] = dim;
  states_[slot] = kOccupiedSlot;
  ++num_dims_;
  return slot;
}

void GaussianProjectionCache::AddDim(DimId dim) {
  VSJ_CHECK_MSG(!sealed_, "AddDim after Fill()");
  // Keep the load factor <= 1/2 so sealed lookups stay short.
  if ((num_dims_ + 1) * 2 > capacity_) {
    Rehash(std::bit_ceil(capacity_ * 2));
  }
  FindOrInsertSlot(dim);
}

void GaussianProjectionCache::AddDims(VectorRef v) {
  const DimId* dims = v.dims();
  for (size_t i = 0; i < v.size(); ++i) AddDim(dims[i]);
}

void GaussianProjectionCache::Fill(ThreadPool* pool) {
  VSJ_CHECK_MSG(!sealed_, "Fill() called twice");
  const size_t stride = RowStride();
  // Rows are dense — one per registered dim, assigned in slot order — so
  // the footprint tracks num_dims(), not the (2-4x larger) table capacity.
  row_of_slot_.assign(capacity_, 0);
  uint32_t next_row = 0;
  for (size_t slot = 0; slot < capacity_; ++slot) {
    if (states_[slot] == kOccupiedSlot) row_of_slot_[slot] = next_row++;
  }
  values_.assign(static_cast<size_t>(next_row) * stride, 0.0);
  auto fill_slot = [&](size_t slot) {
    if (states_[slot] != kOccupiedSlot) return;
    const DimId dim = slot_dims_[slot];
    double* row =
        values_.data() + static_cast<size_t>(row_of_slot_[slot]) * stride;
    for (size_t f = 0; f < stride; ++f) {
      row[f] = GaussianFromHash(dim, fn_seeds_[f]);
    }
  };
  if (pool != nullptr && pool->num_threads() > 0) {
    // Rows are independent; any schedule produces the same table.
    pool->ParallelFor(capacity_, fill_slot);
  } else {
    for (size_t slot = 0; slot < capacity_; ++slot) fill_slot(slot);
  }
  sealed_ = true;
}

size_t GaussianProjectionCache::MemoryBytes() const {
  return slot_dims_.capacity() * sizeof(DimId) +
         states_.capacity() * sizeof(uint8_t) +
         row_of_slot_.capacity() * sizeof(uint32_t) +
         values_.capacity() * sizeof(double) +
         fn_seeds_.capacity() * sizeof(uint64_t);
}

}  // namespace vsj
