// Signature database: the k hash values of every vector under a family.
//
// The Lattice-Counting adaptation (paper §3.2) analyzes the signature
// database sig(v) = (h_1(v), ..., h_k(v)); the LSH table also builds its
// bucket keys from signatures.

#ifndef VSJ_LSH_SIGNATURE_H_
#define VSJ_LSH_SIGNATURE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "vsj/lsh/lsh_family.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {

/// Row-major n × k matrix of hash values.
class SignatureDatabase {
 public:
  /// Hashes every vector of `dataset` with functions offset..offset+k-1 of
  /// `family`. `function_offset` lets multiple tables draw disjoint
  /// functions from one family.
  SignatureDatabase(const LshFamily& family, DatasetView dataset,
                    uint32_t k, uint32_t function_offset = 0);

  uint32_t k() const { return k_; }
  size_t num_vectors() const { return values_.size() / k_; }

  /// Signature of vector `id` (k values).
  std::span<const uint64_t> Of(VectorId id) const {
    return {values_.data() + static_cast<size_t>(id) * k_, k_};
  }

  /// Number of positions where the signatures of `a` and `b` agree.
  uint32_t MatchCount(VectorId a, VectorId b) const;

 private:
  uint32_t k_;
  std::vector<uint64_t> values_;
};

}  // namespace vsj

#endif  // VSJ_LSH_SIGNATURE_H_
