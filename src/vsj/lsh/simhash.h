// SimHash: Charikar's random-hyperplane LSH for cosine similarity.
//
//   h_r(v) = sign(r · v),  r ~ N(0, I_d)
//   P(h(u) = h(v)) = 1 − θ(u, v)/π,  θ = angle between u and v.
//
// The Gaussian entry r[d] for hash function j is derived on the fly from
// Mix64(d, seed_j); no d-dimensional projection matrices are stored, so the
// family supports 10^5+-dimensional vocabularies at zero memory cost.
//
// Hot path: when the caller's HashScratch carries a sealed
// GaussianProjectionCache built by this family, the per-(feature, function)
// derivation becomes a contiguous row load fed to the SIMD accumulation
// kernel (simhash_kernel.h) — bit-identical to the uncached scalar loop,
// since the cache stores exactly the GaussianFromHash values and each SIMD
// lane owns one function.

#ifndef VSJ_LSH_SIMHASH_H_
#define VSJ_LSH_SIMHASH_H_

#include "vsj/lsh/lsh_family.h"

namespace vsj {

/// Random-hyperplane family (Charikar, STOC 2002). Hash values are 0/1.
class SimHashFamily final : public LshFamily {
 public:
  explicit SimHashFamily(uint64_t seed = 0);

  std::unique_ptr<GaussianProjectionCache> MakeProjectionCache(
      DatasetView dataset, uint32_t num_functions,
      ThreadPool* pool) const override;

  double CollisionProbability(double similarity) const override;
  SimilarityMeasure measure() const override {
    return SimilarityMeasure::kCosine;
  }
  const char* name() const override { return "simhash"; }

 protected:
  void DoHashRange(VectorRef v, uint32_t function_offset, uint32_t k,
                   uint64_t* out, HashScratch& scratch) const override;

 private:
  uint64_t seed_;
};

}  // namespace vsj

#endif  // VSJ_LSH_SIMHASH_H_
