#include "vsj/lsh/dynamic_lsh_table.h"

#include "vsj/util/check.h"
#include "vsj/util/hash.h"

namespace vsj {

namespace {

inline double PairWeight(size_t bucket_size) {
  return 0.5 * static_cast<double>(bucket_size) *
         static_cast<double>(bucket_size - 1);
}

}  // namespace

DynamicLshTable::DynamicLshTable(const LshFamily& family, uint32_t k,
                                 uint32_t function_offset)
    : family_(&family), k_(k), function_offset_(function_offset) {
  VSJ_CHECK(k > 0);
}

uint64_t DynamicLshTable::BucketKeyFor(VectorRef vector) const {
  std::vector<uint64_t> signature(k_);
  family_->HashRange(vector, function_offset_, k_, signature.data());
  uint64_t key = 0x2545f4914f6cdd1dULL;
  for (uint32_t j = 0; j < k_; ++j) key = HashCombine(key, signature[j]);
  return key;
}

void DynamicLshTable::Insert(VectorId id, VectorRef vector) {
  VSJ_CHECK_MSG(!Contains(id), "vector %u already present", id);
  const uint64_t key = BucketKeyFor(vector);
  auto [it, inserted] =
      key_to_bucket_.try_emplace(key, static_cast<uint32_t>(buckets_.size()));
  if (inserted) {
    buckets_.emplace_back();
    const size_t slot = pair_weights_.Append();
    VSJ_DCHECK(slot == buckets_.size() - 1);
    (void)slot;
  }
  std::vector<VectorId>& bucket = buckets_[it->second];
  if (bucket.empty()) ++num_nonempty_buckets_;
  num_same_bucket_pairs_ += bucket.size();  // new pairs with each member
  members_[id] =
      Membership{it->second, static_cast<uint32_t>(bucket.size())};
  bucket.push_back(id);
  pair_weights_.Set(it->second, PairWeight(bucket.size()));
}

void DynamicLshTable::Remove(VectorId id) {
  auto it = members_.find(id);
  VSJ_CHECK_MSG(it != members_.end(), "vector %u not present", id);
  const Membership membership = it->second;
  std::vector<VectorId>& bucket = buckets_[membership.bucket];
  // Swap-pop within the bucket; fix the displaced member's position.
  const VectorId last = bucket.back();
  bucket[membership.position] = last;
  bucket.pop_back();
  if (last != id) members_[last].position = membership.position;
  members_.erase(it);
  num_same_bucket_pairs_ -= bucket.size();
  if (bucket.empty()) --num_nonempty_buckets_;
  pair_weights_.Set(membership.bucket, PairWeight(bucket.size()));
  // The bucket slot and key mapping stay allocated: a reinserted vector
  // with the same signature reuses them.
}

std::vector<VectorId> DynamicLshTable::ReplayOrder() const {
  std::vector<VectorId> order;
  order.reserve(members_.size());
  for (const std::vector<VectorId>& bucket : buckets_) {
    order.insert(order.end(), bucket.begin(), bucket.end());
  }
  return order;
}

bool DynamicLshTable::SameBucket(VectorId u, VectorId v) const {
  auto iu = members_.find(u);
  auto iv = members_.find(v);
  if (iu == members_.end() || iv == members_.end()) return false;
  return iu->second.bucket == iv->second.bucket;
}

uint64_t DynamicLshTable::NumCrossBucketPairs() const {
  const uint64_t n = members_.size();
  return n * (n - 1) / 2 - num_same_bucket_pairs_;
}

VectorPair DynamicLshTable::SampleSameBucketPair(Rng& rng) const {
  VSJ_CHECK_MSG(num_same_bucket_pairs_ > 0, "stratum H is empty");
  const size_t b = pair_weights_.Sample(rng);
  const auto& members = buckets_[b];
  VSJ_DCHECK(members.size() >= 2);
  const size_t i = rng.Below(members.size());
  size_t j = rng.Below(members.size() - 1);
  if (j >= i) ++j;
  return VectorPair{members[i], members[j]};
}

}  // namespace vsj
