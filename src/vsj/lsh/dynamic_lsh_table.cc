#include "vsj/lsh/dynamic_lsh_table.h"

#include <algorithm>
#include <bit>

#include "vsj/obs/obs.h"
#include "vsj/util/check.h"
#include "vsj/util/hash.h"

namespace vsj {

namespace {

inline double PairWeight(size_t bucket_size) {
  return 0.5 * static_cast<double>(bucket_size) *
         static_cast<double>(bucket_size - 1);
}

/// Initial reserved capacity of a fresh bucket slot.
constexpr uint32_t kInitialBucketCapacity = 2;

/// Compaction floor: arenas below this never compact (the bookkeeping
/// would outweigh the bytes).
constexpr size_t kMinArenaForCompaction = 1024;

/// The capacity CompactArena trims a bucket of `size` members to: the next
/// power of two (so growth stays geometric), never below the initial
/// capacity — empty slots keep room for a same-signature reinsertion.
inline uint32_t TrimmedCapacity(uint32_t size) {
  return std::max(kInitialBucketCapacity, std::bit_ceil(size));
}

}  // namespace

DynamicLshTable::DynamicLshTable(const LshFamily& family, uint32_t k,
                                 uint32_t function_offset)
    : family_(&family), k_(k), function_offset_(function_offset) {
  VSJ_CHECK(k > 0);
}

uint64_t DynamicLshTable::BucketKeyFor(VectorRef vector,
                                       HashScratch& scratch) const {
  scratch.signature.resize(k_);
  uint64_t* signature = scratch.signature.data();
  family_->HashRange(vector, function_offset_, k_, signature, scratch);
  uint64_t key = 0x2545f4914f6cdd1dULL;
  for (uint32_t j = 0; j < k_; ++j) key = HashCombine(key, signature[j]);
  return key;
}

void DynamicLshTable::GrowBucket(uint32_t b) {
  // A grow relocates the bucket's members to fresh arena space — rare
  // (amortized by doubling), so a counter here is off the common path.
  VSJ_COUNTER_ADD("lsh.dyn.relocations", 1);
  BucketSlot& slot = slots_[b];
  const uint32_t new_capacity = slot.capacity * 2;
  const auto new_offset = static_cast<uint32_t>(member_arena_.size());
  member_arena_.resize(member_arena_.size() + new_capacity);
  std::copy_n(member_arena_.begin() + slot.offset, slot.size,
              member_arena_.begin() + new_offset);
  slot.offset = new_offset;
  slot.capacity = new_capacity;
  // The abandoned region is garbage; MaybeCompactArena reclaims it. The
  // compaction must NOT run here: Insert still has a member write pending
  // against the grown bucket's slack, which trimming would take away.
}

void DynamicLshTable::MaybeCompactArena() {
  // O(1) trigger. A compacted arena is Σ max(2, bit_ceil(size)) ≤
  // 2·members + 2·slots, so exceeding twice that guarantees the rebuild at
  // least halves the arena — geometric shrink, amortized O(1) per
  // mutation. With pure doubling growth garbage stays below the reserved
  // footprint (every relocation adds equally to both); the trigger only
  // trips once churn shrinks buckets far below their historical capacity.
  if (member_arena_.size() <= kMinArenaForCompaction) return;
  if (member_arena_.size() >
      4 * (members_.size() + slots_.size())) {
    CompactArena();
  }
}

void DynamicLshTable::CompactArena() {
  VSJ_COUNTER_ADD("lsh.dyn.compactions", 1);
  VSJ_TRACE_SPAN(compact_span, "lsh.dyn.compact_ns");
  size_t trimmed_total = 0;
  for (const BucketSlot& slot : slots_) {
    trimmed_total += TrimmedCapacity(slot.size);
  }
  std::vector<VectorId> fresh(trimmed_total);
  uint32_t offset = 0;
  for (BucketSlot& slot : slots_) {
    std::copy_n(member_arena_.begin() + slot.offset, slot.size,
                fresh.begin() + offset);
    slot.offset = offset;
    slot.capacity = TrimmedCapacity(slot.size);
    offset += slot.capacity;
  }
  member_arena_ = std::move(fresh);
}

void DynamicLshTable::Insert(VectorId id, VectorRef vector,
                             HashScratch& scratch) {
  VSJ_CHECK_MSG(!Contains(id), "vector %u already present", id);
  const uint64_t key = BucketKeyFor(vector, scratch);
  auto [it, inserted] =
      key_to_bucket_.try_emplace(key, static_cast<uint32_t>(slots_.size()));
  if (inserted) {
    slots_.push_back(BucketSlot{static_cast<uint32_t>(member_arena_.size()),
                                0, kInitialBucketCapacity});
    member_arena_.resize(member_arena_.size() + kInitialBucketCapacity);
    const size_t fenwick_slot = pair_weights_.Append();
    VSJ_DCHECK(fenwick_slot == slots_.size() - 1);
    (void)fenwick_slot;
  }
  const uint32_t b = it->second;
  if (slots_[b].size == slots_[b].capacity) GrowBucket(b);
  BucketSlot& slot = slots_[b];
  if (slot.size == 0) ++num_nonempty_buckets_;
  num_same_bucket_pairs_ += slot.size;  // new pairs with each member
  members_[id] = Membership{b, slot.size};
  member_arena_[slot.offset + slot.size] = id;
  ++slot.size;
  pair_weights_.Set(b, PairWeight(slot.size));
  MaybeCompactArena();
}

void DynamicLshTable::Insert(VectorId id, VectorRef vector) {
  HashScratch scratch;
  Insert(id, vector, scratch);
}

void DynamicLshTable::Remove(VectorId id) {
  auto it = members_.find(id);
  VSJ_CHECK_MSG(it != members_.end(), "vector %u not present", id);
  const Membership membership = it->second;
  BucketSlot& slot = slots_[membership.bucket];
  // Swap-pop within the bucket; fix the displaced member's position.
  const VectorId last = member_arena_[slot.offset + slot.size - 1];
  member_arena_[slot.offset + membership.position] = last;
  --slot.size;
  if (last != id) members_[last].position = membership.position;
  members_.erase(it);
  num_same_bucket_pairs_ -= slot.size;
  if (slot.size == 0) --num_nonempty_buckets_;
  pair_weights_.Set(membership.bucket, PairWeight(slot.size));
  // The bucket slot and the key mapping stay allocated: a reinserted
  // vector with the same signature reuses them. Reserved slack persists
  // until mass removals trip the compaction trigger.
  MaybeCompactArena();
}

std::vector<VectorId> DynamicLshTable::ReplayOrder() const {
  std::vector<VectorId> order;
  order.reserve(members_.size());
  for (uint32_t b = 0; b < slots_.size(); ++b) {
    const std::span<const VectorId> bucket = BucketMembers(b);
    order.insert(order.end(), bucket.begin(), bucket.end());
  }
  return order;
}

bool DynamicLshTable::SameBucket(VectorId u, VectorId v) const {
  auto iu = members_.find(u);
  auto iv = members_.find(v);
  if (iu == members_.end() || iv == members_.end()) return false;
  return iu->second.bucket == iv->second.bucket;
}

uint64_t DynamicLshTable::NumCrossBucketPairs() const {
  const uint64_t n = members_.size();
  return n * (n - 1) / 2 - num_same_bucket_pairs_;
}

VectorPair DynamicLshTable::SampleSameBucketPair(Rng& rng) const {
  VSJ_CHECK_MSG(num_same_bucket_pairs_ > 0, "stratum H is empty");
  const size_t b = pair_weights_.Sample(rng);
  const std::span<const VectorId> members =
      BucketMembers(static_cast<uint32_t>(b));
  VSJ_DCHECK(members.size() >= 2);
  const size_t i = rng.Below(members.size());
  size_t j = rng.Below(members.size() - 1);
  if (j >= i) ++j;
  return VectorPair{members[i], members[j]};
}

}  // namespace vsj
