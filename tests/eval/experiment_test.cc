#include "vsj/eval/experiment.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/core/random_pair_sampling.h"

namespace vsj {
namespace {

TEST(ExperimentTest, RunsRequestedTrials) {
  VectorDataset dataset = testing::SmallClusteredCorpus(200, 1);
  RandomPairSampling rs(dataset, SimilarityMeasure::kCosine,
                        {.sample_size = 100});
  const TrialSeries series = RunTrials(rs, 0.5, 12, 7);
  EXPECT_EQ(series.estimates.size(), 12u);
  EXPECT_EQ(series.pairs_evaluated.size(), 12u);
  EXPECT_DOUBLE_EQ(series.tau, 0.5);
  EXPECT_GE(series.mean_runtime_ms, 0.0);
}

TEST(ExperimentTest, ReproducibleForSameSeed) {
  VectorDataset dataset = testing::SmallClusteredCorpus(200, 2);
  RandomPairSampling rs(dataset, SimilarityMeasure::kCosine,
                        {.sample_size = 500});
  const TrialSeries a = RunTrials(rs, 0.3, 5, 42);
  const TrialSeries b = RunTrials(rs, 0.3, 5, 42);
  EXPECT_EQ(a.estimates, b.estimates);
}

TEST(ExperimentTest, AddingTrialsKeepsPrefix) {
  VectorDataset dataset = testing::SmallClusteredCorpus(200, 3);
  RandomPairSampling rs(dataset, SimilarityMeasure::kCosine,
                        {.sample_size = 500});
  const TrialSeries five = RunTrials(rs, 0.3, 5, 9);
  const TrialSeries ten = RunTrials(rs, 0.3, 10, 9);
  for (size_t t = 0; t < 5; ++t) {
    EXPECT_DOUBLE_EQ(five.estimates[t], ten.estimates[t]);
  }
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  VectorDataset dataset = testing::SmallClusteredCorpus(300, 4);
  RandomPairSampling rs(dataset, SimilarityMeasure::kCosine,
                        {.sample_size = 200});
  const TrialSeries a = RunTrials(rs, 0.2, 8, 1);
  const TrialSeries b = RunTrials(rs, 0.2, 8, 2);
  EXPECT_NE(a.estimates, b.estimates);
}

TEST(ExperimentTest, RunAndScoreWiresThrough) {
  VectorDataset dataset = testing::SmallClusteredCorpus(200, 5);
  RandomPairSampling rs(dataset, SimilarityMeasure::kCosine,
                        {.sample_size = 2000});
  const ErrorStats stats = RunAndScore(rs, 0.1, 10, 3, 1000.0);
  EXPECT_EQ(stats.num_trials, 10u);
  EXPECT_DOUBLE_EQ(stats.true_size, 1000.0);
}

}  // namespace
}  // namespace vsj
