#include "vsj/eval/ground_truth.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/join/brute_force_join.h"

namespace vsj {
namespace {

TEST(GroundTruthTest, StandardThresholdGrid) {
  const auto taus = StandardThresholds();
  ASSERT_EQ(taus.size(), 10u);
  EXPECT_DOUBLE_EQ(taus.front(), 0.1);
  EXPECT_DOUBLE_EQ(taus.back(), 1.0);
}

TEST(GroundTruthTest, JoinSizesMatchBruteForce) {
  VectorDataset dataset = testing::SmallClusteredCorpus(250, 1);
  GroundTruth truth(dataset, SimilarityMeasure::kCosine,
                    StandardThresholds());
  for (double tau : StandardThresholds()) {
    EXPECT_EQ(truth.JoinSize(tau),
              BruteForceJoinSize(dataset, SimilarityMeasure::kCosine, tau))
        << "tau = " << tau;
  }
}

TEST(GroundTruthTest, SelectivityIsJoinSizeOverM) {
  VectorDataset dataset = testing::SmallClusteredCorpus(200, 2);
  GroundTruth truth(dataset, SimilarityMeasure::kCosine, {0.5});
  EXPECT_DOUBLE_EQ(truth.Selectivity(0.5),
                   static_cast<double>(truth.JoinSize(0.5)) /
                       static_cast<double>(dataset.NumPairs()));
  EXPECT_EQ(truth.TotalPairs(), dataset.NumPairs());
}

TEST(GroundTruthTest, JoinSizeMonotoneInTau) {
  VectorDataset dataset = testing::SmallClusteredCorpus(300, 3);
  GroundTruth truth(dataset, SimilarityMeasure::kCosine,
                    StandardThresholds());
  uint64_t prev = dataset.NumPairs();
  for (double tau : StandardThresholds()) {
    EXPECT_LE(truth.JoinSize(tau), prev);
    prev = truth.JoinSize(tau);
  }
}

}  // namespace
}  // namespace vsj
