#include "vsj/eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(MetricsTest, PerfectEstimatesHaveZeroErrors) {
  const ErrorStats stats = ComputeErrorStats({100.0, 100.0, 100.0}, 100.0);
  EXPECT_EQ(stats.num_trials, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_estimate, 100.0);
  EXPECT_DOUBLE_EQ(stats.std_dev, 0.0);
  EXPECT_EQ(stats.num_overestimates, 0u);
  EXPECT_EQ(stats.num_underestimates, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_absolute_relative_error, 0.0);
}

TEST(MetricsTest, SeparatesOverAndUnderEstimation) {
  // 150 (+50%), 50 (−50%), 100 (exact).
  const ErrorStats stats = ComputeErrorStats({150.0, 50.0, 100.0}, 100.0);
  EXPECT_EQ(stats.num_overestimates, 1u);
  EXPECT_EQ(stats.num_underestimates, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_overestimation, 0.5);
  EXPECT_DOUBLE_EQ(stats.mean_underestimation, -0.5);
  EXPECT_NEAR(stats.mean_absolute_relative_error, 1.0 / 3.0, 1e-12);
}

TEST(MetricsTest, BigErrorCounts) {
  // 10× over, 10× under, zero estimate.
  const ErrorStats stats =
      ComputeErrorStats({1000.0, 10.0, 0.0, 100.0}, 100.0);
  EXPECT_EQ(stats.num_big_overestimates, 1u);
  EXPECT_EQ(stats.num_big_underestimates, 2u);  // 10.0 and 0.0
}

TEST(MetricsTest, StdDevMatchesHandComputation) {
  const ErrorStats stats = ComputeErrorStats({90.0, 110.0}, 100.0);
  EXPECT_DOUBLE_EQ(stats.mean_estimate, 100.0);
  EXPECT_DOUBLE_EQ(stats.std_dev, 10.0);
}

TEST(MetricsTest, UnderestimationCappedAtMinus100Percent) {
  const ErrorStats stats = ComputeErrorStats({0.0}, 50.0);
  EXPECT_DOUBLE_EQ(stats.mean_underestimation, -1.0);
}

TEST(MetricsDeathTest, RejectsEmptyEstimates) {
  EXPECT_DEATH(ComputeErrorStats({}, 10.0), "CHECK");
}

TEST(MetricsDeathTest, RejectsZeroTrueSize) {
  EXPECT_DEATH(ComputeErrorStats({1.0}, 0.0), "undefined");
}

}  // namespace
}  // namespace vsj
