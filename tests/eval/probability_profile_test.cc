#include "vsj/eval/probability_profile.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace vsj {
namespace {

class ProbabilityProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setup_ = testing::MakeCosineSetup(500, 8, 1, 3);
    truth_ = std::make_unique<GroundTruth>(
        setup_.dataset, SimilarityMeasure::kCosine, StandardThresholds());
    rows_ = ComputeProbabilityProfile(setup_.dataset, setup_.index->table(0),
                                      SimilarityMeasure::kCosine, *truth_);
  }

  testing::CosineSetup setup_;
  std::unique_ptr<GroundTruth> truth_;
  std::vector<ProbabilityRow> rows_;
};

TEST_F(ProbabilityProfileTest, OneRowPerThreshold) {
  EXPECT_EQ(rows_.size(), StandardThresholds().size());
}

TEST_F(ProbabilityProfileTest, ProbabilitiesInRange) {
  for (const ProbabilityRow& row : rows_) {
    EXPECT_GE(row.p_true, 0.0);
    EXPECT_LE(row.p_true, 1.0);
    EXPECT_GE(row.p_true_given_h, 0.0);
    EXPECT_LE(row.p_true_given_h, 1.0);
    EXPECT_GE(row.p_h_given_true, 0.0);
    EXPECT_LE(row.p_h_given_true, 1.0);
    EXPECT_GE(row.p_true_given_l, 0.0);
    EXPECT_LE(row.p_true_given_l, 1.0);
  }
}

TEST_F(ProbabilityProfileTest, JoinSizeMatchesGroundTruth) {
  for (const ProbabilityRow& row : rows_) {
    EXPECT_EQ(row.join_size, truth_->JoinSize(row.tau));
    EXPECT_LE(row.true_in_h, row.join_size);
  }
}

TEST_F(ProbabilityProfileTest, BayesIdentityHolds) {
  // J = J_H + J_L where J_L = β·N_L: check P(T) decomposition
  // J = P(T|H)·N_H + P(T|L)·N_L exactly.
  const LshTable& table = setup_.index->table(0);
  const double n_h = static_cast<double>(table.NumSameBucketPairs());
  const double n_l = static_cast<double>(table.NumCrossBucketPairs());
  for (const ProbabilityRow& row : rows_) {
    const double reconstructed =
        row.p_true_given_h * n_h + row.p_true_given_l * n_l;
    EXPECT_NEAR(reconstructed, static_cast<double>(row.join_size),
                std::max(1e-6, row.join_size * 1e-9));
  }
}

TEST_F(ProbabilityProfileTest, PHGivenTrueIncreasesWithTau) {
  // The paper's Table 1 signature: at high τ most true pairs are in the
  // same bucket. Check the trend between τ = 0.2 and τ = 0.9 when both are
  // defined.
  double low = -1.0, high = -1.0;
  for (const ProbabilityRow& row : rows_) {
    if (row.tau == 0.2 && row.join_size > 0) low = row.p_h_given_true;
    if (row.tau == 0.9 && row.join_size > 0) high = row.p_h_given_true;
  }
  if (low >= 0.0 && high >= 0.0) {
    EXPECT_GE(high, low);
  }
}

TEST_F(ProbabilityProfileTest, AlphaExceedsBeta) {
  // P(T|H) ≥ P(T|L): LSH groups similar pairs (whenever both defined).
  for (const ProbabilityRow& row : rows_) {
    if (row.join_size == 0) continue;
    EXPECT_GE(row.p_true_given_h + 1e-12, row.p_true_given_l)
        << "tau = " << row.tau;
  }
}

TEST(TheoremThresholdsTest, MatchesFormulae) {
  const TheoremThresholds t = ComputeTheoremThresholds(1024);
  EXPECT_NEAR(t.alpha_floor, 10.0 / 1024.0, 1e-12);
  EXPECT_NEAR(t.beta_high_ceiling, 1.0 / 1024.0, 1e-12);
}

}  // namespace
}  // namespace vsj
