// TraceSpan and TraceCollector: spans feed the registry histogram and the
// collector under the right enable flags, End() is idempotent, and the
// Chrome trace serialization keeps nanosecond resolution as zero-padded
// microsecond fractions.
//
// The collector and registry are process singletons; every test uses
// unique span names, clears the global collector, and restores both
// enable flags to off.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "vsj/obs/metrics.h"
#include "vsj/obs/trace.h"

namespace vsj::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EnableMetrics(false);
    EnableTracing(false);
    TraceCollector::Global().Clear();
  }
  void TearDown() override {
    EnableMetrics(false);
    EnableTracing(false);
    TraceCollector::Global().Clear();
  }
};

TEST_F(TraceTest, SpanFeedsHistogramWhenMetricsOn) {
  EnableMetrics(true);
  {
    TraceSpan span("tracetest.metrics_only_ns");
  }
  EnableMetrics(false);
  const RegistrySnapshot snapshot = MetricRegistry::Global().Snapshot();
  const MetricSample* sample = snapshot.Find("tracetest.metrics_only_ns");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->histogram.count, 1u);
  // Metrics without tracing: no collector event.
  EXPECT_EQ(TraceCollector::Global().size(), 0u);
}

TEST_F(TraceTest, SpanFeedsCollectorWhenTracingOn) {
  EnableTracing(true);
  {
    TraceSpan span("tracetest.tracing_only_ns");
  }
  EnableTracing(false);
  EXPECT_EQ(TraceCollector::Global().size(), 1u);
  // Tracing without metrics: the histogram name must not even register.
  const RegistrySnapshot snapshot = MetricRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.Find("tracetest.tracing_only_ns"), nullptr);
}

TEST_F(TraceTest, SpanIsInertWhenBothOff) {
  {
    TraceSpan span("tracetest.inert_ns");
  }
  EXPECT_EQ(TraceCollector::Global().size(), 0u);
  EXPECT_EQ(
      MetricRegistry::Global().Snapshot().Find("tracetest.inert_ns"),
      nullptr);
}

TEST_F(TraceTest, EndIsIdempotent) {
  EnableMetrics(true);
  EnableTracing(true);
  TraceSpan span("tracetest.idempotent_ns");
  span.End();
  span.End();  // second End and the destructor must both be no-ops
  EnableMetrics(false);
  EnableTracing(false);
  EXPECT_EQ(TraceCollector::Global().size(), 1u);
  const RegistrySnapshot snapshot = MetricRegistry::Global().Snapshot();
  const MetricSample* sample = snapshot.Find("tracetest.idempotent_ns");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->histogram.count, 1u);
}

TEST_F(TraceTest, NullSpanCompilesAndDoesNothing) {
  NullSpan span;
  span.End();
  EXPECT_EQ(TraceCollector::Global().size(), 0u);
}

TEST_F(TraceTest, ChromeTraceKeepsNanosecondResolution) {
  TraceCollector collector;
  collector.Append("alpha", 12005, 3);        // ts 12.005us, dur 0.003us
  collector.Append("beta", 2000000, 1500000); // ts 2000.000us, dur 1500.000us
  std::ostringstream out;
  collector.WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Sub-microsecond parts appear as zero-padded fractions.
  EXPECT_NE(json.find("\"ts\":12.005"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.003"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1500.000"), std::string::npos);
}

TEST_F(TraceTest, ClearResetsSizeAndDropped) {
  TraceCollector collector;
  collector.Append("x", 1, 1);
  collector.Append("y", 2, 2);
  EXPECT_EQ(collector.size(), 2u);
  collector.Clear();
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_EQ(collector.dropped(), 0u);
  std::ostringstream out;
  collector.WriteChromeTrace(out);
  EXPECT_NE(out.str().find("{\"traceEvents\":["), std::string::npos);
}

TEST_F(TraceTest, EventsBeyondTheCapCountAsDropped) {
  TraceCollector collector;
  for (size_t i = 0; i < TraceCollector::kMaxEvents; ++i) {
    collector.Append("fill", i, 1);
  }
  EXPECT_EQ(collector.size(), TraceCollector::kMaxEvents);
  EXPECT_EQ(collector.dropped(), 0u);
  collector.Append("overflow", 0, 1);
  collector.Append("overflow", 1, 1);
  EXPECT_EQ(collector.size(), TraceCollector::kMaxEvents);
  EXPECT_EQ(collector.dropped(), 2u);
  collector.Clear();
  EXPECT_EQ(collector.dropped(), 0u);
}

}  // namespace
}  // namespace vsj::obs
