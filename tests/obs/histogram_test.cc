// Histogram math: slot mapping over the full uint64 range, percentile
// bounds within one bucket width, associative snapshot merging, signed
// underflow clamping, and data-race-free concurrent Record/Snapshot (the
// TSan leg runs this binary).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "vsj/obs/metrics.h"

namespace vsj::obs {
namespace {

TEST(HistogramSlotTest, ExactBelowSubBucketCount) {
  for (uint64_t v = 0; v < Histogram::kSubBucketCount; ++v) {
    EXPECT_EQ(Histogram::SlotFor(v), v);
    EXPECT_EQ(Histogram::SlotLowerBound(v), v);
    EXPECT_EQ(Histogram::SlotUpperBound(v), v);
  }
}

TEST(HistogramSlotTest, SlotsAreContiguousAtTheLogBoundary) {
  // Values 32..63 land in the first log octave with shift 0, so they stay
  // exact; the first widening happens at 64.
  for (uint64_t v = Histogram::kSubBucketCount;
       v < 2 * Histogram::kSubBucketCount; ++v) {
    EXPECT_EQ(Histogram::SlotLowerBound(Histogram::SlotFor(v)), v);
    EXPECT_EQ(Histogram::SlotUpperBound(Histogram::SlotFor(v)), v);
  }
  EXPECT_EQ(Histogram::SlotFor(64), Histogram::SlotFor(65));
}

TEST(HistogramSlotTest, BoundsBracketTheValueEverywhere) {
  std::vector<uint64_t> probes = {0, 1, 31, 32, 63, 64, 65, 100, 1000,
                                  12345, 1u << 20, (1ull << 40) + 17};
  probes.push_back(UINT64_MAX);
  probes.push_back(UINT64_MAX - 1);
  for (uint64_t v : probes) {
    const size_t slot = Histogram::SlotFor(v);
    ASSERT_LT(slot, Histogram::kNumSlots) << v;
    EXPECT_LE(Histogram::SlotLowerBound(slot), v) << v;
    EXPECT_GE(Histogram::SlotUpperBound(slot), v) << v;
    EXPECT_EQ(Histogram::SlotFor(Histogram::SlotLowerBound(slot)), slot) << v;
    EXPECT_EQ(Histogram::SlotFor(Histogram::SlotUpperBound(slot)), slot) << v;
  }
  // The very last slot exists and tops out at UINT64_MAX: no overflow
  // bucket is ever needed.
  EXPECT_EQ(Histogram::SlotFor(UINT64_MAX), Histogram::kNumSlots - 1);
  EXPECT_EQ(Histogram::SlotUpperBound(Histogram::kNumSlots - 1), UINT64_MAX);
}

TEST(HistogramTest, PercentilesAreWithinOneBucketWidth) {
  Histogram h;
  std::vector<uint64_t> values;
  for (uint64_t i = 1; i <= 1000; ++i) {
    const uint64_t v = i * 97 + (i * i) % 1013;  // deterministic spread
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snapshot = h.Snapshot();
  ASSERT_EQ(snapshot.count, values.size());
  for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(p / 100.0 * values.size())));
    const uint64_t truth = values[rank - 1];
    const uint64_t reported = snapshot.ValueAtPercentile(p);
    // Never below the true percentile, at most one bucket width above it:
    // bucket upper bounds are within a relative 1/kSubBucketCount of any
    // member value.
    EXPECT_GE(reported, truth) << "p" << p;
    const double max_rel =
        1.0 / static_cast<double>(Histogram::kSubBucketCount);
    EXPECT_LE(static_cast<double>(reported),
              static_cast<double>(truth) * (1.0 + max_rel) + 1.0)
        << "p" << p;
  }
}

TEST(HistogramTest, SmallValuesReportExactPercentiles) {
  Histogram h;
  for (uint64_t v = 0; v < 20; ++v) h.Record(v);
  const HistogramSnapshot snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.ValueAtPercentile(50.0), 9u);   // rank 10 of 20
  EXPECT_EQ(snapshot.ValueAtPercentile(100.0), 19u);
  EXPECT_EQ(snapshot.ValueAtPercentile(0.0), 0u);
  EXPECT_EQ(snapshot.max, 19u);
  EXPECT_EQ(snapshot.sum, 190u);
}

TEST(HistogramTest, EmptySnapshotReportsZero) {
  Histogram h;
  const HistogramSnapshot snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.ValueAtPercentile(50.0), 0u);
  EXPECT_EQ(snapshot.Mean(), 0.0);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  Histogram a, b, c;
  for (uint64_t v = 1; v < 500; v += 3) a.Record(v * 11);
  for (uint64_t v = 1; v < 400; v += 2) b.Record(v * 1000);
  for (uint64_t v = 1; v < 100; ++v) c.Record(v);

  auto merged = [](const HistogramSnapshot& x, const HistogramSnapshot& y) {
    HistogramSnapshot out = x;
    out.Merge(y);
    return out;
  };
  const HistogramSnapshot sa = a.Snapshot(), sb = b.Snapshot(),
                          sc = c.Snapshot();
  const HistogramSnapshot left = merged(merged(sa, sb), sc);
  const HistogramSnapshot right = merged(sa, merged(sb, sc));
  const HistogramSnapshot swapped = merged(merged(sc, sb), sa);
  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.sum, right.sum);
  EXPECT_EQ(left.max, right.max);
  EXPECT_EQ(left.slots, right.slots);
  EXPECT_EQ(left.slots, swapped.slots);
  for (double p : {50.0, 99.0, 99.9}) {
    EXPECT_EQ(left.ValueAtPercentile(p), right.ValueAtPercentile(p));
    EXPECT_EQ(left.ValueAtPercentile(p), swapped.ValueAtPercentile(p));
  }
}

TEST(HistogramTest, NegativeValuesClampWithUnderflowCount) {
  Histogram h;
  h.RecordSigned(-5);
  h.RecordSigned(-1);
  h.RecordSigned(7);
  const HistogramSnapshot snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.underflow, 2u);
  EXPECT_EQ(snapshot.count, 3u);  // clamped zeros still count
  EXPECT_EQ(snapshot.max, 7u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(123);
  h.RecordSigned(-1);
  h.Reset();
  const HistogramSnapshot snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.sum, 0u);
  EXPECT_EQ(snapshot.max, 0u);
  EXPECT_EQ(snapshot.underflow, 0u);
}

TEST(HistogramTest, ConcurrentRecordAndSnapshotIsRaceFree) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + i % 997);
      }
    });
  }
  // Interleaved snapshots must stay internally consistent: count always
  // equals the slot sum by construction (Snapshot recomputes it).
  for (int s = 0; s < 50; ++s) {
    const HistogramSnapshot snapshot = h.Snapshot();
    uint64_t slot_total = 0;
    for (uint64_t c : snapshot.slots) slot_total += c;
    EXPECT_EQ(snapshot.count, slot_total);
  }
  for (std::thread& t : recorders) t.join();
  EXPECT_EQ(h.Snapshot().count, kThreads * kPerThread);
}

}  // namespace
}  // namespace vsj::obs
