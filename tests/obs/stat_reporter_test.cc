// StatReporter and the standalone table/JSON renderers, driven by
// hand-fabricated RegistrySnapshots so rates and percentiles are
// deterministic.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "vsj/obs/metrics.h"
#include "vsj/obs/stat_reporter.h"

namespace vsj::obs {
namespace {

MetricSample CounterSample(const std::string& name, uint64_t value) {
  MetricSample sample;
  sample.name = name;
  sample.type = MetricType::kCounter;
  sample.counter_value = value;
  return sample;
}

MetricSample GaugeSample(const std::string& name, int64_t value) {
  MetricSample sample;
  sample.name = name;
  sample.type = MetricType::kGauge;
  sample.gauge_value = value;
  return sample;
}

MetricSample HistogramSample(const std::string& name,
                             const Histogram& histogram) {
  MetricSample sample;
  sample.name = name;
  sample.type = MetricType::kHistogram;
  sample.histogram = histogram.Snapshot();
  return sample;
}

TEST(PrintMetricsTableTest, RendersCountersGaugesAndHistograms) {
  Histogram lat;
  for (uint64_t i = 1; i <= 100; ++i) lat.Record(i * 1000);  // 1us..100us

  RegistrySnapshot snapshot;
  snapshot.taken_at_ns = 2'000'000'000;
  snapshot.samples.push_back(CounterSample("test.ops", 100));
  snapshot.samples.push_back(CounterSample("test.zero", 0));  // skipped
  snapshot.samples.push_back(GaugeSample("test.depth", 7));
  snapshot.samples.push_back(HistogramSample("test.latency_ns", lat));

  std::ostringstream out;
  PrintMetricsTable(snapshot, nullptr, out, "unit test");
  const std::string text = out.str();
  EXPECT_NE(text.find("unit test"), std::string::npos);
  EXPECT_NE(text.find("test.ops"), std::string::npos);
  EXPECT_NE(text.find("test.depth"), std::string::npos);
  EXPECT_NE(text.find("test.latency_ns"), std::string::npos);
  // Zero-valued metrics are suppressed to keep live tables readable.
  EXPECT_EQ(text.find("test.zero"), std::string::npos);
  // _ns histograms render as durations (the p50 of 1..100us is ~50us, so a
  // "us" suffix must appear somewhere in the row).
  EXPECT_NE(text.find("us"), std::string::npos);
}

TEST(PrintMetricsTableTest, RatesUseThePreviousSnapshotDelta) {
  RegistrySnapshot previous;
  previous.taken_at_ns = 1'000'000'000;
  previous.samples.push_back(CounterSample("test.rate", 50));

  RegistrySnapshot current;
  current.taken_at_ns = 3'000'000'000;  // 2 seconds later
  current.samples.push_back(CounterSample("test.rate", 150));

  std::ostringstream out;
  PrintMetricsTable(current, &previous, out);
  // (150 - 50) events / 2 s = 50/s.
  EXPECT_NE(out.str().find("50/s"), std::string::npos);

  // Without a baseline the rate column is empty — no "/s" anywhere.
  std::ostringstream no_prev;
  PrintMetricsTable(current, nullptr, no_prev);
  EXPECT_EQ(no_prev.str().find("/s"), std::string::npos);
}

TEST(PrintMetricsTableTest, CacheHitRateLine) {
  RegistrySnapshot snapshot;
  snapshot.taken_at_ns = 1;
  snapshot.samples.push_back(CounterSample("cache.hits", 90));
  snapshot.samples.push_back(CounterSample("cache.misses", 10));
  std::ostringstream out;
  PrintMetricsTable(snapshot, nullptr, out);
  EXPECT_NE(out.str().find("cache hit rate: 90.0%"), std::string::npos);
}

TEST(AppendMetricsJsonTest, EmitsAllThreeSections) {
  Histogram hist;
  hist.Record(10);
  hist.Record(20);

  RegistrySnapshot snapshot;
  snapshot.taken_at_ns = 1'500'000'000;  // 1500 ms
  snapshot.samples.push_back(CounterSample("test.json.counter", 12));
  snapshot.samples.push_back(GaugeSample("test.json.gauge", -4));
  snapshot.samples.push_back(HistogramSample("test.json.hist", hist));

  std::ostringstream out;
  AppendMetricsJson(snapshot, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"t_ms\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{\"test.json.counter\":12}"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"test.json.gauge\":-4}"),
            std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\":{\"count\":2,\"sum\":30"),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\":10"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":20"), std::string::npos);
}

TEST(AppendMetricsJsonTest, EmptySnapshotIsStillValidJson) {
  RegistrySnapshot snapshot;
  std::ostringstream out;
  AppendMetricsJson(snapshot, out);
  EXPECT_EQ(out.str(),
            "{\"t_ms\":0,\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(WriteMetricsJsonTest, WritesFileAndReportsErrors) {
  RegistrySnapshot snapshot;
  snapshot.samples.push_back(CounterSample("test.file.counter", 1));
  const std::string path = ::testing::TempDir() + "vsj_metrics_test.json";
  std::string error;
  ASSERT_TRUE(WriteMetricsJson(snapshot, path, &error)) << error;
  std::ifstream is(path);
  std::string contents((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"test.file.counter\":1"), std::string::npos);
  EXPECT_EQ(contents.back(), '\n');
  std::remove(path.c_str());

  EXPECT_FALSE(WriteMetricsJson(snapshot,
                                "/nonexistent-dir/vsj_metrics.json", &error));
  EXPECT_FALSE(error.empty());
}

TEST(StatReporterTest, PeriodicTicksAndFinalTick) {
  EnableMetrics(true);
  MetricRegistry::Global().GetCounter("test.reporter.events").Add(5);

  std::ostringstream out;
  StatReporterOptions options;
  options.interval_ms = 10;
  options.out = &out;
  {
    StatReporter reporter(options);
    // Let a few intervals elapse; exact tick count is timing-dependent,
    // only the lower bound matters.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    reporter.Stop();
    EXPECT_GE(reporter.ticks(), 1u);
    reporter.Stop();  // idempotent
  }
  EnableMetrics(false);
  EXPECT_NE(out.str().find("test.reporter.events"), std::string::npos);
  EXPECT_NE(out.str().find("live metrics"), std::string::npos);
}

TEST(StatReporterTest, JsonlAppendsOneLinePerTick) {
  EnableMetrics(true);
  MetricRegistry::Global().GetCounter("test.reporter.jsonl").Add(1);
  const std::string path = ::testing::TempDir() + "vsj_stats_test.jsonl";
  std::remove(path.c_str());
  {
    StatReporterOptions options;
    options.interval_ms = 1000;  // only the final Stop() tick fires
    options.jsonl_path = path;
    StatReporter reporter(options);
    reporter.Stop();
  }
  EnableMetrics(false);
  std::ifstream is(path);
  std::string line;
  size_t lines = 0;
  bool found = false;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("test.reporter.jsonl") != std::string::npos) found = true;
  }
  EXPECT_GE(lines, 1u);
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vsj::obs
