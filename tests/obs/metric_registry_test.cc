// MetricRegistry behavior: name → stable primitive, sorted snapshots,
// value reset, the runtime enable flag, and the instrumentation macros'
// no-op contract when metrics are disabled.
//
// The registry is a process-wide singleton, so every test uses unique
// metric names ("regtest.*") and restores EnableMetrics(false) on exit.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "vsj/obs/metrics.h"
#include "vsj/obs/obs.h"

namespace vsj::obs {
namespace {

class MetricRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override { EnableMetrics(false); }
};

TEST_F(MetricRegistryTest, SameNameReturnsSameObject) {
  Counter& a = MetricRegistry::Global().GetCounter("regtest.same_name");
  Counter& b = MetricRegistry::Global().GetCounter("regtest.same_name");
  EXPECT_EQ(&a, &b);
  Histogram& ha = MetricRegistry::Global().GetHistogram("regtest.same_hist");
  Histogram& hb = MetricRegistry::Global().GetHistogram("regtest.same_hist");
  EXPECT_EQ(&ha, &hb);
}

TEST_F(MetricRegistryTest, CounterSumsAcrossThreads) {
  Counter& counter =
      MetricRegistry::Global().GetCounter("regtest.threaded_counter");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST_F(MetricRegistryTest, GaugeSetAndAdd) {
  Gauge& gauge = MetricRegistry::Global().GetGauge("regtest.gauge");
  gauge.Set(42);
  EXPECT_EQ(gauge.Value(), 42);
  gauge.Add(-50);
  EXPECT_EQ(gauge.Value(), -8);
}

TEST_F(MetricRegistryTest, SnapshotIsNameSortedAndFindable) {
  MetricRegistry::Global().GetCounter("regtest.snap.zzz").Add(3);
  MetricRegistry::Global().GetCounter("regtest.snap.aaa").Add(7);
  MetricRegistry::Global().GetGauge("regtest.snap.mmm").Set(-2);
  const RegistrySnapshot snapshot = MetricRegistry::Global().Snapshot();
  ASSERT_GE(snapshot.samples.size(), 3u);
  for (size_t i = 1; i < snapshot.samples.size(); ++i) {
    EXPECT_LT(snapshot.samples[i - 1].name, snapshot.samples[i].name);
  }
  const MetricSample* aaa = snapshot.Find("regtest.snap.aaa");
  ASSERT_NE(aaa, nullptr);
  EXPECT_EQ(aaa->type, MetricType::kCounter);
  EXPECT_EQ(aaa->counter_value, 7u);
  const MetricSample* mmm = snapshot.Find("regtest.snap.mmm");
  ASSERT_NE(mmm, nullptr);
  EXPECT_EQ(mmm->gauge_value, -2);
  EXPECT_EQ(snapshot.Find("regtest.snap.absent"), nullptr);
  EXPECT_GT(snapshot.taken_at_ns, 0u);
}

TEST_F(MetricRegistryTest, ResetValuesKeepsRegistrations) {
  Counter& counter = MetricRegistry::Global().GetCounter("regtest.reset.c");
  Histogram& hist = MetricRegistry::Global().GetHistogram("regtest.reset.h");
  counter.Add(5);
  hist.Record(100);
  const size_t size_before = MetricRegistry::Global().size();
  MetricRegistry::Global().ResetValues();
  EXPECT_EQ(MetricRegistry::Global().size(), size_before);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(hist.Snapshot().count, 0u);
  // The same references are still live and recordable.
  counter.Add(2);
  EXPECT_EQ(counter.Value(), 2u);
}

TEST_F(MetricRegistryTest, MacrosAreNoOpsWhenDisabled) {
  EnableMetrics(false);
  VSJ_COUNTER_ADD("regtest.macro.disabled", 10);
  VSJ_HIST_RECORD("regtest.macro.disabled_hist", 123);
  VSJ_GAUGE_SET("regtest.macro.disabled_gauge", 9);
  const RegistrySnapshot snapshot = MetricRegistry::Global().Snapshot();
#if VSJ_METRICS_COMPILED
  // Disabled at runtime: the macro must not even register the name.
  EXPECT_EQ(snapshot.Find("regtest.macro.disabled"), nullptr);
  EXPECT_EQ(snapshot.Find("regtest.macro.disabled_hist"), nullptr);
  EXPECT_EQ(snapshot.Find("regtest.macro.disabled_gauge"), nullptr);
#else
  (void)snapshot;
#endif
}

TEST_F(MetricRegistryTest, MacrosRecordWhenEnabled) {
  EnableMetrics(true);
  VSJ_COUNTER_ADD("regtest.macro.enabled", 4);
  VSJ_COUNTER_ADD("regtest.macro.enabled", 6);
  VSJ_HIST_RECORD("regtest.macro.enabled_hist", 77);
  VSJ_GAUGE_SET("regtest.macro.enabled_gauge", -3);
  EnableMetrics(false);
  const RegistrySnapshot snapshot = MetricRegistry::Global().Snapshot();
#if VSJ_METRICS_COMPILED
  const MetricSample* counter = snapshot.Find("regtest.macro.enabled");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->counter_value, 10u);
  const MetricSample* hist = snapshot.Find("regtest.macro.enabled_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->histogram.count, 1u);
  EXPECT_EQ(hist->histogram.max, 77u);
  const MetricSample* gauge = snapshot.Find("regtest.macro.enabled_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->gauge_value, -3);
#else
  // Compiled out: nothing may register even with the runtime flag on.
  EXPECT_EQ(snapshot.Find("regtest.macro.enabled"), nullptr);
#endif
}

TEST_F(MetricRegistryTest, MonotonicClockAdvances) {
  const uint64_t a = MonotonicNowNs();
  const uint64_t b = MonotonicNowNs();
  EXPECT_LE(a, b);
}

TEST_F(MetricRegistryTest, ConcurrentGetAndSnapshot) {
  // Races between name registration and Snapshot must be benign.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        const std::string name =
            "regtest.concurrent." + std::to_string(t) + "." +
            std::to_string(i % 10);
        MetricRegistry::Global().GetCounter(name).Add(1);
      }
    });
  }
  for (int s = 0; s < 20; ++s) {
    (void)MetricRegistry::Global().Snapshot();
  }
  for (std::thread& t : threads) t.join();
  const RegistrySnapshot snapshot = MetricRegistry::Global().Snapshot();
  const MetricSample* sample = snapshot.Find("regtest.concurrent.0.0");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->counter_value, 20u);
}

}  // namespace
}  // namespace vsj::obs
