// The observability bit-identity contract: enabling metrics and tracing
// must not change a single estimate bit. Instrumentation records counts
// and clock readings only — it never draws from an Rng, reorders float
// accumulation, or feeds back into estimation — so every registered
// estimator, and the dynamic-index mutation path, must produce identical
// results with recording on and off (see obs.h and DESIGN.md
// "Observability").

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/core/estimator_registry.h"
#include "vsj/lsh/lsh_index.h"
#include "vsj/lsh/simhash.h"
#include "vsj/obs/metrics.h"
#include "vsj/obs/trace.h"
#include "vsj/util/rng.h"
#include "vsj/vector/csr_storage.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {
namespace {

constexpr uint64_t kSeed = 0xfeed5eedULL;
constexpr uint32_t kK = 8;

/// The exact bits of a double, for equality stronger than operator==.
uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

class MetricsEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::EnableMetrics(false);
    obs::EnableTracing(false);
    dataset_ = testing::SmallClusteredCorpus(300, 7);
    family_ = std::make_unique<SimHashFamily>(kSeed);
    index_ = std::make_unique<LshIndex>(*family_, DatasetView(dataset_), kK,
                                        2);
  }

  void TearDown() override {
    obs::EnableMetrics(false);
    obs::EnableTracing(false);
  }

  EstimatorContext Context() const {
    EstimatorContext context;
    context.dataset = DatasetView(dataset_);
    context.index = index_.get();
    context.measure = SimilarityMeasure::kCosine;
    return context;
  }

  VectorDataset dataset_;
  std::unique_ptr<SimHashFamily> family_;
  std::unique_ptr<LshIndex> index_;
};

TEST_F(MetricsEquivalenceTest, AllEstimatorsAreBitIdenticalWithMetricsOn) {
  for (const std::string& name : AllEstimatorNames()) {
    const auto estimator = CreateEstimator(name, Context());
    for (const double tau : {0.3, 0.6, 0.9}) {
      const uint64_t rng_seed = kSeed ^ static_cast<uint64_t>(tau * 1024);

      obs::EnableMetrics(false);
      obs::EnableTracing(false);
      Rng baseline_rng(rng_seed);
      const EstimationResult baseline = estimator->Estimate(tau, baseline_rng);

      obs::EnableMetrics(true);
      obs::EnableTracing(true);
      Rng instrumented_rng(rng_seed);
      const EstimationResult instrumented =
          estimator->Estimate(tau, instrumented_rng);
      obs::EnableMetrics(false);
      obs::EnableTracing(false);

      EXPECT_EQ(BitsOf(instrumented.estimate), BitsOf(baseline.estimate))
          << name << " tau=" << tau;
      EXPECT_EQ(instrumented.pairs_evaluated, baseline.pairs_evaluated)
          << name << " tau=" << tau;
    }
  }
  obs::TraceCollector::Global().Clear();
}

// The streaming storage mutation path (append / remove / compact) is also
// instrumented; churn two identical stores with recording off and on and
// require the same live set and the same estimates over the results.
TEST_F(MetricsEquivalenceTest, StreamingChurnIsBitIdenticalWithMetricsOn) {
  auto churn = [this](bool metrics_on) {
    obs::EnableMetrics(metrics_on);
    obs::EnableTracing(metrics_on);
    StreamingStorageOptions options;
    options.chunk_features = 1024;
    options.compact_dead_fraction = 0.0;
    StreamingCsrStorage storage(options);
    std::vector<VectorId> junk;
    for (VectorId id = 0; id < dataset_.size(); ++id) {
      if (id % 3 == 0) {
        junk.push_back(
            storage.Append(SparseVector::FromDims({id, id + 1}).ref()));
      }
      storage.Append(dataset_[id]);
    }
    for (VectorId id : junk) storage.Remove(id);
    storage.Compact();
    obs::EnableMetrics(false);
    obs::EnableTracing(false);

    // Estimate over the churned store with recording OFF in both arms, so
    // any divergence must come from the instrumented mutations above.
    DatasetView view(storage);
    EXPECT_EQ(view.size(), dataset_.size());
    LshIndex index(*family_, view, kK, 2);
    EstimatorContext context;
    context.dataset = view;
    context.index = &index;
    context.measure = SimilarityMeasure::kCosine;
    const auto estimator = CreateEstimator("LSH-SS", context);
    std::vector<uint64_t> bits;
    for (const double tau : {0.3, 0.6, 0.9}) {
      Rng rng(kSeed + 99);
      const EstimationResult result = estimator->Estimate(tau, rng);
      bits.push_back(BitsOf(result.estimate));
      bits.push_back(result.pairs_evaluated);
    }
    return bits;
  };

  const std::vector<uint64_t> baseline = churn(false);
  const std::vector<uint64_t> instrumented = churn(true);
  EXPECT_EQ(instrumented, baseline);
  obs::TraceCollector::Global().Clear();
}

}  // namespace
}  // namespace vsj
