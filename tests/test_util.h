// Shared fixtures for estimator tests: small clustered corpora where exact
// join sizes are cheap to compute, plus canned LSH setups.

#ifndef VSJ_TESTS_TEST_UTIL_H_
#define VSJ_TESTS_TEST_UTIL_H_

#include <memory>

#include "vsj/gen/corpus_generator.h"
#include "vsj/gen/workloads.h"
#include "vsj/lsh/lsh_index.h"
#include "vsj/lsh/minhash.h"
#include "vsj/lsh/simhash.h"
#include "vsj/vector/vector_dataset.h"

namespace vsj::testing {

/// A small DBLP-flavoured corpus with a fat near-duplicate tail so that
/// high thresholds still have true pairs.
inline VectorDataset SmallClusteredCorpus(size_t n = 800, uint64_t seed = 1) {
  CorpusConfig config = DblpLikeConfig(n, seed);
  config.cluster_fraction = 0.25;
  config.mean_cluster_size = 3.0;
  config.min_mutation = 0.02;
  config.max_mutation = 0.25;
  return GenerateCorpus(config);
}

/// Bundles a dataset with a SimHash index (cosine).
struct CosineSetup {
  VectorDataset dataset;
  std::unique_ptr<SimHashFamily> family;
  std::unique_ptr<LshIndex> index;
};

inline CosineSetup MakeCosineSetup(size_t n = 800, uint32_t k = 10,
                                   uint32_t tables = 1, uint64_t seed = 1) {
  CosineSetup setup;
  setup.dataset = SmallClusteredCorpus(n, seed);
  setup.family = std::make_unique<SimHashFamily>(seed ^ 0xabcdef);
  setup.index = std::make_unique<LshIndex>(*setup.family, setup.dataset, k,
                                           tables);
  return setup;
}

/// Bundles a binary dataset with a MinHash index (Jaccard; exact Def. 3).
struct JaccardSetup {
  VectorDataset dataset;
  std::unique_ptr<MinHashFamily> family;
  std::unique_ptr<LshIndex> index;
};

inline JaccardSetup MakeJaccardSetup(size_t n = 800, uint32_t k = 6,
                                     uint32_t tables = 1, uint64_t seed = 2) {
  JaccardSetup setup;
  setup.dataset = SmallClusteredCorpus(n, seed);
  setup.family = std::make_unique<MinHashFamily>(seed ^ 0x123456);
  setup.index = std::make_unique<LshIndex>(*setup.family, setup.dataset, k,
                                           tables);
  return setup;
}

}  // namespace vsj::testing

#endif  // VSJ_TESTS_TEST_UTIL_H_
