#!/bin/sh
# Golden-file test for the vsjoin_estimate CLI.
#
#   run_golden_test.sh <vsjoin_estimate binary> <mode> <cli dir>
#
# Modes:
#   batch       batch estimates over the checked-in VSJD v1 fixture
#   batch-v2    the same batch over the VSJB v2 fixture — output must be
#               IDENTICAL to golden/batch.out (estimates depend on content,
#               not container format)
#   batch-mmap  the same batch, dataset opened zero-copy via --mmap —
#               again diffed against golden/batch.out
#   stream      streaming op-file replay over the v1 fixture
#   snapshot    checkpoint/restore mid-stream over the v2 fixture, then a
#               second process resumes from the saved snapshot via
#               --load-snapshot (both stdouts concatenated)
#   single-trial  a --trials 1 batch (std error column must read "n/a" —
#               one draw has no measurable spread) plus a --trials 6 batch
#               with --max-rel-error 0.5 (any-τ early exit); both emit
#               --json lines, concatenated after each table, which pin the
#               omitted std_error fields and the early-exited trial counts
#   reject      invalid flag values (--batch-taus out of range / duplicate /
#               unparsable, negative --max-rel-error) — captures the first
#               stderr diagnostic of each, which must name the offending
#               token
#
# Runs the tool on the checked-in tiny dataset (data/tiny.vsjd /
# data/tiny.vsjb, 120 vectors) and diffs stdout against golden/<mode>.out
# (the batch-v2/batch-mmap modes share golden/batch.out). Output is
# deterministic: the Rng is fully specified (xoshiro256**, no std::random
# involvement), batch results are bit-identical at any --threads count,
# estimates are bit-identical across storage backings and across a
# checkpoint/restore cycle, and timings go to stderr, which is discarded.
# Regenerate fixtures after an intentional output change with:
#
#   tests/cli/run_golden_test.sh <binary> <mode> <cli dir> --regenerate
set -e

bin="$1"
mode="$2"
cli_dir="$3"
data="$cli_dir/data"

case "$mode" in
  batch|batch-v2|batch-mmap) golden="$cli_dir/golden/batch.out" ;;
  *) golden="$cli_dir/golden/$mode.out" ;;
esac

batch_flags="--k 6 --threads 2 --batch-taus 0.3,0.6,0.9 --trials 2 \
             --seed 7 --repeat 2"

case "$mode" in
  batch)
    run() { "$bin" --dataset "$data/tiny.vsjd" $batch_flags 2>/dev/null; }
    ;;
  batch-v2)
    run() { "$bin" --dataset "$data/tiny.vsjb" $batch_flags 2>/dev/null; }
    ;;
  batch-mmap)
    run() {
      "$bin" --dataset "$data/tiny.vsjb" --mmap $batch_flags 2>/dev/null
    }
    ;;
  stream)
    run() {
      "$bin" --dataset "$data/tiny.vsjd" --k 6 --tables 2 --threads 2 \
             --trials 2 --seed 7 --stream "$data/stream_ops.txt" 2>/dev/null
    }
    ;;
  snapshot)
    run() {
      rm -f cli_stream_snapshot_mid.vsjs cli_stream_snapshot_end.vsjs
      "$bin" --dataset "$data/tiny.vsjb" --k 6 --tables 2 --threads 2 \
             --trials 2 --seed 7 --stream "$data/stream_snapshot_ops.txt" \
             --save-snapshot cli_stream_snapshot_end.vsjs 2>/dev/null
      "$bin" --load-snapshot cli_stream_snapshot_end.vsjs --k 6 --tables 2 \
             --threads 2 --trials 2 --seed 7 \
             --stream "$data/stream_resume_ops.txt" 2>/dev/null
      rm -f cli_stream_snapshot_mid.vsjs cli_stream_snapshot_end.vsjs
    }
    ;;
  single-trial)
    run() {
      rm -f cli_single_trial.json cli_early_exit.json
      "$bin" --dataset "$data/tiny.vsjd" --k 6 --threads 2 \
             --batch-taus 0.3,0.6,0.9 --trials 1 --seed 7 \
             --json cli_single_trial.json 2>/dev/null
      cat cli_single_trial.json
      "$bin" --dataset "$data/tiny.vsjd" --k 6 --threads 2 \
             --batch-taus 0.3,0.6,0.9 --trials 6 --seed 7 \
             --max-rel-error 0.5 --json cli_early_exit.json 2>/dev/null
      cat cli_early_exit.json
      rm -f cli_single_trial.json cli_early_exit.json
    }
    ;;
  reject)
    run() {
      for flags in "--batch-taus 0.5,1.5" "--batch-taus 0.5,0.5" \
                   "--batch-taus 0.5,abc" "--max-rel-error -0.5"; do
        "$bin" --synthetic dblp --n 50 $flags 2>&1 >/dev/null | head -1
      done
    }
    ;;
  *)
    echo "unknown mode: $mode" >&2
    exit 2
    ;;
esac

if [ "$4" = "--regenerate" ]; then
  run > "$golden"
  echo "regenerated $golden"
  exit 0
fi

run | diff -u "$golden" - || {
  echo "vsjoin_estimate $mode output diverged from $golden" >&2
  exit 1
}
