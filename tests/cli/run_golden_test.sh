#!/bin/sh
# Golden-file test for the vsjoin_estimate CLI.
#
#   run_golden_test.sh <vsjoin_estimate binary> <mode: batch|stream> <cli dir>
#
# Runs the tool on the checked-in tiny dataset (data/tiny.vsjd, 120 vectors)
# and diffs stdout against golden/<mode>.out. Output is deterministic: the
# Rng is fully specified (xoshiro256**, no std::random involvement), batch
# results are bit-identical at any --threads count, and timings go to
# stderr, which is discarded. Regenerate fixtures after an intentional
# output change with:
#
#   tests/cli/run_golden_test.sh <binary> <mode> <cli dir> --regenerate
set -e

bin="$1"
mode="$2"
cli_dir="$3"
data="$cli_dir/data"
golden="$cli_dir/golden/$mode.out"

case "$mode" in
  batch)
    run() {
      "$bin" --dataset "$data/tiny.vsjd" --k 6 --threads 2 \
             --batch-taus 0.3,0.6,0.9 --trials 2 --seed 7 --repeat 2 \
             2>/dev/null
    }
    ;;
  stream)
    run() {
      "$bin" --dataset "$data/tiny.vsjd" --k 6 --tables 2 --threads 2 \
             --trials 2 --seed 7 --stream "$data/stream_ops.txt" 2>/dev/null
    }
    ;;
  *)
    echo "unknown mode: $mode" >&2
    exit 2
    ;;
esac

if [ "$4" = "--regenerate" ]; then
  run > "$golden"
  echo "regenerated $golden"
  exit 0
fi

run | diff -u "$golden" - || {
  echo "vsjoin_estimate $mode output diverged from $golden" >&2
  exit 1
}
