#!/bin/sh
# Crash-recovery drill: SIGKILL vsjoin_server at every injected fault
# point under live client load, then prove the snapshot root survived.
#
#   run_crash_drill.sh <vsjoin_server> <vsjoin_client> <vsjoin_estimate>
#
# For each drill point the script arms VSJ_FAULTS="<point>:nth=N:kind=
# crash" (the framework raises SIGKILL the moment the point fires — no
# destructors, no flushes, exactly what a power cut leaves behind),
# starts the server over a fresh copy of the root, drives background
# load-mode traffic plus the trigger that reaches the point:
#
#   drain  a mutation dirties the churn tenant, then SIGTERM: the
#          graceful drain's write-back walks the whole checkpoint path
#          (service.checkpoint -> registry.writeback -> AtomicFileWriter
#          open/section writes/commit/fsync/rename/dirsync);
#   evict  same mutation under --max-resident 1, then a wiki request
#          evicts the dirty tenant, write-back crashing mid-eviction;
#   net    the load traffic itself reaches the accept/frame/write paths.
#
# After the kill (wait status 137) the drill asserts the crash contract:
#
#   S0  the prior snapshot is byte-intact (cmp against the pristine
#       bytes) — the crash happened before the rename promoted anything;
#   S1  the rename already happened (only io.atomic.dirsync), so the new
#       checkpoint is in place and the post-mutation state is served.
#
# Then a clean restart (faults unset) must sweep every *.tmp orphan and
# answer the probe requests bit-identically to a never-crashed server's
# responses (golden_pre for S0, golden_post for S1).
#
# Two extra torn-write legs arm io.atomic.commit:kind=torn (truncate the
# tmp file, skip fsync, rename anyway — the lying-disk case): the server
# exits believing the checkpoint landed, and the restarted server must
# answer churn requests with a clean named tenant_unavailable error while
# wiki keeps serving.
#
# VSJ_DRILL_POINTS=N limits the sweep to the first N kill points (CI
# smoke); unset runs all of them.
set -u

server="$1"
client="$2"
estimate="$3"

work=$(mktemp -d "${TMPDIR:-/tmp}/vsj_crash_drill.XXXXXX")
server_pid=""
load_pid=""
cleanup() {
  if [ -n "$server_pid" ]; then kill -9 "$server_pid" 2>/dev/null || true; fi
  if [ -n "$load_pid" ]; then kill -9 "$load_pid" 2>/dev/null || true; fi
  rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
  echo "run_crash_drill: $1" >&2
  if [ -f "$work/server.log" ]; then
    echo "--- server log ---" >&2
    cat "$work/server.log" >&2
  fi
  exit 1
}

# ---- pristine root -----------------------------------------------------
pristine="$work/pristine"
mkdir -p "$pristine"
"$estimate" --synthetic dblp --n 300 --seed 4 --k 8 --tau 0.8 --trials 1 \
  --save-dataset "$pristine/wiki.vsjb" >/dev/null 2>&1 ||
  fail "building wiki.vsjb failed"
cat > "$work/build_ops.txt" <<EOF
insert 0 299
checkpoint $pristine/churn.vsjs
EOF
"$estimate" --synthetic dblp --n 300 --seed 3 --k 8 --trials 2 \
  --stream "$work/build_ops.txt" >/dev/null 2>&1 ||
  fail "building churn.vsjs failed"

cat > "$work/requests.jsonl" <<EOF
{"op":"estimate","id":1,"tenant":"wiki","estimator":"LSH-SS","tau":0.6,"trials":2,"seed":7}
{"op":"estimate","id":2,"tenant":"wiki","estimator":"LSH-SS","tau":0.8,"trials":2,"seed":7}
{"op":"estimate","id":3,"tenant":"churn","estimator":"LSH-SS","tau":0.6,"trials":2,"seed":3}
{"op":"estimate","id":4,"tenant":"churn","estimator":"LSH-SS","tau":0.8,"trials":2,"seed":3}
EOF
# The mutation that dirties churn before drain/evict triggers.
cat > "$work/mut.jsonl" <<EOF
{"op":"remove","id":90,"tenant":"churn","vector_id":5}
{"op":"remove","id":91,"tenant":"churn","vector_id":6}
EOF

# start_server <root> <max_resident> [env VSJ_FAULTS already exported]
start_server() {
  rm -f "$work/port.txt"
  "$server" --root "$1" --port 0 --port-file "$work/port.txt" \
    --workers 2 --max-resident "$2" --k 8 --tables 1 --seed 7 \
    2> "$work/server.log" &
  server_pid=$!
  tries=0
  while [ ! -s "$work/port.txt" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "server never published its port"
    kill -0 "$server_pid" 2>/dev/null || return 1
    sleep 0.1
  done
  port=$(cat "$work/port.txt")
  return 0
}

stop_server_clean() {
  kill -TERM "$server_pid" 2>/dev/null
  wait "$server_pid"
  rc=$?
  server_pid=""
  [ "$rc" -eq 0 ] || fail "clean server exited nonzero ($rc)"
}

# ---- goldens: what a never-crashed server answers ----------------------
unset VSJ_FAULTS || true
root="$work/root_pre"
cp -r "$pristine" "$root"
start_server "$root" 8 || fail "golden_pre server failed to start"
"$client" --port "$port" --ops "$work/requests.jsonl" \
  > "$work/golden_pre.out" || fail "golden_pre requests failed"
stop_server_clean

# Post-mutation root + golden: apply the mutation, drain (write-back
# persists it), then probe the restarted state.
root="$work/root_post"
cp -r "$pristine" "$root"
start_server "$root" 8 || fail "root_post server failed to start"
"$client" --port "$port" --ops "$work/mut.jsonl" >/dev/null ||
  fail "root_post mutation failed"
stop_server_clean
start_server "$root" 8 || fail "golden_post server failed to start"
"$client" --port "$port" --ops "$work/requests.jsonl" \
  > "$work/golden_post.out" || fail "golden_post requests failed"
stop_server_clean
cmp -s "$work/golden_pre.out" "$work/golden_post.out" &&
  fail "mutation did not change the probe responses (drill is vacuous)"

# ---- the kill points ---------------------------------------------------
# point:nth:trigger:expect — expect S0 = prior snapshot byte-intact,
# S1 = rename already promoted the new checkpoint (post-mutation state).
points="
service.checkpoint:1:drain:S0
registry.writeback:1:drain:S0
registry.writeback:1:evict:S0
io.atomic.open:1:drain:S0
io.vsjb.write_section:1:drain:S0
io.vsjb.write_section:2:drain:S0
io.vsjb.write_section:3:drain:S0
io.vsjb.write_section:4:drain:S0
io.vsjb.write_section:5:drain:S0
io.vsjb.write_section:6:drain:S0
io.vsjb.write_section:7:drain:S0
io.vsjb.write_section:8:drain:S0
io.vsjb.write_section:9:drain:S0
io.atomic.commit:1:drain:S0
io.atomic.fsync:1:drain:S0
io.atomic.fsync:1:evict:S0
io.atomic.rename:1:drain:S0
io.atomic.dirsync:1:drain:S1
net.frame:1:net:S0
net.frame:3:net:S0
net.accept:1:net:S0
net.write:1:net:S0
net.write:2:net:S0
"

limit="${VSJ_DRILL_POINTS:-0}"
ran=0
for entry in $points; do
  [ -n "$entry" ] || continue
  if [ "$limit" -gt 0 ] && [ "$ran" -ge "$limit" ]; then break; fi
  ran=$((ran + 1))
  point=${entry%%:*};  rest=${entry#*:}
  nth=${rest%%:*};     rest=${rest#*:}
  trigger=${rest%%:*}; expect=${rest##*:}

  root="$work/root_drill"
  rm -rf "$root"
  cp -r "$pristine" "$root"

  # Evict iterations keep the load off churn: in-flight churn requests
  # pin the tenant, and eviction (correctly) refuses to write back a
  # pinned engine, so a churn-heavy load would starve the fault point.
  max_resident=8
  load_tenants="churn,wiki"
  if [ "$trigger" = "evict" ]; then
    max_resident=1
    load_tenants="wiki"
  fi

  export VSJ_FAULTS="$point:nth=$nth:kind=crash"
  if ! start_server "$root" "$max_resident"; then
    # net.accept & co can kill the server before the port probe loop
    # finishes its first connection only if something connected — the
    # port file exists before any accept, so startup must succeed.
    fail "$entry: server died before serving"
  fi
  unset VSJ_FAULTS

  grep -q "fault injection armed" "$work/server.log" ||
    fail "$entry: server did not log the armed fault"

  # Live background load under which the server gets killed; its exit
  # status is irrelevant. Evict iterations order it AFTER the mutation:
  # eviction runs on cold opens only, so the wiki load's first cold open
  # must find churn already dirty and unpinned — load-before-mutation
  # would race the one-shot eviction against the in-flight remove.
  start_load() {
    "$client" --port "$port" --load --connections 2 --duration-s 30 \
      --tenants "$load_tenants" --taus 0.7 --trials 1 \
      >/dev/null 2>&1 &
    load_pid=$!
  }

  case "$trigger" in
    drain)
      start_load
      "$client" --port "$port" --ops "$work/mut.jsonl" >/dev/null 2>&1 ||
        fail "$entry: mutation failed before drain"
      kill -TERM "$server_pid" 2>/dev/null
      ;;
    evict)
      "$client" --port "$port" --ops "$work/mut.jsonl" >/dev/null 2>&1 ||
        fail "$entry: mutation failed before eviction"
      # First wiki request under --max-resident 1 cold-opens wiki and
      # evicts the dirty churn tenant — write-back crashes mid-eviction
      # with the load running.
      start_load
      ;;
    net)
      start_load
      # The load client reaches accept/frame/write by itself; nudge with
      # a request-mode probe too (ignore its failure).
      "$client" --port "$port" --ops "$work/requests.jsonl" \
        >/dev/null 2>&1 || true
      ;;
  esac

  # The injected kind=crash raises SIGKILL -> wait status 137.
  tries=0
  while kill -0 "$server_pid" 2>/dev/null; do
    tries=$((tries + 1))
    [ "$tries" -le 150 ] || fail "$entry: server survived its fault point"
    sleep 0.1
  done
  wait "$server_pid"
  rc=$?
  server_pid=""
  [ "$rc" -eq 137 ] || fail "$entry: expected SIGKILL (137), got $rc"
  kill -9 "$load_pid" 2>/dev/null || true
  wait "$load_pid" 2>/dev/null || true
  load_pid=""

  # Crash contract on the bytes left behind.
  cmp -s "$pristine/wiki.vsjb" "$root/wiki.vsjb" ||
    fail "$entry: static snapshot corrupted by the crash"
  if [ "$expect" = "S0" ]; then
    cmp -s "$pristine/churn.vsjs" "$root/churn.vsjs" ||
      fail "$entry: prior churn snapshot not byte-intact after crash"
  else
    cmp -s "$pristine/churn.vsjs" "$root/churn.vsjs" &&
      fail "$entry: dirsync crash should have promoted the new snapshot"
  fi

  # Clean restart: sweeps orphans, serves the expected state.
  start_server "$root" 8 || fail "$entry: restart failed"
  leftover=$(find "$root" -name '*.tmp' | wc -l)
  [ "$leftover" -eq 0 ] || fail "$entry: $leftover orphaned tmp file(s)"
  "$client" --port "$port" --ops "$work/requests.jsonl" \
    > "$work/drill.out" || fail "$entry: restarted server refused requests"
  golden="$work/golden_pre.out"
  [ "$expect" = "S1" ] && golden="$work/golden_post.out"
  diff -u "$golden" "$work/drill.out" >&2 ||
    fail "$entry: restarted responses diverged from golden ($expect)"
  stop_server_clean
done

# ---- torn-write legs: the disk lies, the restart names the damage ------
for torn_bytes in 64 1024; do
  root="$work/root_torn"
  rm -rf "$root"
  cp -r "$pristine" "$root"

  export VSJ_FAULTS="io.atomic.commit:kind=torn:arg=$torn_bytes"
  start_server "$root" 8 || fail "torn($torn_bytes): server failed to start"
  unset VSJ_FAULTS
  "$client" --port "$port" --ops "$work/mut.jsonl" >/dev/null 2>&1 ||
    fail "torn($torn_bytes): mutation failed"
  # The torn commit reports success, so the drain exits 0 — the server
  # honestly believes the checkpoint landed.
  stop_server_clean
  cmp -s "$pristine/churn.vsjs" "$root/churn.vsjs" &&
    fail "torn($torn_bytes): snapshot unchanged — fault never fired"

  start_server "$root" 8 || fail "torn($torn_bytes): restart failed"
  "$client" --port "$port" --ops "$work/requests.jsonl" \
    > "$work/torn.out" 2>/dev/null
  # churn requests: a clean named failure, never a crash or a wrong
  # answer; wiki keeps serving bit-identically.
  churn_errors=$(grep -c '"error":"tenant_unavailable"' "$work/torn.out")
  [ "$churn_errors" -eq 2 ] ||
    fail "torn($torn_bytes): expected 2 tenant_unavailable, got $churn_errors"
  head -2 "$work/torn.out" > "$work/torn_wiki.out"
  head -2 "$work/golden_pre.out" > "$work/golden_wiki.out"
  diff -u "$work/golden_wiki.out" "$work/torn_wiki.out" >&2 ||
    fail "torn($torn_bytes): wiki responses diverged after torn churn"
  stop_server_clean
done

echo "run_crash_drill: OK ($ran kill point(s) + 2 torn legs survived)"
