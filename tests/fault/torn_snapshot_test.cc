// Torn-write restore fuzz: a VSJS checkpoint truncated at every section
// boundary — and at byte-offset samples inside each section — must make
// Restore return a named IoStatus: never crash, never half-restore, and
// the error names the offending section (or the truncated structure).
//
// The torn files are produced two ways:
//   * through the io.atomic.commit kind=torn fault point, which drives
//     the real writer down the unsafe path (truncate + skip fsync +
//     rename) a power cut would expose — proving the *writer's* failure
//     mode is survivable end to end;
//   * by truncating byte copies of an intact snapshot, the exhaustive
//     sweep over every boundary.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "vsj/fault/fault.h"
#include "vsj/gen/corpus_generator.h"
#include "vsj/gen/workloads.h"
#include "vsj/io/vsjb_format.h"
#include "vsj/service/streaming_estimation_service.h"

namespace vsj {
namespace {

constexpr size_t kCorpusSize = 120;

class TornSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::ClearAll();
    path_ = ::testing::TempDir() + "/torn_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".vsjs";
    StreamingEstimationServiceOptions options;
    options.k = 8;
    options.family_seed = 0x5eedULL;
    engine_ = std::make_unique<StreamingEstimationService>(
        GenerateCorpus(DblpLikeConfig(kCorpusSize, 3)), options);
    for (VectorId id = 0; id < kCorpusSize; ++id) engine_->Insert(id);
    ASSERT_TRUE(engine_->Checkpoint(path_).ok());

    std::ifstream is(path_, std::ios::binary);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    intact_ = buffer.str();
    ASSERT_GT(intact_.size(), sizeof(VsjbHeader));

    std::ifstream is2(path_, std::ios::binary);
    ASSERT_TRUE(
        ReadVsjbFile(is2, kVsjsMagic, kVsjsVersion, &contents_).ok());
    ASSERT_GT(contents_.entries.size(), 3u);
  }

  void TearDown() override {
    fault::ClearAll();
    std::remove(path_.c_str());
  }

  void WriteTruncated(uint64_t length) {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(intact_.data(),
             static_cast<std::streamsize>(
                 std::min<uint64_t>(length, intact_.size())));
  }

  // Restore must fail with a named reason and leave *service null.
  IoStatus ExpectNamedFailure(uint64_t cut) {
    std::unique_ptr<StreamingEstimationService> service;
    const IoStatus status =
        StreamingEstimationService::Restore(path_, &service);
    EXPECT_FALSE(status.ok()) << "cut at byte " << cut
                              << " restored successfully";
    EXPECT_EQ(service, nullptr) << "half-restored at cut " << cut;
    EXPECT_FALSE(status.reason.empty()) << "unnamed failure at cut " << cut;
    EXPECT_EQ(status.path, path_);
    return status;
  }

  std::string path_;
  std::string intact_;
  VsjbFileContents contents_;
  std::unique_ptr<StreamingEstimationService> engine_;
};

TEST_F(TornSnapshotTest, TruncationAtEveryBoundaryFailsNamed) {
  // Cut points: inside the header, at the name/table boundary, at every
  // section's start, a sample inside every section, and just before EOF.
  std::set<uint64_t> cuts = {0, 1, sizeof(VsjbHeader) / 2,
                             sizeof(VsjbHeader), intact_.size() - 1};
  for (const VsjbSectionEntry& entry : contents_.entries) {
    cuts.insert(entry.offset);
    if (entry.length > 1) cuts.insert(entry.offset + entry.length / 2);
    cuts.insert(entry.offset + entry.length);
  }
  size_t named_section = 0;
  for (const uint64_t cut : cuts) {
    if (cut >= intact_.size()) continue;
    WriteTruncated(cut);
    const IoStatus status = ExpectNamedFailure(cut);
    // Every failure class a truncation can produce is structural.
    EXPECT_TRUE(status.code == IoError::kCorrupt ||
                status.code == IoError::kChecksumMismatch)
        << "cut " << cut << ": " << status.ToString();
    if (status.reason.find("section") != std::string::npos) ++named_section;
  }
  // Most cuts land inside section payloads; those errors must name the
  // section ("section XXXX is truncated" / checksum "section XXXX").
  EXPECT_GE(named_section, contents_.entries.size());
}

TEST_F(TornSnapshotTest, BitFlipInEverySectionFailsChecksum) {
  for (const VsjbSectionEntry& entry : contents_.entries) {
    if (entry.length == 0) continue;
    std::string flipped = intact_;
    flipped[entry.offset + entry.length / 2] ^= 0x40;
    {
      std::ofstream os(path_, std::ios::binary | std::ios::trunc);
      os.write(flipped.data(),
               static_cast<std::streamsize>(flipped.size()));
    }
    std::unique_ptr<StreamingEstimationService> service;
    const IoStatus status =
        StreamingEstimationService::Restore(path_, &service);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(service, nullptr);
    EXPECT_EQ(status.code, IoError::kChecksumMismatch);
    EXPECT_NE(status.reason.find("section"), std::string::npos);
  }
}

TEST_F(TornSnapshotTest, IntactSnapshotStillRestores) {
  std::unique_ptr<StreamingEstimationService> service;
  ASSERT_TRUE(StreamingEstimationService::Restore(path_, &service).ok());
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->num_live(), kCorpusSize);
}

#if VSJ_FAULT_COMPILED

TEST_F(TornSnapshotTest, TornCommitFaultProducesNamedRestoreFailure) {
  // Drive the writer itself down the power-loss path at a few depths.
  for (const uint64_t torn_bytes :
       {uint64_t{0}, uint64_t{64}, uint64_t{1024},
        uint64_t{intact_.size() / 2}}) {
    fault::FaultSpec spec;
    spec.point = "io.atomic.commit";
    spec.kind = fault::FaultKind::kTorn;
    spec.arg = torn_bytes;
    fault::Arm(spec);
    ASSERT_TRUE(engine_->Checkpoint(path_).ok());  // believes it succeeded
    fault::ClearAll();
    ExpectNamedFailure(torn_bytes);
    // The drill contract: a failed restore leaves the torn bytes in
    // place for forensics; rewriting the checkpoint cleanly recovers.
    ASSERT_TRUE(engine_->Checkpoint(path_).ok());
    std::unique_ptr<StreamingEstimationService> service;
    ASSERT_TRUE(StreamingEstimationService::Restore(path_, &service).ok());
  }
}

TEST_F(TornSnapshotTest, InjectedSectionWriteFailureLeavesOldSnapshot) {
  // Fail the Nth section write inside VsjbFileWriter::WriteTo for every
  // section: Checkpoint must report the failure and the previous
  // snapshot must stay byte-intact (AtomicFileWriter never promoted).
  for (uint64_t nth = 1; nth <= contents_.entries.size(); ++nth) {
    fault::FaultSpec spec;
    spec.point = "io.vsjb.write_section";
    spec.nth = nth;
    fault::Arm(spec);
    const IoStatus status = engine_->Checkpoint(path_);
    fault::ClearAll();
    ASSERT_FALSE(status.ok()) << "section " << nth;
    std::ifstream is(path_, std::ios::binary);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    ASSERT_EQ(buffer.str(), intact_) << "section " << nth;
  }
}

TEST_F(TornSnapshotTest, InjectedRestoreFaultIsNamed) {
  fault::FaultSpec spec;
  spec.point = "service.restore";
  spec.kind = fault::FaultKind::kIoError;
  fault::Arm(spec);
  const IoStatus status = ExpectNamedFailure(0);
  EXPECT_EQ(status.code, IoError::kIoError);
  EXPECT_NE(status.reason.find("service.restore"), std::string::npos);
}

#endif  // VSJ_FAULT_COMPILED

}  // namespace
}  // namespace vsj
