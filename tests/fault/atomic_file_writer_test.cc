// AtomicFileWriter: the commit succeeds atomically or the target file is
// untouched — under normal operation and under every injected failure.

#include "vsj/io/atomic_file_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "vsj/fault/fault.h"

namespace vsj {
namespace {

std::string TempPath(const char* name) {
  const testing::TestInfo* info =
      testing::UnitTest::GetInstance()->current_test_info();
  return testing::TempDir() + "afw_" + info->name() + "_" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

bool Exists(const std::string& path) {
  std::ifstream is(path);
  return static_cast<bool>(is);
}

class AtomicFileWriterTest : public testing::Test {
 protected:
  void SetUp() override { fault::ClearAll(); }
  void TearDown() override { fault::ClearAll(); }
};

TEST_F(AtomicFileWriterTest, CommitReplacesTheFile) {
  const std::string path = TempPath("roundtrip");
  {
    std::ofstream os(path, std::ios::binary);
    os << "old contents";
  }
  AtomicFileWriter writer(path);
  ASSERT_TRUE(writer.Open().ok());
  writer.stream() << "new contents";
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(ReadAll(path), "new contents");
  EXPECT_FALSE(Exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(AtomicFileWriterTest, CommitCreatesAMissingFile) {
  const std::string path = TempPath("fresh");
  AtomicFileWriter writer(path);
  ASSERT_TRUE(writer.Open().ok());
  writer.stream() << "fresh";
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(ReadAll(path), "fresh");
  std::remove(path.c_str());
}

TEST_F(AtomicFileWriterTest, AbortLeavesTheOldFile) {
  const std::string path = TempPath("abort");
  {
    std::ofstream os(path, std::ios::binary);
    os << "old contents";
  }
  {
    AtomicFileWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    writer.stream() << "half-written";
    writer.Abort();
  }
  EXPECT_EQ(ReadAll(path), "old contents");
  EXPECT_FALSE(Exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(AtomicFileWriterTest, DestructorWithoutCommitCleansUp) {
  const std::string path = TempPath("dtor");
  {
    AtomicFileWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    writer.stream() << "abandoned";
  }
  EXPECT_FALSE(Exists(path));
  EXPECT_FALSE(Exists(path + ".tmp"));
}

TEST_F(AtomicFileWriterTest, CommitWithoutOpenFails) {
  AtomicFileWriter writer(TempPath("noopen"));
  EXPECT_FALSE(writer.Commit().ok());
}

TEST_F(AtomicFileWriterTest, OpenFailsInUnwritableDirectory) {
  AtomicFileWriter writer("/nonexistent-dir-vsj/file.bin");
  const IoStatus status = writer.Open();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code, IoError::kIoError);
}

#if VSJ_FAULT_COMPILED

TEST_F(AtomicFileWriterTest, InjectedFsyncFailureKeepsOldFile) {
  const std::string path = TempPath("fsync_fault");
  {
    std::ofstream os(path, std::ios::binary);
    os << "old contents";
  }
  fault::FaultSpec spec;
  spec.point = "io.atomic.fsync";
  fault::Arm(spec);
  AtomicFileWriter writer(path);
  ASSERT_TRUE(writer.Open().ok());
  writer.stream() << "never lands";
  const IoStatus status = writer.Commit();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.reason.find("io.atomic.fsync"), std::string::npos);
  EXPECT_EQ(ReadAll(path), "old contents");
  EXPECT_FALSE(Exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(AtomicFileWriterTest, InjectedRenameFailureKeepsOldFile) {
  const std::string path = TempPath("rename_fault");
  {
    std::ofstream os(path, std::ios::binary);
    os << "old contents";
  }
  fault::FaultSpec spec;
  spec.point = "io.atomic.rename";
  fault::Arm(spec);
  AtomicFileWriter writer(path);
  ASSERT_TRUE(writer.Open().ok());
  writer.stream() << "never lands";
  EXPECT_FALSE(writer.Commit().ok());
  EXPECT_EQ(ReadAll(path), "old contents");
  EXPECT_FALSE(Exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(AtomicFileWriterTest, InjectedOpenFailureTouchesNothing) {
  const std::string path = TempPath("open_fault");
  fault::FaultSpec spec;
  spec.point = "io.atomic.open";
  spec.kind = fault::FaultKind::kNotFound;
  fault::Arm(spec);
  AtomicFileWriter writer(path);
  const IoStatus status = writer.Open();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code, IoError::kNotFound);
  EXPECT_FALSE(Exists(path + ".tmp"));
}

TEST_F(AtomicFileWriterTest, TornCommitPromotesTruncatedBytes) {
  const std::string path = TempPath("torn");
  fault::FaultSpec spec;
  spec.point = "io.atomic.commit";
  spec.kind = fault::FaultKind::kTorn;
  spec.arg = 4;
  fault::Arm(spec);
  AtomicFileWriter writer(path);
  ASSERT_TRUE(writer.Open().ok());
  writer.stream() << "0123456789";
  // The torn commit reports Ok — it models a writer that *believed* it
  // succeeded (no fsync) while the platter kept only a prefix.
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(ReadAll(path), "0123");
  EXPECT_FALSE(Exists(path + ".tmp"));
  std::remove(path.c_str());
}

#endif  // VSJ_FAULT_COMPILED

}  // namespace
}  // namespace vsj
