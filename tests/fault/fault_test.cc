// Unit tests of the fault-injection framework itself: spec parsing,
// activation determinism (nth / repeat / probability), the macro gate,
// IoStatus mapping, and the kCrash death path.
//
// Injection-dependent cases are skipped when the build compiled the
// instrumentation out (-DVSJ_FAULT=OFF): arming still works — only the
// macros stop observing it.

#include "vsj/fault/fault.h"

#include <csignal>
#include <chrono>
#include <string>

#include <gtest/gtest.h>

namespace vsj::fault {
namespace {

class FaultTest : public testing::Test {
 protected:
  void SetUp() override { ClearAll(); }
  void TearDown() override { ClearAll(); }
};

TEST_F(FaultTest, ParseMinimalSpec) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(ParseFaultSpec("io.atomic.rename", &spec, &error)) << error;
  EXPECT_EQ(spec.point, "io.atomic.rename");
  EXPECT_EQ(spec.kind, FaultKind::kIoError);
  EXPECT_EQ(spec.nth, 1u);
  EXPECT_FALSE(spec.repeat);
  EXPECT_EQ(spec.probability, 0.0);
}

TEST_F(FaultTest, ParseFullSpec) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(ParseFaultSpec(
      "net.write:kind=short_write:nth=3:repeat:seed=7:arg=5", &spec, &error))
      << error;
  EXPECT_EQ(spec.point, "net.write");
  EXPECT_EQ(spec.kind, FaultKind::kShortWrite);
  EXPECT_EQ(spec.nth, 3u);
  EXPECT_TRUE(spec.repeat);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.arg, 5u);
}

TEST_F(FaultTest, ParseProbabilitySpec) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(ParseFaultSpec("net.frame:p=0.25:kind=reset", &spec, &error))
      << error;
  EXPECT_DOUBLE_EQ(spec.probability, 0.25);
  EXPECT_EQ(spec.kind, FaultKind::kReset);
}

TEST_F(FaultTest, ParseRejectsMalformedSpecs) {
  FaultSpec spec;
  std::string error;
  EXPECT_FALSE(ParseFaultSpec("", &spec, &error));
  EXPECT_FALSE(ParseFaultSpec("point:garbage", &spec, &error));
  EXPECT_FALSE(ParseFaultSpec("point:kind=nope", &spec, &error));
  EXPECT_FALSE(ParseFaultSpec("point:nth=0", &spec, &error));
  EXPECT_FALSE(ParseFaultSpec("point:p=1.5", &spec, &error));
  EXPECT_FALSE(ParseFaultSpec("point:p=abc", &spec, &error));
  EXPECT_FALSE(ParseFaultSpec("point:unknown=1", &spec, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(FaultTest, ArmFromStringArmsEveryPoint) {
  std::string error;
  ASSERT_TRUE(
      ArmFromString("a.one,b.two:nth=2,c.three:kind=crash", &error))
      << error;
  const std::vector<std::string> points = ArmedPoints();
  EXPECT_EQ(points.size(), 3u);
  EXPECT_TRUE(Enabled());
  EXPECT_TRUE(Disarm("a.one"));
  EXPECT_FALSE(Disarm("a.one"));
  ClearAll();
  EXPECT_FALSE(Enabled());
}

TEST_F(FaultTest, ArmFromStringRejectsBadItem) {
  std::string error;
  EXPECT_FALSE(ArmFromString("good.point,bad:point:kind=nope", &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(FaultTest, KindNamesRoundTrip) {
  EXPECT_STREQ(FaultKindName(FaultKind::kCrash), "crash");
  EXPECT_STREQ(FaultKindName(FaultKind::kChecksumMismatch), "checksum");
  FaultSpec spec;
  std::string error;
  for (const char* name :
       {"io_error", "not_found", "bad_magic", "unsupported_version",
        "corrupt", "checksum", "short_write", "reset", "stall", "torn",
        "crash"}) {
    ASSERT_TRUE(
        ParseFaultSpec(std::string("p:kind=") + name, &spec, &error))
        << name;
    EXPECT_STREQ(FaultKindName(spec.kind), name);
  }
}

TEST_F(FaultTest, InjectedIoStatusMapsKinds) {
  const IoStatus io =
      InjectedIoStatus("x.y", FaultKind::kIoError, "/tmp/f");
  EXPECT_EQ(io.code, IoError::kIoError);
  EXPECT_EQ(io.path, "/tmp/f");
  EXPECT_NE(io.reason.find("x.y"), std::string::npos);
  EXPECT_EQ(InjectedIoStatus("p", FaultKind::kNotFound, "").code,
            IoError::kNotFound);
  EXPECT_EQ(InjectedIoStatus("p", FaultKind::kBadMagic, "").code,
            IoError::kBadMagic);
  EXPECT_EQ(InjectedIoStatus("p", FaultKind::kUnsupportedVersion, "").code,
            IoError::kUnsupportedVersion);
  EXPECT_EQ(InjectedIoStatus("p", FaultKind::kCorrupt, "").code,
            IoError::kCorrupt);
  EXPECT_EQ(InjectedIoStatus("p", FaultKind::kChecksumMismatch, "").code,
            IoError::kChecksumMismatch);
  // Non-io kinds degrade to the generic io error if routed here.
  EXPECT_EQ(InjectedIoStatus("p", FaultKind::kReset, "").code,
            IoError::kIoError);
}

TEST_F(FaultTest, CheckHitFiresExactlyOnNth) {
  FaultSpec spec;
  spec.point = "t.nth";
  spec.nth = 3;
  Arm(spec);
  EXPECT_FALSE(CheckHit("t.nth").fired());
  EXPECT_FALSE(CheckHit("t.nth").fired());
  EXPECT_TRUE(CheckHit("t.nth").fired());
  EXPECT_FALSE(CheckHit("t.nth").fired());  // once, not from-nth-on
  EXPECT_EQ(HitCount("t.nth"), 4u);
  EXPECT_EQ(FiredCount("t.nth"), 1u);
}

TEST_F(FaultTest, CheckHitRepeatFiresFromNthOn) {
  FaultSpec spec;
  spec.point = "t.repeat";
  spec.nth = 2;
  spec.repeat = true;
  Arm(spec);
  EXPECT_FALSE(CheckHit("t.repeat").fired());
  EXPECT_TRUE(CheckHit("t.repeat").fired());
  EXPECT_TRUE(CheckHit("t.repeat").fired());
  EXPECT_EQ(FiredCount("t.repeat"), 2u);
}

TEST_F(FaultTest, ProbabilityActivationIsSeedDeterministic) {
  const auto run = [](uint64_t seed) {
    FaultSpec spec;
    spec.point = "t.prob";
    spec.probability = 0.5;
    spec.seed = seed;
    Arm(spec);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += CheckHit("t.prob").fired() ? '1' : '0';
    }
    ClearAll();
    return pattern;
  };
  const std::string first = run(11);
  EXPECT_EQ(first, run(11));        // same seed → same firing pattern
  EXPECT_NE(first, run(12));        // different seed → different pattern
  EXPECT_NE(first.find('1'), std::string::npos);
  EXPECT_NE(first.find('0'), std::string::npos);
}

TEST_F(FaultTest, UnarmedPointNeverFires) {
  EXPECT_FALSE(CheckHit("never.armed").fired());
  EXPECT_EQ(HitCount("never.armed"), 0u);
}

TEST_F(FaultTest, HitCarriesKindAndArg) {
  FaultSpec spec;
  spec.point = "t.arg";
  spec.kind = FaultKind::kShortWrite;
  spec.arg = 7;
  Arm(spec);
  const FaultHit hit = CheckHit("t.arg");
  ASSERT_TRUE(hit.fired());
  EXPECT_EQ(hit.kind, FaultKind::kShortWrite);
  EXPECT_EQ(hit.arg, 7u);
}

TEST_F(FaultTest, StallSleepsThenProceeds) {
  FaultSpec spec;
  spec.point = "t.stall";
  spec.kind = FaultKind::kStall;
  spec.arg = 30;  // ms
  Arm(spec);
  const auto start = std::chrono::steady_clock::now();
  const FaultHit hit = CheckHit("t.stall");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(hit.fired());  // the op proceeds after the stall
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
  EXPECT_EQ(FiredCount("t.stall"), 1u);
}

TEST_F(FaultTest, MacroRespectsRuntimeGate) {
  // Nothing armed: the macro is inert regardless of the compile gate.
  EXPECT_FALSE(VSJ_FAULT_HIT("t.macro").fired());
#if VSJ_FAULT_COMPILED
  FaultSpec spec;
  spec.point = "t.macro";
  Arm(spec);
  EXPECT_TRUE(VSJ_FAULT_HIT("t.macro").fired());
#else
  // Compiled out: arming is invisible to the macro.
  FaultSpec spec;
  spec.point = "t.macro";
  Arm(spec);
  EXPECT_FALSE(VSJ_FAULT_HIT("t.macro").fired());
#endif
}

#if VSJ_FAULT_COMPILED

IoStatus FunctionWithFaultPoint(const std::string& path) {
  VSJ_FAULT_IO("t.io_macro", path);
  return IoStatus::Ok();
}

TEST_F(FaultTest, IoMacroReturnsInjectedStatus) {
  EXPECT_TRUE(FunctionWithFaultPoint("/x").ok());
  FaultSpec spec;
  spec.point = "t.io_macro";
  spec.kind = FaultKind::kCorrupt;
  Arm(spec);
  const IoStatus status = FunctionWithFaultPoint("/x");
  EXPECT_EQ(status.code, IoError::kCorrupt);
  EXPECT_EQ(status.path, "/x");
  EXPECT_NE(status.reason.find("t.io_macro"), std::string::npos);
}

using FaultDeathTest = FaultTest;

TEST_F(FaultDeathTest, CrashKindKillsTheProcessWithSigkill) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(
      {
        FaultSpec spec;
        spec.point = "t.crash";
        spec.kind = FaultKind::kCrash;
        Arm(spec);
        (void)CheckHit("t.crash");
      },
      testing::KilledBySignal(SIGKILL), "");
}

#endif  // VSJ_FAULT_COMPILED

}  // namespace
}  // namespace vsj::fault
