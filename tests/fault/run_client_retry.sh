#!/bin/sh
# Client retry drill: an injected connection reset mid-run must be fatal
# without --retries and invisible with them.
#
#   run_client_retry.sh <vsjoin_server> <vsjoin_client> <vsjoin_estimate>
#
# The server arms net.frame:nth=3:kind=reset — the third request frame is
# dropped and its connection hung up, exactly once. Three legs:
#
#   golden  a fault-free server answers the 4-request probe; this output
#           is the byte-exact contract for the retry leg.
#   leg 1   same fault, no --retries: the client must fail (nonzero exit)
#           and must not fabricate a response for the reset request.
#   leg 2   same fault, --retries 3 --backoff-ms 20: the client
#           reconnects, retransmits, and must exit 0 with output
#           byte-identical to the golden — exactly one response per
#           request, none duplicated, none lost (estimates are
#           deterministic and read-only, so the replay is exact).
set -u

server="$1"
client="$2"
estimate="$3"

work=$(mktemp -d "${TMPDIR:-/tmp}/vsj_client_retry.XXXXXX")
server_pid=""
cleanup() {
  if [ -n "$server_pid" ]; then kill -9 "$server_pid" 2>/dev/null || true; fi
  rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
  echo "run_client_retry: $1" >&2
  if [ -f "$work/server.log" ]; then
    echo "--- server log ---" >&2
    cat "$work/server.log" >&2
  fi
  exit 1
}

root="$work/root"
mkdir -p "$root"
"$estimate" --synthetic dblp --n 200 --seed 4 --k 8 --tau 0.8 --trials 1 \
  --save-dataset "$root/wiki.vsjb" >/dev/null 2>&1 ||
  fail "building wiki.vsjb failed"

cat > "$work/requests.jsonl" <<EOF
{"op":"estimate","id":1,"tenant":"wiki","estimator":"LSH-SS","tau":0.6,"trials":2,"seed":7}
{"op":"estimate","id":2,"tenant":"wiki","estimator":"LSH-SS","tau":0.7,"trials":2,"seed":7}
{"op":"estimate","id":3,"tenant":"wiki","estimator":"LSH-SS","tau":0.8,"trials":2,"seed":7}
{"op":"estimate","id":4,"tenant":"wiki","estimator":"LSH-SS","tau":0.9,"trials":2,"seed":7}
EOF

start_server() {
  rm -f "$work/port.txt"
  "$server" --root "$root" --port 0 --port-file "$work/port.txt" \
    --workers 2 --k 8 --tables 1 --seed 7 2> "$work/server.log" &
  server_pid=$!
  tries=0
  while [ ! -s "$work/port.txt" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "server never published its port"
    kill -0 "$server_pid" 2>/dev/null || fail "server died during startup"
    sleep 0.1
  done
  port=$(cat "$work/port.txt")
}

stop_server() {
  kill -TERM "$server_pid" 2>/dev/null
  wait "$server_pid"
  rc=$?
  server_pid=""
  [ "$rc" -eq 0 ] || fail "server exited nonzero ($rc)"
}

# ---- golden ------------------------------------------------------------
unset VSJ_FAULTS || true
start_server
"$client" --port "$port" --ops "$work/requests.jsonl" \
  > "$work/golden.out" || fail "golden run failed"
stop_server
[ "$(wc -l < "$work/golden.out")" -eq 4 ] || fail "golden is not 4 lines"

# ---- leg 1: the fault is fatal without retries -------------------------
export VSJ_FAULTS="net.frame:nth=3:kind=reset"
start_server
unset VSJ_FAULTS
if "$client" --port "$port" --ops "$work/requests.jsonl" \
    > "$work/noretry.out" 2> "$work/noretry.err"; then
  fail "client without --retries survived the injected reset"
fi
grep -q '"id":3' "$work/noretry.out" &&
  fail "a response for the reset request appeared without retries"
stop_server

# ---- leg 2: --retries recovers bit-identically -------------------------
export VSJ_FAULTS="net.frame:nth=3:kind=reset"
start_server
unset VSJ_FAULTS
"$client" --port "$port" --ops "$work/requests.jsonl" \
  --retries 3 --backoff-ms 20 \
  > "$work/retry.out" 2> "$work/retry.err" ||
  fail "client with --retries failed (exit $?)"
[ "$(wc -l < "$work/retry.out")" -eq 4 ] ||
  fail "retry leg printed $(wc -l < "$work/retry.out") lines, wanted 4"
diff -u "$work/golden.out" "$work/retry.out" >&2 ||
  fail "retry output diverged from the golden (duplicate or lost response)"
grep -q "retransmission" "$work/retry.err" ||
  fail "client stderr does not mention the retransmission"
stop_server

echo "run_client_retry: OK (reset fatal without retries, invisible with)"
