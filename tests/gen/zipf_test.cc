#include "vsj/gen/zipf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(ZipfTest, ProbabilitiesAreNormalized) {
  ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (size_t i = 0; i < 100; ++i) total += zipf.Probability(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, ProbabilitiesAreDecreasing) {
  ZipfSampler zipf(50, 0.9);
  for (size_t i = 1; i < 50; ++i) {
    EXPECT_LE(zipf.Probability(i), zipf.Probability(i - 1));
  }
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(zipf.Probability(i), 0.1, 1e-12);
  }
}

TEST(ZipfTest, ProbabilityRatioMatchesPowerLaw) {
  const double s = 1.2;
  ZipfSampler zipf(1000, s);
  // p(i)/p(j) = (j+1/i+1)^s.
  EXPECT_NEAR(zipf.Probability(0) / zipf.Probability(9), std::pow(10.0, s),
              1e-9);
}

TEST(ZipfTest, EmpiricalFrequenciesMatch) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(1);
  const int draws = 300000;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < draws; ++i) ++counts[zipf.Sample(rng)];
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / draws, zipf.Probability(i),
                0.005)
        << "word " << i;
  }
}

TEST(ZipfTest, SampleStaysInRange) {
  ZipfSampler zipf(7, 1.5);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

}  // namespace
}  // namespace vsj
