#include "vsj/gen/corpus_generator.h"

#include "vsj/vector/dataset_view.h"

#include <gtest/gtest.h>

#include "vsj/gen/workloads.h"
#include "vsj/vector/similarity.h"

namespace vsj {
namespace {

TEST(CorpusGeneratorTest, ProducesRequestedSize) {
  CorpusConfig config;
  config.num_vectors = 500;
  config.vocab_size = 2000;
  VectorDataset dataset = GenerateCorpus(config);
  EXPECT_EQ(dataset.size(), 500u);
}

TEST(CorpusGeneratorTest, DeterministicInSeed) {
  CorpusConfig config;
  config.num_vectors = 100;
  config.vocab_size = 1000;
  config.seed = 42;
  VectorDataset a = GenerateCorpus(config);
  VectorDataset b = GenerateCorpus(config);
  ASSERT_EQ(a.size(), b.size());
  for (VectorId id = 0; id < a.size(); ++id) EXPECT_EQ(a[id], b[id]);
}

TEST(CorpusGeneratorTest, DifferentSeedsDiffer) {
  CorpusConfig config;
  config.num_vectors = 100;
  config.vocab_size = 1000;
  config.seed = 1;
  VectorDataset a = GenerateCorpus(config);
  config.seed = 2;
  VectorDataset b = GenerateCorpus(config);
  bool any_diff = false;
  for (VectorId id = 0; id < a.size(); ++id) any_diff |= !(a[id] == b[id]);
  EXPECT_TRUE(any_diff);
}

TEST(CorpusGeneratorTest, NoEmptyDocuments) {
  CorpusConfig config;
  config.num_vectors = 400;
  config.vocab_size = 1500;
  config.max_mutation = 0.6;
  VectorDataset dataset = GenerateCorpus(config);
  for (VectorRef v : DatasetView(dataset)) EXPECT_FALSE(v.empty());
}

TEST(CorpusGeneratorTest, RespectsLengthBounds) {
  CorpusConfig config;
  config.num_vectors = 300;
  config.vocab_size = 2000;
  config.min_length = 5;
  config.max_length = 30;
  config.cluster_fraction = 0.0;  // mutation can shrink/grow copies
  VectorDataset dataset = GenerateCorpus(config);
  const DatasetStats stats = dataset.ComputeStats();
  EXPECT_GE(stats.min_features, 5u);
  EXPECT_LE(stats.max_features, 30u);
}

TEST(CorpusGeneratorTest, BinaryWeightsAreOne) {
  CorpusConfig config;
  config.num_vectors = 50;
  config.vocab_size = 500;
  config.weights = WeightScheme::kBinary;
  VectorDataset dataset = GenerateCorpus(config);
  for (VectorRef v : DatasetView(dataset)) {
    for (const Feature f : v) EXPECT_FLOAT_EQ(f.weight, 1.0f);
  }
}

TEST(CorpusGeneratorTest, TfIdfWeightsVary) {
  CorpusConfig config;
  config.num_vectors = 50;
  config.vocab_size = 500;
  config.weights = WeightScheme::kTfIdf;
  VectorDataset dataset = GenerateCorpus(config);
  bool varied = false;
  float first = dataset[0][0].weight;
  for (VectorRef v : DatasetView(dataset)) {
    for (const Feature f : v) varied |= f.weight != first;
  }
  EXPECT_TRUE(varied);
}

TEST(CorpusGeneratorTest, ClustersCreateHighSimilarityPairs) {
  CorpusConfig with;
  with.num_vectors = 600;
  with.vocab_size = 4000;
  with.cluster_fraction = 0.3;
  with.min_mutation = 0.02;
  with.max_mutation = 0.1;
  with.seed = 5;
  CorpusConfig without = with;
  without.cluster_fraction = 0.0;

  auto count_high = [](const VectorDataset& d) {
    int high = 0;
    for (VectorId i = 0; i < d.size(); ++i) {
      for (VectorId j = i + 1; j < d.size(); ++j) {
        if (CosineSimilarity(d[i], d[j]) >= 0.8) ++high;
      }
    }
    return high;
  };
  const int clustered = count_high(GenerateCorpus(with));
  const int background = count_high(GenerateCorpus(without));
  EXPECT_GT(clustered, background + 10);
}

TEST(WorkloadsTest, DblpLikeIsBinaryWithShortDocs) {
  const CorpusConfig config = DblpLikeConfig(1000);
  EXPECT_EQ(config.weights, WeightScheme::kBinary);
  VectorDataset dataset = GenerateCorpus(config);
  const DatasetStats stats = dataset.ComputeStats();
  EXPECT_NEAR(stats.avg_features, 14.0, 5.0);
  EXPECT_GE(stats.min_features, 3u);
}

TEST(WorkloadsTest, NytLikeIsTfIdfWithLongDocs) {
  const CorpusConfig config = NytLikeConfig(200);
  EXPECT_EQ(config.weights, WeightScheme::kTfIdf);
  VectorDataset dataset = GenerateCorpus(config);
  const DatasetStats stats = dataset.ComputeStats();
  EXPECT_GT(stats.avg_features, 100.0);
}

TEST(WorkloadsTest, VocabScalesWithN) {
  EXPECT_LT(DblpLikeConfig(1000).vocab_size, DblpLikeConfig(100000).vocab_size);
}

TEST(CorpusGeneratorDeathTest, RejectsZeroVectors) {
  CorpusConfig config;
  config.num_vectors = 0;
  EXPECT_DEATH(GenerateCorpus(config), "CHECK");
}

TEST(CorpusGeneratorDeathTest, RejectsVocabSmallerThanMaxLength) {
  CorpusConfig config;
  config.num_vectors = 10;
  config.vocab_size = 10;
  config.max_length = 50;
  EXPECT_DEATH(GenerateCorpus(config), "CHECK");
}

}  // namespace
}  // namespace vsj
