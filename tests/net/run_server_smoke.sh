#!/bin/sh
# Loopback smoke test for the network serving layer.
#
#   run_server_smoke.sh <vsjoin_server> <vsjoin_client> <vsjoin_estimate>
#
# Exercises the full deployment story end to end on 127.0.0.1:
#
#   1. Builds two tenants with the CLI: wiki.vsjb (static dataset; the
#      server supplies the index recipe from its --k/--seed flags) and
#      churn.vsjs (streaming snapshot carrying its own recipe).
#   2. Produces in-process goldens with vsjoin_estimate over the very
#      same files — --mmap batch for the static tenant, --load-snapshot
#      stream replay for the streaming one.
#   3. Starts vsjoin_server on an ephemeral port (--port 0 published via
#      --port-file), sends the matching estimate requests for both
#      tenants through vsjoin_client, strips the {"id":N,"ok":true,
#      envelope, and diffs byte-for-byte against the goldens. This pins
#      the serving contract: a response over the wire is bit-identical
#      to the in-process answer regardless of connection or batching.
#   4. Checks the live profiling side channel (--stats-json emitted at
#      least one metrics line) and the graceful drain (SIGTERM exits 0
#      after "vsjoin_server: drained").
#
# Seeds matter: the server derives the static-tenant LSH family seed as
# seed ^ 0x5eed exactly like vsjoin_estimate, so --seed 7 here must match
# "seed":7 in the wiki requests AND --seed 7 on the golden run. The
# streaming snapshot carries its family seed; only the per-request
# "seed":3 must match the golden replay's --seed 3.
set -e

server="$1"
client="$2"
estimate="$3"

work=$(mktemp -d "${TMPDIR:-/tmp}/vsj_server_smoke.XXXXXX")
server_pid=""
cleanup() {
  if [ -n "$server_pid" ]; then kill -9 "$server_pid" 2>/dev/null || true; fi
  rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
  echo "run_server_smoke: $1" >&2
  if [ -f "$work/server.log" ]; then
    echo "--- server log ---" >&2
    cat "$work/server.log" >&2
  fi
  exit 1
}

root="$work/root"
mkdir -p "$root"

# ---- 1. Tenants -------------------------------------------------------
"$estimate" --synthetic dblp --n 400 --seed 4 --k 8 --tau 0.8 --trials 1 \
  --save-dataset "$root/wiki.vsjb" >/dev/null 2>&1 ||
  fail "building wiki.vsjb failed"

cat > "$work/build_ops.txt" <<EOF
insert 0 399
checkpoint $root/churn.vsjs
EOF
"$estimate" --synthetic dblp --n 400 --seed 3 --k 8 --trials 3 \
  --stream "$work/build_ops.txt" >/dev/null 2>&1 ||
  fail "building churn.vsjs failed"

# ---- 2. In-process goldens --------------------------------------------
# One CLI run per tau: a --batch-taus batch shares its trial draws across
# the taus, while the server answers every request with single-Estimate
# semantics (the shared-stream leader contract), so only per-tau runs are
# the right golden.
: > "$work/golden_wiki.jsonl"
for tau in 0.6 0.8; do
  "$estimate" --dataset "$root/wiki.vsjb" --mmap --k 8 --tables 1 --seed 7 \
    --trials 3 --tau "$tau" --json "$work/golden_tau.jsonl" \
    >/dev/null 2>&1 || fail "wiki golden run failed (tau $tau)"
  cat "$work/golden_tau.jsonl" >> "$work/golden_wiki.jsonl"
done

cat > "$work/golden_ops.txt" <<EOF
estimate 0.6
estimate 0.8
EOF
"$estimate" --load-snapshot "$root/churn.vsjs" --trials 3 --seed 3 \
  --stream "$work/golden_ops.txt" --json "$work/golden_churn.jsonl" \
  >/dev/null 2>&1 || fail "churn golden run failed"

# ---- 3. Serve and diff ------------------------------------------------
"$server" --root "$root" --port 0 --port-file "$work/port.txt" \
  --workers 2 --k 8 --tables 1 --seed 7 \
  --stats-json "$work/stats.jsonl" --stats-interval 100 \
  2> "$work/server.log" &
server_pid=$!

tries=0
while [ ! -s "$work/port.txt" ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || fail "server never published its port"
  kill -0 "$server_pid" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
port=$(cat "$work/port.txt")

cat > "$work/requests.jsonl" <<EOF
{"op":"estimate","id":1,"tenant":"wiki","estimator":"LSH-SS","tau":0.6,"trials":3,"seed":7}
{"op":"estimate","id":2,"tenant":"wiki","estimator":"LSH-SS","tau":0.8,"trials":3,"seed":7}
{"op":"estimate","id":3,"tenant":"churn","estimator":"LSH-SS","tau":0.6,"trials":3,"seed":3}
{"op":"estimate","id":4,"tenant":"churn","estimator":"LSH-SS","tau":0.8,"trials":3,"seed":3}
EOF
"$client" --port "$port" --ops "$work/requests.jsonl" > "$work/wire.out" ||
  fail "client request run failed"

# The wire carries the RPC envelope; the goldens carry the CLI's own
# row prefixes (pass / line+epoch+live). Strip both down to the shared
# estimator payload and require byte equality.
sed -E 's/^\{"id":[0-9]+,"ok":true,/{/' "$work/wire.out" \
  > "$work/wire.stripped"
{
  sed -E 's/^\{"pass":[0-9]+,/{/' "$work/golden_wiki.jsonl"
  sed -E 's/^\{"line":[0-9]+,"epoch":[0-9]+,"live":[0-9]+,/{/' \
    "$work/golden_churn.jsonl"
} > "$work/golden.stripped"

grep -q '"estimate":' "$work/wire.stripped" ||
  fail "wire responses carry no estimates"
diff -u "$work/golden.stripped" "$work/wire.stripped" ||
  fail "wire responses diverged from the in-process goldens"

# ---- 4. Profiling side channel + graceful drain -----------------------
# At least one live-stats tick must have landed by now (100 ms interval).
tries=0
while ! grep -q '"counters"' "$work/stats.jsonl" 2>/dev/null; do
  tries=$((tries + 1))
  [ "$tries" -le 50 ] || fail "no stats JSON lines appeared"
  sleep 0.1
done

kill -TERM "$server_pid"
if ! wait "$server_pid"; then
  server_pid=""
  fail "server exited nonzero after SIGTERM"
fi
server_pid=""
grep -q "vsjoin_server: drained" "$work/server.log" ||
  fail "server log is missing the drain marker"

echo "run_server_smoke: OK (port $port, both tenants bit-identical)"
