// Length-prefixed framing. The robustness contract (see wire.h): a
// hostile length prefix is rejected *before* any payload allocation and
// poisons the decoder terminally; truncated input is invisible to the
// protocol layer until the frame completes.

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "vsj/net/wire.h"

namespace vsj::net {
namespace {

using Status = FrameDecoder::Status;

std::string Frame(std::string_view payload) {
  std::string out;
  AppendFrame(&out, payload);
  return out;
}

TEST(WireTest, RoundTripSingleFrame) {
  FrameDecoder decoder;
  decoder.Feed(Frame("{\"op\":\"ping\"}"));
  std::string_view payload;
  ASSERT_EQ(decoder.Next(&payload), Status::kFrame);
  EXPECT_EQ(payload, "{\"op\":\"ping\"}");
  EXPECT_EQ(decoder.Next(&payload), Status::kNeedMore);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WireTest, EmptyPayloadIsAValidFrame) {
  FrameDecoder decoder;
  decoder.Feed(Frame(""));
  std::string_view payload;
  ASSERT_EQ(decoder.Next(&payload), Status::kFrame);
  EXPECT_TRUE(payload.empty());
}

TEST(WireTest, ByteAtATimeFeedsReassemble) {
  const std::string wire = Frame("hello") + Frame("world");
  FrameDecoder decoder;
  std::string_view payload;
  size_t frames = 0;
  for (const char c : wire) {
    decoder.Feed(std::string_view(&c, 1));
    while (decoder.Next(&payload) == Status::kFrame) {
      ++frames;
      EXPECT_EQ(payload, frames == 1 ? "hello" : "world");
    }
  }
  EXPECT_EQ(frames, 2u);
}

TEST(WireTest, SplitInsideLengthPrefix) {
  const std::string wire = Frame("abc");
  FrameDecoder decoder;
  std::string_view payload;
  decoder.Feed(wire.substr(0, 2));  // half the prefix
  EXPECT_EQ(decoder.Next(&payload), Status::kNeedMore);
  decoder.Feed(wire.substr(2));
  ASSERT_EQ(decoder.Next(&payload), Status::kFrame);
  EXPECT_EQ(payload, "abc");
}

TEST(WireTest, ManyPipelinedFramesInOneFeed) {
  std::string wire;
  for (int i = 0; i < 100; ++i) AppendFrame(&wire, std::to_string(i));
  FrameDecoder decoder;
  decoder.Feed(wire);
  std::string_view payload;
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(decoder.Next(&payload), Status::kFrame);
    EXPECT_EQ(payload, std::to_string(i));
  }
  EXPECT_EQ(decoder.Next(&payload), Status::kNeedMore);
}

TEST(WireTest, TruncatedFrameStaysInvisible) {
  // A peer that disconnects mid-frame never surfaces a partial payload.
  const std::string wire = Frame("full payload");
  FrameDecoder decoder;
  decoder.Feed(wire.substr(0, wire.size() - 1));
  std::string_view payload;
  EXPECT_EQ(decoder.Next(&payload), Status::kNeedMore);
  EXPECT_EQ(decoder.buffered_bytes(), wire.size() - 1);
}

TEST(WireTest, OversizedPrefixRejectedWithoutBuffering) {
  FrameDecoder decoder(1024);
  // A hostile peer claims a ~4 GiB frame; only the 4 prefix bytes arrive.
  decoder.Feed(std::string("\xff\xff\xff\xff", 4));
  std::string_view payload;
  EXPECT_EQ(decoder.Next(&payload), Status::kTooLarge);
  // The claimed payload was never accumulated: only the prefix is held.
  EXPECT_LE(decoder.buffered_bytes(), 4u);
}

TEST(WireTest, PrefixJustOverTheLimitRejected) {
  FrameDecoder decoder(16);
  std::string wire;
  AppendFrame(&wire, std::string(17, 'x'));
  decoder.Feed(wire);
  std::string_view payload;
  EXPECT_EQ(decoder.Next(&payload), Status::kTooLarge);
}

TEST(WireTest, FrameExactlyAtTheLimitAccepted) {
  FrameDecoder decoder(16);
  decoder.Feed(Frame(std::string(16, 'x')));
  std::string_view payload;
  ASSERT_EQ(decoder.Next(&payload), Status::kFrame);
  EXPECT_EQ(payload.size(), 16u);
}

TEST(WireTest, PoisonedDecoderStaysPoisoned) {
  FrameDecoder decoder(8);
  decoder.Feed(std::string("\xff\xff\xff\x7f", 4));
  std::string_view payload;
  ASSERT_EQ(decoder.Next(&payload), Status::kTooLarge);
  // Even perfectly valid frames after the poison are refused — the
  // stream is unsynchronized and must be torn down.
  decoder.Feed(Frame("ok"));
  EXPECT_EQ(decoder.Next(&payload), Status::kTooLarge);
  EXPECT_EQ(decoder.Next(&payload), Status::kTooLarge);
}

TEST(WireTest, LimitClampsToAbsoluteMax) {
  FrameDecoder decoder(0xffffffffu);
  EXPECT_EQ(decoder.max_frame_bytes(), kAbsoluteMaxFrameBytes);
}

TEST(WireTest, SteadyStatePipelineCompacts) {
  // Interleaved feed/drain must not grow the buffer without bound.
  FrameDecoder decoder;
  const std::string frame = Frame(std::string(100, 'p'));
  std::string_view payload;
  for (int i = 0; i < 10000; ++i) {
    decoder.Feed(frame);
    ASSERT_EQ(decoder.Next(&payload), Status::kFrame);
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace vsj::net
