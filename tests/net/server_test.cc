// End-to-end tests of the epoll serving layer against a real loopback
// socket. The two headline contracts:
//
//   * Bit-identity: an estimate answered over the wire is byte-for-byte
//     the payload an in-process engine produces for the same request —
//     across both tenant flavors, before and after mutations —
//     regardless of how the server packed concurrent connections into
//     EstimateBatchShared runs.
//   * Robustness: truncated frames, oversized length prefixes, garbage
//     JSON, unknown tenants and mid-request disconnects each produce a
//     typed error (or a silently dropped response) and never stop the
//     server from serving other connections.
//
// Plus the serving-policy behaviors: admission control (max_inflight →
// "overloaded"), per-request deadlines ("timeout"), the sleep debug-op
// gate, and graceful drain (admitted work finishes and flushes, new
// work is refused with "shutting_down").

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "vsj/fault/fault.h"
#include "vsj/gen/corpus_generator.h"
#include "vsj/gen/workloads.h"
#include "vsj/io/dataset_io.h"
#include "vsj/net/protocol.h"
#include "vsj/net/server.h"
#include "vsj/net/wire.h"
#include "vsj/service/streaming_estimation_service.h"
#include "vsj/service/tenant_registry.h"

namespace vsj::net {
namespace {

constexpr size_t kCorpusSize = 120;
constexpr uint64_t kFamilySeed = 0x5eedULL;

/// Minimal blocking client against the loopback server.
class TestClient {
 public:
  ~TestClient() { Close(); }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Hang protection: a buggy server must fail the test, not wedge it.
    timeval tv{10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return true;
  }

  bool SendRaw(std::string_view bytes) {
    for (size_t off = 0; off < bytes.size();) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool Send(std::string_view json) {
    std::string frame;
    AppendFrame(&frame, json);
    return SendRaw(frame);
  }

  /// Next response payload; "" on EOF / error / timeout.
  std::string ReadPayload() {
    std::string_view payload;
    char buf[8192];
    for (;;) {
      if (decoder_.Next(&payload) == FrameDecoder::Status::kFrame) {
        return std::string(payload);
      }
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) return "";
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

  /// Reads `count` responses and keys them by correlation id (worker
  /// scheduling may reorder responses across tenant queues).
  std::map<uint64_t, std::string> ReadById(size_t count) {
    std::map<uint64_t, std::string> by_id;
    for (size_t i = 0; i < count; ++i) {
      const std::string payload = ReadPayload();
      if (payload.empty()) break;
      JsonValue doc;
      std::string error;
      if (!ParseJson(payload, &doc, &error)) break;
      by_id[static_cast<uint64_t>(doc.Find("id")->AsNumber())] = payload;
    }
    return by_id;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_{1u << 20};
};

/// Parses a payload and returns doc["error"] ("" for ok responses).
std::string ErrorCode(const std::string& payload) {
  JsonValue doc;
  std::string error;
  if (!ParseJson(payload, &doc, &error)) return "unparseable: " + payload;
  const JsonValue* ok = doc.Find("ok");
  if (ok == nullptr) return "no-ok-field: " + payload;
  if (ok->AsBool()) return "";
  return doc.Find("error")->AsString();
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::ClearAll();
    root_ = ::testing::TempDir() + "/server_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::mkdir(root_.c_str(), 0755);
    std::remove((root_ + "/churn.vsjs").c_str());
    std::remove((root_ + "/wiki.vsjb").c_str());

    StreamingEstimationService engine(
        GenerateCorpus(DblpLikeConfig(kCorpusSize, 3)), StreamingOptions());
    for (VectorId id = 0; id < kCorpusSize; ++id) engine.Insert(id);
    ASSERT_TRUE(engine.Checkpoint(root_ + "/churn.vsjs").ok());
    ASSERT_TRUE(SaveDatasetToFile(
                    GenerateCorpus(DblpLikeConfig(kCorpusSize, 4)),
                    root_ + "/wiki.vsjb")
                    .ok());
  }

  void TearDown() override {
    fault::ClearAll();
    if (server_ != nullptr) {
      server_->Stop();
      server_->WaitUntilStopped();
    }
  }

  static StreamingEstimationServiceOptions StreamingOptions() {
    StreamingEstimationServiceOptions options;
    options.k = 8;
    options.family_seed = kFamilySeed;
    return options;
  }

  static EstimationServiceOptions StaticOptions() {
    EstimationServiceOptions options;
    options.k = 8;
    options.family_seed = kFamilySeed;
    return options;
  }

  void StartServer(size_t workers = 2, size_t max_inflight = 1024,
                   bool debug_ops = true,
                   uint32_t max_frame_bytes = 1u << 20) {
    TenantRegistryOptions registry_options;
    registry_options.root = root_;
    registry_options.static_options = StaticOptions();
    registry_ = std::make_unique<TenantRegistry>(registry_options);

    ServerOptions options;
    options.port = 0;
    options.num_workers = workers;
    options.max_inflight = max_inflight;
    options.enable_debug_ops = debug_ops;
    options.max_frame_bytes = max_frame_bytes;
    options.registry = registry_.get();
    server_ = std::make_unique<Server>(options);
    ASSERT_TRUE(server_->Start().ok());
  }

  uint16_t port() const { return server_->port(); }

  static std::string EstimateJson(uint64_t id, const std::string& tenant,
                                  double tau, size_t trials = 3,
                                  uint64_t seed = 9,
                                  const std::string& estimator = "LSH-SS") {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%llu,\"op\":\"estimate\",\"tenant\":\"%s\","
                  "\"estimator\":\"%s\",\"tau\":%.3f,\"trials\":%zu,"
                  "\"seed\":%llu}",
                  static_cast<unsigned long long>(id), tenant.c_str(),
                  estimator.c_str(), tau, trials,
                  static_cast<unsigned long long>(seed));
    return buf;
  }

  static EstimateRequest Request(double tau, size_t trials = 3,
                                 uint64_t seed = 9) {
    EstimateRequest request;
    request.estimator_name = "LSH-SS";
    request.tau = tau;
    request.trials = trials;
    request.seed = seed;
    return request;
  }

  std::string root_;
  std::unique_ptr<TenantRegistry> registry_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingPong) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  ASSERT_TRUE(client.Send("{\"id\":3,\"op\":\"ping\"}"));
  EXPECT_EQ(client.ReadPayload(), "{\"id\":3,\"ok\":true,\"pong\":true}");
}

TEST_F(ServerTest, BitIdentityAcrossBothTenantFlavors) {
  StartServer();

  // The reference engines, built exactly as the registry builds them.
  std::unique_ptr<StreamingEstimationService> churn_engine;
  ASSERT_TRUE(StreamingEstimationService::Restore(root_ + "/churn.vsjs",
                                                  &churn_engine,
                                                  StreamingOptions())
                  .ok());
  EstimationService wiki_engine(GenerateCorpus(DblpLikeConfig(kCorpusSize, 4)),
                                StaticOptions());

  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  uint64_t id = 1;
  for (const double tau : {0.6, 0.7, 0.8}) {
    for (const std::string tenant : {"churn", "wiki"}) {
      ASSERT_TRUE(client.Send(EstimateJson(id, tenant, tau)));
      const std::string wire_payload = client.ReadPayload();
      const EstimateResponse reference =
          tenant == "churn" ? churn_engine->Estimate(Request(tau))
                            : wiki_engine.Estimate(Request(tau));
      EXPECT_EQ(wire_payload, MakeEstimatePayload(id, reference))
          << tenant << " tau=" << tau;
      ++id;
    }
  }
}

TEST_F(ServerTest, BitIdentitySurvivesMutations) {
  StartServer();
  std::unique_ptr<StreamingEstimationService> reference;
  ASSERT_TRUE(StreamingEstimationService::Restore(root_ + "/churn.vsjs",
                                                  &reference,
                                                  StreamingOptions())
                  .ok());

  TestClient client;
  ASSERT_TRUE(client.Connect(port()));

  // Apply the same mutation stream to both sides.
  ASSERT_TRUE(client.Send(
      "{\"id\":1,\"op\":\"remove\",\"tenant\":\"churn\",\"vector_id\":5}"));
  reference->Remove(5);
  ASSERT_TRUE(client.Send(
      "{\"id\":2,\"op\":\"insert\",\"tenant\":\"churn\",\"vector_id\":5}"));
  reference->Insert(5);
  ASSERT_TRUE(
      client.Send("{\"id\":3,\"op\":\"add_vector\",\"tenant\":\"churn\","
                  "\"features\":[[7,1.5],[19,0.25]]}"));
  const VectorId added =
      reference->AddVector(SparseVector({{7, 1.5f}, {19, 0.25f}}));
  ASSERT_TRUE(client.Send("{\"id\":4,\"op\":\"insert\",\"tenant\":\"churn\","
                          "\"vector_id\":" +
                          std::to_string(added) + "}"));
  reference->Insert(added);

  // Mutation responses carry the post-op epoch / the new vector id.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(client.ReadPayload(), &doc, &error));
  EXPECT_TRUE(doc.Find("ok")->AsBool());
  EXPECT_NE(doc.Find("epoch"), nullptr);
  ASSERT_TRUE(ParseJson(client.ReadPayload(), &doc, &error));  // insert 5
  ASSERT_TRUE(ParseJson(client.ReadPayload(), &doc, &error));  // add_vector
  ASSERT_EQ(doc.Find("vector_id")->AsNumber(),
            static_cast<double>(added));
  ASSERT_TRUE(ParseJson(client.ReadPayload(), &doc, &error));  // insert new

  // Post-mutation estimates still match the in-process engine exactly.
  ASSERT_TRUE(client.Send(EstimateJson(9, "churn", 0.7)));
  EXPECT_EQ(client.ReadPayload(),
            MakeEstimatePayload(9, reference->Estimate(Request(0.7))));

  // And the stats op sees the mutated state.
  ASSERT_TRUE(client.Send("{\"id\":10,\"op\":\"stats\",\"tenant\":\"churn\"}"));
  ASSERT_TRUE(ParseJson(client.ReadPayload(), &doc, &error));
  EXPECT_EQ(doc.Find("epoch")->AsNumber(),
            static_cast<double>(reference->epoch()));
  EXPECT_EQ(doc.Find("num_live")->AsNumber(),
            static_cast<double>(kCorpusSize + 1));
}

TEST_F(ServerTest, CrossConnectionPipelinesStayCorrelated) {
  StartServer();
  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 16;
  std::vector<std::unique_ptr<TestClient>> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<TestClient>());
    ASSERT_TRUE(clients.back()->Connect(port()));
  }
  // Fire everything before reading anything: concurrent connections land
  // in shared batches, but every response must echo its request id.
  for (size_t i = 0; i < kPerClient; ++i) {
    for (size_t c = 0; c < kClients; ++c) {
      const std::string tenant = (c % 2 == 0) ? "churn" : "wiki";
      ASSERT_TRUE(clients[c]->Send(
          EstimateJson(100 * c + i, tenant, 0.6 + 0.1 * (i % 3))));
    }
  }
  for (size_t c = 0; c < kClients; ++c) {
    const std::map<uint64_t, std::string> responses =
        clients[c]->ReadById(kPerClient);
    ASSERT_EQ(responses.size(), kPerClient) << "client " << c;
    for (const auto& [id, payload] : responses) {
      EXPECT_EQ(ErrorCode(payload), "") << payload;
      EXPECT_GE(id, 100 * c);
      EXPECT_LT(id, 100 * c + kPerClient);
    }
  }
}

TEST_F(ServerTest, TruncatedFrameThenDisconnectLeavesServerServing) {
  StartServer();
  {
    TestClient half;
    ASSERT_TRUE(half.Connect(port()));
    std::string frame;
    AppendFrame(&frame, "{\"id\":1,\"op\":\"ping\"}");
    ASSERT_TRUE(half.SendRaw(frame.substr(0, frame.size() / 2)));
    // Disconnect mid-frame: no response owed, no server damage.
  }
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  ASSERT_TRUE(client.Send("{\"id\":2,\"op\":\"ping\"}"));
  EXPECT_EQ(ErrorCode(client.ReadPayload()), "");
}

TEST_F(ServerTest, OversizedPrefixGetsBadFrameAndHangup) {
  StartServer(/*workers=*/1, /*max_inflight=*/1024, /*debug_ops=*/false,
              /*max_frame_bytes=*/4096);
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  ASSERT_TRUE(client.SendRaw(std::string("\xff\xff\xff\xff", 4)));
  const std::string payload = client.ReadPayload();
  EXPECT_EQ(ErrorCode(payload), "bad_frame") << payload;
  // The stream is unsynchronized: the server hangs up after responding.
  EXPECT_EQ(client.ReadPayload(), "");

  TestClient next;
  ASSERT_TRUE(next.Connect(port()));
  ASSERT_TRUE(next.Send("{\"id\":1,\"op\":\"ping\"}"));
  EXPECT_EQ(ErrorCode(next.ReadPayload()), "");
}

TEST_F(ServerTest, GarbageJsonIsTypedAndNonFatal) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  ASSERT_TRUE(client.Send("{\"id\":1,"));
  const std::string payload = client.ReadPayload();
  EXPECT_EQ(ErrorCode(payload), "bad_json") << payload;
  // The framing layer is still synchronized — same connection keeps
  // working.
  ASSERT_TRUE(client.Send("{\"id\":2,\"op\":\"ping\"}"));
  EXPECT_EQ(ErrorCode(client.ReadPayload()), "");
}

TEST_F(ServerTest, RequestErrorTaxonomy) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));

  const auto ask = [&](const std::string& json) {
    EXPECT_TRUE(client.Send(json));
    return ErrorCode(client.ReadPayload());
  };

  EXPECT_EQ(ask("{\"id\":1,\"op\":\"frobnicate\"}"), "unknown_op");
  EXPECT_EQ(ask(EstimateJson(2, "ghost", 0.7)), "unknown_tenant");
  EXPECT_EQ(ask(EstimateJson(3, "../churn", 0.7)), "unknown_tenant");
  // Schema violations.
  EXPECT_EQ(ask("{\"id\":4,\"op\":\"estimate\",\"tenant\":\"churn\"}"),
            "bad_request");  // no tau
  EXPECT_EQ(ask("{\"id\":5,\"op\":\"estimate\",\"tenant\":\"churn\","
                "\"tau\":1e999,\"trials\":2}"),
            "bad_request");  // non-finite tau, the 1e999 regression
  EXPECT_EQ(ask("{\"id\":6,\"op\":\"estimate\",\"tenant\":\"churn\","
                "\"tau\":0.7,\"trials\":2.5}"),
            "bad_request");  // non-integral integer field
  // Estimator rules per tenant flavor.
  EXPECT_EQ(ask(EstimateJson(7, "churn", 0.7, 2, 9, "LSH-S")),
            "bad_request");
  EXPECT_EQ(ask(EstimateJson(8, "wiki", 0.7, 2, 9, "LSH-S")), "");
  // Mutations on the static mmap tenant.
  EXPECT_EQ(ask("{\"id\":9,\"op\":\"remove\",\"tenant\":\"wiki\","
                "\"vector_id\":0}"),
            "unsupported");
  // Streaming preconditions.
  EXPECT_EQ(ask("{\"id\":10,\"op\":\"insert\",\"tenant\":\"churn\","
                "\"vector_id\":0}"),
            "bad_request");  // already live
  // Malformed features must be rejected in parsing, not abort the server.
  EXPECT_EQ(ask("{\"id\":11,\"op\":\"add_vector\",\"tenant\":\"churn\","
                "\"features\":[[5,1.0],[5,2.0]]}"),
            "bad_request");  // non-increasing dims
  EXPECT_EQ(ask("{\"id\":12,\"op\":\"add_vector\",\"tenant\":\"churn\","
                "\"features\":[]}"),
            "bad_request");
}

TEST_F(ServerTest, SleepIsGatedBehindDebugOps) {
  StartServer(/*workers=*/1, /*max_inflight=*/1024, /*debug_ops=*/false);
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  ASSERT_TRUE(client.Send("{\"id\":1,\"op\":\"sleep\",\"sleep_ms\":1}"));
  EXPECT_EQ(ErrorCode(client.ReadPayload()), "bad_request");
}

TEST_F(ServerTest, MidRequestDisconnectDropsTheResponse) {
  StartServer(/*workers=*/1);
  {
    TestClient doomed;
    ASSERT_TRUE(doomed.Connect(port()));
    ASSERT_TRUE(
        doomed.Send("{\"id\":1,\"op\":\"sleep\",\"sleep_ms\":100}"));
    // Close while the request is executing; its completion will find no
    // connection and must be dropped, not crash.
  }
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  ASSERT_TRUE(client.Send(EstimateJson(2, "churn", 0.7)));
  EXPECT_EQ(ErrorCode(client.ReadPayload()), "");
}

TEST_F(ServerTest, AdmissionControlRefusesBeyondMaxInflight) {
  StartServer(/*workers=*/1, /*max_inflight=*/2);
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  // Two sleeps fill the in-flight budget (one executing, one queued)...
  ASSERT_TRUE(client.Send("{\"id\":1,\"op\":\"sleep\",\"sleep_ms\":300}"));
  ASSERT_TRUE(client.Send("{\"id\":2,\"op\":\"sleep\",\"sleep_ms\":300}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // ...so the third request is refused immediately.
  ASSERT_TRUE(client.Send(EstimateJson(3, "churn", 0.7)));
  const std::map<uint64_t, std::string> responses = client.ReadById(3);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(ErrorCode(responses.at(3)), "overloaded");
  EXPECT_EQ(ErrorCode(responses.at(1)), "");
  EXPECT_EQ(ErrorCode(responses.at(2)), "");
}

TEST_F(ServerTest, QueuedDeadlineExpiryYieldsTimeout) {
  StartServer(/*workers=*/1);
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  ASSERT_TRUE(client.Send("{\"id\":1,\"op\":\"sleep\",\"sleep_ms\":300}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // 50ms deadline, but the only worker is held for ~300ms: the deadline
  // expires in queue and the request must never occupy the engine.
  ASSERT_TRUE(client.Send(EstimateJson(2, "churn", 0.7) ));
  std::string with_timeout = EstimateJson(3, "churn", 0.7);
  with_timeout.insert(with_timeout.size() - 1, ",\"timeout_ms\":50");
  ASSERT_TRUE(client.Send(with_timeout));
  const std::map<uint64_t, std::string> responses = client.ReadById(3);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(ErrorCode(responses.at(1)), "");
  EXPECT_EQ(ErrorCode(responses.at(2)), "");  // no deadline: runs late
  EXPECT_EQ(ErrorCode(responses.at(3)), "timeout");
}

TEST_F(ServerTest, GracefulDrainFinishesAdmittedWork) {
  StartServer(/*workers=*/1);
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  ASSERT_TRUE(client.Send("{\"id\":1,\"op\":\"sleep\",\"sleep_ms\":200}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  server_->BeginDrain();
  // New work after the drain began is refused...
  ASSERT_TRUE(client.Send("{\"id\":2,\"op\":\"ping\"}"));

  const std::map<uint64_t, std::string> responses = client.ReadById(2);
  ASSERT_EQ(responses.size(), 2u);
  // ...but the admitted sleep ran to completion and its response was
  // flushed before the server tore the connection down.
  EXPECT_EQ(ErrorCode(responses.at(1)), "");
  EXPECT_NE(responses.at(1).find("\"slept_ms\":200"), std::string::npos);
  EXPECT_EQ(ErrorCode(responses.at(2)), "shutting_down");

  EXPECT_EQ(client.ReadPayload(), "");  // server closed the connection
  server_->WaitUntilStopped();
  EXPECT_TRUE(server_->stopped());
  // The listening socket closed with the drain: connects are refused by
  // the kernel, not parked in a backlog nobody will ever accept.
  TestClient late;
  EXPECT_FALSE(late.Connect(port()));
}

TEST_F(ServerTest, ErrorPayloadsCarryTheRetryableFlag) {
  // The error taxonomy is explicit about what a client may replay:
  // request defects are terminal, capacity/lifecycle refusals are not.
  EXPECT_FALSE(RpcErrorRetryable(RpcError::kBadRequest));
  EXPECT_FALSE(RpcErrorRetryable(RpcError::kUnknownTenant));
  EXPECT_TRUE(RpcErrorRetryable(RpcError::kOverloaded));
  EXPECT_TRUE(RpcErrorRetryable(RpcError::kTimeout));
  EXPECT_TRUE(RpcErrorRetryable(RpcError::kShuttingDown));

  StartServer(/*workers=*/1);
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));

  ASSERT_TRUE(client.Send("{\"id\":1,\"op\":\"frobnicate\"}"));
  std::string payload = client.ReadPayload();
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(payload, &doc, &error));
  ASSERT_NE(doc.Find("retryable"), nullptr) << payload;
  EXPECT_FALSE(doc.Find("retryable")->AsBool());

  // Drain refusals are the canonical retry-me error.
  ASSERT_TRUE(client.Send("{\"id\":2,\"op\":\"sleep\",\"sleep_ms\":100}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server_->BeginDrain();
  ASSERT_TRUE(client.Send("{\"id\":3,\"op\":\"ping\"}"));
  const std::map<uint64_t, std::string> responses = client.ReadById(2);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(ErrorCode(responses.at(3)), "shutting_down");
  ASSERT_TRUE(ParseJson(responses.at(3), &doc, &error));
  ASSERT_NE(doc.Find("retryable"), nullptr);
  EXPECT_TRUE(doc.Find("retryable")->AsBool());
}

#if VSJ_FAULT_COMPILED

TEST_F(ServerTest, InjectedConnectionResetHangsUpOnlyThatConnection) {
  StartServer();
  fault::FaultSpec spec;
  spec.point = "net.frame";
  spec.kind = fault::FaultKind::kReset;
  fault::Arm(spec);

  TestClient doomed;
  ASSERT_TRUE(doomed.Connect(port()));
  ASSERT_TRUE(doomed.Send("{\"id\":1,\"op\":\"ping\"}"));
  // The injected reset drops the frame and hangs up without a response.
  EXPECT_EQ(doomed.ReadPayload(), "");

  // One-shot fault: the server keeps serving fresh connections.
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  ASSERT_TRUE(client.Send("{\"id\":2,\"op\":\"ping\"}"));
  EXPECT_EQ(ErrorCode(client.ReadPayload()), "");
  EXPECT_EQ(fault::FiredCount("net.frame"), 1u);
}

TEST_F(ServerTest, ShortWritesNeverTearFrames) {
  StartServer();
  // Every flush moves at most 3 bytes; responses must still arrive
  // byte-perfect via EPOLLOUT resumption.
  fault::FaultSpec spec;
  spec.point = "net.write";
  spec.kind = fault::FaultKind::kShortWrite;
  spec.repeat = true;
  spec.arg = 3;
  fault::Arm(spec);

  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  for (uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(client.Send(EstimateJson(id, "churn", 0.7)));
  }
  const std::map<uint64_t, std::string> responses = client.ReadById(5);
  ASSERT_EQ(responses.size(), 5u);
  for (const auto& [id, payload] : responses) {
    EXPECT_EQ(ErrorCode(payload), "") << payload;
  }
  EXPECT_GE(fault::FiredCount("net.write"), 5u);
}

TEST_F(ServerTest, InjectedAcceptFailureRefusesOneConnectionThenRecovers) {
  StartServer();
  fault::FaultSpec spec;
  spec.point = "net.accept";
  fault::Arm(spec);

  // The kernel completes the handshake; the server closes the accepted
  // fd immediately, so the first connection sees EOF without a response.
  TestClient refused;
  ASSERT_TRUE(refused.Connect(port()));
  refused.Send("{\"id\":1,\"op\":\"ping\"}");
  EXPECT_EQ(refused.ReadPayload(), "");

  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  ASSERT_TRUE(client.Send("{\"id\":2,\"op\":\"ping\"}"));
  EXPECT_EQ(ErrorCode(client.ReadPayload()), "");
}

#endif  // VSJ_FAULT_COMPILED

}  // namespace
}  // namespace vsj::net
