// The strict JSON layer under the network protocol. The contracts that
// matter to the serving stack: hostile bytes fail cleanly with a byte
// offset (never UB, never unbounded recursion), numbers round-trip
// bit-exactly (the server's bit-identity golden depends on it), and
// overflowing literals deliberately parse to ±inf so request validation
// can reject them by name.

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "vsj/net/json.h"

namespace vsj::net {
namespace {

JsonValue MustParse(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &value, &error)) << error;
  return value;
}

std::string ParseError(const std::string& text, size_t max_depth = 64) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson(text, &value, &error, max_depth)) << text;
  return error;
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").AsBool());
  EXPECT_FALSE(MustParse("false").AsBool());
  EXPECT_DOUBLE_EQ(MustParse("-12.5e2").AsNumber(), -1250.0);
  EXPECT_EQ(MustParse("\"hi\"").AsString(), "hi");
  EXPECT_EQ(MustParse("  42 ").AsNumber(), 42.0);
}

TEST(JsonParseTest, NestedDocument) {
  const JsonValue doc =
      MustParse("{\"a\":[1,2,{\"b\":true}],\"c\":\"x\",\"d\":null}");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 3u);
  EXPECT_EQ((*a)[1].AsNumber(), 2.0);
  EXPECT_TRUE((*a)[2].Find("b")->AsBool());
  EXPECT_TRUE(doc.Find("d")->is_null());
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonParseTest, DuplicateKeysLastWins) {
  const JsonValue doc = MustParse("{\"k\":1,\"k\":2}");
  EXPECT_EQ(doc.Find("k")->AsNumber(), 2.0);
  EXPECT_EQ(doc.size(), 2u);  // both members preserved for iteration
}

TEST(JsonParseTest, DepthLimitRejectsDeepNesting) {
  // A frame of pure '[' must fail cleanly, not overflow the stack.
  const std::string bomb(100000, '[');
  const std::string error = ParseError(bomb);
  EXPECT_NE(error.find("too deep"), std::string::npos) << error;

  // At the limit still parses (depth counts from 0, so max_depth = 8
  // admits 9 nesting levels); one more level is rejected.
  std::string ok;
  for (int i = 0; i < 9; ++i) ok += '[';
  for (int i = 0; i < 9; ++i) ok += ']';
  JsonValue value;
  std::string error2;
  EXPECT_TRUE(ParseJson(ok, &value, &error2, 8));
  EXPECT_FALSE(ParseJson("[" + ok + "]", &value, &error2, 8));
}

TEST(JsonParseTest, TrailingBytesRejected) {
  EXPECT_NE(ParseError("{} {}"), "");
  EXPECT_NE(ParseError("1 2"), "");
  EXPECT_NE(ParseError("null x"), "");
}

TEST(JsonParseTest, MalformedInputsRejectedWithByteOffset) {
  // The offset in the message points at (or near) the offending byte.
  EXPECT_NE(ParseError("{\"a\":}").find("5"), std::string::npos);
  EXPECT_NE(ParseError(""), "");
  EXPECT_NE(ParseError("{"), "");
  EXPECT_NE(ParseError("[1,]"), "");
  EXPECT_NE(ParseError("{\"a\" 1}"), "");
  EXPECT_NE(ParseError("\"unterminated"), "");
  EXPECT_NE(ParseError("tru"), "");
  EXPECT_NE(ParseError("NaN"), "");
  EXPECT_NE(ParseError("Infinity"), "");
  EXPECT_NE(ParseError("+1"), "");
  EXPECT_NE(ParseError("01"), "");
  EXPECT_NE(ParseError("1."), "");
  EXPECT_NE(ParseError(".5"), "");
  EXPECT_NE(ParseError("1e"), "");
  EXPECT_NE(ParseError("'single'"), "");
}

TEST(JsonParseTest, OverflowingLiteralSaturatesToInfinity) {
  // Deliberate: 1e999 is *representable* as +inf so the request
  // validation layer rejects it with "tau must be finite" instead of the
  // parser failing generically (the estimate_request regression).
  EXPECT_TRUE(std::isinf(MustParse("1e999").AsNumber()));
  EXPECT_TRUE(std::isinf(MustParse("-1e999").AsNumber()));
  EXPECT_GT(MustParse("1e999").AsNumber(), 0.0);
  // Underflow just goes to zero.
  EXPECT_EQ(MustParse("1e-999").AsNumber(), 0.0);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(MustParse("\"a\\n\\t\\\"\\\\b\\/\"").AsString(), "a\n\t\"\\b/");
  EXPECT_EQ(MustParse("\"\\u0041\"").AsString(), "A");
  // Two-byte and three-byte UTF-8 from \u escapes.
  EXPECT_EQ(MustParse("\"\\u00e9\"").AsString(), "\xc3\xa9");
  EXPECT_EQ(MustParse("\"\\u20ac\"").AsString(), "\xe2\x82\xac");
  // Surrogate pair -> 4-byte UTF-8 (U+1F600).
  EXPECT_EQ(MustParse("\"\\ud83d\\ude00\"").AsString(),
            "\xf0\x9f\x98\x80");
  // Lone / malformed surrogates are rejected.
  EXPECT_NE(ParseError("\"\\ud83d\""), "");
  EXPECT_NE(ParseError("\"\\ud83dx\""), "");
  EXPECT_NE(ParseError("\"\\ude00\""), "");
  EXPECT_NE(ParseError("\"\\uzzzz\""), "");
  // Raw control characters must be escaped.
  EXPECT_NE(ParseError("\"a\nb\""), "");
}

TEST(JsonSerializeTest, RoundTripPreservesStructure) {
  const std::string text =
      "{\"a\":[1,2.5,{\"b\":true}],\"c\":\"x\\ny\",\"d\":null}";
  const JsonValue doc = MustParse(text);
  const JsonValue again = MustParse(doc.Serialize());
  EXPECT_EQ(again.Serialize(), doc.Serialize());
}

TEST(JsonSerializeTest, NumbersPrintExactly) {
  std::string out;
  JsonValue::AppendNumber(&out, 42.0);
  EXPECT_EQ(out, "42");
  out.clear();
  JsonValue::AppendNumber(&out, -7.0);
  EXPECT_EQ(out, "-7");
  out.clear();
  // Largest exactly-representable integer prints without precision loss.
  JsonValue::AppendNumber(&out, 9007199254740991.0);
  EXPECT_EQ(out, "9007199254740991");
  out.clear();
  JsonValue::AppendNumber(&out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
  out.clear();
  JsonValue::AppendNumber(&out, std::nan(""));
  EXPECT_EQ(out, "null");

  // %.17g round-trip: parse(serialize(x)) == x bitwise.
  for (const double v : {0.1, 1.0 / 3.0, 2.5e-17, 27.802916666666665}) {
    out.clear();
    JsonValue::AppendNumber(&out, v);
    EXPECT_EQ(MustParse(out).AsNumber(), v) << out;
  }
}

TEST(JsonSerializeTest, QuotedEscapesControlCharacters) {
  std::string out;
  JsonValue::AppendQuoted(&out, std::string_view("a\"\\\n\t\x01z", 7));
  EXPECT_EQ(out, "\"a\\\"\\\\\\n\\t\\u0001z\"");
  // And the escaped form parses back to the original bytes.
  EXPECT_EQ(MustParse(out).AsString(), std::string("a\"\\\n\t\x01z", 7));
}

TEST(JsonSerializeTest, BuildersChain) {
  JsonValue doc = JsonValue::Object();
  doc.Set("id", JsonValue::Number(7))
      .Set("ok", JsonValue::Bool(true))
      .Set("tags", JsonValue::Array()
                       .Append(JsonValue::Str("a"))
                       .Append(JsonValue::Str("b")));
  EXPECT_EQ(doc.Serialize(), "{\"id\":7,\"ok\":true,\"tags\":[\"a\",\"b\"]}");
}

}  // namespace
}  // namespace vsj::net
