// Tests of the concurrent estimation service: the determinism contract
// (batch results independent of thread count), the parallel index build
// being bit-identical to the serial build, cache behaviour across batches,
// and the CardinalityProvider facade.

#include "vsj/service/estimation_service.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/service/cardinality_provider.h"
#include "vsj/service/dataset_fingerprint.h"

namespace vsj {
namespace {

VectorDataset TestCorpus(size_t n = 600, uint64_t seed = 7) {
  return testing::SmallClusteredCorpus(n, seed);
}

EstimationServiceOptions SmallOptions(size_t threads, bool cache = true) {
  EstimationServiceOptions options;
  options.k = 8;
  options.num_tables = 2;
  options.num_threads = threads;
  options.family_seed = 0x5eed;
  options.enable_cache = cache;
  return options;
}

std::vector<EstimateRequest> MixedBatch() {
  std::vector<EstimateRequest> batch;
  for (double tau : {0.5, 0.6, 0.7, 0.8}) {
    for (const char* name : {"LSH-SS", "RS(pop)", "LSH-S"}) {
      EstimateRequest request;
      request.estimator_name = name;
      request.tau = tau;
      request.trials = 3;
      request.seed = 42;
      batch.push_back(request);
    }
  }
  return batch;
}

TEST(EstimationServiceTest, BatchIsBitIdenticalAcrossThreadCounts) {
  const std::vector<EstimateRequest> batch = MixedBatch();

  std::vector<EstimateResponse> baseline;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    EstimationService service(TestCorpus(), SmallOptions(threads, false));
    const std::vector<EstimateResponse> responses =
        service.EstimateBatch(batch);
    ASSERT_EQ(responses.size(), batch.size());
    if (threads == 1) {
      baseline = responses;
      continue;
    }
    for (size_t i = 0; i < responses.size(); ++i) {
      // Bit-identical, not approximately equal: the per-request RNG stream
      // may not depend on scheduling.
      EXPECT_EQ(responses[i].mean_estimate, baseline[i].mean_estimate)
          << "threads=" << threads << " request=" << i;
      EXPECT_EQ(responses[i].std_dev, baseline[i].std_dev)
          << "threads=" << threads << " request=" << i;
      EXPECT_EQ(responses[i].pairs_evaluated, baseline[i].pairs_evaluated)
          << "threads=" << threads << " request=" << i;
      EXPECT_EQ(responses[i].num_unguaranteed, baseline[i].num_unguaranteed)
          << "threads=" << threads << " request=" << i;
    }
  }
}

TEST(EstimationServiceTest, RepeatedBatchesAreReproducible) {
  EstimationService service(TestCorpus(), SmallOptions(4, false));
  const std::vector<EstimateRequest> batch = MixedBatch();
  const auto first = service.EstimateBatch(batch);
  const auto second = service.EstimateBatch(batch);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].mean_estimate, second[i].mean_estimate) << i;
  }
}

TEST(EstimationServiceTest, ParallelIndexBuildMatchesSerial) {
  const VectorDataset dataset = TestCorpus(500);
  SimHashFamily family(0xfeedULL);
  const LshIndex serial(family, dataset, 10, 3);
  ThreadPool pool(4);
  const LshIndex parallel(family, dataset, 10, 3, &pool);

  ASSERT_EQ(serial.num_tables(), parallel.num_tables());
  for (uint32_t t = 0; t < serial.num_tables(); ++t) {
    const LshTable& a = serial.table(t);
    const LshTable& b = parallel.table(t);
    ASSERT_EQ(a.num_buckets(), b.num_buckets()) << t;
    EXPECT_EQ(a.NumSameBucketPairs(), b.NumSameBucketPairs()) << t;
    for (size_t bucket = 0; bucket < a.num_buckets(); ++bucket) {
      ASSERT_EQ(a.BucketKey(bucket), b.BucketKey(bucket)) << t;
      const auto bucket_a = a.bucket(bucket);
      const auto bucket_b = b.bucket(bucket);
      ASSERT_TRUE(std::equal(bucket_a.begin(), bucket_a.end(),
                             bucket_b.begin(), bucket_b.end()))
          << t;
    }
    for (VectorId id = 0; id < dataset.size(); ++id) {
      ASSERT_EQ(a.BucketOf(id), b.BucketOf(id)) << t;
    }
  }
}

TEST(EstimationServiceTest, SingleEstimateMatchesBatchOfOne) {
  EstimateRequest request;
  request.estimator_name = "LSH-SS";
  request.tau = 0.7;
  request.trials = 5;
  request.seed = 9;

  EstimationService a(TestCorpus(), SmallOptions(1, false));
  EstimationService b(TestCorpus(), SmallOptions(4, false));
  const EstimateResponse single = a.Estimate(request);
  const EstimateResponse batched = b.EstimateBatch({request}).front();
  EXPECT_EQ(single.mean_estimate, batched.mean_estimate);
  EXPECT_EQ(single.pairs_evaluated, batched.pairs_evaluated);
}

TEST(EstimationServiceTest, SecondBatchIsServedFromCache) {
  EstimationService service(TestCorpus(), SmallOptions(2, true));
  const std::vector<EstimateRequest> batch = MixedBatch();

  const auto first = service.EstimateBatch(batch);
  for (const auto& response : first) EXPECT_FALSE(response.from_cache);

  const auto second = service.EstimateBatch(batch);
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < second.size(); ++i) {
    EXPECT_TRUE(second[i].from_cache) << i;
    EXPECT_EQ(second[i].mean_estimate, first[i].mean_estimate) << i;
  }

  const EstimateCacheStats stats = service.cache().stats();
  EXPECT_EQ(stats.hits, batch.size());
  EXPECT_EQ(stats.misses, batch.size());
}

TEST(EstimationServiceTest, NearbyTauNeverAliasesCachedEstimate) {
  // Regression: 0.702 and 0.708 share τ-bucket 70 at width 0.01, and an
  // earlier bucket-keyed cache served the 0.702 response for the 0.708
  // probe relabelled with the asked τ — an estimate, error bar, and
  // sampling cost computed at a different threshold. The exact-τ key must
  // recompute, and the exact same τ must still hit.
  EstimationServiceOptions options = SmallOptions(1, true);
  options.cache_tau_bucket_width = 0.01;
  EstimationService service(TestCorpus(), options);

  EstimateRequest request;
  request.estimator_name = "LSH-SS";
  request.tau = 0.702;
  const EstimateResponse first = service.Estimate(request);
  request.tau = 0.708;
  const EstimateResponse neighbor = service.Estimate(request);
  EXPECT_FALSE(neighbor.from_cache);
  EXPECT_EQ(neighbor.tau, 0.708);
  request.tau = 0.702;
  const EstimateResponse reprobe = service.Estimate(request);
  EXPECT_TRUE(reprobe.from_cache);
  EXPECT_EQ(reprobe.tau, 0.702);
  EXPECT_EQ(reprobe.mean_estimate, first.mean_estimate);
}

TEST(EstimationServiceTest, DuplicateRequestsComputeOnceAndAgree) {
  // Cross-request grouping: identical requests in one batch compute once
  // (the leader's batch position feeds the RNG stream) and every follower
  // is served the leader's response — what a cache hit on it would show.
  EstimationService service(TestCorpus(), SmallOptions(2, true));
  EstimateRequest request;
  request.estimator_name = "LSH-SS";
  request.tau = 0.7;
  request.trials = 3;
  request.seed = 11;
  const std::vector<EstimateRequest> batch(4, request);

  const auto responses = service.EstimateBatch(batch);
  ASSERT_EQ(responses.size(), 4u);
  for (const auto& response : responses) {
    EXPECT_FALSE(response.from_cache);
    EXPECT_EQ(response.mean_estimate, responses[0].mean_estimate);
    EXPECT_EQ(response.pairs_evaluated, responses[0].pairs_evaluated);
  }
  EXPECT_EQ(service.cache().stats().insertions, 1u);

  // The group's single compute matches a singleton batch (leader index 0).
  EstimationService fresh(TestCorpus(), SmallOptions(1, false));
  EXPECT_EQ(fresh.Estimate(request).mean_estimate,
            responses[0].mean_estimate);
}

TEST(EstimationServiceTest, EarlyExitStopsWithinTrialBudget) {
  EstimateRequest request;
  request.estimator_name = "LSH-SS";
  request.tau = 0.6;
  request.trials = 8;
  request.seed = 3;

  EstimationService service(TestCorpus(), SmallOptions(1, false));
  const EstimateResponse full = service.Estimate(request);
  ASSERT_EQ(full.trials, 8u);

  // A sloppy bound exits after the two-trial minimum; the trials that did
  // run are the same prefix of the stream, so mean/std come from the first
  // two full-budget trials.
  request.max_rel_error = 1e6;
  const EstimateResponse loose = service.Estimate(request);
  EXPECT_EQ(loose.trials, 2u);
  EXPECT_LT(loose.pairs_evaluated, full.pairs_evaluated);

  // An unattainable bound runs the whole budget and matches the unbounded
  // response trial for trial.
  request.max_rel_error = 1e-15;
  const EstimateResponse tight = service.Estimate(request);
  EXPECT_EQ(tight.trials, 8u);
  EXPECT_EQ(tight.mean_estimate, full.mean_estimate);
  EXPECT_EQ(tight.pairs_evaluated, full.pairs_evaluated);
}

TEST(EstimationServiceTest, SamplingOverridesShrinkTheSample) {
  EstimateRequest request;
  request.estimator_name = "LSH-SS";
  request.tau = 0.7;
  request.trials = 2;
  request.seed = 5;

  EstimationService service(TestCorpus(), SmallOptions(1, false));
  const EstimateResponse defaults = service.Estimate(request);

  request.sample_size_h = 50;
  request.sample_size_l = 50;
  request.delta = 5;
  const EstimateResponse overridden = service.Estimate(request);
  EXPECT_LT(overridden.pairs_evaluated, defaults.pairs_evaluated);
  // m_H = 50 per trial is a hard floor on the evaluation count.
  EXPECT_GE(overridden.pairs_evaluated, 2u * 50u);
}

TEST(EstimationServiceTest, FingerprintTracksContent) {
  const VectorDataset a = TestCorpus(300, 1);
  const VectorDataset b = TestCorpus(300, 2);
  EXPECT_NE(DatasetFingerprint(a), DatasetFingerprint(b));
  EXPECT_EQ(DatasetFingerprint(a), DatasetFingerprint(TestCorpus(300, 1)));
}

TEST(EstimationServiceTest, EstimatesAreClampedToFeasibleRange) {
  EstimationService service(TestCorpus(), SmallOptions(4, false));
  const auto responses = service.EstimateBatch(MixedBatch());
  const auto max_pairs = static_cast<double>(service.dataset().NumPairs());
  for (const auto& response : responses) {
    EXPECT_GE(response.mean_estimate, 0.0);
    EXPECT_LE(response.mean_estimate, max_pairs);
  }
}

TEST(CardinalityProviderTest, SummaryFieldsAreConsistent) {
  EstimationService service(TestCorpus(), SmallOptions(2, true));
  CardinalityProviderOptions options;
  options.estimator_name = "LSH-SS";
  options.trials = 4;
  options.seed = 5;
  CardinalityProvider provider(service, options);

  const JoinSizeSummary summary = provider.EstimateJoin(0.6);
  EXPECT_EQ(summary.tau, 0.6);
  EXPECT_EQ(summary.estimator_name, "LSH-SS");
  EXPECT_EQ(summary.max_pairs, service.dataset().NumPairs());
  EXPECT_GE(summary.cardinality, 0.0);
  EXPECT_LE(summary.cardinality, static_cast<double>(summary.max_pairs));
  EXPECT_NEAR(summary.selectivity,
              summary.cardinality / static_cast<double>(summary.max_pairs),
              1e-12);
}

TEST(CardinalityProviderTest, BatchSweepAndCachedReprobe) {
  EstimationService service(TestCorpus(), SmallOptions(4, true));
  CardinalityProvider provider(service);

  const std::vector<double> taus = {0.5, 0.6, 0.7, 0.8, 0.9};
  const auto sweep = provider.EstimateJoinBatch(taus);
  ASSERT_EQ(sweep.size(), taus.size());
  for (size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(sweep[i].tau, taus[i]);
    EXPECT_FALSE(sweep[i].from_cache);
  }

  const auto reprobe = provider.EstimateJoinBatch(taus);
  for (size_t i = 0; i < reprobe.size(); ++i) {
    EXPECT_TRUE(reprobe[i].from_cache) << i;
    EXPECT_EQ(reprobe[i].cardinality, sweep[i].cardinality) << i;
  }
}

TEST(CardinalityProviderTest, HigherThresholdNeverExplodesCardinality) {
  // Sanity: the provider's estimates follow the broad monotone shape of
  // J(τ) on a clustered corpus (compare far-apart thresholds only; single
  // estimates are noisy).
  EstimationService service(TestCorpus(1000), SmallOptions(2, false));
  CardinalityProviderOptions options;
  options.trials = 8;
  CardinalityProvider provider(service, options);
  const JoinSizeSummary low = provider.EstimateJoin(0.3);
  const JoinSizeSummary high = provider.EstimateJoin(0.95);
  EXPECT_GE(low.cardinality, high.cardinality);
}

}  // namespace
}  // namespace vsj
