// Checkpoint/Restore of the streaming engine. The headline invariant (an
// acceptance criterion of the snapshot layer): a churned service that is
// checkpointed and restored by a process-fresh Restore answers every
// estimate bit-identically — same means, same std errors, same pair
// counts — with the effective fingerprint and the epoch round-tripping
// exactly. Also covered: continued mutation after restore (id-space
// continuity), erased-id permanence, multi-table engines, cold-cache
// semantics, and corrupt-snapshot error paths.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/service/streaming_estimation_service.h"

namespace vsj {
namespace {

StreamingEstimationServiceOptions EngineOptions(uint32_t tables = 2,
                                                size_t threads = 1) {
  StreamingEstimationServiceOptions options;
  options.k = 8;
  options.num_tables = tables;
  options.num_threads = threads;
  options.family_seed = 0xfeedULL;
  return options;
}

EstimateRequest LshSsRequest(double tau, size_t trials = 8,
                             uint64_t seed = 42) {
  EstimateRequest request;
  request.estimator_name = "LSH-SS";
  request.tau = tau;
  request.trials = trials;
  request.seed = seed;
  return request;
}

/// Heavy churn: inserts, removals, re-inserts, erasures, and appended
/// vectors — enough history that bucket member order, live-list order, and
/// the id space all differ from any fresh build.
void Churn(StreamingEstimationService& service) {
  for (VectorId id = 0; id < 400; ++id) service.Insert(id);
  for (VectorId id = 0; id < 400; id += 3) service.Remove(id);
  for (VectorId id = 0; id < 400; id += 6) service.Insert(id);  // re-insert
  for (VectorId id = 200; id < 260; ++id) service.Erase(id);
  const VectorId added =
      service.AddVector(SparseVector({{7, 1.0f}, {900001, 2.0f}}));
  service.Insert(added);
}

std::string SnapshotPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

class ServiceSnapshotTest : public ::testing::Test {
 protected:
  std::unique_ptr<StreamingEstimationService> MakeChurned(
      StreamingEstimationServiceOptions options) {
    auto service = std::make_unique<StreamingEstimationService>(
        testing::SmallClusteredCorpus(450, 17), options);
    Churn(*service);
    return service;
  }
};

TEST_F(ServiceSnapshotTest, RestoreYieldsBitIdenticalEstimates) {
  const std::string path = SnapshotPath("vsj_snapshot_roundtrip.vsjs");
  const auto original = MakeChurned(EngineOptions());
  ASSERT_TRUE(original->Checkpoint(path).ok());

  std::unique_ptr<StreamingEstimationService> restored;
  ASSERT_TRUE(StreamingEstimationService::Restore(path, &restored,
                                                  EngineOptions())
                  .ok());

  // Identity round-trips exactly.
  EXPECT_EQ(restored->epoch(), original->epoch());
  EXPECT_EQ(restored->effective_fingerprint(),
            original->effective_fingerprint());
  EXPECT_EQ(restored->num_live(), original->num_live());
  EXPECT_EQ(restored->store().num_ids(), original->store().num_ids());
  EXPECT_EQ(restored->index().live_ids(), original->index().live_ids());
  EXPECT_EQ(restored->cache().stats().epoch, original->cache().stats().epoch);

  // The acceptance pin: batches answer bit-identically.
  std::vector<EstimateRequest> batch;
  for (const double tau : {0.3, 0.5, 0.7, 0.9}) {
    batch.push_back(LshSsRequest(tau));
  }
  const auto original_responses = original->EstimateBatch(batch);
  const auto restored_responses = restored->EstimateBatch(batch);
  ASSERT_EQ(original_responses.size(), restored_responses.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(original_responses[i].mean_estimate,
              restored_responses[i].mean_estimate)
        << "tau=" << batch[i].tau;
    EXPECT_EQ(original_responses[i].std_error,
              restored_responses[i].std_error)
        << "tau=" << batch[i].tau;
    EXPECT_EQ(original_responses[i].pairs_evaluated,
              restored_responses[i].pairs_evaluated)
        << "tau=" << batch[i].tau;
  }
  std::remove(path.c_str());
}

TEST_F(ServiceSnapshotTest, RestoredEngineStaysBitIdenticalUnderMutation) {
  // Checkpoint, then apply the same further mutations to both engines —
  // the restored one must keep tracking the original exactly, including
  // the ids that AddVector hands out (id-space continuity across erased
  // slots).
  const std::string path = SnapshotPath("vsj_snapshot_mutate.vsjs");
  const auto original = MakeChurned(EngineOptions());
  ASSERT_TRUE(original->Checkpoint(path).ok());
  std::unique_ptr<StreamingEstimationService> restored;
  ASSERT_TRUE(StreamingEstimationService::Restore(path, &restored,
                                                  EngineOptions())
                  .ok());

  const SparseVector fresh({{11, 1.0f}, {22, 0.5f}, {33, 2.0f}});
  const VectorId id_a = original->AddVector(fresh);
  const VectorId id_b = restored->AddVector(fresh);
  EXPECT_EQ(id_a, id_b);
  original->Insert(id_a);
  restored->Insert(id_b);
  original->Remove(1);
  restored->Remove(1);
  EXPECT_EQ(original->epoch(), restored->epoch());
  EXPECT_EQ(original->effective_fingerprint(),
            restored->effective_fingerprint());

  const EstimateRequest request = LshSsRequest(0.5);
  EXPECT_EQ(original->Estimate(request).mean_estimate,
            restored->Estimate(request).mean_estimate);

  // Erased ids stay gone after restore.
  EXPECT_FALSE(restored->store().Contains(210));
  EXPECT_FALSE(restored->Contains(210));
  std::remove(path.c_str());
}

TEST_F(ServiceSnapshotTest, RuntimeOptionsComeFromCallerFormatFromFile) {
  const std::string path = SnapshotPath("vsj_snapshot_options.vsjs");
  const auto original = MakeChurned(EngineOptions(/*tables=*/3));
  ASSERT_TRUE(original->Checkpoint(path).ok());

  StreamingEstimationServiceOptions runtime = EngineOptions();
  runtime.k = 99;                  // overwritten by the snapshot
  runtime.num_tables = 1;          // overwritten by the snapshot
  runtime.family_seed = 123;       // overwritten by the snapshot
  runtime.num_threads = 4;         // honored
  runtime.cache_capacity = 7;      // honored
  std::unique_ptr<StreamingEstimationService> restored;
  ASSERT_TRUE(
      StreamingEstimationService::Restore(path, &restored, runtime).ok());
  EXPECT_EQ(restored->options().k, 8u);
  EXPECT_EQ(restored->options().num_tables, 3u);
  EXPECT_EQ(restored->options().family_seed, 0xfeedULL);
  EXPECT_EQ(restored->options().num_threads, 4u);
  EXPECT_EQ(restored->cache().capacity(), 7u);
  EXPECT_EQ(restored->index().num_tables(), 3u);

  // Thread count never changes results (the PR-1 determinism contract).
  const EstimateRequest request = LshSsRequest(0.6);
  EXPECT_EQ(original->Estimate(request).mean_estimate,
            restored->Estimate(request).mean_estimate);
  std::remove(path.c_str());
}

TEST_F(ServiceSnapshotTest, ColdCacheRecomputesIdenticalAnswers) {
  const std::string path = SnapshotPath("vsj_snapshot_cache.vsjs");
  const auto original = MakeChurned(EngineOptions());
  const EstimateRequest request = LshSsRequest(0.5);
  const EstimateResponse warm = original->Estimate(request);
  ASSERT_TRUE(original->Checkpoint(path).ok());

  std::unique_ptr<StreamingEstimationService> restored;
  ASSERT_TRUE(StreamingEstimationService::Restore(path, &restored,
                                                  EngineOptions())
                  .ok());
  const EstimateResponse cold = restored->Estimate(request);
  // Entries are not persisted: the restored engine recomputes...
  EXPECT_FALSE(cold.from_cache);
  // ...but determinism makes the recomputed answer bit-identical, and a
  // repeat is now a hit under the round-tripped fingerprint.
  EXPECT_EQ(cold.mean_estimate, warm.mean_estimate);
  EXPECT_TRUE(restored->Estimate(request).from_cache);
  std::remove(path.c_str());
}

TEST_F(ServiceSnapshotTest, RestoreErrorsAreStatusNotAborts) {
  std::unique_ptr<StreamingEstimationService> restored;
  EXPECT_EQ(StreamingEstimationService::Restore("/nonexistent/snap.vsjs",
                                                &restored)
                .code,
            IoError::kNotFound);
  EXPECT_EQ(restored, nullptr);

  // A dataset file is not a snapshot.
  const std::string path = SnapshotPath("vsj_snapshot_not_a_snapshot.vsjs");
  {
    const auto service = MakeChurned(EngineOptions());
    ASSERT_TRUE(service->Checkpoint(path).ok());
  }
  // Corrupt the tail (a section payload) — checksummed, so kChecksumMismatch.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    const int last = std::fgetc(f);
    std::fseek(f, -1, SEEK_END);
    std::fputc(last ^ 0x04, f);
    std::fclose(f);
  }
  EXPECT_EQ(StreamingEstimationService::Restore(path, &restored).code,
            IoError::kChecksumMismatch);
  EXPECT_EQ(restored, nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vsj
