#include "vsj/service/estimate_cache.h"

#include <gtest/gtest.h>

namespace vsj {
namespace {

EstimateRequest MakeRequest(const char* estimator, double tau,
                            size_t trials = 3, uint64_t seed = 1) {
  EstimateRequest request;
  request.estimator_name = estimator;
  request.tau = tau;
  request.trials = trials;
  request.seed = seed;
  return request;
}

EstimateResponse MakeResponse(double tau, double estimate) {
  EstimateResponse response;
  response.tau = tau;
  response.estimator_name = "LSH-SS";
  response.mean_estimate = estimate;
  response.trials = 3;
  return response;
}

TEST(EstimateCacheTest, MissThenHit) {
  EstimateCache cache(0.01, 16);
  const EstimateRequest request = MakeRequest("LSH-SS", 0.805);
  EXPECT_FALSE(cache.Lookup(request, 111).has_value());
  cache.Insert(request, 111, MakeResponse(0.805, 1234.0));
  const auto hit = cache.Lookup(request, 111);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->mean_estimate, 1234.0);
  EXPECT_TRUE(hit->from_cache);
}

TEST(EstimateCacheTest, NearbyTauNeverAliases) {
  // Regression: the key is the exact τ bit pattern, never the τ-bucket.
  // 0.802 and 0.808 fall into bucket 80 at width 0.01 — an earlier
  // bucket-keyed cache served one's response for the other, silently
  // mislabeling the estimate, its error bar, and its sampling cost.
  EstimateCache cache(0.01, 16);
  cache.Insert(MakeRequest("LSH-SS", 0.802), 111, MakeResponse(0.802, 500.0));
  EXPECT_FALSE(cache.Lookup(MakeRequest("LSH-SS", 0.808), 111).has_value());
  const auto hit = cache.Lookup(MakeRequest("LSH-SS", 0.802), 111);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->mean_estimate, 500.0);
  EXPECT_DOUBLE_EQ(hit->tau, 0.802);
}

TEST(EstimateCacheTest, KeyIncludesErrorBoundAndOverrides) {
  EstimateCache cache(0.01, 16);
  const EstimateRequest base = MakeRequest("LSH-SS", 0.805);
  cache.Insert(base, 111, MakeResponse(0.805, 500.0));

  EstimateRequest bounded = base;
  bounded.max_rel_error = 0.05;
  EXPECT_FALSE(cache.Lookup(bounded, 111).has_value());

  EstimateRequest overridden = base;
  overridden.delta = 16;
  EXPECT_FALSE(cache.Lookup(overridden, 111).has_value());

  overridden = base;
  overridden.sample_size_h = 128;
  EXPECT_FALSE(cache.Lookup(overridden, 111).has_value());

  EXPECT_TRUE(cache.Lookup(base, 111).has_value());
}

TEST(EstimateCacheTest, ShardedCacheBoundsTotalSize) {
  // Capacity splits across shards (ceil(8/4) = 2 each); no matter how the
  // shard hints distribute, the total footprint never exceeds capacity and
  // every overflow is an accounted eviction.
  EstimateCache cache(0.01, 8, 4);
  EXPECT_EQ(cache.num_shards(), 4u);
  const int kInserted = 32;
  for (int i = 0; i < kInserted; ++i) {
    // Distinct estimator names spread the shard hint; distinct keys all.
    const std::string name = "est" + std::to_string(i);
    cache.Insert(MakeRequest(name.c_str(), 0.5), 1, MakeResponse(0.5, i));
  }
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_EQ(cache.stats().evictions, kInserted - cache.size());
}

TEST(EstimateCacheTest, KeyIncludesEstimatorAndFingerprint) {
  EstimateCache cache(0.01, 16);
  cache.Insert(MakeRequest("LSH-SS", 0.805), 111, MakeResponse(0.805, 500.0));
  EXPECT_FALSE(cache.Lookup(MakeRequest("RS(pop)", 0.805), 111).has_value());
  EXPECT_FALSE(cache.Lookup(MakeRequest("LSH-SS", 0.805), 222).has_value());
  EXPECT_TRUE(cache.Lookup(MakeRequest("LSH-SS", 0.805), 111).has_value());
}

TEST(EstimateCacheTest, KeyIncludesTrialsAndSeed) {
  EstimateCache cache(0.01, 16);
  cache.Insert(MakeRequest("LSH-SS", 0.805, /*trials=*/1, /*seed=*/1), 111,
               MakeResponse(0.805, 500.0));
  // A request for an 8-trial error bar must not be served the single-trial
  // response, and a different seed must draw fresh.
  EXPECT_FALSE(
      cache.Lookup(MakeRequest("LSH-SS", 0.805, 8, 1), 111).has_value());
  EXPECT_FALSE(
      cache.Lookup(MakeRequest("LSH-SS", 0.805, 1, 2), 111).has_value());
  EXPECT_TRUE(
      cache.Lookup(MakeRequest("LSH-SS", 0.805, 1, 1), 111).has_value());
}

TEST(EstimateCacheTest, HitMissAccounting) {
  EstimateCache cache(0.01, 16);
  const EstimateRequest request = MakeRequest("LSH-SS", 0.5);
  cache.Lookup(request, 1);                            // miss
  cache.Insert(request, 1, MakeResponse(0.5, 10.0));
  cache.Lookup(request, 1);                            // hit
  cache.Lookup(request, 1);                            // hit
  cache.Lookup(MakeRequest("LSH-SS", 0.9), 1);         // miss
  const EstimateCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(EstimateCacheTest, EvictsLeastRecentlyUsed) {
  // One shard pins the exact global LRU order (with several shards the
  // order is exact only per shard).
  EstimateCache cache(0.01, 2, /*num_shards=*/1);
  cache.Insert(MakeRequest("A", 0.5), 1, MakeResponse(0.5, 1.0));
  cache.Insert(MakeRequest("B", 0.5), 1, MakeResponse(0.5, 2.0));
  // Touch A so B becomes the LRU entry.
  EXPECT_TRUE(cache.Lookup(MakeRequest("A", 0.5), 1).has_value());
  cache.Insert(MakeRequest("C", 0.5), 1, MakeResponse(0.5, 3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Lookup(MakeRequest("A", 0.5), 1).has_value());
  EXPECT_FALSE(cache.Lookup(MakeRequest("B", 0.5), 1).has_value());
  EXPECT_TRUE(cache.Lookup(MakeRequest("C", 0.5), 1).has_value());
}

TEST(EstimateCacheTest, InsertOverwritesSameKey) {
  EstimateCache cache(0.01, 4);
  const EstimateRequest request = MakeRequest("LSH-SS", 0.5);
  cache.Insert(request, 1, MakeResponse(0.5, 1.0));
  cache.Insert(request, 1, MakeResponse(0.5, 2.0));
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.Lookup(request, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->mean_estimate, 2.0);
}

TEST(EstimateCacheTest, ClearEmptiesButKeepsStats) {
  EstimateCache cache(0.01, 4);
  const EstimateRequest request = MakeRequest("LSH-SS", 0.5);
  cache.Insert(request, 1, MakeResponse(0.5, 1.0));
  cache.Lookup(request, 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(request, 1).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(EstimateCacheTest, NoteInvalidationBumpsEpochStat) {
  EstimateCache cache(0.01, 4);
  EXPECT_EQ(cache.stats().epoch, 0u);
  cache.NoteInvalidation();
  cache.NoteInvalidation();
  EXPECT_EQ(cache.stats().epoch, 2u);
  // Invalidation is an owner-level event: entries stay resident (they are
  // unreachable via the owner's epoch-folded key, not erased) and the
  // other counters are untouched.
  const EstimateRequest request = MakeRequest("LSH-SS", 0.5);
  cache.Insert(request, 1, MakeResponse(0.5, 1.0));
  cache.NoteInvalidation();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().epoch, 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(EstimateCacheTest, EpochFoldedFingerprintsNeverCollide) {
  // The streaming service folds its epoch into the fingerprint; entries
  // written under epoch e must miss under epoch e+1 even for identical
  // requests.
  EstimateCache cache(0.01, 16);
  const EstimateRequest request = MakeRequest("LSH-SS", 0.805);
  cache.Insert(request, /*fingerprint=*/1001, MakeResponse(0.805, 1.0));
  EXPECT_FALSE(cache.Lookup(request, /*fingerprint=*/1002).has_value());
  EXPECT_TRUE(cache.Lookup(request, /*fingerprint=*/1001).has_value());
}

TEST(EstimateCacheTest, TauBucketIsFloorDivision) {
  EstimateCache cache(0.05, 4);
  EXPECT_EQ(cache.TauBucket(0.52), cache.TauBucket(0.54));
  EXPECT_NE(cache.TauBucket(0.52), cache.TauBucket(0.58));
}

}  // namespace
}  // namespace vsj
