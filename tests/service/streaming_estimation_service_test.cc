// Tests of the streaming estimation engine: agreement with a freshly-built
// static EstimationService over the same live subset, batch determinism
// across thread counts, and epoch-based cache invalidation (a post-mutation
// estimate can never be served a pre-mutation cached value).

#include "vsj/service/streaming_estimation_service.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/join/brute_force_join.h"
#include "vsj/service/estimation_service.h"

namespace vsj {
namespace {

StreamingEstimationServiceOptions StreamOptions(size_t threads = 1,
                                                bool cache = true,
                                                uint32_t tables = 1) {
  StreamingEstimationServiceOptions options;
  options.k = 8;
  options.num_tables = tables;
  options.num_threads = threads;
  options.family_seed = 0x5eed;
  options.enable_cache = cache;
  return options;
}

EstimateRequest LshSsRequest(double tau, size_t trials = 10,
                             uint64_t seed = 42) {
  EstimateRequest request;
  request.estimator_name = "LSH-SS";
  request.tau = tau;
  request.trials = trials;
  request.seed = seed;
  return request;
}

/// Applies a scripted sliding-window mutation sequence; returns the live
/// ids in insertion order.
std::vector<VectorId> ApplyWindowScript(StreamingEstimationService& service) {
  std::vector<VectorId> live;
  for (VectorId id = 0; id < 500; ++id) {
    service.Insert(id);
    live.push_back(id);
  }
  for (VectorId id = 0; id < 120; ++id) {
    service.Remove(id);
  }
  live.erase(live.begin(), live.begin() + 120);
  for (VectorId id = 500; id < 580; ++id) {
    service.Insert(id);
    live.push_back(id);
  }
  return live;
}

TEST(StreamingEstimationServiceTest, MatchesStaticServiceOverLiveSubset) {
  // Acceptance criterion: after a scripted insert/remove sequence the
  // streaming estimates agree with a freshly-built static EstimationService
  // over the same live subset (same family seed and k) to within sampling
  // tolerance, and both track the exact join size.
  VectorDataset dataset = testing::SmallClusteredCorpus(700, 31);
  // Give SampleL enough budget to stay on the guaranteed path at these
  // thresholds (the default m_L = n hits the safe lower bound, which is
  // deliberately conservative and would obscure the comparison).
  StreamingEstimationServiceOptions stream_options = StreamOptions();
  stream_options.lsh_ss.sample_size_l = 8000;
  StreamingEstimationService streaming(dataset, stream_options);
  const std::vector<VectorId> live = ApplyWindowScript(streaming);

  VectorDataset window;
  for (VectorId id : live) window.Add(dataset[id]);
  EstimationServiceOptions static_options;
  static_options.k = 8;
  static_options.num_tables = 1;
  static_options.family_seed = 0x5eed;
  static_options.enable_cache = false;
  static_options.estimator_options.lsh_ss.sample_size_l = 8000;
  EstimationService fixed(std::move(window), static_options);

  for (double tau : {0.3, 0.5}) {
    const auto exact = static_cast<double>(BruteForceJoinSize(
        fixed.dataset(), SimilarityMeasure::kCosine, tau));
    ASSERT_GT(exact, 0.0) << tau;

    const EstimateRequest request = LshSsRequest(tau, /*trials=*/20);
    const double stream_mean =
        streaming.Estimate(request).mean_estimate;
    const double static_mean = fixed.Estimate(request).mean_estimate;

    EXPECT_GT(stream_mean, exact * 0.4) << tau;
    EXPECT_LT(stream_mean, exact * 2.5) << tau;
    EXPECT_GT(static_mean, 0.0) << tau;
    // Both sample the same stratification (identical hash functions over
    // identical live vectors), so their means agree within sampling noise.
    const double ratio = stream_mean / static_mean;
    EXPECT_GT(ratio, 0.4) << tau;
    EXPECT_LT(ratio, 2.5) << tau;
  }
}

TEST(StreamingEstimationServiceTest, BatchIsBitIdenticalAcrossThreadCounts) {
  std::vector<EstimateResponse> baseline;
  for (size_t threads : {1u, 4u}) {
    VectorDataset dataset = testing::SmallClusteredCorpus(700, 33);
    StreamingEstimationService service(
        std::move(dataset), StreamOptions(threads, /*cache=*/false,
                                          /*tables=*/2));
    ApplyWindowScript(service);

    std::vector<EstimateRequest> batch;
    for (double tau : {0.3, 0.5, 0.7, 0.9}) {
      batch.push_back(LshSsRequest(tau, /*trials=*/5));
    }
    const std::vector<EstimateResponse> responses =
        service.EstimateBatch(batch);
    ASSERT_EQ(responses.size(), batch.size());
    if (threads == 1) {
      baseline = responses;
      continue;
    }
    for (size_t i = 0; i < responses.size(); ++i) {
      EXPECT_EQ(responses[i].mean_estimate, baseline[i].mean_estimate) << i;
      EXPECT_EQ(responses[i].std_dev, baseline[i].std_dev) << i;
      EXPECT_EQ(responses[i].pairs_evaluated, baseline[i].pairs_evaluated)
          << i;
    }
  }
}

TEST(StreamingEstimationServiceTest, RepeatWithoutMutationHitsCache) {
  StreamingEstimationService service(testing::SmallClusteredCorpus(300, 35),
                                     StreamOptions());
  for (VectorId id = 0; id < 200; ++id) service.Insert(id);

  const EstimateRequest request = LshSsRequest(0.5, 4);
  const EstimateResponse first = service.Estimate(request);
  EXPECT_FALSE(first.from_cache);
  const EstimateResponse second = service.Estimate(request);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.mean_estimate, first.mean_estimate);
}

TEST(StreamingEstimationServiceTest, PostMutationEstimateIsNeverStale) {
  // Acceptance criterion: a post-mutation estimate never returns a
  // pre-mutation cached value, for every mutation kind.
  StreamingEstimationService service(testing::SmallClusteredCorpus(300, 37),
                                     StreamOptions());
  for (VectorId id = 0; id < 200; ++id) service.Insert(id);

  const EstimateRequest request = LshSsRequest(0.5, 4);
  service.Estimate(request);
  EXPECT_TRUE(service.Estimate(request).from_cache);

  service.Remove(7);
  const EstimateResponse after_remove = service.Estimate(request);
  EXPECT_FALSE(after_remove.from_cache);
  EXPECT_TRUE(service.Estimate(request).from_cache);

  service.Insert(210);
  EXPECT_FALSE(service.Estimate(request).from_cache);

  const VectorId added = service.AddVector(SparseVector(service.dataset()[0]));
  EXPECT_FALSE(service.Estimate(request).from_cache);
  service.Insert(added);
  EXPECT_FALSE(service.Estimate(request).from_cache);
}

TEST(StreamingEstimationServiceTest, EpochAndFingerprintTrackMutations) {
  StreamingEstimationService service(testing::SmallClusteredCorpus(100, 39),
                                     StreamOptions());
  EXPECT_EQ(service.epoch(), 0u);
  const uint64_t f0 = service.effective_fingerprint();

  service.Insert(0);
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_NE(service.effective_fingerprint(), f0);

  service.Remove(0);
  EXPECT_EQ(service.epoch(), 2u);

  service.AddVector(SparseVector(service.dataset()[1]));
  EXPECT_EQ(service.epoch(), 3u);

  // The cache observes every invalidation through its epoch stat.
  EXPECT_EQ(service.cache().stats().epoch, 3u);
}

TEST(StreamingEstimationServiceTest, AddVectorExtendsTheUniverse) {
  VectorDataset dataset = testing::SmallClusteredCorpus(50, 41);
  const SparseVector copy{dataset[0]};
  StreamingEstimationService service(std::move(dataset), StreamOptions());
  const size_t before = service.dataset().size();
  const VectorId id = service.AddVector(copy);
  EXPECT_EQ(id, before);
  service.Insert(id);
  EXPECT_TRUE(service.Contains(id));
  EXPECT_EQ(service.num_live(), 1u);
}

TEST(StreamingEstimationServiceTest, FewerThanTwoLiveVectorsEstimateZero) {
  StreamingEstimationService service(testing::SmallClusteredCorpus(50, 43),
                                     StreamOptions());
  const EstimateRequest request = LshSsRequest(0.5, 2);
  EXPECT_EQ(service.Estimate(request).mean_estimate, 0.0);
  service.Insert(0);
  EXPECT_EQ(service.Estimate(request).mean_estimate, 0.0);
}

TEST(StreamingEstimationServiceTest, EraseTombstonesAndCompactionKeepsIds) {
  StreamingEstimationServiceOptions options = StreamOptions();
  options.storage.compact_dead_fraction = 0.25;
  options.storage.min_dead_for_compaction = 8;
  options.storage.chunk_features = 256;
  StreamingEstimationService service(testing::SmallClusteredCorpus(100, 47),
                                     options);
  for (VectorId id = 0; id < 60; ++id) service.Insert(id);
  const SparseVector survivor{service.dataset()[59]};

  // Erase enough ids to cross the dead fraction and trigger compaction.
  const uint64_t epoch_before = service.epoch();
  for (VectorId id = 0; id < 30; ++id) service.Erase(id);
  EXPECT_GE(service.store().compactions(), 1u);
  EXPECT_EQ(service.num_live(), 30u);
  EXPECT_GT(service.epoch(), epoch_before);

  // Ids are stable across compaction: the estimator still reads the same
  // payloads, and erased ids are gone for good.
  EXPECT_TRUE(service.dataset()[59] == survivor.ref());
  EXPECT_FALSE(service.store().Contains(5));
  EXPECT_TRUE(service.Contains(59));

  // The live set keeps answering after churn + compaction.
  const EstimateResponse response =
      service.Estimate(LshSsRequest(0.4, /*trials=*/4));
  const uint64_t live_pairs = uint64_t{30} * 29 / 2;
  EXPECT_GE(response.mean_estimate, 0.0);
  EXPECT_LE(response.mean_estimate, static_cast<double>(live_pairs));
}

TEST(StreamingEstimationServiceTest, SampleContextPreservesBitIdentity) {
  // The batched pipeline's SampleL amortization: the flat bucket-of arrays
  // must produce the same accept/reject decision as the table's hash-map
  // SameBucket on every drawn pair, so the walk with a context is
  // bit-identical — same estimate, same evaluation count — to the direct
  // walk.
  VectorDataset dataset = testing::SmallClusteredCorpus(400, 17);
  StreamingEstimationService service(std::move(dataset),
                                     StreamOptions(1, false, /*tables=*/2));
  for (VectorId id = 0; id < 350; ++id) service.Insert(id);
  for (VectorId id = 0; id < 60; ++id) service.Remove(id);

  const StreamingLshSsEstimator estimator(service.dataset(), service.index(),
                                          service.options().measure,
                                          service.options().lsh_ss);
  StreamingSampleContext context;
  context.Build(service.index(), service.dataset().size());
  for (double tau : {0.4, 0.7, 0.9}) {
    for (uint32_t t = 0; t < 2; ++t) {
      for (uint64_t stream = 0; stream < 3; ++stream) {
        Rng direct_rng = Rng(42).Fork(0).Fork(stream);
        Rng context_rng = Rng(42).Fork(0).Fork(stream);
        const EstimationResult direct =
            estimator.EstimateWithTable(tau, t, direct_rng);
        const EstimationResult amortized =
            estimator.EstimateWithTable(tau, t, context_rng, &context);
        EXPECT_EQ(direct.estimate, amortized.estimate)
            << "tau=" << tau << " t=" << t << " stream=" << stream;
        EXPECT_EQ(direct.pairs_evaluated, amortized.pairs_evaluated)
            << "tau=" << tau << " t=" << t << " stream=" << stream;
        EXPECT_EQ(direct.guaranteed, amortized.guaranteed);
      }
    }
  }
}

TEST(StreamingEstimationServiceTest, PerRequestOverridesChangeTheSample) {
  VectorDataset dataset = testing::SmallClusteredCorpus(400, 23);
  StreamingEstimationService service(std::move(dataset),
                                     StreamOptions(1, false));
  for (VectorId id = 0; id < 300; ++id) service.Insert(id);

  EstimateRequest request = LshSsRequest(0.6, /*trials=*/2);
  const EstimateResponse defaults = service.Estimate(request);

  request.sample_size_h = 40;
  request.sample_size_l = 40;
  request.delta = 4;
  const EstimateResponse overridden = service.Estimate(request);
  EXPECT_LT(overridden.pairs_evaluated, defaults.pairs_evaluated);
  EXPECT_GE(overridden.pairs_evaluated, 2u * 40u);
}

TEST(StreamingEstimationServiceTest, EarlyExitRunsFewerTrials) {
  VectorDataset dataset = testing::SmallClusteredCorpus(400, 29);
  StreamingEstimationService service(std::move(dataset),
                                     StreamOptions(1, false));
  for (VectorId id = 0; id < 300; ++id) service.Insert(id);

  EstimateRequest request = LshSsRequest(0.5, /*trials=*/10);
  const EstimateResponse full = service.Estimate(request);
  ASSERT_EQ(full.trials, 10u);

  request.max_rel_error = 1e6;  // any 2-trial interval satisfies this
  const EstimateResponse early = service.Estimate(request);
  EXPECT_EQ(early.trials, 2u);
  EXPECT_LT(early.pairs_evaluated, full.pairs_evaluated);
}

TEST(StreamingEstimationServiceTest, MultiTableTrialsStayInFeasibleRange) {
  VectorDataset dataset = testing::SmallClusteredCorpus(300, 45);
  StreamingEstimationService service(
      std::move(dataset), StreamOptions(2, /*cache=*/false, /*tables=*/3));
  for (VectorId id = 0; id < 250; ++id) service.Insert(id);
  const uint64_t live_pairs = uint64_t{250} * 249 / 2;
  for (double tau : {0.2, 0.5, 0.8}) {
    const EstimateResponse response =
        service.Estimate(LshSsRequest(tau, /*trials=*/6));
    EXPECT_GE(response.mean_estimate, 0.0) << tau;
    EXPECT_LE(response.mean_estimate, static_cast<double>(live_pairs))
        << tau;
  }
}

}  // namespace
}  // namespace vsj
