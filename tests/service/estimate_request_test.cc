// Tests of the EstimateRequest validation layer: the zero-budget NaN edges
// of the sampling templates must be rejected before they reach an engine.

#include "vsj/service/estimate_request.h"

#include <limits>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(EstimateRequestTest, DefaultRequestIsValid) {
  EXPECT_EQ(ValidateEstimateRequest(EstimateRequest{}), nullptr);
}

TEST(EstimateRequestTest, EngagedOverridesAreValidWhenPositive) {
  EstimateRequest request;
  request.sample_size_h = 100;
  request.sample_size_l = 100;
  request.delta = 8;
  request.max_rel_error = 0.05;
  EXPECT_EQ(ValidateEstimateRequest(request), nullptr);
  EXPECT_TRUE(request.HasSamplingOverrides());
  EXPECT_FALSE(EstimateRequest{}.HasSamplingOverrides());
}

TEST(EstimateRequestTest, RejectsZeroTrials) {
  EstimateRequest request;
  request.trials = 0;
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
}

TEST(EstimateRequestTest, RejectsNonFiniteTau) {
  EstimateRequest request;
  request.tau = std::numeric_limits<double>::infinity();
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.tau = -std::numeric_limits<double>::infinity();
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.tau = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
}

// Pre-PR regression: τ outside (0, 1] used to pass validation and reach
// the sampling loops (τ ≤ 0 selects every pair, τ > 1 none) — the CLI had
// its own range check but the service API accepted nonsense, so any
// network request could smuggle it in.
TEST(EstimateRequestTest, RejectsOutOfRangeTau) {
  EstimateRequest request;
  request.tau = 0.0;
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.tau = -0.5;
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.tau = 1.0000001;
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.tau = 1.0;  // the inclusive upper edge stays valid
  EXPECT_EQ(ValidateEstimateRequest(request), nullptr);
  request.tau = 1e-9;  // tiny but positive stays valid
  EXPECT_EQ(ValidateEstimateRequest(request), nullptr);
}

// The named-diagnostic contract: NaN, ±inf and out-of-range each get a
// distinct message, so a typed RPC error can name the exact violation.
TEST(EstimateRequestTest, DiagnosticsNameTheViolation) {
  EstimateRequest request;
  request.tau = std::numeric_limits<double>::quiet_NaN();
  EXPECT_STREQ(ValidateEstimateRequest(request), "tau must not be NaN");
  request.tau = std::numeric_limits<double>::infinity();
  EXPECT_STREQ(ValidateEstimateRequest(request), "tau must be finite");
  request.tau = 2.0;
  EXPECT_STREQ(ValidateEstimateRequest(request), "tau must be in (0, 1]");
  request.tau = 0.8;
  request.max_rel_error = std::numeric_limits<double>::quiet_NaN();
  EXPECT_STREQ(ValidateEstimateRequest(request),
               "max_rel_error must not be NaN");
}

TEST(EstimateRequestTest, RejectsBadErrorBound) {
  EstimateRequest request;
  request.max_rel_error = -0.1;
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.max_rel_error = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
}

TEST(EstimateRequestTest, RejectsEngagedZeroBudgets) {
  // delta = 0 and zero sample budgets are the NaN edges of SampleStratumL /
  // SampleStratumH; an engaged zero must be refused, while nullopt (defer
  // to engine defaults) stays valid.
  EstimateRequest request;
  request.delta = 0;
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.delta.reset();
  request.sample_size_h = 0;
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.sample_size_h.reset();
  request.sample_size_l = 0;
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.sample_size_l.reset();
  EXPECT_EQ(ValidateEstimateRequest(request), nullptr);
}

}  // namespace
}  // namespace vsj
