// Tests of the EstimateRequest validation layer: the zero-budget NaN edges
// of the sampling templates must be rejected before they reach an engine.

#include "vsj/service/estimate_request.h"

#include <limits>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(EstimateRequestTest, DefaultRequestIsValid) {
  EXPECT_EQ(ValidateEstimateRequest(EstimateRequest{}), nullptr);
}

TEST(EstimateRequestTest, EngagedOverridesAreValidWhenPositive) {
  EstimateRequest request;
  request.sample_size_h = 100;
  request.sample_size_l = 100;
  request.delta = 8;
  request.max_rel_error = 0.05;
  EXPECT_EQ(ValidateEstimateRequest(request), nullptr);
  EXPECT_TRUE(request.HasSamplingOverrides());
  EXPECT_FALSE(EstimateRequest{}.HasSamplingOverrides());
}

TEST(EstimateRequestTest, RejectsZeroTrials) {
  EstimateRequest request;
  request.trials = 0;
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
}

TEST(EstimateRequestTest, RejectsNonFiniteTau) {
  EstimateRequest request;
  request.tau = std::numeric_limits<double>::infinity();
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.tau = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
}

TEST(EstimateRequestTest, RejectsBadErrorBound) {
  EstimateRequest request;
  request.max_rel_error = -0.1;
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.max_rel_error = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
}

TEST(EstimateRequestTest, RejectsEngagedZeroBudgets) {
  // delta = 0 and zero sample budgets are the NaN edges of SampleStratumL /
  // SampleStratumH; an engaged zero must be refused, while nullopt (defer
  // to engine defaults) stays valid.
  EstimateRequest request;
  request.delta = 0;
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.delta.reset();
  request.sample_size_h = 0;
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.sample_size_h.reset();
  request.sample_size_l = 0;
  EXPECT_NE(ValidateEstimateRequest(request), nullptr);
  request.sample_size_l.reset();
  EXPECT_EQ(ValidateEstimateRequest(request), nullptr);
}

}  // namespace
}  // namespace vsj
