// The multi-tenant dataset registry behind the network server: lazy
// snapshot opening of both tenant flavors, the LRU residency cap,
// refcount-safe eviction (in-flight requests keep an evicted tenant
// alive), dirty write-back on eviction, and the failure taxonomy
// (missing vs corrupt snapshots, tenant-name traversal guard).

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "vsj/fault/fault.h"
#include "vsj/gen/corpus_generator.h"
#include "vsj/gen/workloads.h"
#include "vsj/io/dataset_io.h"
#include "vsj/service/streaming_estimation_service.h"
#include "vsj/service/tenant_registry.h"

namespace vsj {
namespace {

constexpr size_t kCorpusSize = 120;

// Only the VSJ_FAULT-gated tests read snapshots back byte-for-byte.
[[maybe_unused]] std::string ReadAll(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

bool FileExists(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0;
}

EstimateRequest LshSsRequest(double tau = 0.7) {
  EstimateRequest request;
  request.estimator_name = "LSH-SS";
  request.tau = tau;
  request.trials = 2;
  request.seed = 7;
  return request;
}

class TenantRegistryTest : public ::testing::Test {
 protected:
  // One snapshot root per test, populated with a streaming tenant
  // ("churn", every vector live) and a static one ("wiki").
  void SetUp() override {
    fault::ClearAll();
    root_ = ::testing::TempDir() + "/tenant_registry_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::remove((root_ + "/churn.vsjs").c_str());
    std::remove((root_ + "/wiki.vsjb").c_str());
    ::mkdir(root_.c_str(), 0755);

    StreamingEstimationServiceOptions streaming_options;
    streaming_options.k = 8;
    streaming_options.family_seed = 0x5eedULL;
    StreamingEstimationService engine(
        GenerateCorpus(DblpLikeConfig(kCorpusSize, 3)), streaming_options);
    for (VectorId id = 0; id < kCorpusSize; ++id) engine.Insert(id);
    ASSERT_TRUE(engine.Checkpoint(root_ + "/churn.vsjs").ok());

    const VectorDataset dataset = GenerateCorpus(DblpLikeConfig(kCorpusSize, 4));
    ASSERT_TRUE(SaveDatasetToFile(dataset, root_ + "/wiki.vsjb").ok());
  }

  void TearDown() override { fault::ClearAll(); }

  TenantRegistryOptions Options(size_t max_resident = 8) {
    TenantRegistryOptions options;
    options.root = root_;
    options.max_resident = max_resident;
    options.static_options.k = 8;
    options.static_options.family_seed = 0x5eedULL;
    return options;
  }

  /// Adds `count` extra streaming snapshots named cold0..coldN-1, for
  /// eviction-pressure tests.
  void AddColdTenants(size_t count) {
    StreamingEstimationServiceOptions streaming_options;
    streaming_options.k = 4;
    for (size_t i = 0; i < count; ++i) {
      StreamingEstimationService engine(
          GenerateCorpus(DblpLikeConfig(40, 10 + i)), streaming_options);
      for (VectorId id = 0; id < 40; ++id) engine.Insert(id);
      ASSERT_TRUE(engine
                      .Checkpoint(root_ + "/cold" + std::to_string(i) +
                                  ".vsjs")
                      .ok());
    }
  }

  std::string root_;
};

TEST_F(TenantRegistryTest, ColdOpensBothFlavors) {
  TenantRegistry registry(Options());
  EXPECT_EQ(registry.num_resident(), 0u);

  std::shared_ptr<Tenant> churn;
  ASSERT_TRUE(registry.Acquire("churn", &churn).ok());
  EXPECT_TRUE(churn->is_streaming());
  EXPECT_EQ(churn->Stats().num_live, kCorpusSize);

  std::shared_ptr<Tenant> wiki;
  ASSERT_TRUE(registry.Acquire("wiki", &wiki).ok());
  EXPECT_FALSE(wiki->is_streaming());
  EXPECT_EQ(wiki->Stats().num_vectors, kCorpusSize);
  EXPECT_EQ(registry.num_resident(), 2u);

  // Both flavors answer estimates.
  for (const auto& tenant : {churn, wiki}) {
    const EstimateRequest request = LshSsRequest();
    ASSERT_TRUE(tenant->ValidateEstimate(request).ok());
    const std::vector<EstimateResponse> responses =
        tenant->EstimateBatchShared({request});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_GE(responses[0].mean_estimate, 0.0);
  }
}

TEST_F(TenantRegistryTest, SecondAcquireIsTheSameResident) {
  TenantRegistry registry(Options());
  std::shared_ptr<Tenant> first;
  std::shared_ptr<Tenant> second;
  ASSERT_TRUE(registry.Acquire("churn", &first).ok());
  ASSERT_TRUE(registry.Acquire("churn", &second).ok());
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(registry.num_resident(), 1u);
}

TEST_F(TenantRegistryTest, StreamingTakesPriorityOverStatic) {
  // Drop a same-named .vsjb next to churn.vsjs; the .vsjs must win.
  const VectorDataset dataset = GenerateCorpus(DblpLikeConfig(50, 9));
  ASSERT_TRUE(SaveDatasetToFile(dataset, root_ + "/churn.vsjb").ok());
  TenantRegistry registry(Options());
  std::shared_ptr<Tenant> tenant;
  ASSERT_TRUE(registry.Acquire("churn", &tenant).ok());
  EXPECT_TRUE(tenant->is_streaming());
}

TEST_F(TenantRegistryTest, MissingTenantIsNotFoundWithPath) {
  TenantRegistry registry(Options());
  std::shared_ptr<Tenant> tenant;
  const IoStatus status = registry.Acquire("nope", &tenant);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code, IoError::kNotFound);
  // The diagnostic names what was actually tried.
  EXPECT_NE(status.ToString().find("nope"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(registry.num_resident(), 0u);
}

TEST_F(TenantRegistryTest, CorruptSnapshotSurfacesReason) {
  {
    std::ofstream out(root_ + "/broken.vsjb", std::ios::trunc);
    out << "this is not a VSJB file";
  }
  TenantRegistry registry(Options());
  std::shared_ptr<Tenant> tenant;
  const IoStatus status = registry.Acquire("broken", &tenant);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.code, IoError::kNotFound);  // it exists, it's bad
  // A failed open leaves nothing resident; the registry keeps serving.
  EXPECT_EQ(registry.num_resident(), 0u);
  std::shared_ptr<Tenant> churn;
  EXPECT_TRUE(registry.Acquire("churn", &churn).ok());
}

TEST_F(TenantRegistryTest, TenantNameGuard) {
  EXPECT_TRUE(ValidTenantName("wiki"));
  EXPECT_TRUE(ValidTenantName("a-b_c.d2"));
  EXPECT_TRUE(ValidTenantName(std::string(128, 'x')));
  EXPECT_FALSE(ValidTenantName(""));
  EXPECT_FALSE(ValidTenantName(std::string(129, 'x')));
  EXPECT_FALSE(ValidTenantName(".hidden"));
  EXPECT_FALSE(ValidTenantName("../../etc/passwd"));
  EXPECT_FALSE(ValidTenantName("a/b"));
  EXPECT_FALSE(ValidTenantName("a b"));
  EXPECT_FALSE(ValidTenantName("a\x01z"));

  // And the guard is wired into Acquire: traversal names are kNotFound,
  // never a filesystem probe.
  TenantRegistry registry(Options());
  std::shared_ptr<Tenant> tenant;
  const IoStatus status = registry.Acquire("../churn", &tenant);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code, IoError::kNotFound);
}

TEST_F(TenantRegistryTest, LruEvictionUnderCap) {
  AddColdTenants(3);
  TenantRegistry registry(Options(/*max_resident=*/2));
  std::shared_ptr<Tenant> tenant;
  ASSERT_TRUE(registry.Acquire("cold0", &tenant).ok());
  tenant.reset();
  ASSERT_TRUE(registry.Acquire("cold1", &tenant).ok());
  tenant.reset();
  EXPECT_EQ(registry.num_resident(), 2u);

  // Re-touch cold0 so cold1 is now the LRU, then bring in a third.
  ASSERT_TRUE(registry.Acquire("cold0", &tenant).ok());
  tenant.reset();
  ASSERT_TRUE(registry.Acquire("cold2", &tenant).ok());
  tenant.reset();

  EXPECT_EQ(registry.num_resident(), 2u);
  const std::vector<std::string> resident = registry.ResidentNames();
  ASSERT_EQ(resident.size(), 2u);
  EXPECT_EQ(resident[0], "cold2");  // MRU first
  EXPECT_EQ(resident[1], "cold0");
}

TEST_F(TenantRegistryTest, EvictedTenantStaysUsableWhilePinned) {
  AddColdTenants(2);
  TenantRegistry registry(Options(/*max_resident=*/1));
  std::shared_ptr<Tenant> pinned;
  ASSERT_TRUE(registry.Acquire("churn", &pinned).ok());

  // Evict churn by acquiring others past the cap.
  std::shared_ptr<Tenant> other;
  ASSERT_TRUE(registry.Acquire("cold0", &other).ok());
  other.reset();
  ASSERT_TRUE(registry.Acquire("cold1", &other).ok());
  other.reset();
  EXPECT_EQ(registry.num_resident(), 1u);
  EXPECT_EQ(registry.ResidentNames()[0], "cold1");

  // The in-flight holder still has a fully working engine (refcount
  // safety: eviction drops the registry's reference, not ours).
  const EstimateRequest request = LshSsRequest();
  ASSERT_TRUE(pinned->ValidateEstimate(request).ok());
  const std::vector<EstimateResponse> responses =
      pinned->EstimateBatchShared({request});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_GE(responses[0].mean_estimate, 0.0);
  const TenantOpResult added = pinned->AddVector({{1, 1.0f}});
  ASSERT_TRUE(added.ok());
  EXPECT_TRUE(pinned->Insert(static_cast<VectorId>(added.value)).ok());
}

TEST_F(TenantRegistryTest, DirtyEvictionWritesBack) {
  AddColdTenants(2);
  const uint64_t base_epoch = [&] {
    TenantRegistry registry(Options());
    std::shared_ptr<Tenant> churn;
    EXPECT_TRUE(registry.Acquire("churn", &churn).ok());
    return churn->Stats().epoch;
  }();

  {
    TenantRegistry registry(Options(/*max_resident=*/1));
    std::shared_ptr<Tenant> churn;
    ASSERT_TRUE(registry.Acquire("churn", &churn).ok());
    ASSERT_TRUE(churn->Remove(5).ok());
    ASSERT_TRUE(churn->Remove(6).ok());
    EXPECT_TRUE(churn->dirty());
    churn.reset();  // unpinned and dirty: eviction must checkpoint

    std::shared_ptr<Tenant> other;
    ASSERT_TRUE(registry.Acquire("cold0", &other).ok());
    EXPECT_EQ(registry.ResidentNames(),
              std::vector<std::string>{"cold0"});
  }

  // A fresh registry restores the written-back state: the two removals
  // persisted (epoch advanced, live set shrank).
  TenantRegistry registry(Options());
  std::shared_ptr<Tenant> churn;
  ASSERT_TRUE(registry.Acquire("churn", &churn).ok());
  EXPECT_EQ(churn->Stats().epoch, base_epoch + 2);
  EXPECT_EQ(churn->Stats().num_live, kCorpusSize - 2);
  EXPECT_FALSE(churn->dirty());
}

TEST_F(TenantRegistryTest, FlushPersistsDirtyResidents) {
  {
    TenantRegistry registry(Options());
    std::shared_ptr<Tenant> churn;
    ASSERT_TRUE(registry.Acquire("churn", &churn).ok());
    ASSERT_TRUE(churn->Remove(0).ok());
    churn.reset();
    ASSERT_TRUE(registry.Flush().ok());
    // Flush, not eviction: the tenant stays resident but is clean now.
    EXPECT_EQ(registry.num_resident(), 1u);
    ASSERT_TRUE(registry.Acquire("churn", &churn).ok());
    EXPECT_FALSE(churn->dirty());
  }
  TenantRegistry registry(Options());
  std::shared_ptr<Tenant> churn;
  ASSERT_TRUE(registry.Acquire("churn", &churn).ok());
  EXPECT_EQ(churn->Stats().num_live, kCorpusSize - 1);
}

TEST_F(TenantRegistryTest, MutationTaxonomy) {
  TenantRegistry registry(Options());
  std::shared_ptr<Tenant> churn;
  std::shared_ptr<Tenant> wiki;
  ASSERT_TRUE(registry.Acquire("churn", &churn).ok());
  ASSERT_TRUE(registry.Acquire("wiki", &wiki).ok());

  // Static tenants reject every mutation as unsupported.
  EXPECT_EQ(wiki->Insert(0).code, TenantOpResult::Code::kUnsupported);
  EXPECT_EQ(wiki->Remove(0).code, TenantOpResult::Code::kUnsupported);
  EXPECT_EQ(wiki->Erase(0).code, TenantOpResult::Code::kUnsupported);
  EXPECT_EQ(wiki->AddVector({{1, 1.0f}}).code,
            TenantOpResult::Code::kUnsupported);

  // Streaming preconditions come back as bad_request, never an abort.
  EXPECT_EQ(churn->Insert(0).code, TenantOpResult::Code::kBadRequest)
      << "double insert";
  EXPECT_EQ(churn->Remove(999999).code, TenantOpResult::Code::kBadRequest);
  EXPECT_TRUE(churn->Remove(3).ok());
  EXPECT_TRUE(churn->Insert(3).ok());  // re-insert after remove is fine

  // Estimator-name rules: streaming engines answer LSH-SS only, and the
  // check happens in validation, not via VSJ_CHECK.
  EstimateRequest request = LshSsRequest();
  request.estimator_name = "LSH-S";
  EXPECT_EQ(churn->ValidateEstimate(request).code,
            TenantOpResult::Code::kBadRequest);
  EXPECT_TRUE(wiki->ValidateEstimate(request).ok());
  request.estimator_name = "no-such-estimator";
  EXPECT_EQ(wiki->ValidateEstimate(request).code,
            TenantOpResult::Code::kBadRequest);
  request = LshSsRequest();
  // What an "1e999" wire literal parses to; must be a named rejection.
  request.tau = std::numeric_limits<double>::infinity();
  const TenantOpResult result = churn->ValidateEstimate(request);
  EXPECT_EQ(result.code, TenantOpResult::Code::kBadRequest);
  EXPECT_NE(result.message.find("finite"), std::string::npos)
      << result.message;
}

TEST_F(TenantRegistryTest, StartupSweepRemovesOrphanedTmpFiles) {
  // A crash between AtomicFileWriter::Open and Commit leaves *.tmp
  // litter next to the snapshots; registry construction removes it.
  for (const char* name : {"churn.vsjs.tmp", "wiki.vsjb.tmp", "junk.tmp"}) {
    std::ofstream out(root_ + "/" + name, std::ios::trunc);
    out << "half-written";
  }
  TenantRegistry registry(Options());
  EXPECT_EQ(registry.swept_tmp_files(), 3u);
  EXPECT_FALSE(FileExists(root_ + "/churn.vsjs.tmp"));
  EXPECT_FALSE(FileExists(root_ + "/wiki.vsjb.tmp"));
  EXPECT_FALSE(FileExists(root_ + "/junk.tmp"));
  // The snapshots themselves survive the sweep.
  std::shared_ptr<Tenant> churn;
  EXPECT_TRUE(registry.Acquire("churn", &churn).ok());
}

TEST_F(TenantRegistryTest, SweepCanBeDisabled) {
  {
    std::ofstream out(root_ + "/keep.tmp", std::ios::trunc);
    out << "forensics";
  }
  TenantRegistryOptions options = Options();
  options.sweep_tmp = false;
  TenantRegistry registry(options);
  EXPECT_EQ(registry.swept_tmp_files(), 0u);
  EXPECT_TRUE(FileExists(root_ + "/keep.tmp"));
}

#if VSJ_FAULT_COMPILED

TEST_F(TenantRegistryTest, WriteBackFailureKeepsTenantResidentAndDirty) {
  AddColdTenants(1);
  const std::string snapshot = root_ + "/churn.vsjs";
  const std::string intact = ReadAll(snapshot);

  TenantRegistry registry(Options(/*max_resident=*/1));
  std::shared_ptr<Tenant> churn;
  ASSERT_TRUE(registry.Acquire("churn", &churn).ok());
  ASSERT_TRUE(churn->Remove(5).ok());
  EXPECT_TRUE(churn->dirty());
  churn.reset();

  // Every durable write-back now dies at the fsync step.
  fault::FaultSpec spec;
  spec.point = "io.atomic.fsync";
  spec.repeat = true;
  fault::Arm(spec);

  // Eviction pressure: cold0 pushes churn past the cap, but the
  // write-back fails — the registry must refuse to drop unpersisted
  // state, running over the cap in degraded mode instead.
  std::shared_ptr<Tenant> other;
  ASSERT_TRUE(registry.Acquire("cold0", &other).ok());
  other.reset();
  const std::vector<std::string> resident = registry.ResidentNames();
  EXPECT_NE(std::find(resident.begin(), resident.end(), "churn"),
            resident.end())
      << "dirty tenant dropped after a failed write-back";
  EXPECT_EQ(registry.num_resident(), 2u);  // deliberately over the cap

  // The degraded state is observable, and the mutation is still held.
  ASSERT_TRUE(registry.Acquire("churn", &churn).ok());
  EXPECT_TRUE(churn->dirty());
  EXPECT_GE(churn->checkpoint_failures(), 1u);
  EXPECT_NE(churn->last_write_back_error().find("io.atomic.fsync"),
            std::string::npos)
      << churn->last_write_back_error();
  TenantStats stats = churn->Stats();
  EXPECT_TRUE(stats.dirty);
  EXPECT_GE(stats.checkpoint_failures, 1u);
  EXPECT_EQ(stats.num_live, kCorpusSize - 1);
  churn.reset();

  // Failed write-backs never promoted a torn file over the snapshot.
  EXPECT_EQ(ReadAll(snapshot), intact);
  EXPECT_FALSE(FileExists(snapshot + ".tmp"));

  // The disk recovers → the next flush persists and clears the flag.
  fault::ClearAll();
  ASSERT_TRUE(registry.Flush().ok());
  ASSERT_TRUE(registry.Acquire("churn", &churn).ok());
  EXPECT_FALSE(churn->dirty());
  EXPECT_FALSE(churn->Stats().dirty);
  EXPECT_NE(ReadAll(snapshot), intact);
}

TEST_F(TenantRegistryTest, InjectedOpenFailureSurfacesAndRecovers) {
  TenantRegistry registry(Options());
  fault::FaultSpec spec;
  spec.point = "registry.open";
  fault::Arm(spec);
  std::shared_ptr<Tenant> churn;
  const IoStatus status = registry.Acquire("churn", &churn);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.reason.find("registry.open"), std::string::npos);
  EXPECT_EQ(registry.num_resident(), 0u);
  // One-shot fault: the next acquire succeeds.
  EXPECT_TRUE(registry.Acquire("churn", &churn).ok());
}

#endif  // VSJ_FAULT_COMPILED

}  // namespace
}  // namespace vsj
