// Statistical acceptance tests: pin the estimators' accuracy guarantees
// against BruteForceJoin ground truth instead of trusting spot checks.
//
// Protocol (the paper's §6, shrunk to CI scale): a seeded Zipfian corpus
// with planted near-duplicate clusters, exact ground truth per threshold,
// and the mean relative error |Ĵ − J| / J over R independent trials for
// each (estimator, τ). All seeds are fixed, so every asserted quantity is
// deterministic — the bounds are chosen with margin above the observed
// values but within the error levels the paper reports for each regime:
//
//   * LSH-SS is accurate across the whole threshold range (its headline
//     property: guaranteed error ratios in both strata);
//   * LSH-S degrades at high τ (stratum-blind scale-up, §4.2);
//   * random-pair sampling collapses at high τ — J(0.9)/M is ~1e-5 here,
//     so n uniform samples rarely contain a true pair and the estimate
//     falls to ~0 (mean relative error ≈ 1, the paper's Example 1).

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/core/estimator_registry.h"
#include "vsj/join/brute_force_join.h"

namespace vsj {
namespace {

constexpr size_t kCorpusSize = 600;
constexpr uint64_t kCorpusSeed = 101;
constexpr uint64_t kTrialSeed = 202;
constexpr int kTrials = 30;
const std::vector<double> kTaus = {0.5, 0.7, 0.9};

class EstimatorErrorBoundsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    setup_ = new testing::CosineSetup(
        testing::MakeCosineSetup(kCorpusSize, /*k=*/10, /*tables=*/1,
                                 kCorpusSeed));
    for (double tau : kTaus) {
      exact_[tau] = static_cast<double>(BruteForceJoinSize(
          setup_->dataset, SimilarityMeasure::kCosine, tau));
      ASSERT_GT(exact_[tau], 0.0) << "corpus has no true pairs at " << tau;
    }
  }

  static void TearDownTestSuite() {
    delete setup_;
    setup_ = nullptr;
  }

  /// Mean relative error of `estimator_name` at `tau` over kTrials
  /// independent runs (deterministic: seeds are fixed).
  static double MeanRelativeError(const std::string& estimator_name,
                                  double tau) {
    EstimatorContext context;
    context.dataset = setup_->dataset;
    context.index = setup_->index.get();
    context.measure = SimilarityMeasure::kCosine;
    const auto estimator = CreateEstimator(estimator_name, context);

    const Rng base(kTrialSeed);
    double total = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      Rng rng = base.Fork(t);
      const double estimate = estimator->Estimate(tau, rng).estimate;
      total += std::abs(estimate - exact_[tau]) / exact_[tau];
    }
    const double mean = total / kTrials;
    std::printf("  %-8s tau=%.1f  mean rel err = %.3f  (J = %.0f)\n",
                estimator_name.c_str(), tau, mean, exact_[tau]);
    return mean;
  }

  static testing::CosineSetup* setup_;
  static std::map<double, double> exact_;
};

testing::CosineSetup* EstimatorErrorBoundsTest::setup_ = nullptr;
std::map<double, double> EstimatorErrorBoundsTest::exact_;

// Observed values at this scale (deterministic; bounds carry ~30% margin):
//   LSH-SS   0.64 / 0.60 / 0.23
//   LSH-S    5.56 / 3.84 / 4.43   (heavy-tailed overestimates)
//   RS(pop)  0.69 / 0.86 / 1.16
TEST_F(EstimatorErrorBoundsTest, LshSsStaysAccurateAcrossThresholds) {
  EXPECT_LE(MeanRelativeError("LSH-SS", 0.5), 0.85);
  EXPECT_LE(MeanRelativeError("LSH-SS", 0.7), 0.80);
  EXPECT_LE(MeanRelativeError("LSH-SS", 0.9), 0.40);
}

TEST_F(EstimatorErrorBoundsTest, LshSOverscalesWithoutStratification) {
  // LSH-S scales a single-stratum sample by an estimated collision curve;
  // at this corpus scale rare overdraws blow the mean up by ~5× of J —
  // usable only as an order-of-magnitude signal, exactly the weakness that
  // motivates the paper's stratified design.
  EXPECT_LE(MeanRelativeError("LSH-S", 0.5), 8.0);
  EXPECT_LE(MeanRelativeError("LSH-S", 0.7), 6.0);
  EXPECT_LE(MeanRelativeError("LSH-S", 0.9), 7.0);
}

TEST_F(EstimatorErrorBoundsTest, RandomPairSamplingCollapsesAtHighTau) {
  EXPECT_LE(MeanRelativeError("RS(pop)", 0.5), 1.00);
  EXPECT_LE(MeanRelativeError("RS(pop)", 0.7), 1.20);
  // At τ = 0.9 the selectivity is so small that uniform pair sampling
  // almost never sees a true pair: the estimate collapses toward 0 and the
  // mean relative error is pinned near 1 — the failure mode that motivates
  // stratified sampling.
  const double rs_high = MeanRelativeError("RS(pop)", 0.9);
  EXPECT_GE(rs_high, 0.50);
  EXPECT_LE(rs_high, 1.50);
}

TEST_F(EstimatorErrorBoundsTest, LshSsDominatesBothBaselines) {
  // The paper's headline comparison: stratified sampling beats both the
  // collision-curve scale-up and uniform pair sampling at every threshold.
  for (double tau : kTaus) {
    const double lsh_ss = MeanRelativeError("LSH-SS", tau);
    EXPECT_LT(lsh_ss, MeanRelativeError("LSH-S", tau)) << tau;
    EXPECT_LT(lsh_ss, MeanRelativeError("RS(pop)", tau)) << tau;
  }
}

}  // namespace
}  // namespace vsj
