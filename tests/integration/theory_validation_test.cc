// Empirical validation of the paper's theorems on controlled inputs.
//
// Theorem 1 (high τ): with α ≥ log n/n and β < 1/n, LSH-SS is within
// (1+ε)J with probability ≥ 1 − 2/n. Theorem 3 (low τ): with β ≥ log n/n,
// within εJ with probability ≥ 1 − 3/n. These are asymptotic and very
// conservative; we check qualitative versions with comfortable margins.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/core/lsh_ss_estimator.h"
#include "vsj/core/median_estimator.h"
#include "vsj/eval/experiment.h"
#include "vsj/eval/ground_truth.h"
#include "vsj/eval/probability_profile.h"

namespace vsj {
namespace {

class TheoryValidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setup_ = testing::MakeCosineSetup(3000, 10, 1, 61);
    truth_ = std::make_unique<GroundTruth>(
        setup_.dataset, SimilarityMeasure::kCosine, StandardThresholds());
    rows_ = ComputeProbabilityProfile(setup_.dataset, setup_.index->table(0),
                                      SimilarityMeasure::kCosine, *truth_);
  }

  const ProbabilityRow* RowAt(double tau) const {
    for (const auto& row : rows_) {
      if (std::fabs(row.tau - tau) < 1e-9) return &row;
    }
    return nullptr;
  }

  testing::CosineSetup setup_;
  std::unique_ptr<GroundTruth> truth_;
  std::vector<ProbabilityRow> rows_;
};

TEST_F(TheoryValidationTest, Lemma1SampleHConcentrates) {
  // SampleH alone: Ĵ_H concentrates around J_H = α·N_H when α ≥ log n/n.
  const LshTable& table = setup_.index->table(0);
  const TheoremThresholds limits =
      ComputeTheoremThresholds(setup_.dataset.size());
  for (double tau : {0.5, 0.7, 0.9}) {
    const ProbabilityRow* row = RowAt(tau);
    ASSERT_NE(row, nullptr);
    if (row->true_in_h == 0 || row->p_true_given_h < limits.alpha_floor) {
      continue;
    }
    LshSsEstimator est(setup_.dataset, table, SimilarityMeasure::kCosine,
                       {.sample_size_l = 1});  // starve SampleL
    const TrialSeries series = RunTrials(est, tau, 30, 71);
    // Median of Ĵ_H should be within a factor 2.5 of J_H.
    std::vector<double> h_parts = series.estimates;
    std::sort(h_parts.begin(), h_parts.end());
    const double median = h_parts[h_parts.size() / 2];
    const double j_h = static_cast<double>(row->true_in_h);
    EXPECT_GT(median, j_h / 2.5) << "tau = " << tau;
    EXPECT_LT(median, 2.5 * j_h + 3 * setup_.dataset.size())
        << "tau = " << tau;
  }
}

TEST_F(TheoryValidationTest, Theorem1FewLargeDeviationsAtHighTau) {
  // At a high threshold where the β < 1/n condition holds, large relative
  // deviations beyond (1+ε)J with ε = 1 should be rare.
  const TheoremThresholds limits =
      ComputeTheoremThresholds(setup_.dataset.size());
  const LshTable& table = setup_.index->table(0);
  for (double tau : {0.8, 0.9}) {
    const ProbabilityRow* row = RowAt(tau);
    ASSERT_NE(row, nullptr);
    if (row->join_size < 5) continue;
    if (row->p_true_given_l >= limits.beta_high_ceiling) continue;
    if (row->p_true_given_h < limits.alpha_floor) continue;

    LshSsEstimator est(setup_.dataset, table, SimilarityMeasure::kCosine);
    const TrialSeries series = RunTrials(est, tau, 50, 73);
    const double j = static_cast<double>(row->join_size);
    int violations = 0;
    for (double e : series.estimates) {
      if (std::fabs(e - j) > 2.0 * j) ++violations;  // (1+ε)J with ε=1
    }
    EXPECT_LE(violations, 10) << "tau = " << tau;
  }
}

TEST_F(TheoryValidationTest, Theorem3ReliableAtLowTau) {
  // At low τ (β ≥ log n/n), the adaptive path engages and estimates are
  // tight: mean within 50% of J.
  const TheoremThresholds limits =
      ComputeTheoremThresholds(setup_.dataset.size());
  const LshTable& table = setup_.index->table(0);
  for (double tau : {0.1, 0.2}) {
    const ProbabilityRow* row = RowAt(tau);
    ASSERT_NE(row, nullptr);
    if (row->p_true_given_l < limits.alpha_floor) continue;  // log n/n
    LshSsEstimator est(setup_.dataset, table, SimilarityMeasure::kCosine);
    const double j = static_cast<double>(row->join_size);
    const ErrorStats stats = RunAndScore(est, tau, 30, 79, j);
    EXPECT_NEAR(stats.mean_estimate, j, 0.5 * j) << "tau = " << tau;
    // Almost every trial should terminate via the answer-size threshold.
    const TrialSeries series = RunTrials(est, tau, 30, 79);
    EXPECT_LE(series.num_unguaranteed, 3u) << "tau = " << tau;
  }
}

TEST_F(TheoryValidationTest, Theorem2DampeningTradeoff) {
  // Larger c_s → larger (less conservative) Ĵ_L on the dampened path, with
  // the ordering c_s = 0.1 ≤ c_s = 0.5 ≤ c_s = 1.0 for identical samples.
  const LshTable& table = setup_.index->table(0);
  const double tau = 0.85;
  auto estimate_l = [&](double cs) {
    LshSsEstimator est(setup_.dataset, table, SimilarityMeasure::kCosine,
                       {.sample_size_l = 200,
                        .delta = 50,
                        .dampening = DampeningMode::kFixedFactor,
                        .dampening_factor = cs});
    Rng rng(101);
    return est.Estimate(tau, rng);
  };
  const EstimationResult low = estimate_l(0.1);
  const EstimationResult mid = estimate_l(0.5);
  const EstimationResult full = estimate_l(1.0);
  if (!low.guaranteed && !mid.guaranteed && !full.guaranteed) {
    EXPECT_LE(low.stratum_l_estimate, mid.stratum_l_estimate + 1e-9);
    EXPECT_LE(mid.stratum_l_estimate, full.stratum_l_estimate + 1e-9);
  }
}

TEST_F(TheoryValidationTest, MedianBoostsReliability) {
  // App. B.2.1: the median over ℓ tables deviates less often than a single
  // table at the same per-table sample size.
  auto setup = testing::MakeCosineSetup(1500, 10, 5, 67);
  GroundTruth truth(setup.dataset, SimilarityMeasure::kCosine, {0.7});
  const double j = static_cast<double>(truth.JoinSize(0.7));
  if (j < 5.0) GTEST_SKIP();
  MedianEstimator median(setup.dataset, *setup.index,
                         SimilarityMeasure::kCosine);
  LshSsEstimator single(setup.dataset, setup.index->table(0),
                        SimilarityMeasure::kCosine);
  auto count_large = [&](const JoinSizeEstimator& est) {
    const TrialSeries series = RunTrials(est, 0.7, 30, 83);
    int large = 0;
    for (double e : series.estimates) {
      if (e > 3.0 * j || e < j / 3.0) ++large;
    }
    return large;
  };
  EXPECT_LE(count_large(median), count_large(single) + 2);
}

}  // namespace
}  // namespace vsj
