// Cross-module integration: generator → LSH index → estimators → harness,
// compared against exact joins, on both cosine/SimHash and Jaccard/MinHash.

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/core/estimator_registry.h"
#include "vsj/eval/experiment.h"
#include "vsj/eval/ground_truth.h"
#include "vsj/eval/probability_profile.h"
#include "vsj/join/all_pairs_join.h"

namespace vsj {
namespace {

TEST(EndToEndTest, FullPipelineCosine) {
  auto setup = testing::MakeCosineSetup(1000, 10, 2, 51);
  GroundTruth truth(setup.dataset, SimilarityMeasure::kCosine,
                    StandardThresholds());

  EstimatorContext context;
  context.dataset = setup.dataset;
  context.index = setup.index.get();
  context.measure = SimilarityMeasure::kCosine;

  for (const std::string& name : HeadlineEstimatorNames()) {
    auto estimator = CreateEstimator(name, context);
    for (double tau : {0.2, 0.5, 0.8}) {
      const double true_j = static_cast<double>(truth.JoinSize(tau));
      if (true_j == 0.0) continue;
      const TrialSeries series = RunTrials(*estimator, tau, 10, 17);
      for (double e : series.estimates) {
        EXPECT_GE(e, 0.0) << name;
        EXPECT_LE(e, static_cast<double>(setup.dataset.NumPairs())) << name;
      }
    }
  }
}

TEST(EndToEndTest, LshSsBeatsRandomSamplingAtHighThreshold) {
  // The paper's core claim, end to end: at high τ LSH-SS has smaller
  // absolute relative error than RS(pop) at comparable sample size.
  auto setup = testing::MakeCosineSetup(2000, 10, 1, 53);
  GroundTruth truth(setup.dataset, SimilarityMeasure::kCosine, {0.8});
  const double true_j = static_cast<double>(truth.JoinSize(0.8));
  if (true_j < 3.0) GTEST_SKIP() << "degenerate seed";

  EstimatorContext context;
  context.dataset = setup.dataset;
  context.index = setup.index.get();
  auto lsh_ss = CreateEstimator("LSH-SS", context);
  auto rs = CreateEstimator("RS(pop)", context);

  const ErrorStats lsh_stats = RunAndScore(*lsh_ss, 0.8, 40, 3, true_j);
  const ErrorStats rs_stats = RunAndScore(*rs, 0.8, 40, 3, true_j);
  EXPECT_LT(lsh_stats.mean_absolute_relative_error,
            rs_stats.mean_absolute_relative_error);
}

TEST(EndToEndTest, JaccardPipelineWithExactDef3Family) {
  auto setup = testing::MakeJaccardSetup(800, 6, 1, 55);
  GroundTruth truth(setup.dataset, SimilarityMeasure::kJaccard, {0.3, 0.7});

  EstimatorContext context;
  context.dataset = setup.dataset;
  context.index = setup.index.get();
  context.measure = SimilarityMeasure::kJaccard;
  // Budget large enough for the reliable SampleL regime at this small n.
  context.lsh_ss.sample_size_l = 50000;
  context.lsh_ss.delta = 5;

  auto lsh_ss = CreateEstimator("LSH-SS", context);
  for (double tau : {0.3, 0.7}) {
    const double true_j = static_cast<double>(truth.JoinSize(tau));
    if (true_j == 0.0) continue;
    const ErrorStats stats = RunAndScore(*lsh_ss, tau, 25, 5, true_j);
    EXPECT_GT(stats.mean_estimate, true_j * 0.2) << "tau = " << tau;
    EXPECT_LT(stats.mean_estimate, true_j * 5.0) << "tau = " << tau;
  }
}

TEST(EndToEndTest, EstimatePredictsAllPairsJoinCost) {
  // The query-optimizer use case: the estimate should predict the actual
  // result size of the exact All-Pairs join within an order of magnitude.
  auto setup = testing::MakeCosineSetup(1200, 10, 1, 57);
  EstimatorContext context;
  context.dataset = setup.dataset;
  context.index = setup.index.get();
  auto estimator = CreateEstimator("LSH-SS", context);

  const double tau = 0.6;
  Rng rng(1);
  const double estimate = estimator->Estimate(tau, rng).estimate;
  const uint64_t actual = AllPairsJoinSize(setup.dataset, tau);
  if (actual >= 20) {
    EXPECT_GT(estimate, actual / 10.0);
    EXPECT_LT(estimate, actual * 10.0);
  }
}

TEST(EndToEndTest, ProbabilityProfileSupportsTheoremAssumptions) {
  // On a clustered corpus the assumptions of §5.2 should hold at τ = 0.8:
  // α well above log n/n.
  auto setup = testing::MakeCosineSetup(1500, 10, 1, 59);
  GroundTruth truth(setup.dataset, SimilarityMeasure::kCosine, {0.8});
  const auto rows = ComputeProbabilityProfile(
      setup.dataset, setup.index->table(0), SimilarityMeasure::kCosine,
      truth);
  const TheoremThresholds limits =
      ComputeTheoremThresholds(setup.dataset.size());
  ASSERT_EQ(rows.size(), 1u);
  if (rows[0].join_size > 0) {
    EXPECT_GE(rows[0].p_true_given_h, limits.alpha_floor);
  }
}

}  // namespace
}  // namespace vsj
