// Streaming scenario: LSH-SS-style stratified estimation over the dynamic
// LSH table while vectors arrive and expire — the "minimal addition to the
// existing LSH index" claim under online maintenance.

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/join/brute_force_join.h"
#include "vsj/lsh/dynamic_lsh_table.h"

namespace vsj {
namespace {

/// Algorithm 1 run directly against a DynamicLshTable over the live subset.
double EstimateStratified(const VectorDataset& dataset,
                          const std::vector<VectorId>& live,
                          const DynamicLshTable& table, double tau,
                          Rng& rng) {
  const uint64_t n_h = table.NumSameBucketPairs();
  const uint64_t n_l = table.NumCrossBucketPairs();
  const uint64_t m_h = live.size();
  const uint64_t m_l = live.size();
  const auto delta = static_cast<uint64_t>(
      std::max(1.0, std::log2(static_cast<double>(live.size()))));

  double estimate_h = 0.0;
  if (n_h > 0) {
    uint64_t hits = 0;
    for (uint64_t s = 0; s < m_h; ++s) {
      const VectorPair pair = table.SampleSameBucketPair(rng);
      if (CosineSimilarity(dataset[pair.first], dataset[pair.second]) >=
          tau) {
        ++hits;
      }
    }
    estimate_h = static_cast<double>(hits) * static_cast<double>(n_h) /
                 static_cast<double>(m_h);
  }

  double estimate_l = 0.0;
  if (n_l > 0) {
    uint64_t hits = 0;
    uint64_t samples = 0;
    while (hits < delta && samples < m_l) {
      // Uniform live pair with rejection on same bucket.
      VectorId u, v;
      do {
        u = live[rng.Below(live.size())];
        v = live[rng.Below(live.size())];
      } while (u == v || table.SameBucket(u, v));
      if (CosineSimilarity(dataset[u], dataset[v]) >= tau) ++hits;
      ++samples;
    }
    estimate_l = samples >= m_l && hits < delta
                     ? static_cast<double>(hits)  // safe lower bound
                     : static_cast<double>(hits) *
                           static_cast<double>(n_l) /
                           static_cast<double>(samples);
  }
  return estimate_h + estimate_l;
}

TEST(StreamingEstimationTest, EstimatesTrackChurningWindow) {
  VectorDataset dataset = testing::SmallClusteredCorpus(900, 71);
  SimHashFamily family(72);
  DynamicLshTable table(family, 10);

  // Sliding window: insert the first 600, then slide by 150 twice.
  std::vector<VectorId> live;
  for (VectorId id = 0; id < 600; ++id) {
    table.Insert(id, dataset[id]);
    live.push_back(id);
  }

  Rng rng(73);
  for (int slide = 0; slide < 3; ++slide) {
    // Exact join over the live subset.
    VectorDataset window;
    for (VectorId id : live) window.Add(dataset[id]);
    const double tau = 0.2;
    const auto exact = static_cast<double>(
        BruteForceJoinSize(window, SimilarityMeasure::kCosine, tau));
    ASSERT_GT(exact, 0.0);

    // Average a few stratified estimates.
    double mean = 0.0;
    const int trials = 15;
    for (int t = 0; t < trials; ++t) {
      mean += EstimateStratified(dataset, live, table, tau, rng);
    }
    mean /= trials;
    EXPECT_GT(mean, exact * 0.4) << "slide " << slide;
    EXPECT_LT(mean, exact * 2.5) << "slide " << slide;

    // Slide the window: expire 150 oldest, admit 100 new.
    if (slide < 2) {
      for (int drop = 0; drop < 150; ++drop) {
        table.Remove(live.front());
        live.erase(live.begin());
      }
      const VectorId base = 600 + slide * 100;
      for (VectorId id = base; id < base + 100; ++id) {
        table.Insert(id, dataset[id]);
        live.push_back(id);
      }
    }
  }
}

TEST(StreamingEstimationTest, StratumSizesStayConsistentUnderChurn) {
  VectorDataset dataset = testing::SmallClusteredCorpus(400, 75);
  SimHashFamily family(76);
  DynamicLshTable table(family, 8);
  Rng rng(77);
  std::vector<bool> present(dataset.size(), false);
  size_t live_count = 0;
  for (int op = 0; op < 3000; ++op) {
    const auto id = static_cast<VectorId>(rng.Below(dataset.size()));
    if (present[id]) {
      table.Remove(id);
      --live_count;
    } else {
      table.Insert(id, dataset[id]);
      ++live_count;
    }
    present[id] = !present[id];
    const uint64_t n = live_count;
    ASSERT_EQ(table.NumSameBucketPairs() + table.NumCrossBucketPairs(),
              n * (n - 1) / 2);
  }
}

}  // namespace
}  // namespace vsj
