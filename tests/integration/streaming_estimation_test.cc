// Streaming scenario: LSH-SS stratified estimation over the dynamic LSH
// index while vectors arrive and expire — the "minimal addition to the
// existing LSH index" claim under online maintenance. The stratified
// estimation itself lives in StreamingLshSsEstimator (core); this test
// drives it through a realistic sliding-window workload.

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/core/streaming_lsh_ss_estimator.h"
#include "vsj/join/brute_force_join.h"
#include "vsj/lsh/dynamic_lsh_index.h"

namespace vsj {
namespace {

TEST(StreamingEstimationTest, EstimatesTrackChurningWindow) {
  VectorDataset dataset = testing::SmallClusteredCorpus(900, 71);
  SimHashFamily family(72);
  DynamicLshIndex index(family, 10, 1);
  const StreamingLshSsEstimator estimator(dataset, index,
                                          SimilarityMeasure::kCosine);

  // Sliding window: insert the first 600, then slide by 150 twice.
  std::vector<VectorId> live;
  for (VectorId id = 0; id < 600; ++id) {
    index.Insert(id, dataset[id]);
    live.push_back(id);
  }

  Rng rng(73);
  for (int slide = 0; slide < 3; ++slide) {
    // Exact join over the live subset.
    VectorDataset window;
    for (VectorId id : live) window.Add(dataset[id]);
    const double tau = 0.2;
    const auto exact = static_cast<double>(
        BruteForceJoinSize(window, SimilarityMeasure::kCosine, tau));
    ASSERT_GT(exact, 0.0);

    // Average a few stratified estimates.
    double mean = 0.0;
    const int trials = 15;
    for (int t = 0; t < trials; ++t) {
      mean += estimator.Estimate(tau, rng).estimate;
    }
    mean /= trials;
    EXPECT_GT(mean, exact * 0.4) << "slide " << slide;
    EXPECT_LT(mean, exact * 2.5) << "slide " << slide;

    // Slide the window: expire 150 oldest, admit 100 new.
    if (slide < 2) {
      for (int drop = 0; drop < 150; ++drop) {
        index.Remove(live.front());
        live.erase(live.begin());
      }
      const VectorId base = 600 + slide * 100;
      for (VectorId id = base; id < base + 100; ++id) {
        index.Insert(id, dataset[id]);
        live.push_back(id);
      }
    }
  }
}

TEST(StreamingEstimationTest, StratumSizesStayConsistentUnderChurn) {
  VectorDataset dataset = testing::SmallClusteredCorpus(400, 75);
  SimHashFamily family(76);
  DynamicLshIndex index(family, 8, 1);
  Rng rng(77);
  std::vector<bool> present(dataset.size(), false);
  size_t live_count = 0;
  for (int op = 0; op < 3000; ++op) {
    const auto id = static_cast<VectorId>(rng.Below(dataset.size()));
    if (present[id]) {
      index.Remove(id);
      --live_count;
    } else {
      index.Insert(id, dataset[id]);
      ++live_count;
    }
    present[id] = !present[id];
    const uint64_t n = live_count;
    const DynamicLshTable& table = index.table(0);
    ASSERT_EQ(table.NumSameBucketPairs() + table.NumCrossBucketPairs(),
              n * (n - 1) / 2);
  }
}

}  // namespace
}  // namespace vsj
