#include "vsj/text/vectorizer.h"

#include "vsj/vector/dataset_view.h"

#include <gtest/gtest.h>

#include "vsj/vector/similarity.h"

namespace vsj {
namespace {

TEST(TokenizeTest, LowercasesAndSplits) {
  const auto tokens = Tokenize("Hello, World! LSH-based Join");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "lsh");
  EXPECT_EQ(tokens[3], "based");
  EXPECT_EQ(tokens[4], "join");
}

TEST(TokenizeTest, DropsShortTokens) {
  const auto tokens = Tokenize("a an the of to by", 3);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "the");
}

TEST(TokenizeTest, KeepsDigits) {
  const auto tokens = Tokenize("vldb 2011 vol4");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1], "2011");
  EXPECT_EQ(tokens[2], "vol4");
}

TEST(TokenizeTest, EmptyInput) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! ... ---").empty());
}

TEST(TextVectorizerTest, BinaryVectorsFromDocuments) {
  TextVectorizer vectorizer({.tfidf = false});
  const std::vector<std::string> docs = {
      "similarity join size estimation",
      "similarity search with hashing",
  };
  VectorDataset dataset = vectorizer.FitTransform(docs, "toy");
  EXPECT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset.name(), "toy");
  // Vocabulary: estimation, hashing, join, search, similarity, size, with.
  EXPECT_EQ(vectorizer.vocabulary_size(), 7u);
  for (VectorRef v : DatasetView(dataset)) {
    for (const Feature f : v) EXPECT_FLOAT_EQ(f.weight, 1.0f);
  }
  // Shared token "similarity" → nonzero cosine.
  EXPECT_GT(CosineSimilarity(dataset[0], dataset[1]), 0.0);
}

TEST(TextVectorizerTest, IdenticalDocumentsHaveSimilarityOne) {
  TextVectorizer vectorizer;
  const std::vector<std::string> docs = {"alpha beta gamma",
                                         "alpha beta gamma",
                                         "delta epsilon zeta"};
  VectorDataset dataset = vectorizer.FitTransform(docs);
  EXPECT_DOUBLE_EQ(CosineSimilarity(dataset[0], dataset[1]), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(dataset[0], dataset[2]), 0.0);
}

TEST(TextVectorizerTest, TfIdfDownweightsCommonTokens) {
  TextVectorizer vectorizer;  // tfidf on
  // "common" appears everywhere; "rare" once.
  const std::vector<std::string> docs = {"common rare", "common other",
                                         "common thing", "common stuff"};
  VectorDataset dataset = vectorizer.FitTransform(docs);
  const int64_t common_dim = vectorizer.DimOf("common");
  const int64_t rare_dim = vectorizer.DimOf("rare");
  ASSERT_GE(common_dim, 0);
  ASSERT_GE(rare_dim, 0);
  float common_weight = 0.0f, rare_weight = 0.0f;
  for (const Feature f : dataset[0]) {
    if (f.dim == static_cast<DimId>(common_dim)) common_weight = f.weight;
    if (f.dim == static_cast<DimId>(rare_dim)) rare_weight = f.weight;
  }
  EXPECT_GT(rare_weight, common_weight);
}

TEST(TextVectorizerTest, TermFrequencyCounts) {
  TextVectorizer vectorizer;
  const std::vector<std::string> docs = {"word word word other",
                                         "unrelated text"};
  VectorDataset dataset = vectorizer.FitTransform(docs);
  const int64_t word_dim = vectorizer.DimOf("word");
  const int64_t other_dim = vectorizer.DimOf("other");
  float word_weight = 0.0f, other_weight = 0.0f;
  for (const Feature f : dataset[0]) {
    if (f.dim == static_cast<DimId>(word_dim)) word_weight = f.weight;
    if (f.dim == static_cast<DimId>(other_dim)) other_weight = f.weight;
  }
  EXPECT_NEAR(word_weight, 3.0f * other_weight, 1e-5);
}

TEST(TextVectorizerTest, MinDocumentFrequencyPrunes) {
  TextVectorizer vectorizer({.tfidf = false, .min_document_frequency = 2});
  const std::vector<std::string> docs = {"shared unique1", "shared unique2"};
  vectorizer.FitTransform(docs);
  EXPECT_EQ(vectorizer.vocabulary_size(), 1u);  // only "shared" survives
  EXPECT_GE(vectorizer.DimOf("shared"), 0);
  EXPECT_EQ(vectorizer.DimOf("unique1"), -1);
}

TEST(TextVectorizerTest, TransformUsesFittedVocabulary) {
  TextVectorizer vectorizer({.tfidf = false});
  vectorizer.FitTransform({"alpha beta", "beta gamma"});
  const SparseVector v = vectorizer.Transform("beta delta");
  // "delta" is out of vocabulary → only "beta" contributes.
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(static_cast<int64_t>(v[0].dim), vectorizer.DimOf("beta"));
}

TEST(TextVectorizerDeathTest, TransformBeforeFitAborts) {
  TextVectorizer vectorizer;
  EXPECT_DEATH(vectorizer.Transform("anything"), "fitted");
}

}  // namespace
}  // namespace vsj
