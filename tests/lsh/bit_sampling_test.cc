#include "vsj/lsh/bit_sampling.h"

#include "vsj/vector/sparse_vector.h"

#include <vector>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(HammingSimilarityTest, IdenticalVectors) {
  SparseVector v = SparseVector::FromDims({1, 5, 9});
  EXPECT_DOUBLE_EQ(HammingSimilarity(v, v, 16), 1.0);
}

TEST(HammingSimilarityTest, KnownDistance) {
  // u = {1,2}, v = {2,3}: HD = 2, D = 8 → sim = 0.75.
  SparseVector u = SparseVector::FromDims({1, 2});
  SparseVector v = SparseVector::FromDims({2, 3});
  EXPECT_DOUBLE_EQ(HammingSimilarity(u, v, 8), 0.75);
}

TEST(HammingSimilarityTest, EmptyVectorsFullyAgree) {
  SparseVector a, b;
  EXPECT_DOUBLE_EQ(HammingSimilarity(a, b, 4), 1.0);
}

TEST(HammingSimilarityTest, ComplementarySmallSpace) {
  SparseVector u = SparseVector::FromDims({0, 1});
  SparseVector v = SparseVector::FromDims({2, 3});
  EXPECT_DOUBLE_EQ(HammingSimilarity(u, v, 4), 0.0);
}

TEST(BitSamplingTest, HashesAreBits) {
  BitSamplingFamily family(1, 64);
  SparseVector v = SparseVector::FromDims({3, 7, 21});
  for (uint32_t j = 0; j < 64; ++j) {
    const uint64_t h = family.Hash(v, j);
    EXPECT_TRUE(h == 0 || h == 1);
  }
}

TEST(BitSamplingTest, CollisionProbabilityIsIdentity) {
  BitSamplingFamily family(2, 32);
  EXPECT_DOUBLE_EQ(family.CollisionProbability(0.25), 0.25);
  EXPECT_DOUBLE_EQ(family.CollisionProbability(1.0), 1.0);
}

TEST(BitSamplingTest, Definition3HoldsEmpirically) {
  // P(h(u) = h(v)) should equal HammingSimilarity(u, v, D).
  const uint32_t dimension = 40;
  BitSamplingFamily family(3, dimension);
  struct Case {
    std::vector<DimId> u, v;
  };
  const std::vector<Case> cases = {
      {{0, 1, 2, 3}, {0, 1, 2, 3}},        // sim 1
      {{0, 1, 2, 3}, {0, 1, 2, 4}},        // HD 2 → 0.95
      {{0, 1, 2, 3, 4, 5}, {10, 11, 12}},  // HD 9 → 0.775
      {{}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
  };
  const uint32_t k = 6000;
  std::vector<uint64_t> hu(k), hv(k);
  for (const Case& c : cases) {
    SparseVector u = SparseVector::FromDims(c.u);
    SparseVector v = SparseVector::FromDims(c.v);
    family.HashRange(u, 0, k, hu.data());
    family.HashRange(v, 0, k, hv.data());
    uint32_t collisions = 0;
    for (uint32_t j = 0; j < k; ++j) collisions += hu[j] == hv[j] ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(collisions) / k,
                HammingSimilarity(u, v, dimension), 0.02);
  }
}

TEST(BitSamplingTest, DeterministicPerFunction) {
  BitSamplingFamily family(4, 100);
  SparseVector v = SparseVector::FromDims({5, 50, 99});
  EXPECT_EQ(family.Hash(v, 7), family.Hash(v, 7));
}

TEST(BitSamplingDeathTest, VectorMustFitDimension) {
  SparseVector v = SparseVector::FromDims({100});
  SparseVector w = SparseVector::FromDims({1});
  EXPECT_DEATH(HammingSimilarity(v, w, 50), "CHECK");
}

}  // namespace
}  // namespace vsj
