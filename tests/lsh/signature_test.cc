#include "vsj/lsh/signature.h"

#include <gtest/gtest.h>

#include "vsj/lsh/minhash.h"
#include "vsj/lsh/simhash.h"

namespace vsj {
namespace {

VectorDataset SmallDataset() {
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({1, 2, 3}));
  dataset.Add(SparseVector::FromDims({1, 2, 3}));  // duplicate of 0
  dataset.Add(SparseVector::FromDims({10, 20, 30}));
  return dataset;
}

TEST(SignatureTest, DimensionsMatch) {
  VectorDataset dataset = SmallDataset();
  MinHashFamily family(1);
  SignatureDatabase signatures(family, dataset, 16);
  EXPECT_EQ(signatures.k(), 16u);
  EXPECT_EQ(signatures.num_vectors(), 3u);
  EXPECT_EQ(signatures.Of(0).size(), 16u);
}

TEST(SignatureTest, DuplicateVectorsHaveIdenticalSignatures) {
  VectorDataset dataset = SmallDataset();
  MinHashFamily family(2);
  SignatureDatabase signatures(family, dataset, 32);
  EXPECT_EQ(signatures.MatchCount(0, 1), 32u);
}

TEST(SignatureTest, DisjointVectorsRarelyMatch) {
  VectorDataset dataset = SmallDataset();
  MinHashFamily family(3);
  SignatureDatabase signatures(family, dataset, 32);
  EXPECT_EQ(signatures.MatchCount(0, 2), 0u);
}

TEST(SignatureTest, MatchCountIsSymmetric) {
  VectorDataset dataset = SmallDataset();
  SimHashFamily family(4);
  SignatureDatabase signatures(family, dataset, 24);
  EXPECT_EQ(signatures.MatchCount(0, 2), signatures.MatchCount(2, 0));
}

TEST(SignatureTest, FunctionOffsetSelectsDifferentFunctions) {
  VectorDataset dataset = SmallDataset();
  SimHashFamily family(5);
  SignatureDatabase base(family, dataset, 8, 0);
  SignatureDatabase offset(family, dataset, 8, 8);
  // Signature of vector 2 under offset functions should differ somewhere
  // (8 independent bits; chance of full agreement is 1/256 per vector).
  bool any_diff = false;
  for (VectorId id = 0; id < dataset.size(); ++id) {
    auto a = base.Of(id);
    auto b = offset.Of(id);
    for (uint32_t j = 0; j < 8; ++j) any_diff |= a[j] != b[j];
  }
  EXPECT_TRUE(any_diff);
}

TEST(SignatureTest, OffsetMatchesDirectHashRange) {
  VectorDataset dataset = SmallDataset();
  SimHashFamily family(6);
  SignatureDatabase signatures(family, dataset, 4, 10);
  std::vector<uint64_t> expected(4);
  family.HashRange(dataset[1], 10, 4, expected.data());
  auto actual = signatures.Of(1);
  for (uint32_t j = 0; j < 4; ++j) EXPECT_EQ(actual[j], expected[j]);
}

}  // namespace
}  // namespace vsj
