#include "vsj/lsh/lsh_table.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "vsj/lsh/minhash.h"
#include "vsj/lsh/simhash.h"

namespace vsj {
namespace {

VectorDataset ClusteredDataset() {
  // Three exact-duplicate groups of sizes 3, 2, 1 → N_H ≥ 3 + 1 under any
  // family (identical vectors always share a bucket).
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({1, 2, 3}));
  dataset.Add(SparseVector::FromDims({1, 2, 3}));
  dataset.Add(SparseVector::FromDims({1, 2, 3}));
  dataset.Add(SparseVector::FromDims({40, 50, 60}));
  dataset.Add(SparseVector::FromDims({40, 50, 60}));
  dataset.Add(SparseVector::FromDims({700, 800, 900}));
  return dataset;
}

TEST(LshTableTest, EveryVectorAssignedToExactlyOneBucket) {
  VectorDataset dataset = ClusteredDataset();
  MinHashFamily family(1);
  LshTable table(family, dataset, 4);
  size_t total_members = 0;
  std::set<VectorId> seen;
  for (size_t b = 0; b < table.num_buckets(); ++b) {
    for (VectorId id : table.bucket(b)) {
      EXPECT_TRUE(seen.insert(id).second) << "vector in two buckets";
      EXPECT_EQ(table.BucketOf(id), b);
      ++total_members;
    }
  }
  EXPECT_EQ(total_members, dataset.size());
}

TEST(LshTableTest, DuplicatesShareBuckets) {
  VectorDataset dataset = ClusteredDataset();
  MinHashFamily family(2);
  LshTable table(family, dataset, 8);
  EXPECT_TRUE(table.SameBucket(0, 1));
  EXPECT_TRUE(table.SameBucket(1, 2));
  EXPECT_TRUE(table.SameBucket(3, 4));
}

TEST(LshTableTest, NumSameBucketPairsMatchesBucketCounts) {
  VectorDataset dataset = ClusteredDataset();
  MinHashFamily family(3);
  LshTable table(family, dataset, 8);
  uint64_t expected = 0;
  for (size_t b = 0; b < table.num_buckets(); ++b) {
    const uint64_t c = table.bucket_count(b);
    expected += c * (c - 1) / 2;
  }
  EXPECT_EQ(table.NumSameBucketPairs(), expected);
  EXPECT_EQ(table.NumSameBucketPairs() + table.NumCrossBucketPairs(),
            dataset.NumPairs());
}

TEST(LshTableTest, SameBucketSamplingIsUniformOverPairs) {
  VectorDataset dataset = ClusteredDataset();
  MinHashFamily family(4);
  LshTable table(family, dataset, 16);
  // With k=16 minhash on disjoint groups, buckets should be exactly the
  // duplicate groups: N_H = C(3,2) + C(2,2) = 4.
  ASSERT_EQ(table.NumSameBucketPairs(), 4u);

  Rng rng(5);
  std::map<std::pair<VectorId, VectorId>, int> counts;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    VectorPair p = table.SampleSameBucketPair(rng);
    EXPECT_NE(p.first, p.second);
    EXPECT_TRUE(table.SameBucket(p.first, p.second));
    auto key = std::minmax(p.first, p.second);
    ++counts[{key.first, key.second}];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [pair, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / draws, 0.25, 0.02);
  }
}

TEST(LshTableTest, CrossBucketSamplingAvoidsSameBucket) {
  VectorDataset dataset = ClusteredDataset();
  MinHashFamily family(6);
  LshTable table(family, dataset, 16);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    VectorPair p = table.SampleCrossBucketPair(rng);
    EXPECT_NE(p.first, p.second);
    EXPECT_FALSE(table.SameBucket(p.first, p.second));
  }
}

TEST(LshTableTest, SamplePairCoversAllPairs) {
  VectorDataset dataset = ClusteredDataset();
  MinHashFamily family(8);
  LshTable table(family, dataset, 4);
  Rng rng(9);
  std::set<std::pair<VectorId, VectorId>> seen;
  for (int i = 0; i < 5000; ++i) {
    VectorPair p = table.SamplePair(rng);
    EXPECT_NE(p.first, p.second);
    auto key = std::minmax(p.first, p.second);
    seen.insert({key.first, key.second});
  }
  EXPECT_EQ(seen.size(), dataset.NumPairs());
}

TEST(LshTableTest, FunctionOffsetChangesBucketing) {
  // Two tables over the same data with different offsets should be built
  // from different hash functions (bucket keys differ in general).
  VectorDataset dataset;
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    std::vector<DimId> dims;
    for (int d = 0; d < 5; ++d) {
      dims.push_back(static_cast<DimId>(rng.Below(40)));
    }
    dataset.Add(SparseVector::FromDims(dims));
  }
  SimHashFamily family(12);
  LshTable t0(family, dataset, 6, 0);
  LshTable t1(family, dataset, 6, 6);
  // Partition must differ for at least one pair (near-certain).
  bool differs = false;
  for (VectorId u = 0; u < dataset.size() && !differs; ++u) {
    for (VectorId v = u + 1; v < dataset.size() && !differs; ++v) {
      differs = t0.SameBucket(u, v) != t1.SameBucket(u, v);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(LshTableTest, MemoryAccountingFormula) {
  VectorDataset dataset = ClusteredDataset();
  MinHashFamily family(13);
  LshTable table(family, dataset, 8);
  const size_t expected =
      table.num_buckets() * 12 + dataset.size() * 4;
  EXPECT_EQ(table.MemoryBytes(), expected);
}

TEST(LshTableTest, BucketKeyLookupRoundTrips) {
  VectorDataset dataset = ClusteredDataset();
  MinHashFamily family(14);
  LshTable table(family, dataset, 8);
  for (size_t b = 0; b < table.num_buckets(); ++b) {
    auto it = table.key_to_bucket().find(table.BucketKey(b));
    ASSERT_NE(it, table.key_to_bucket().end());
    EXPECT_EQ(it->second, b);
  }
}

TEST(LshTableDeathTest, SampleSameBucketRequiresNonEmptyStratum) {
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({1}));
  dataset.Add(SparseVector::FromDims({1000}));
  MinHashFamily family(15);
  LshTable table(family, dataset, 20);
  if (table.NumSameBucketPairs() == 0) {
    Rng rng(1);
    EXPECT_DEATH(table.SampleSameBucketPair(rng), "stratum H is empty");
  }
}

}  // namespace
}  // namespace vsj
